//! Direct checks of quantitative claims made in the paper's prose,
//! beyond the figures.

use ecc::{Bits, Code, CodeKind, Edc, Secded};
use memarray::{ErrorShape, TwoDArray, TwoDConfig};

/// §4: "The latency of the 2D correction process is similar to that of a
/// simple BIST march test applied to the data array (i.e., a few hundred
/// or thousand cycles, depending on the number of rows)."
#[test]
fn recovery_latency_is_bist_march_class() {
    for rows in [256usize, 1024] {
        let mut bank = TwoDArray::new(TwoDConfig {
            rows,
            horizontal: CodeKind::Edc(8),
            data_bits: 64,
            interleave: 4,
            vertical_rows: 32,
        });
        let word = Bits::from_u64(1, 64);
        for r in 0..rows {
            bank.write_word(r, 0, &word);
        }
        bank.inject(ErrorShape::Cluster {
            row: 3,
            col: 0,
            height: 8,
            width: 8,
        });
        let report = bank.recover().unwrap();
        // March-class: a small multiple of the row count, never
        // quadratic.
        assert!(
            report.cycles >= rows as u64,
            "rows={rows}: {}",
            report.cycles
        );
        assert!(
            report.cycles <= 8 * rows as u64,
            "rows={rows}: {} cycles is beyond march class",
            report.cycles
        );
    }
}

/// §3: "EDC8 coding calculation requires the same latency as byte-parity
/// coding ... and incurs similar power and area overheads as SECDED
/// coding."
#[test]
fn edc8_latency_and_storage_match_prose() {
    use ecc::logic::LogicModel;
    let edc8 = Edc::new(64, 8);
    let secded = Secded::new(64);
    // Same check-bit storage as SECDED (8 vs 8).
    assert_eq!(edc8.check_bits(), secded.check_bits());
    // Byte-parity latency class: an 8-input XOR tree has depth 3; EDC8's
    // 9-input syndrome tree has depth 4 — within one gate level.
    let byte_parity_depth = 3;
    assert!(edc8.logic_cost().xor_depth <= byte_parity_depth + 1);
    // And strictly shallower than SECDED's checker.
    assert!(edc8.logic_cost().xor_depth < secded.logic_cost().xor_depth);
}

/// §3 example: "This example scheme does not correct multi-bit errors
/// that span over 32 lines in both horizontal and vertical directions."
#[test]
fn coverage_limit_is_both_dimensions_simultaneously() {
    use memarray::coverage::{twod_covers, CoverageOutcome};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let config = TwoDConfig {
        rows: 128,
        horizontal: CodeKind::Edc(8),
        data_bits: 64,
        interleave: 4,
        vertical_rows: 32,
    };
    let mut rng = StdRng::seed_from_u64(4);
    // Wide but short: corrected (vertical reconstruction per stripe row).
    let wide = twod_covers(
        config,
        ErrorShape::Cluster {
            row: 0,
            col: 0,
            height: 16,
            width: 200,
        },
        &mut rng,
    );
    assert_eq!(wide, CoverageOutcome::Corrected, "16x200");
    // Tall but narrow: corrected (column mode / per-stripe single rows
    // when <= V; here 100 rows with 8-wide footprint -> column-mode
    // handles <= 32-wide damage).
    let tall = twod_covers(
        config,
        ErrorShape::Cluster {
            row: 0,
            col: 40,
            height: 100,
            width: 1,
        },
        &mut rng,
    );
    assert_eq!(tall, CoverageOutcome::Corrected, "100x1");
    // Both dimensions beyond 32: not correctable (and must not be
    // silently wrong).
    let both = twod_covers(
        config,
        ErrorShape::Cluster {
            row: 0,
            col: 0,
            height: 40,
            width: 40,
        },
        &mut rng,
    );
    assert_eq!(both, CoverageOutcome::DetectedUncorrectable, "40x40");
}

/// §5.1: "Both the L1 data caches and L2 shared caches in the two
/// systems execute approximately 20% more cache requests due to the
/// extra reads imposed by 2D coding."
#[test]
fn extra_read_traffic_is_about_twenty_percent() {
    use cachesim::{figure6, SystemConfig};
    let rows = figure6(SystemConfig::fat_cmp(), 30_000, 13);
    let mut fracs = Vec::new();
    for r in &rows {
        fracs.push(r.l1.extra_2d / r.l1.total());
    }
    let avg = fracs.iter().sum::<f64>() / fracs.len() as f64;
    assert!(
        (0.08..=0.30).contains(&avg),
        "average extra-read fraction {avg} outside the ~20% band"
    );
}

/// §5.2 / Fig. 8(a) caption: "2D protection using the horizontal SECDED
/// ECC greatly reduces the amount of spare lines."
#[test]
fn ecc_repair_cuts_spare_requirements_by_orders_of_magnitude() {
    use reliability::{RepairScheme, YieldModel};
    let m = YieldModel::l2_16mb();
    // Defect budget at 90% yield with spares only vs ECC + 32 spares.
    let spare_only = m.cells_at_yield(0.9, RepairScheme::SpareRows(128), 1_000_000);
    let ecc_32 = m.cells_at_yield(0.9, RepairScheme::EccPlusSpares(32), 1_000_000);
    assert!(
        ecc_32 > 20 * spare_only,
        "ECC+32 budget {ecc_32} vs spare-only {spare_only}"
    );
}

/// §2.2 prose: interleaving's power cost "grows significantly ... beyond
/// about four".
#[test]
fn interleave_cost_accelerates_beyond_four() {
    use cachegeom::{interleave_sweep, CostModel, Objective};
    let model = CostModel::default();
    let pts = interleave_sweep(&model, 8192, 72, &[1, 4, 16], Objective::Balanced);
    let to4 = pts[1].normalized_energy - pts[0].normalized_energy;
    let beyond4 = pts[2].normalized_energy - pts[1].normalized_energy;
    assert!(
        beyond4 > to4,
        "growth beyond 4:1 ({beyond4}) should exceed growth up to 4:1 ({to4})"
    );
}
