//! Cross-crate integration tests: the full pipeline from codecs through
//! the 2D engine to the protected cache, exercised the way a downstream
//! user would.

use ecc::{Bits, CodeKind, Decoded};
use memarray::{ErrorShape, TwoDArray, TwoDConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use twod_cache::{CacheConfig, ProtectedCache, TwoDScheme};

#[test]
fn codeword_survives_storage_and_interleaving() {
    // Encode with every paper code, store through the interleaved layout,
    // read back, decode — the full storage path.
    let mut rng = StdRng::seed_from_u64(1);
    for kind in CodeKind::paper_set() {
        let code = kind.build(64);
        let layout = memarray::RowLayout::new(64, code.check_bits(), 4);
        let mut row = Bits::zeros(layout.row_cols());
        let mut reference = Vec::new();
        for w in 0..4 {
            let data = Bits::from_u64(rng.gen(), 64);
            let check = code.encode(&data);
            layout.place_word(&mut row, w, &data, &check);
            reference.push(data);
        }
        for w in 0..4 {
            let data = layout.extract_data(&row, w);
            let check = layout.extract_check(&row, w);
            assert_eq!(
                code.decode(&data, &check),
                Decoded::Clean,
                "{kind} word {w}"
            );
            assert_eq!(data, reference[w]);
        }
    }
}

#[test]
fn cache_workload_with_interleaved_faults() {
    // Run a pseudo-random working set against a protected cache while
    // injecting faults between batches; every read must stay correct.
    let mut rng = StdRng::seed_from_u64(2);
    let mut cache = ProtectedCache::new(CacheConfig {
        sets: 32,
        ways: 2,
        data_scheme: TwoDScheme::l1_paper(),
        tag_scheme: TwoDScheme {
            data_bits: 50,
            ..TwoDScheme::l1_paper()
        },
    });
    let mut shadow = std::collections::HashMap::new();
    for batch in 0..6 {
        for _ in 0..64 {
            let addr = (rng.gen_range(0..512u64)) * 8;
            let value: u64 = rng.gen();
            cache.write(addr, value).unwrap();
            shadow.insert(addr, value);
        }
        // Inject an escalating clustered error each batch.
        let size = 4 * (batch + 1);
        cache.inject_data_error(ErrorShape::Cluster {
            row: rng.gen_range(0..16),
            col: rng.gen_range(0..128),
            height: size.min(32),
            width: size.min(32),
        });
        for (&addr, &value) in &shadow {
            assert_eq!(
                cache.read(addr).unwrap(),
                value,
                "batch {batch} addr {addr:#x}"
            );
        }
    }
    assert!(cache.audit());
}

#[test]
fn yield_mode_cache_absorbs_hard_errors() {
    // SECDED horizontal + vertical parity: stuck cells are corrected
    // in-line, soft clusters on top are recovered, reads never lie.
    let mut cache = ProtectedCache::new(CacheConfig {
        sets: 32,
        ways: 2,
        data_scheme: TwoDScheme::yield_mode(),
        tag_scheme: TwoDScheme {
            data_bits: 50,
            ..TwoDScheme::yield_mode()
        },
    });
    let mut rng = StdRng::seed_from_u64(3);
    let mut shadow = std::collections::HashMap::new();
    for _ in 0..128 {
        let addr = (rng.gen_range(0..256u64)) * 8;
        let value: u64 = rng.gen();
        cache.write(addr, value).unwrap();
        shadow.insert(addr, value);
    }
    // Manufacture-time hard errors: several stuck cells.
    for _ in 0..4 {
        cache.inject_data_hard_error(
            ErrorShape::Single {
                row: rng.gen_range(0..32),
                col: rng.gen_range(0..128),
            },
            rng.gen(),
        );
    }
    // Plus an in-field soft cluster.
    cache.inject_data_error(ErrorShape::Cluster {
        row: 8,
        col: 8,
        height: 8,
        width: 8,
    });
    for (&addr, &value) in &shadow {
        assert_eq!(cache.read(addr).unwrap(), value, "addr {addr:#x}");
    }
}

#[test]
fn recovery_latency_scales_with_rows() {
    // The paper likens 2D recovery to a BIST march: latency proportional
    // to the number of rows scanned.
    let mut costs = Vec::new();
    for rows in [64usize, 128, 256] {
        let mut bank = TwoDArray::new(TwoDConfig {
            rows,
            horizontal: CodeKind::Edc(8),
            data_bits: 64,
            interleave: 4,
            vertical_rows: 32,
        });
        let word = Bits::from_u64(0xABCD, 64);
        for r in 0..rows {
            bank.write_word(r, 0, &word);
        }
        bank.inject(ErrorShape::Single { row: 5, col: 2 });
        let report = bank.recover().unwrap();
        costs.push(report.cycles);
    }
    assert!(costs[1] >= costs[0] * 2 - 16, "{costs:?}");
    assert!(costs[2] >= costs[1] * 2 - 16, "{costs:?}");
}

#[test]
fn figure_pipeline_smoke() {
    // The analysis pipelines behind Figures 1, 7, and 8 compose without
    // panicking and preserve their headline orderings.
    use cachegeom::{energy_overhead, storage_overhead, CacheSpec, CostModel, Objective};
    use reliability::{FieldModel, RepairScheme, YieldModel};
    use twod_cache::analysis::{figure7, ComparedScheme};

    let model = CostModel::default();
    let spec = CacheSpec::l1_64kb();
    assert!(storage_overhead(CodeKind::Oecned, 64) > storage_overhead(CodeKind::Secded, 64));
    assert!(
        energy_overhead(&model, &spec, CodeKind::Oecned, Objective::Balanced)
            > energy_overhead(&model, &spec, CodeKind::Secded, Objective::Balanced)
    );

    let reports = figure7(&model, &spec, &ComparedScheme::figure7_l1_set());
    assert!(reports[0].dynamic_power < reports[3].dynamic_power);

    let ym = YieldModel::l2_16mb();
    assert!(
        ym.yield_probability(2000, RepairScheme::EccPlusSpares(32))
            > ym.yield_probability(2000, RepairScheme::EccOnly)
    );
    assert!(FieldModel::paper_system(0.005e-2).success_without_2d(5.0) < 0.5);
}

#[test]
fn simulator_and_engine_agree_on_extra_read_fraction() {
    // Fig. 6 says 2D adds ~20% more cache accesses. The cycle simulator
    // and the functional engine measure this independently; both must
    // land in the same band for write-heavy workloads.
    use cachesim::{run_sim, ProtectionPolicy, SystemConfig, WorkloadProfile};

    let stats = run_sim(
        SystemConfig::fat_cmp(),
        ProtectionPolicy::full(),
        WorkloadProfile::ocean(),
        30_000,
        11,
    );
    let sim_fraction = stats.l1_extra_2d as f64
        / (stats.l1_read_data + stats.l1_write + stats.l1_fill_evict + stats.l1_extra_2d) as f64;

    let mut bank = TwoDArray::new(TwoDConfig {
        rows: 64,
        horizontal: CodeKind::Edc(8),
        data_bits: 64,
        interleave: 4,
        vertical_rows: 16,
    });
    let mut rng = StdRng::seed_from_u64(4);
    // Ocean-like mix: ~2 reads per write.
    for _ in 0..3000 {
        let r = rng.gen_range(0..64);
        let w = rng.gen_range(0..4);
        if rng.gen_bool(0.33) {
            bank.write_word(r, w, &Bits::from_u64(rng.gen(), 64));
        } else {
            let _ = bank.read_word(r, w).unwrap();
        }
    }
    let engine_fraction = bank.stats().extra_read_fraction();
    assert!(
        (sim_fraction - engine_fraction).abs() < 0.15,
        "simulator {sim_fraction:.3} vs engine {engine_fraction:.3}"
    );
}
