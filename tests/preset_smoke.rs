//! Workspace smoke test: the umbrella quickstart (write -> inject an
//! 8x8 cluster -> read back) must hold for a cache built from *every*
//! `TwoDScheme` preset, not just the `l1_64kb` configuration the crate
//! docs show.

use twod_repro::memarray::ErrorShape;
use twod_repro::twod_cache::{CacheConfig, ProtectedCache, TwoDScheme};

/// Every named protection preset the scheme registry exposes.
fn presets() -> Vec<(&'static str, TwoDScheme)> {
    vec![
        ("l1_paper", TwoDScheme::l1_paper()),
        ("l2_paper", TwoDScheme::l2_paper()),
        ("yield_mode", TwoDScheme::yield_mode()),
    ]
}

/// A cache config carrying `scheme` on the data array, with the tag
/// array protected the same way `CacheConfig::l1_64kb` wires it (the
/// tag word width is narrowed to the tag entry).
fn config_for(scheme: TwoDScheme) -> CacheConfig {
    let tag_bits = CacheConfig::l1_64kb().tag_scheme.data_bits;
    CacheConfig {
        sets: 512,
        ways: 2,
        data_scheme: scheme,
        tag_scheme: TwoDScheme {
            data_bits: tag_bits,
            ..scheme
        },
    }
}

#[test]
fn quickstart_survives_cluster_on_every_preset() {
    for (name, scheme) in presets() {
        let mut cache = ProtectedCache::new(config_for(scheme));
        cache
            .write(0x40, 7)
            .unwrap_or_else(|e| panic!("{name}: write failed: {e:?}"));
        cache.inject_data_error(ErrorShape::Cluster {
            row: 0,
            col: 0,
            height: 8,
            width: 8,
        });
        let got = cache
            .read(0x40)
            .unwrap_or_else(|e| panic!("{name}: read after 8x8 cluster failed: {e:?}"));
        assert_eq!(got, 7, "{name}: value corrupted by 8x8 cluster");
    }
}

#[test]
fn preset_coverage_matches_paper_guarantees() {
    // EDC presets guarantee a wide clustered window (32x32 for L1 and
    // L2 per the paper); yield mode deliberately narrows the guaranteed
    // horizontal width to its interleave in exchange for in-line
    // hard-error correction, keeping the full vertical reach.
    for (name, scheme) in presets() {
        let (rows, cols) = scheme.coverage();
        assert_eq!(rows, 32, "{name}: vertical coverage");
        match name {
            "l1_paper" | "l2_paper" => {
                assert_eq!(cols, 32, "{name}: horizontal coverage")
            }
            "yield_mode" => assert_eq!(cols, scheme.interleave, "{name}: horizontal coverage"),
            _ => unreachable!(),
        }
    }
}

#[test]
fn preset_caches_stay_consistent_under_traffic_after_cluster() {
    for (name, scheme) in presets() {
        let mut cache = ProtectedCache::new(config_for(scheme));
        for i in 0..64u64 {
            cache
                .write(0x1000 + i * 8, i * 31)
                .unwrap_or_else(|e| panic!("{name}: write {i} failed: {e:?}"));
        }
        cache.inject_data_error(ErrorShape::Cluster {
            row: 2,
            col: 3,
            height: 8,
            width: 8,
        });
        for i in 0..64u64 {
            let got = cache
                .read(0x1000 + i * 8)
                .unwrap_or_else(|e| panic!("{name}: read {i} failed: {e:?}"));
            assert_eq!(got, i * 31, "{name}: word {i} corrupted");
        }
        // Reads only repair the words they touch; a scrub pass sweeps
        // residual damage (e.g. hits on parity rows) out of the array.
        cache
            .scrub()
            .unwrap_or_else(|e| panic!("{name}: scrub failed: {e:?}"));
        assert!(cache.audit(), "{name}: parity audit failed after scrub");
    }
}
