//! Edge-case integration tests: unusual geometries, boundary widths, and
//! failure-path behaviour across crates.

use ecc::{Bch, Bits, Code, Decoded, Edc, Secded, SecdedSbd};
use memarray::{ErrorShape, TwoDArray, TwoDConfig};

#[test]
fn codes_work_on_tag_widths() {
    // The paper applies coding to 48-bit tag words too.
    for code in [
        Box::new(Edc::new(48, 8)) as Box<dyn Code>,
        Box::new(Secded::new(48)),
        Box::new(Bch::new(48, 2)),
        Box::new(SecdedSbd::new(48, 8)),
    ] {
        let data = Bits::from_u64(0xABCD_EF01_2345, 48);
        let check = code.encode(&data);
        assert_eq!(
            code.decode(&data, &check),
            Decoded::Clean,
            "{}",
            code.name()
        );
        let mut noisy = data.clone();
        noisy.flip(47);
        assert_ne!(
            code.decode(&noisy, &check),
            Decoded::Clean,
            "{} missed a boundary-bit flip",
            code.name()
        );
    }
}

#[test]
fn codes_work_on_odd_widths() {
    // Widths that are neither powers of two nor byte multiples.
    for width in [13usize, 50, 100, 171] {
        let secded = Secded::new(width);
        let data = Bits::from_positions(width, &[0, width / 2, width - 1]);
        let check = secded.encode(&data);
        assert_eq!(secded.decode(&data, &check), Decoded::Clean, "w={width}");
        let mut noisy = data.clone();
        noisy.flip(width - 1);
        assert!(
            matches!(secded.decode(&noisy, &check), Decoded::Corrected { .. }),
            "w={width}"
        );
    }
}

#[test]
fn bch_wide_words_and_high_t() {
    // 512-bit words force a larger field (m=10).
    let code = Bch::new(512, 2);
    assert!(code.field_degree() >= 10);
    let data = Bits::from_positions(512, &[0, 255, 511]);
    let check = code.encode(&data);
    let mut noisy = data.clone();
    noisy.flip(500);
    noisy.flip(501);
    match code.decode(&noisy, &check) {
        Decoded::Corrected { data: fixed, .. } => assert_eq!(fixed, data),
        other => panic!("expected correction, got {other:?}"),
    }
}

#[test]
fn minimal_twod_bank() {
    // Smallest sensible bank: 2 rows, 1 parity row, no interleave.
    let mut bank = TwoDArray::new(TwoDConfig {
        rows: 2,
        horizontal: ecc::CodeKind::Edc(8),
        data_bits: 64,
        interleave: 1,
        vertical_rows: 1,
    });
    let a = Bits::from_u64(0xA, 64);
    let b = Bits::from_u64(0xB, 64);
    bank.write_word(0, 0, &a);
    bank.write_word(1, 0, &b);
    bank.inject(ErrorShape::Row { row: 0 });
    assert_eq!(bank.read_word(0, 0).unwrap().into_data(), a);
    assert_eq!(bank.read_word(1, 0).unwrap().into_data(), b);
}

#[test]
fn wide_word_twod_bank() {
    // The L2 configuration: 256-bit words, EDC16, 2-way interleave.
    let mut bank = TwoDArray::new(TwoDConfig {
        rows: 64,
        horizontal: ecc::CodeKind::Edc(16),
        data_bits: 256,
        interleave: 2,
        vertical_rows: 32,
    });
    let word = Bits::from_positions(256, &[0, 100, 200, 255]);
    bank.write_word(10, 1, &word);
    // 32-column cluster: within EDC16+Intv2 detection width.
    bank.inject(ErrorShape::Cluster {
        row: 0,
        col: 0,
        height: 32,
        width: 32,
    });
    assert_eq!(bank.read_word(10, 1).unwrap().into_data(), word);
    assert!(bank.audit());
}

#[test]
fn overlapping_writes_to_same_word() {
    let mut bank = TwoDArray::new(TwoDConfig {
        rows: 8,
        horizontal: ecc::CodeKind::Secded,
        data_bits: 64,
        interleave: 2,
        vertical_rows: 4,
    });
    // Many rewrites of the same word must keep parity exact.
    for i in 0..50u64 {
        bank.write_word(
            3,
            1,
            &Bits::from_u64(i.wrapping_mul(0x1234_5678_9ABC_DEF1), 64),
        );
    }
    assert!(bank.audit());
}

#[test]
fn injection_on_check_columns_recovers() {
    let mut bank = TwoDArray::new(TwoDConfig {
        rows: 32,
        horizontal: ecc::CodeKind::Edc(8),
        data_bits: 64,
        interleave: 4,
        vertical_rows: 8,
    });
    let word = Bits::from_u64(0xF00D, 64);
    for r in 0..32 {
        for w in 0..4 {
            bank.write_word(r, w, &word);
        }
    }
    // Hit the check-bit region only (columns past the data area).
    let data_cols = 64 * 4;
    bank.inject(ErrorShape::Cluster {
        row: 4,
        col: data_cols + 2,
        height: 4,
        width: 8,
    });
    for r in 4..8 {
        for w in 0..4 {
            assert_eq!(bank.read_word(r, w).unwrap().into_data(), word);
        }
    }
    assert!(bank.audit());
}

#[test]
fn sbd_various_byte_widths() {
    for (k, b) in [(32usize, 4usize), (64, 4), (64, 8), (128, 8)] {
        let code = SecdedSbd::new(k, b);
        let data = Bits::from_positions(k, &[0, k / 3, k - 1]);
        let check = code.encode(&data);
        assert_eq!(code.decode(&data, &check), Decoded::Clean, "k={k} b={b}");
        // Full-byte wipe of the last byte is detected or exactly fixed.
        let mut noisy = data.clone();
        for bit in (k - b)..k {
            noisy.flip(bit);
        }
        match code.decode(&noisy, &check) {
            Decoded::Detected => {}
            Decoded::Corrected { data: fixed, .. } => assert_eq!(fixed, data),
            Decoded::Clean => panic!("k={k} b={b}: byte wipe undetected"),
        }
    }
}

#[test]
fn decoded_data_accessor_consistency() {
    let code = Secded::new(64);
    let data = Bits::from_u64(77, 64);
    let check = code.encode(&data);
    let mut noisy = data.clone();
    noisy.flip(3);
    let outcome = code.decode(&noisy, &check);
    // data() on the outcome must give back the corrected word.
    assert_eq!(outcome.data(&noisy), Some(&data));
}
