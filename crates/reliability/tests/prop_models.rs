//! Property tests for the reliability models: monotonicity and bounds
//! that must hold for every parameterization.

use proptest::prelude::*;
use reliability::{FieldModel, RepairScheme, YieldModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn yield_decreases_in_defects(
        words_log in 14u32..=22,
        cells_a in 0u64..2000,
        delta in 1u64..2000,
        spares in 0u64..64,
    ) {
        let m = YieldModel { words: 1 << words_log, word_bits: 72 };
        for scheme in [
            RepairScheme::SpareRows(spares.max(1)),
            RepairScheme::EccOnly,
            RepairScheme::EccPlusSpares(spares),
        ] {
            let a = m.yield_probability(cells_a, scheme);
            let b = m.yield_probability(cells_a + delta, scheme);
            prop_assert!(b <= a + 1e-9, "{}: {} -> {}", scheme.label(), a, b);
        }
    }

    #[test]
    fn yield_increases_in_spares(
        cells in 1u64..4000,
        spares in 0u64..128,
    ) {
        let m = YieldModel::l2_16mb();
        let fewer = m.yield_probability(cells, RepairScheme::EccPlusSpares(spares));
        let more = m.yield_probability(cells, RepairScheme::EccPlusSpares(spares + 8));
        prop_assert!(more >= fewer - 1e-9);
    }

    #[test]
    fn yield_is_probability(cells in 0u64..100_000, spares in 0u64..256) {
        let m = YieldModel::l2_16mb();
        for scheme in [
            RepairScheme::SpareRows(spares.max(1)),
            RepairScheme::EccOnly,
            RepairScheme::EccPlusSpares(spares),
        ] {
            let y = m.yield_probability(cells, scheme);
            prop_assert!((0.0..=1.0).contains(&y), "{}", y);
            prop_assert!(y.is_finite());
        }
    }

    #[test]
    fn ecc_plus_spares_dominates_both_components(cells in 1u64..4000) {
        let m = YieldModel::l2_16mb();
        let combo = m.yield_probability(cells, RepairScheme::EccPlusSpares(32));
        let ecc = m.yield_probability(cells, RepairScheme::EccOnly);
        let spares = m.yield_probability(cells, RepairScheme::SpareRows(32));
        prop_assert!(combo >= ecc - 1e-9);
        prop_assert!(combo >= spares - 1e-9);
    }

    #[test]
    fn field_success_decreases_in_time_and_her(
        her_ppm in 1.0f64..100.0,
        years in 0.0f64..10.0,
    ) {
        let her = her_ppm * 1e-6;
        let m = FieldModel::paper_system(her);
        let now = m.success_without_2d(years);
        let later = m.success_without_2d(years + 1.0);
        prop_assert!(later <= now + 1e-12);
        prop_assert!((0.0..=1.0).contains(&now));
        let worse = FieldModel::paper_system(her * 2.0).success_without_2d(years);
        prop_assert!(worse <= now + 1e-12);
    }

    #[test]
    fn with_2d_always_unity(her_ppm in 1.0f64..100.0, years in 0.0f64..10.0) {
        let m = FieldModel::paper_system(her_ppm * 1e-6);
        prop_assert_eq!(m.success_with_2d(years), 1.0);
    }
}
