//! Minimal numerically-stable Poisson utilities for the yield models.

/// Natural log of `n!` (Stirling's series above a small exact table).
pub fn ln_factorial(n: u64) -> f64 {
    const TABLE: [f64; 21] = [
        0.0,
        0.0,
        std::f64::consts::LN_2, // ln 2!
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_68,
        27.899_271_383_840_894,
        30.671_860_106_080_675,
        33.505_073_450_136_89,
        36.395_445_208_033_05,
        39.339_884_187_199_495,
        42.335_616_460_753_485,
    ];
    if n <= 20 {
        return TABLE[n as usize];
    }
    let x = n as f64;
    // Stirling's approximation with the 1/(12n) correction term.
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
}

/// log of the Poisson pmf at `k` with mean `mu`.
pub fn ln_pmf(k: u64, mu: f64) -> f64 {
    if mu <= 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    -mu + k as f64 * mu.ln() - ln_factorial(k)
}

/// Poisson CDF `P(X <= k)` for mean `mu`, computed with a log-sum-exp
/// accumulation so extreme tails neither overflow nor underflow to NaN.
pub fn cdf(k: u64, mu: f64) -> f64 {
    if mu <= 0.0 {
        return 1.0;
    }
    // Accumulate pmf terms in linear space relative to the largest term.
    let mode = (mu.floor() as u64).min(k);
    let ln_max = ln_pmf(mode, mu);
    if ln_max == f64::NEG_INFINITY {
        return 0.0;
    }
    let mut sum = 0.0f64;
    for i in 0..=k {
        sum += (ln_pmf(i, mu) - ln_max).exp();
    }
    let ln_cdf = ln_max + sum.ln();
    ln_cdf.exp().clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_matches_exact_values() {
        assert!((ln_factorial(5) - (120.0f64).ln()).abs() < 1e-12);
        assert!((ln_factorial(20) - 42.335_616_460_753_485).abs() < 1e-9);
        // Stirling region: 25! known value.
        let exact_25: f64 = 15511210043330985984000000.0f64;
        assert!((ln_factorial(25) - exact_25.ln()).abs() < 1e-6);
    }

    #[test]
    fn cdf_basics() {
        // P(X <= 0) = e^-mu.
        assert!((cdf(0, 2.0) - (-2.0f64).exp()).abs() < 1e-12);
        // Large k covers everything.
        assert!((cdf(100, 2.0) - 1.0).abs() < 1e-9);
        // Zero mean is certain.
        assert_eq!(cdf(0, 0.0), 1.0);
    }

    #[test]
    fn cdf_monotone_in_k() {
        let mu = 7.5;
        let mut last = 0.0;
        for k in 0..40 {
            let c = cdf(k, mu);
            assert!(c >= last - 1e-12, "k={k}");
            last = c;
        }
    }

    #[test]
    fn cdf_monotone_decreasing_in_mu() {
        let mut last = 1.0;
        for mu in [0.1, 1.0, 5.0, 20.0, 100.0] {
            let c = cdf(10, mu);
            assert!(c <= last + 1e-12, "mu={mu}");
            last = c;
        }
    }

    #[test]
    fn extreme_tail_does_not_nan() {
        let c = cdf(128, 4000.0);
        assert!(c.is_finite());
        assert!(c < 1e-100);
    }

    #[test]
    fn median_near_mean() {
        // For mu = 50, the median is ~50: CDF(49) < 0.5 <= CDF(50)-ish.
        assert!(cdf(40, 50.0) < 0.5);
        assert!(cdf(60, 50.0) > 0.5);
    }
}
