//! # reliability — yield and in-field reliability models
//!
//! The manufacturability analysis of the reproduction of *"Multi-bit
//! Error Tolerant Caches Using Two-Dimensional Error Coding"* (Kim et
//! al., MICRO-40, 2007):
//!
//! * [`YieldModel`] — Stapper-style random-defect yield with spare rows
//!   and/or ECC-based hard-error correction (Figure 8(a));
//! * [`FieldModel`] — FIT-based probability that a soft error combines
//!   with a latent hard fault into an uncorrectable error (Figure 8(b));
//! * [`OnlineRateEstimator`] — the live-telemetry bridge: streaming
//!   FIT/MTTF estimation (with exact Poisson confidence bounds) from
//!   error events observed by a running service;
//! * [`montecarlo`] — fault-injection cross-validation against the
//!   actual 2D engine in the `memarray` crate;
//! * [`poisson`] — the numerically stable Poisson tail sums the models
//!   are built on.
//!
//! ## Example: why ECC alone should not absorb hard errors
//!
//! ```
//! use reliability::FieldModel;
//!
//! // At a 0.005% hard-error rate, ECC-based repair without 2D coding
//! // has a sizable chance of an uncorrectable combination within 5 years.
//! let m = FieldModel::paper_system(0.005e-2);
//! assert!(m.success_without_2d(5.0) < 0.5);
//! assert_eq!(m.success_with_2d(5.0), 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod field;
pub mod montecarlo;
mod online;
pub mod poisson;
mod yield_model;

pub use field::{FieldModel, HOURS_PER_YEAR};
pub use online::{OnlineRateEstimator, ReliabilitySnapshot};
pub use yield_model::{RepairScheme, YieldModel};
