//! Manufacturing-yield model for caches with spare rows and/or ECC-based
//! hard-error correction — the analysis behind the paper's Figure 8(a).
//!
//! Following the Stapper-style assumption of hard faults distributed
//! uniformly at random over the array, the number of faults in one word
//! is approximately Poisson with mean `faults / words`. A word with one
//! fault is rescuable by in-line SECDED; a word with two or more faults
//! needs a spare. The cache yields if the number of words needing spares
//! does not exceed the spares provisioned.

use crate::poisson;
use rand::Rng;

/// Repair provisioning of a cache array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairScheme {
    /// Only spare rows: every word with >= 1 faulty bit consumes a spare.
    SpareRows(u64),
    /// Only in-line SECDED: single-bit faulty words are fine, any word
    /// with a multi-bit fault kills the die.
    EccOnly,
    /// SECDED plus `n` spares: only multi-bit-faulty words need spares.
    EccPlusSpares(u64),
}

impl RepairScheme {
    /// Label used in the Figure 8(a) legend.
    pub fn label(&self) -> String {
        match self {
            RepairScheme::SpareRows(n) => format!("Spare_{n}"),
            RepairScheme::EccOnly => "ECC Only".to_string(),
            RepairScheme::EccPlusSpares(n) => format!("ECC + Spare_{n}"),
        }
    }
}

/// A cache array under the random-defect yield model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct YieldModel {
    /// Number of protected words.
    pub words: u64,
    /// Bits per codeword (data + check).
    pub word_bits: u64,
}

impl YieldModel {
    /// The paper's 16MB L2: 2^21 64-bit data words with SECDED (72,64).
    pub fn l2_16mb() -> Self {
        YieldModel {
            words: 16 * 1024 * 1024 * 8 / 64,
            word_bits: 72,
        }
    }

    /// Mean faults per word given `failing_cells` random faulty bits.
    pub fn lambda(&self, failing_cells: u64) -> f64 {
        failing_cells as f64 / self.words as f64
    }

    /// Probability one word holds at least one fault.
    pub fn p_word_faulty(&self, failing_cells: u64) -> f64 {
        let l = self.lambda(failing_cells);
        1.0 - (-l).exp()
    }

    /// Probability one word holds a multi-bit (>= 2) fault.
    pub fn p_word_multibit(&self, failing_cells: u64) -> f64 {
        let l = self.lambda(failing_cells);
        1.0 - (-l).exp() * (1.0 + l)
    }

    /// Yield under `scheme` with `failing_cells` random faulty bits: the
    /// probability that the words needing repair fit in the provisioned
    /// spares.
    pub fn yield_probability(&self, failing_cells: u64, scheme: RepairScheme) -> f64 {
        let (p_bad, spares) = match scheme {
            RepairScheme::SpareRows(n) => (self.p_word_faulty(failing_cells), n),
            RepairScheme::EccOnly => (self.p_word_multibit(failing_cells), 0),
            RepairScheme::EccPlusSpares(n) => (self.p_word_multibit(failing_cells), n),
        };
        // Words needing spares ~ Poisson(words * p_bad).
        let mu = self.words as f64 * p_bad;
        poisson::cdf(spares, mu)
    }

    /// Yield after in-field block retirement has consumed part of the
    /// spare budget: `retired_words` of the provisioned `spares` are
    /// already spent on DUE retirements (as projected by
    /// `montecarlo::projected_retirements`), leaving fewer for
    /// manufacturing defects.
    pub fn yield_after_retirement(
        &self,
        failing_cells: u64,
        spares: u64,
        retired_words: u64,
    ) -> f64 {
        let left = spares.saturating_sub(retired_words);
        self.yield_probability(failing_cells, RepairScheme::EccPlusSpares(left))
    }

    /// Failing-cell count at which the yield first drops below `target`
    /// (bisection over the monotone yield curve; granularity 1 cell).
    pub fn cells_at_yield(&self, target: f64, scheme: RepairScheme, max_cells: u64) -> u64 {
        let mut lo = 0u64;
        let mut hi = max_cells;
        if self.yield_probability(hi, scheme) >= target {
            return hi;
        }
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.yield_probability(mid, scheme) >= target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    /// Monte Carlo cross-check of the analytic yield: samples actual
    /// fault placements over the words and checks spare sufficiency.
    pub fn yield_monte_carlo<R: Rng>(
        &self,
        failing_cells: u64,
        scheme: RepairScheme,
        trials: usize,
        rng: &mut R,
    ) -> f64 {
        let mut survived = 0usize;
        for _ in 0..trials {
            let mut fault_counts = std::collections::HashMap::new();
            for _ in 0..failing_cells {
                let w = rng.gen_range(0..self.words);
                *fault_counts.entry(w).or_insert(0u32) += 1;
            }
            let ok = match scheme {
                RepairScheme::SpareRows(n) => fault_counts.len() as u64 <= n,
                RepairScheme::EccOnly => fault_counts.values().all(|&c| c < 2),
                RepairScheme::EccPlusSpares(n) => {
                    fault_counts.values().filter(|&&c| c >= 2).count() as u64 <= n
                }
            };
            if ok {
                survived += 1;
            }
        }
        survived as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn figure8a_curve_ordering() {
        // At every defect count, ECC+Spare_32 >= ECC+Spare_16 >= ECC only,
        // and spare-only dies first.
        let m = YieldModel::l2_16mb();
        for cells in [200u64, 800, 1600, 2400, 3200, 4000] {
            let spare = m.yield_probability(cells, RepairScheme::SpareRows(128));
            let ecc = m.yield_probability(cells, RepairScheme::EccOnly);
            let ecc16 = m.yield_probability(cells, RepairScheme::EccPlusSpares(16));
            let ecc32 = m.yield_probability(cells, RepairScheme::EccPlusSpares(32));
            assert!(ecc32 >= ecc16 - 1e-12, "cells={cells}");
            assert!(ecc16 >= ecc - 1e-12, "cells={cells}");
            assert!(spare <= ecc32 + 1e-12, "cells={cells}");
        }
    }

    #[test]
    fn spare_only_dies_near_spare_count() {
        // With ~no fault collisions, every failing cell consumes a spare:
        // yield collapses once cells exceed the spare count.
        let m = YieldModel::l2_16mb();
        assert!(m.yield_probability(100, RepairScheme::SpareRows(128)) > 0.9);
        assert!(m.yield_probability(200, RepairScheme::SpareRows(128)) < 0.01);
    }

    #[test]
    fn ecc_only_degrades_midrange() {
        // E[multi-fault words] = F^2 / 2N: about 1 at F ~ 2000, so the
        // yield passes through ~40% there and keeps falling.
        let m = YieldModel::l2_16mb();
        let y2000 = m.yield_probability(2000, RepairScheme::EccOnly);
        assert!(y2000 > 0.2 && y2000 < 0.7, "yield at 2000 = {y2000}");
        let y4000 = m.yield_probability(4000, RepairScheme::EccOnly);
        assert!(y4000 < y2000);
    }

    #[test]
    fn ecc_plus_spares_stays_high_through_figure_range() {
        // The paper's headline: ECC + a small number of spares keeps
        // yield high across the whole 0..4000 defect range.
        let m = YieldModel::l2_16mb();
        assert!(m.yield_probability(4000, RepairScheme::EccPlusSpares(16)) > 0.9);
        assert!(m.yield_probability(4000, RepairScheme::EccPlusSpares(32)) > 0.99);
    }

    #[test]
    fn analytic_matches_monte_carlo_on_small_array() {
        let m = YieldModel {
            words: 4096,
            word_bits: 72,
        };
        let mut rng = StdRng::seed_from_u64(8);
        for scheme in [
            RepairScheme::SpareRows(64),
            RepairScheme::EccOnly,
            RepairScheme::EccPlusSpares(4),
        ] {
            let analytic = m.yield_probability(100, scheme);
            let mc = m.yield_monte_carlo(100, scheme, 400, &mut rng);
            assert!(
                (analytic - mc).abs() < 0.08,
                "{}: analytic {analytic} vs mc {mc}",
                scheme.label()
            );
        }
    }

    #[test]
    fn cells_at_yield_bisection() {
        let m = YieldModel::l2_16mb();
        let c = m.cells_at_yield(0.5, RepairScheme::EccOnly, 10_000);
        // Yield at c-1 above 50%, at c+1 below.
        assert!(m.yield_probability(c.saturating_sub(2), RepairScheme::EccOnly) >= 0.5);
        assert!(m.yield_probability(c + 2, RepairScheme::EccOnly) <= 0.5);
    }

    #[test]
    fn labels() {
        assert_eq!(RepairScheme::SpareRows(128).label(), "Spare_128");
        assert_eq!(RepairScheme::EccOnly.label(), "ECC Only");
        assert_eq!(RepairScheme::EccPlusSpares(16).label(), "ECC + Spare_16");
    }
}
