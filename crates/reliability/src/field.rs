//! In-field reliability when ECC is used to absorb manufacture-time hard
//! errors — the analysis behind the paper's Figure 8(b).
//!
//! If a word's SECDED budget is already spent on a hard fault, any soft
//! error in the same cache block combines into a multi-bit error the
//! horizontal code cannot correct. The paper models ten 16MB caches at
//! 1000 FIT/Mb and asks: what is the probability that, over a deployment
//! period, *every* soft error lands outside hard-faulty blocks? With 2D
//! coding the question is moot — the vertical code corrects the combined
//! error — so the "with 2D" curve stays at 100%.

/// Hours per (365-day) year.
pub const HOURS_PER_YEAR: f64 = 8760.0;

/// Parameters of the Figure 8(b) study.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FieldModel {
    /// Number of cache instances in the system.
    pub caches: u64,
    /// Capacity of each cache in megabytes.
    pub cache_mb: u64,
    /// Soft-error rate in FIT (failures per 1e9 device-hours) per Mbit.
    pub fit_per_mbit: f64,
    /// Bits per cache block that share fate with a hard fault (64B line).
    pub block_bits: u64,
    /// Hard error rate: fraction of cells faulty at manufacture.
    pub her: f64,
}

impl FieldModel {
    /// The paper's configuration: ten 16MB caches at 1000 FIT/Mb with 64B
    /// blocks, parameterized by the hard error rate.
    pub fn paper_system(her: f64) -> Self {
        FieldModel {
            caches: 10,
            cache_mb: 16,
            fit_per_mbit: 1000.0,
            block_bits: 512,
            her,
        }
    }

    /// The three hard-error rates plotted in Figure 8(b).
    pub fn figure8b_hers() -> [f64; 3] {
        [0.0005e-2, 0.001e-2, 0.005e-2]
    }

    /// Total capacity in megabits.
    pub fn total_mbit(&self) -> f64 {
        (self.caches * self.cache_mb * 8) as f64
    }

    /// Expected soft errors per hour across the system.
    pub fn soft_errors_per_hour(&self) -> f64 {
        self.fit_per_mbit * self.total_mbit() / 1e9
    }

    /// Probability a uniformly placed soft error lands in a block that
    /// already carries a hard fault.
    pub fn p_soft_hits_faulty_block(&self) -> f64 {
        // P(block has >= 1 hard fault) with Poisson-thin approximation.
        let lambda = self.block_bits as f64 * self.her;
        1.0 - (-lambda).exp()
    }

    /// Probability that ECC-based hard-error correction *without* 2D
    /// coding survives `years` of operation: every soft error must avoid
    /// hard-faulty blocks.
    pub fn success_without_2d(&self, years: f64) -> f64 {
        let n_soft = self.soft_errors_per_hour() * years * HOURS_PER_YEAR;
        // Poisson thinning: failures arrive at rate n_soft * p; success
        // is the probability of zero failures.
        (-n_soft * self.p_soft_hits_faulty_block()).exp()
    }

    /// Probability of surviving `years` with 2D coding: the vertical code
    /// corrects a soft error combined with a hard fault (the error stays
    /// within the 32x32 coverage), so correction always succeeds.
    pub fn success_with_2d(&self, _years: f64) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_error_rate_magnitude() {
        // 1280 Mbit at 1000 FIT/Mb = 1.28e6 FIT = 1.28e-3 per hour,
        // roughly 11 per year — matching the paper's "one every few
        // days" for large systems.
        let m = FieldModel::paper_system(0.00001);
        assert!((m.total_mbit() - 1280.0).abs() < 1e-9);
        let per_year = m.soft_errors_per_hour() * HOURS_PER_YEAR;
        assert!(per_year > 5.0 && per_year < 20.0, "{per_year}");
    }

    #[test]
    fn five_year_success_matches_figure8b_shape() {
        // HER = 0.005% drops deeply; 0.001% ~ 75%; 0.0005% ~ 87%.
        let hers = FieldModel::figure8b_hers();
        let s_low = FieldModel::paper_system(hers[0]).success_without_2d(5.0);
        let s_mid = FieldModel::paper_system(hers[1]).success_without_2d(5.0);
        let s_high = FieldModel::paper_system(hers[2]).success_without_2d(5.0);
        assert!(s_low > 0.8 && s_low < 0.95, "low HER: {s_low}");
        assert!(s_mid > 0.65 && s_mid < 0.85, "mid HER: {s_mid}");
        assert!(s_high > 0.1 && s_high < 0.4, "high HER: {s_high}");
        assert!(s_low > s_mid && s_mid > s_high);
    }

    #[test]
    fn success_decays_monotonically_in_time() {
        let m = FieldModel::paper_system(0.005e-2);
        let mut last = 1.0;
        for y in 0..=5 {
            let s = m.success_without_2d(y as f64);
            assert!(s <= last + 1e-12, "year {y}");
            last = s;
        }
        assert_eq!(m.success_without_2d(0.0), 1.0);
    }

    #[test]
    fn with_2d_always_survives() {
        let m = FieldModel::paper_system(0.005e-2);
        for y in 0..=5 {
            assert_eq!(m.success_with_2d(y as f64), 1.0);
        }
    }

    #[test]
    fn higher_her_is_worse() {
        let mut last = 1.0;
        for her in [0.0001e-2, 0.001e-2, 0.01e-2] {
            let s = FieldModel::paper_system(her).success_without_2d(3.0);
            assert!(s < last);
            last = s;
        }
    }
}
