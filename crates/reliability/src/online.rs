//! Online FIT/MTTF estimation from live error observations.
//!
//! The models in this crate ([`crate::FieldModel`], [`crate::YieldModel`])
//! start from an *assumed* error rate; a running self-healing service has
//! the opposite problem — it observes error events (inline corrections,
//! recoveries, dirty rows found by scrub slices) and wants the rate those
//! observations imply. [`OnlineRateEstimator`] is that bridge: feed it
//! event counts and exposure time and it maintains the maximum-likelihood
//! FIT estimate plus an exact Poisson upper confidence bound (meaningful
//! even after zero observed events, where the point estimate alone would
//! claim perfection).
//!
//! Exposure time is *device* time: a fault-injection campaign that
//! compresses years of field exposure into seconds of wall clock passes
//! an accelerated `hours` value, and the estimates read as field rates.

use crate::poisson;
use crate::FieldModel;

/// Streaming estimator of an error-event rate from observed counts.
///
/// Events are modeled as a homogeneous Poisson process over the exposure
/// window — the same assumption [`FieldModel`] makes — so the
/// maximum-likelihood rate is `events / hours` and confidence bounds
/// follow from the Poisson likelihood.
///
/// # Examples
///
/// ```
/// use reliability::OnlineRateEstimator;
///
/// // 128 Mbit of cache observed for 1000 device-hours, 3 errors seen.
/// let mut est = OnlineRateEstimator::new(128.0);
/// est.advance_hours(1000.0);
/// est.observe(3);
/// assert!((est.fit() - 3e6).abs() < 1.0); // 3/1000h = 3e6 per 1e9 h
/// assert!(est.mttf_hours().unwrap() > 300.0);
/// // The 95% upper bound is meaningfully above the point estimate.
/// assert!(est.fit_upper_bound(0.95) > est.fit());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OnlineRateEstimator {
    events: u64,
    hours: f64,
    mbits: f64,
}

/// A point-in-time summary of an [`OnlineRateEstimator`], convenient for
/// reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReliabilitySnapshot {
    /// Error events observed.
    pub events: u64,
    /// Device-hours of exposure.
    pub hours: f64,
    /// Monitored capacity in megabits.
    pub mbits: f64,
    /// Maximum-likelihood FIT (failures per 1e9 device-hours).
    pub fit: f64,
    /// FIT normalized per megabit of monitored capacity.
    pub fit_per_mbit: f64,
    /// Mean time to failure in hours (`None` until an event is seen).
    pub mttf_hours: Option<f64>,
    /// 95% Poisson upper confidence bound on the FIT.
    pub fit_upper_95: f64,
}

impl OnlineRateEstimator {
    /// Creates an estimator monitoring `mbits` megabits of capacity with
    /// no observations yet.
    ///
    /// # Panics
    ///
    /// Panics if `mbits` is not strictly positive.
    pub fn new(mbits: f64) -> Self {
        assert!(mbits > 0.0, "monitored capacity must be positive");
        OnlineRateEstimator {
            events: 0,
            hours: 0.0,
            mbits,
        }
    }

    /// Records `n` more observed error events.
    pub fn observe(&mut self, n: u64) {
        self.events += n;
    }

    /// Extends the exposure window by `hours` device-hours.
    ///
    /// # Panics
    ///
    /// Panics if `hours` is negative or non-finite.
    pub fn advance_hours(&mut self, hours: f64) {
        assert!(
            hours.is_finite() && hours >= 0.0,
            "exposure must advance by a finite, non-negative amount"
        );
        self.hours += hours;
    }

    /// Total events observed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total exposure in device-hours.
    pub fn hours(&self) -> f64 {
        self.hours
    }

    /// Maximum-likelihood event rate per device-hour (0 before any
    /// exposure).
    pub fn rate_per_hour(&self) -> f64 {
        if self.hours <= 0.0 {
            0.0
        } else {
            self.events as f64 / self.hours
        }
    }

    /// Maximum-likelihood FIT: failures per 1e9 device-hours.
    pub fn fit(&self) -> f64 {
        self.rate_per_hour() * 1e9
    }

    /// FIT normalized per megabit of the monitored capacity — directly
    /// comparable to the paper's 1000 FIT/Mb soft-error assumption.
    pub fn fit_per_mbit(&self) -> f64 {
        self.fit() / self.mbits
    }

    /// Maximum-likelihood mean time to failure in device-hours, or
    /// `None` while no event has been observed (the MLE would be
    /// infinite).
    pub fn mttf_hours(&self) -> Option<f64> {
        if self.events == 0 || self.hours <= 0.0 {
            None
        } else {
            Some(self.hours / self.events as f64)
        }
    }

    /// Exact one-sided Poisson upper confidence bound on the FIT at the
    /// given confidence level (e.g. `0.95`): the largest rate still
    /// consistent with having seen this few events, i.e. the rate `r`
    /// where `P(X <= events | r * hours) = 1 - confidence`.
    ///
    /// Unlike the point estimate this stays informative at zero events:
    /// `-ln(1 - confidence) / hours`, the classic "rule of three"
    /// generalization. Returns infinity while exposure is zero.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is outside `(0, 1)`.
    pub fn rate_upper_bound(&self, confidence: f64) -> f64 {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1)"
        );
        if self.hours <= 0.0 {
            return f64::INFINITY;
        }
        let alpha = 1.0 - confidence;
        // poisson::cdf(k, mu) is continuous and strictly decreasing in
        // mu, so bisect mu in [events, upper] where the bracket upper
        // bound grows until the cdf drops below alpha.
        let k = self.events;
        let mut lo = k as f64;
        let mut hi = (k as f64 + 1.0) * 4.0;
        while poisson::cdf(k, hi) > alpha {
            hi *= 2.0;
        }
        for _ in 0..128 {
            let mid = 0.5 * (lo + hi);
            if poisson::cdf(k, mid) > alpha {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) < 1e-12 * hi.max(1.0) {
                break;
            }
        }
        0.5 * (lo + hi) / self.hours
    }

    /// [`OnlineRateEstimator::rate_upper_bound`] expressed in FIT.
    pub fn fit_upper_bound(&self, confidence: f64) -> f64 {
        self.rate_upper_bound(confidence) * 1e9
    }

    /// Projects the observed rate through an existing [`FieldModel`]
    /// template: the template keeps its system geometry (cache count,
    /// capacity, block size, hard-error rate) but its assumed soft-error
    /// rate is replaced by the measured `fit_per_mbit`. This is how a
    /// live service turns its own error telemetry into the paper's
    /// Figure 8(b)-style survival projections.
    pub fn project_field_model(&self, template: FieldModel) -> FieldModel {
        FieldModel {
            fit_per_mbit: self.fit_per_mbit(),
            ..template
        }
    }

    /// A point-in-time summary of the estimator.
    pub fn snapshot(&self) -> ReliabilitySnapshot {
        ReliabilitySnapshot {
            events: self.events,
            hours: self.hours,
            mbits: self.mbits,
            fit: self.fit(),
            fit_per_mbit: self.fit_per_mbit(),
            mttf_hours: self.mttf_hours(),
            fit_upper_95: self.fit_upper_bound(0.95),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mle_rate_and_fit() {
        let mut est = OnlineRateEstimator::new(64.0);
        est.advance_hours(500.0);
        est.observe(2);
        assert!((est.rate_per_hour() - 0.004).abs() < 1e-12);
        assert!((est.fit() - 4e6).abs() < 1e-3);
        assert!((est.fit_per_mbit() - 4e6 / 64.0).abs() < 1e-3);
        assert_eq!(est.mttf_hours(), Some(250.0));
    }

    #[test]
    fn zero_exposure_is_safe() {
        let est = OnlineRateEstimator::new(1.0);
        assert_eq!(est.fit(), 0.0);
        assert_eq!(est.mttf_hours(), None);
        assert!(est.rate_upper_bound(0.95).is_infinite());
    }

    #[test]
    fn zero_events_rule_of_three() {
        // With 0 events over T hours, the exact 95% UCL is -ln(0.05)/T
        // ~ 2.996/T ("rule of three").
        let mut est = OnlineRateEstimator::new(1.0);
        est.advance_hours(100.0);
        let ucl = est.rate_upper_bound(0.95);
        assert!((ucl - (-(0.05f64.ln())) / 100.0).abs() < 1e-6, "got {ucl}");
        assert_eq!(est.mttf_hours(), None);
    }

    #[test]
    fn upper_bound_above_mle_and_tightens_with_exposure() {
        let mut a = OnlineRateEstimator::new(1.0);
        a.advance_hours(100.0);
        a.observe(5);
        assert!(a.rate_upper_bound(0.95) > a.rate_per_hour());
        // Same rate, 10x the evidence: the bound tightens toward the MLE.
        let mut b = OnlineRateEstimator::new(1.0);
        b.advance_hours(1000.0);
        b.observe(50);
        let slack_a = a.rate_upper_bound(0.95) / a.rate_per_hour();
        let slack_b = b.rate_upper_bound(0.95) / b.rate_per_hour();
        assert!(slack_b < slack_a, "{slack_b} !< {slack_a}");
    }

    #[test]
    fn upper_bound_inverts_poisson_cdf() {
        let mut est = OnlineRateEstimator::new(1.0);
        est.advance_hours(10.0);
        est.observe(7);
        let r = est.rate_upper_bound(0.90);
        let cdf = poisson::cdf(7, r * 10.0);
        assert!((cdf - 0.10).abs() < 1e-6, "cdf at bound: {cdf}");
    }

    #[test]
    fn higher_confidence_is_looser() {
        let mut est = OnlineRateEstimator::new(1.0);
        est.advance_hours(10.0);
        est.observe(1);
        assert!(est.rate_upper_bound(0.99) > est.rate_upper_bound(0.90));
    }

    #[test]
    fn field_model_projection_swaps_only_the_rate() {
        let mut est = OnlineRateEstimator::new(1280.0);
        est.advance_hours(1e6);
        est.observe(1280);
        let template = FieldModel::paper_system(0.001e-2);
        let projected = est.project_field_model(template);
        assert_eq!(projected.caches, template.caches);
        assert_eq!(projected.her, template.her);
        // 1280 events / 1e6 h = 1.28e-3/h = 1.28e6 FIT over 1280 Mbit
        // = 1000 FIT/Mbit — the paper's assumed rate.
        assert!((projected.fit_per_mbit - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn snapshot_reflects_state() {
        let mut est = OnlineRateEstimator::new(8.0);
        est.advance_hours(50.0);
        est.observe(4);
        let snap = est.snapshot();
        assert_eq!(snap.events, 4);
        assert_eq!(snap.hours, 50.0);
        assert_eq!(snap.mttf_hours, Some(12.5));
        assert!(snap.fit_upper_95 > snap.fit);
    }
}
