//! Monte Carlo cross-validation tying the analytic reliability claims to
//! the actual 2D engine: inject a hard fault plus a soft error into the
//! same word of a SECDED-protected bank and verify that 2D coding
//! recovers where plain SECDED cannot.

use ecc::{Bits, CodeKind};
use memarray::{ErrorShape, TwoDArray, TwoDConfig};
use rand::Rng;

/// Result of one combined hard+soft injection trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrialOutcome {
    /// All words read back their intended values.
    Survived,
    /// At least one word was lost (uncorrectable or wrong).
    Lost,
}

/// Runs `trials` experiments on a SECDED-horizontal 2D bank: each trial
/// plants one stuck-at cell, then flips a soft bit in the *same word*,
/// and checks whether every word still reads back correctly. Returns the
/// survival fraction (1.0 expected: the vertical code covers the combo).
pub fn survival_with_2d<R: Rng>(trials: usize, rng: &mut R) -> f64 {
    let config = TwoDConfig {
        rows: 64,
        horizontal: CodeKind::Secded,
        data_bits: 64,
        interleave: 2,
        vertical_rows: 16,
    };
    let mut survived = 0usize;
    for _ in 0..trials {
        if run_trial(config, rng) == TrialOutcome::Survived {
            survived += 1;
        }
    }
    survived as f64 / trials as f64
}

/// Same experiment decided by the horizontal SECDED alone (no recovery):
/// the combined double error is uncorrectable, so survival requires the
/// two errors to land in *different* words. With forced same-word
/// placement this returns 0.0 — the analytic model's premise.
pub fn survival_without_2d<R: Rng>(trials: usize, rng: &mut R) -> f64 {
    use ecc::{Code, Decoded, Secded};
    let code = Secded::new(64);
    let mut survived = 0usize;
    for _ in 0..trials {
        let data = Bits::from_u64(rng.gen(), 64);
        let check = code.encode(&data);
        let mut noisy = data.clone();
        // Hard fault + soft error in the same word, distinct positions.
        let hard = rng.gen_range(0..64);
        let mut soft = rng.gen_range(0..64);
        while soft == hard {
            soft = rng.gen_range(0..64);
        }
        noisy.flip(hard);
        noisy.flip(soft);
        match code.decode(&noisy, &check) {
            Decoded::Clean | Decoded::Corrected { .. } => {
                // A clean or "corrected" outcome on a double error would
                // be silent corruption; only exact recovery counts.
                if let Decoded::Corrected { data: fixed, .. } = code.decode(&noisy, &check) {
                    if fixed == data {
                        survived += 1;
                    }
                }
            }
            Decoded::Detected => {}
        }
    }
    survived as f64 / trials as f64
}

fn run_trial<R: Rng>(config: TwoDConfig, rng: &mut R) -> TrialOutcome {
    let mut bank = TwoDArray::new(config);
    let words = bank.words_per_row();
    let mut reference = vec![vec![Bits::zeros(config.data_bits); words]; bank.rows()];
    for r in 0..bank.rows() {
        for w in 0..words {
            let data = Bits::from_u64(rng.gen(), config.data_bits);
            bank.write_word(r, w, &data);
            reference[r][w] = data;
        }
    }
    // One stuck-at cell...
    let row = rng.gen_range(0..bank.rows());
    let word = rng.gen_range(0..words);
    let bit_a = rng.gen_range(0..config.data_bits);
    let col_a = bank.layout().data_col(word, bit_a);
    bank.inject_hard(ErrorShape::Single { row, col: col_a }, true);
    // ...plus a soft flip in the same word at a different bit.
    let mut bit_b = rng.gen_range(0..config.data_bits);
    while bit_b == bit_a {
        bit_b = rng.gen_range(0..config.data_bits);
    }
    let col_b = bank.layout().data_col(word, bit_b);
    bank.inject(ErrorShape::Single { row, col: col_b });
    // Read everything back.
    for r in 0..bank.rows() {
        for w in 0..words {
            match bank.read_word(r, w) {
                Ok(out) => {
                    if out.into_data() != reference[r][w] {
                        return TrialOutcome::Lost;
                    }
                }
                Err(_) => return TrialOutcome::Lost,
            }
        }
    }
    TrialOutcome::Survived
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn twod_survives_hard_plus_soft_in_same_word() {
        let mut rng = StdRng::seed_from_u64(21);
        let survival = survival_with_2d(10, &mut rng);
        assert_eq!(survival, 1.0, "2D must correct hard+soft combinations");
    }

    #[test]
    fn plain_secded_loses_hard_plus_soft() {
        let mut rng = StdRng::seed_from_u64(22);
        let survival = survival_without_2d(200, &mut rng);
        assert_eq!(survival, 0.0, "SECDED alone cannot correct double errors");
    }
}
