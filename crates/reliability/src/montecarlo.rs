//! Monte Carlo cross-validation tying the analytic reliability claims to
//! the actual 2D engine: inject a hard fault plus a soft error into the
//! same word of a SECDED-protected bank and verify that 2D coding
//! recovers where plain SECDED cannot.

use ecc::{Bits, CodeKind};
use memarray::{ErrorShape, TwoDArray, TwoDConfig};
use rand::Rng;

/// Result of one combined hard+soft injection trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrialOutcome {
    /// All words read back their intended values.
    Survived,
    /// At least one word was lost (uncorrectable or wrong).
    Lost,
}

/// Runs `trials` experiments on a SECDED-horizontal 2D bank: each trial
/// plants one stuck-at cell, then flips a soft bit in the *same word*,
/// and checks whether every word still reads back correctly. Returns the
/// survival fraction (1.0 expected: the vertical code covers the combo).
pub fn survival_with_2d<R: Rng>(trials: usize, rng: &mut R) -> f64 {
    let config = TwoDConfig {
        rows: 64,
        horizontal: CodeKind::Secded,
        data_bits: 64,
        interleave: 2,
        vertical_rows: 16,
    };
    let mut survived = 0usize;
    for _ in 0..trials {
        if run_trial(config, rng) == TrialOutcome::Survived {
            survived += 1;
        }
    }
    survived as f64 / trials as f64
}

/// Same experiment decided by the horizontal SECDED alone (no recovery):
/// the combined double error is uncorrectable, so survival requires the
/// two errors to land in *different* words. With forced same-word
/// placement this returns 0.0 — the analytic model's premise.
pub fn survival_without_2d<R: Rng>(trials: usize, rng: &mut R) -> f64 {
    use ecc::{Code, Decoded, Secded};
    let code = Secded::new(64);
    let mut survived = 0usize;
    for _ in 0..trials {
        let data = Bits::from_u64(rng.gen(), 64);
        let check = code.encode(&data);
        let mut noisy = data.clone();
        // Hard fault + soft error in the same word, distinct positions.
        let hard = rng.gen_range(0..64);
        let mut soft = rng.gen_range(0..64);
        while soft == hard {
            soft = rng.gen_range(0..64);
        }
        noisy.flip(hard);
        noisy.flip(soft);
        match code.decode(&noisy, &check) {
            Decoded::Clean | Decoded::Corrected { .. } => {
                // A clean or "corrected" outcome on a double error would
                // be silent corruption; only exact recovery counts.
                if let Decoded::Corrected { data: fixed, .. } = code.decode(&noisy, &check) {
                    if fixed == data {
                        survived += 1;
                    }
                }
            }
            Decoded::Detected => {}
        }
    }
    survived as f64 / trials as f64
}

fn run_trial<R: Rng>(config: TwoDConfig, rng: &mut R) -> TrialOutcome {
    let mut bank = TwoDArray::new(config);
    let words = bank.words_per_row();
    let mut reference = vec![vec![Bits::zeros(config.data_bits); words]; bank.rows()];
    for r in 0..bank.rows() {
        for w in 0..words {
            let data = Bits::from_u64(rng.gen(), config.data_bits);
            bank.write_word(r, w, &data);
            reference[r][w] = data;
        }
    }
    // One stuck-at cell...
    let row = rng.gen_range(0..bank.rows());
    let word = rng.gen_range(0..words);
    let bit_a = rng.gen_range(0..config.data_bits);
    let col_a = bank.layout().data_col(word, bit_a);
    bank.inject_hard(ErrorShape::Single { row, col: col_a }, true);
    // ...plus a soft flip in the same word at a different bit.
    let mut bit_b = rng.gen_range(0..config.data_bits);
    while bit_b == bit_a {
        bit_b = rng.gen_range(0..config.data_bits);
    }
    let col_b = bank.layout().data_col(word, bit_b);
    bank.inject(ErrorShape::Single { row, col: col_b });
    // Read everything back.
    for r in 0..bank.rows() {
        for w in 0..words {
            match bank.read_word(r, w) {
                Ok(out) => {
                    if out.into_data() != reference[r][w] {
                        return TrialOutcome::Lost;
                    }
                }
                Err(_) => return TrialOutcome::Lost,
            }
        }
    }
    TrialOutcome::Survived
}

/// NE/CE/DUE/SDC rates measured by a fault campaign (e.g. the detailed
/// simulator's `run_sim_campaign`), ready for projection onto a field
/// population.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MeasuredRates {
    /// Total fault events injected.
    pub faults: u64,
    /// Events with no architecturally visible effect.
    pub ne: u64,
    /// Corrected events.
    pub ce: u64,
    /// Detected uncorrectable events (each retires a block in the
    /// field model).
    pub due: u64,
    /// Silent corruptions.
    pub sdc: u64,
}

impl MeasuredRates {
    /// Fraction of faults that end as DUE.
    pub fn due_fraction(&self) -> f64 {
        if self.faults == 0 {
            0.0
        } else {
            self.due as f64 / self.faults as f64
        }
    }

    /// Fraction of faults that end as SDC.
    pub fn sdc_fraction(&self) -> f64 {
        if self.faults == 0 {
            0.0
        } else {
            self.sdc as f64 / self.faults as f64
        }
    }

    /// Whether every fault landed in exactly one bucket.
    pub fn accounted(&self) -> bool {
        self.ne + self.ce + self.due + self.sdc == self.faults
    }
}

/// Samples `Poisson(lambda)` by chunked Knuth multiplication (chunking
/// keeps `exp(-lambda)` representable for large means).
fn poisson_sample<R: Rng>(lambda: f64, rng: &mut R) -> u64 {
    let mut remaining = lambda;
    let mut total = 0u64;
    while remaining > 1e-12 {
        let step = remaining.min(10.0);
        let limit = (-step).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            k += 1;
            p *= rng.gen::<f64>();
            if p <= limit {
                break;
            }
        }
        total += k - 1;
        remaining -= step;
    }
    total
}

/// Projects measured DUE rates onto a field population: over a horizon
/// producing `expected_events` fault events (Poisson), each event
/// independently becomes a DUE block retirement with the measured
/// probability. Returns the mean retirements over `trials` Monte-Carlo
/// runs — the input to [`crate::YieldModel::yield_after_retirement`].
pub fn projected_retirements<R: Rng>(
    rates: &MeasuredRates,
    expected_events: f64,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let p_due = rates.due_fraction();
    if trials == 0 || p_due <= 0.0 {
        return 0.0;
    }
    let mut total = 0u64;
    for _ in 0..trials {
        let events = poisson_sample(expected_events, rng);
        for _ in 0..events {
            if rng.gen_bool(p_due) {
                total += 1;
            }
        }
    }
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn twod_survives_hard_plus_soft_in_same_word() {
        let mut rng = StdRng::seed_from_u64(21);
        let survival = survival_with_2d(10, &mut rng);
        assert_eq!(survival, 1.0, "2D must correct hard+soft combinations");
    }

    #[test]
    fn plain_secded_loses_hard_plus_soft() {
        let mut rng = StdRng::seed_from_u64(22);
        let survival = survival_without_2d(200, &mut rng);
        assert_eq!(survival, 0.0, "SECDED alone cannot correct double errors");
    }

    #[test]
    fn poisson_sampler_tracks_mean() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 4_000;
        let mean: f64 = (0..n)
            .map(|_| poisson_sample(64.0, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 64.0).abs() < 1.0, "sample mean {mean} far from 64");
    }

    #[test]
    fn retirements_scale_with_due_fraction() {
        let mut rng = StdRng::seed_from_u64(24);
        let half = MeasuredRates {
            faults: 10,
            ne: 0,
            ce: 5,
            due: 5,
            sdc: 0,
        };
        let none = MeasuredRates {
            faults: 10,
            ne: 5,
            ce: 5,
            due: 0,
            sdc: 0,
        };
        assert!(half.accounted() && none.accounted());
        let r_half = projected_retirements(&half, 100.0, 500, &mut rng);
        let r_none = projected_retirements(&none, 100.0, 500, &mut rng);
        assert!((r_half - 50.0).abs() < 5.0, "expected ~50, got {r_half}");
        assert_eq!(r_none, 0.0);
    }
}
