//! Scrubbing policies and the detection-latency analysis behind the
//! paper's Section 2.1 remark that periodic scrubbing "has lower error
//! coverage than checking ECC on every read": between scrub passes,
//! independent errors can accumulate in one word and defeat the code.
//!
//! This module provides a policy abstraction (periodic scrub vs on-access
//! checking) plus an analytic model of the accumulation risk, and a
//! Monte-Carlo experiment that reproduces it against a live array.

use crate::{ErrorShape, TwoDArray};
use rand::Rng;

/// When stored words are checked for errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckPolicy {
    /// The horizontal code is checked on every read (the paper's choice).
    OnAccess,
    /// The array is swept every `interval` time units; errors are only
    /// found during sweeps.
    PeriodicScrub {
        /// Time units between scrub passes.
        interval: u64,
    },
}

/// Analytic model: probability that a word accumulates `>= threshold`
/// independent single-bit errors within one exposure window.
///
/// With per-word error rate `rate` (errors per time unit) and an exposure
/// window `window`, arrivals are Poisson with mean `rate * window`. A
/// SECDED word is defeated by the second arrival, so the defeat
/// probability is `P(N >= 2)`.
pub fn accumulation_defeat_probability(rate: f64, window: f64) -> f64 {
    let mu = rate * window;
    1.0 - (-mu).exp() * (1.0 + mu)
}

/// Expected exposure window of a policy: how long an error can sit
/// unobserved. On-access checking with mean access interval
/// `access_interval` observes each word that often; periodic scrubbing
/// waits for the next sweep.
pub fn exposure_window(policy: CheckPolicy, access_interval: f64) -> f64 {
    match policy {
        CheckPolicy::OnAccess => access_interval,
        CheckPolicy::PeriodicScrub { interval } => interval as f64,
    }
}

/// Outcome of the scrubbing Monte-Carlo experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubExperiment {
    /// Error events injected.
    pub injected: u64,
    /// Events that were corrected before a second error compounded them.
    pub corrected_in_time: u64,
    /// Events that compounded into uncorrectable damage.
    pub compounded: u64,
}

impl ScrubExperiment {
    /// Fraction of injected events that compounded.
    pub fn compound_fraction(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            self.compounded as f64 / self.injected as f64
        }
    }
}

/// Runs a simple accumulation experiment on a live 2D bank: single-bit
/// errors arrive at `events` random instants over `duration` time units;
/// the bank is scrubbed per `policy`. Returns how many errors compounded
/// (two unscrubbed errors alive at once anywhere in the array).
///
/// The bank's own 2D recovery corrects whatever the policy finds — the
/// experiment measures *detection latency*, the quantity the policy
/// controls.
pub fn run_scrub_experiment<R: Rng>(
    bank: &mut TwoDArray,
    policy: CheckPolicy,
    events: u64,
    duration: u64,
    rng: &mut R,
) -> ScrubExperiment {
    let mut result = ScrubExperiment::default();
    // Event times, sorted.
    let mut times: Vec<u64> = (0..events).map(|_| rng.gen_range(0..duration)).collect();
    times.sort_unstable();
    // Time of the single outstanding uncorrected error, if any. At most
    // one error is ever outstanding (a second arrival compounds and
    // resets), so this needs no growable buffer.
    let mut pending: Option<u64> = None;
    let mut next_scrub = match policy {
        CheckPolicy::OnAccess => 1,
        CheckPolicy::PeriodicScrub { interval } => interval,
    };
    let scrub_step = match policy {
        CheckPolicy::OnAccess => 1,
        CheckPolicy::PeriodicScrub { interval } => interval,
    };
    for &t in &times {
        // Process scrub passes before this event.
        while next_scrub <= t {
            if pending.is_some() {
                let _ = bank.scrub();
                pending = None;
            }
            next_scrub += scrub_step;
        }
        // Inject the error.
        let row = rng.gen_range(0..bank.rows());
        let col = rng.gen_range(0..bank.cols());
        bank.inject(ErrorShape::Single { row, col });
        result.injected += 1;
        if pending.is_none() {
            pending = Some(t);
        } else {
            // A second error while one is outstanding: compounded.
            result.compounded += 1;
            let _ = bank.scrub(); // clean up for the next round
            pending = None;
        }
    }
    result.corrected_in_time = result.injected - result.compounded;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoDConfig;
    use ecc::CodeKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bank() -> TwoDArray {
        TwoDArray::new(TwoDConfig {
            rows: 64,
            horizontal: CodeKind::Edc(8),
            data_bits: 64,
            interleave: 2,
            vertical_rows: 16,
        })
    }

    #[test]
    fn analytic_defeat_grows_with_window() {
        let rate = 1e-3;
        let mut last = 0.0;
        for window in [1.0, 10.0, 100.0, 1000.0] {
            let p = accumulation_defeat_probability(rate, window);
            assert!(p >= last);
            last = p;
        }
        assert!(last > 0.2, "long windows must show real risk: {last}");
    }

    #[test]
    fn on_access_has_shortest_exposure() {
        let on = exposure_window(CheckPolicy::OnAccess, 5.0);
        let scrub = exposure_window(CheckPolicy::PeriodicScrub { interval: 500 }, 5.0);
        assert!(on < scrub);
    }

    #[test]
    fn scrubbing_compounds_more_than_on_access() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut b1 = bank();
        let on_access = run_scrub_experiment(&mut b1, CheckPolicy::OnAccess, 60, 10_000, &mut rng);
        let mut b2 = bank();
        let scrubbed = run_scrub_experiment(
            &mut b2,
            CheckPolicy::PeriodicScrub { interval: 2_000 },
            60,
            10_000,
            &mut rng,
        );
        assert!(
            scrubbed.compound_fraction() >= on_access.compound_fraction(),
            "scrub {} vs on-access {}",
            scrubbed.compound_fraction(),
            on_access.compound_fraction()
        );
    }

    #[test]
    fn experiment_accounting_consistent() {
        let mut rng = StdRng::seed_from_u64(18);
        let mut b = bank();
        let r = run_scrub_experiment(
            &mut b,
            CheckPolicy::PeriodicScrub { interval: 100 },
            40,
            5_000,
            &mut rng,
        );
        assert_eq!(r.injected, 40);
        assert_eq!(r.corrected_in_time + r.compounded, r.injected);
    }

    #[test]
    fn zero_events_zero_fraction() {
        assert_eq!(ScrubExperiment::default().compound_fraction(), 0.0);
    }
}
