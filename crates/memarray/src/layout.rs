//! Physical row layout: how logical (word, bit) coordinates map onto
//! physical columns under bit interleaving.
//!
//! With `d`-way interleaving, `d` complete codewords share one physical
//! row and their bits are interleaved bit-by-bit (`A1 B1 C1 D1 A2 B2 ...`),
//! so a physically contiguous error burst of `d * n` columns touches at
//! most `n` contiguous logical bits of each codeword.

use ecc::Bits;

/// Mapping between logical codewords and the physical columns of a row.
///
/// A row holds `interleave` codewords of `data_bits + check_bits` bits
/// each. Data bits occupy the left region of the row, check bits the right
/// region; both regions are bit-interleaved across the words.
///
/// # Examples
///
/// ```
/// use memarray::RowLayout;
///
/// // Four (72,64) codewords share a 288-column row.
/// let layout = RowLayout::new(64, 8, 4);
/// assert_eq!(layout.row_cols(), 288);
/// assert_eq!(layout.data_col(0, 0), 0);
/// assert_eq!(layout.data_col(1, 0), 1);  // next word, same bit
/// assert_eq!(layout.data_col(0, 1), 4);  // same word, next bit
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowLayout {
    data_bits: usize,
    check_bits: usize,
    interleave: usize,
}

impl RowLayout {
    /// Creates a layout for `interleave` codewords of `data_bits` data and
    /// `check_bits` check bits.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero (`check_bits` may be zero only for
    /// unprotected arrays).
    pub fn new(data_bits: usize, check_bits: usize, interleave: usize) -> Self {
        assert!(data_bits > 0, "layout needs data bits");
        assert!(interleave > 0, "interleave degree must be >= 1");
        RowLayout {
            data_bits,
            check_bits,
            interleave,
        }
    }

    /// Data bits per word.
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// Check bits per word.
    pub fn check_bits(&self) -> usize {
        self.check_bits
    }

    /// Interleave degree (words per row).
    pub fn interleave(&self) -> usize {
        self.interleave
    }

    /// Total physical columns per row.
    pub fn row_cols(&self) -> usize {
        (self.data_bits + self.check_bits) * self.interleave
    }

    /// Physical column of data bit `bit` of word `word`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn data_col(&self, word: usize, bit: usize) -> usize {
        assert!(word < self.interleave, "word {word} out of range");
        assert!(bit < self.data_bits, "data bit {bit} out of range");
        bit * self.interleave + word
    }

    /// Physical column of check bit `bit` of word `word`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn check_col(&self, word: usize, bit: usize) -> usize {
        assert!(word < self.interleave, "word {word} out of range");
        assert!(bit < self.check_bits, "check bit {bit} out of range");
        self.data_bits * self.interleave + bit * self.interleave + word
    }

    /// Inverse map: which (word, logical codeword bit) lives at physical
    /// column `col`. Codeword bit indices follow the [`ecc::Code`]
    /// convention: `0..data_bits` data, then check bits.
    ///
    /// # Panics
    ///
    /// Panics if `col >= row_cols()`.
    pub fn col_to_word_bit(&self, col: usize) -> (usize, usize) {
        assert!(col < self.row_cols(), "column {col} out of range");
        let data_region = self.data_bits * self.interleave;
        if col < data_region {
            (col % self.interleave, col / self.interleave)
        } else {
            let c = col - data_region;
            (c % self.interleave, self.data_bits + c / self.interleave)
        }
    }

    /// Extracts the data word `word` from a physical row.
    ///
    /// # Panics
    ///
    /// Panics if the row width mismatches or `word` is out of range.
    pub fn extract_data(&self, row: &Bits, word: usize) -> Bits {
        assert_eq!(row.len(), self.row_cols(), "row width mismatch");
        let mut out = Bits::zeros(self.data_bits);
        for bit in 0..self.data_bits {
            if row.get(self.data_col(word, bit)) {
                out.set(bit, true);
            }
        }
        out
    }

    /// Extracts the check word `word` from a physical row.
    ///
    /// # Panics
    ///
    /// Panics if the row width mismatches or `word` is out of range.
    pub fn extract_check(&self, row: &Bits, word: usize) -> Bits {
        assert_eq!(row.len(), self.row_cols(), "row width mismatch");
        let mut out = Bits::zeros(self.check_bits);
        for bit in 0..self.check_bits {
            if row.get(self.check_col(word, bit)) {
                out.set(bit, true);
            }
        }
        out
    }

    /// Writes `data` and `check` for `word` into a physical row in place.
    ///
    /// # Panics
    ///
    /// Panics on any width mismatch.
    pub fn place_word(&self, row: &mut Bits, word: usize, data: &Bits, check: &Bits) {
        assert_eq!(row.len(), self.row_cols(), "row width mismatch");
        assert_eq!(data.len(), self.data_bits, "data width mismatch");
        assert_eq!(check.len(), self.check_bits, "check width mismatch");
        for bit in 0..self.data_bits {
            row.set(self.data_col(word, bit), data.get(bit));
        }
        for bit in 0..self.check_bits {
            row.set(self.check_col(word, bit), check.get(bit));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_bijective() {
        let layout = RowLayout::new(64, 8, 4);
        let mut seen = vec![false; layout.row_cols()];
        for w in 0..4 {
            for b in 0..64 {
                let c = layout.data_col(w, b);
                assert!(!seen[c], "column {c} double-mapped");
                seen[c] = true;
                assert_eq!(layout.col_to_word_bit(c), (w, b));
            }
            for b in 0..8 {
                let c = layout.check_col(w, b);
                assert!(!seen[c], "column {c} double-mapped");
                seen[c] = true;
                assert_eq!(layout.col_to_word_bit(c), (w, 64 + b));
            }
        }
        assert!(seen.iter().all(|&s| s), "unmapped columns remain");
    }

    #[test]
    fn contiguous_burst_spreads_across_words() {
        // A burst of `interleave` adjacent data columns hits each word once.
        let layout = RowLayout::new(64, 8, 4);
        let words: Vec<usize> = (0..4).map(|c| layout.col_to_word_bit(c).0).collect();
        assert_eq!(words, vec![0, 1, 2, 3]);
        // A 32-column burst hits each word in 8 contiguous logical bits.
        for w in 0..4 {
            let bits: Vec<usize> = (0..32)
                .filter(|&c| layout.col_to_word_bit(c).0 == w)
                .map(|c| layout.col_to_word_bit(c).1)
                .collect();
            assert_eq!(bits, (0..8).collect::<Vec<_>>(), "word {w}");
        }
    }

    #[test]
    fn place_extract_roundtrip() {
        let layout = RowLayout::new(16, 5, 2);
        let mut row = Bits::zeros(layout.row_cols());
        let d0 = Bits::from_u64(0xBEEF, 16);
        let c0 = Bits::from_u64(0b10101, 5);
        let d1 = Bits::from_u64(0x1234, 16);
        let c1 = Bits::from_u64(0b01010, 5);
        layout.place_word(&mut row, 0, &d0, &c0);
        layout.place_word(&mut row, 1, &d1, &c1);
        assert_eq!(layout.extract_data(&row, 0), d0);
        assert_eq!(layout.extract_check(&row, 0), c0);
        assert_eq!(layout.extract_data(&row, 1), d1);
        assert_eq!(layout.extract_check(&row, 1), c1);
    }

    #[test]
    fn no_interleave_is_identity_for_data() {
        let layout = RowLayout::new(8, 3, 1);
        for b in 0..8 {
            assert_eq!(layout.data_col(0, b), b);
        }
        for b in 0..3 {
            assert_eq!(layout.check_col(0, b), 8 + b);
        }
    }

    #[test]
    fn zero_check_bits_allowed() {
        let layout = RowLayout::new(8, 0, 2);
        assert_eq!(layout.row_cols(), 16);
        let row = Bits::zeros(16);
        assert_eq!(layout.extract_check(&row, 0).len(), 0);
    }
}
