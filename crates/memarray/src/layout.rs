//! Physical row layout: how logical (word, bit) coordinates map onto
//! physical columns under bit interleaving.
//!
//! With `d`-way interleaving, `d` complete codewords share one physical
//! row and their bits are interleaved bit-by-bit (`A1 B1 C1 D1 A2 B2 ...`),
//! so a physically contiguous error burst of `d * n` columns touches at
//! most `n` contiguous logical bits of each codeword.

use ecc::Bits;

/// Low `n` bits set (`n <= 64`).
#[inline]
pub(crate) const fn low_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Packs the bits of `x` at positions `0, 2, 4, ...` down to `0..32`
/// (Morton-style compress).
#[inline]
fn gather2(mut x: u64) -> u64 {
    x &= 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x
}

/// Packs the bits of `x` at positions `0, 4, 8, ...` down to `0..16`.
#[inline]
fn gather4(mut x: u64) -> u64 {
    x &= 0x1111_1111_1111_1111;
    x = (x | (x >> 3)) & 0x0303_0303_0303_0303;
    x = (x | (x >> 6)) & 0x000F_000F_000F_000F;
    x = (x | (x >> 12)) & 0x0000_00FF_0000_00FF;
    x = (x | (x >> 24)) & 0x0000_0000_0000_FFFF;
    x
}

/// Packs the bits of `x` at positions `0, 8, 16, ...` down to `0..8`.
#[inline]
fn gather8(mut x: u64) -> u64 {
    x &= 0x0101_0101_0101_0101;
    x = (x | (x >> 7)) & 0x0003_0003_0003_0003;
    x = (x | (x >> 14)) & 0x0000_000F_0000_000F;
    x = (x | (x >> 28)) & 0x0000_0000_0000_00FF;
    x
}

/// Spreads the low 32 bits of `x` to positions `0, 2, 4, ...` (inverse of
/// [`gather2`]).
#[inline]
fn scatter2(mut x: u64) -> u64 {
    x &= 0x0000_0000_FFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Spreads the low 16 bits of `x` to positions `0, 4, 8, ...`.
#[inline]
fn scatter4(mut x: u64) -> u64 {
    x &= 0x0000_0000_0000_FFFF;
    x = (x | (x << 24)) & 0x0000_00FF_0000_00FF;
    x = (x | (x << 12)) & 0x000F_000F_000F_000F;
    x = (x | (x << 6)) & 0x0303_0303_0303_0303;
    x = (x | (x << 3)) & 0x1111_1111_1111_1111;
    x
}

/// Spreads the low 8 bits of `x` to positions `0, 8, 16, ...`.
#[inline]
fn scatter8(mut x: u64) -> u64 {
    x &= 0x0000_0000_0000_00FF;
    x = (x | (x << 28)) & 0x0000_000F_0000_000F;
    x = (x | (x << 14)) & 0x0003_0003_0003_0003;
    x = (x | (x << 7)) & 0x0101_0101_0101_0101;
    x
}

/// Whether `stride` has a limb-level gather/scatter kernel. Strides that
/// don't (non-powers of two, or beyond 8) take the per-bit loops.
#[inline]
fn fast_stride(stride: usize) -> bool {
    matches!(stride, 1 | 2 | 4 | 8)
}

#[inline]
fn gather(x: u64, stride: usize) -> u64 {
    match stride {
        1 => x,
        2 => gather2(x),
        4 => gather4(x),
        _ => gather8(x),
    }
}

#[inline]
fn scatter(x: u64, stride: usize) -> u64 {
    match stride {
        1 => x,
        2 => scatter2(x),
        4 => scatter4(x),
        _ => scatter8(x),
    }
}

/// Gathers `count` bits (`count <= 64`) spaced `stride` columns apart
/// starting at `start_col`, limb-at-a-time: each source limb contributes
/// `64 / stride` word bits through one compress kernel instead of a
/// per-bit loop. `stride` must satisfy [`fast_stride`] and divide 64.
#[inline]
fn gather_span(limbs: &[u64], start_col: usize, stride: usize, count: usize) -> u64 {
    let phase = start_col % stride;
    let bpl = 64 / stride;
    let mut b = start_col / 64;
    let mut skip = (start_col % 64) / stride;
    let mut out = 0u64;
    let mut produced = 0usize;
    while produced < count {
        let chunk = gather(limbs[b] >> phase, stride) >> skip;
        out |= chunk << produced;
        produced += bpl - skip;
        skip = 0;
        b += 1;
    }
    out & low_mask(count)
}

/// Scatters the low `count` bits of `value` to columns `start_col,
/// start_col + stride, ...`, limb-at-a-time (inverse of
/// [`gather_span`]); other columns keep their contents.
#[inline]
fn scatter_span(row: &mut Bits, start_col: usize, stride: usize, count: usize, value: u64) {
    let phase = start_col % stride;
    let bpl = 64 / stride;
    let mut b = start_col / 64;
    let mut skip = (start_col % 64) / stride;
    let value = value & low_mask(count);
    let mut consumed = 0usize;
    while consumed < count {
        let take = (bpl - skip).min(count - consumed);
        let chunk = (value >> consumed) & low_mask(take);
        let spread = scatter(chunk << skip, stride) << phase;
        let col_mask = scatter(low_mask(take) << skip, stride) << phase;
        let cur = row.as_limbs()[b];
        row.set_limb(b, (cur & !col_mask) | spread);
        consumed += take;
        skip = 0;
        b += 1;
    }
}

/// Mapping between logical codewords and the physical columns of a row.
///
/// A row holds `interleave` codewords of `data_bits + check_bits` bits
/// each. Data bits occupy the left region of the row, check bits the right
/// region; both regions are bit-interleaved across the words.
///
/// # Examples
///
/// ```
/// use memarray::RowLayout;
///
/// // Four (72,64) codewords share a 288-column row.
/// let layout = RowLayout::new(64, 8, 4);
/// assert_eq!(layout.row_cols(), 288);
/// assert_eq!(layout.data_col(0, 0), 0);
/// assert_eq!(layout.data_col(1, 0), 1);  // next word, same bit
/// assert_eq!(layout.data_col(0, 1), 4);  // same word, next bit
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowLayout {
    data_bits: usize,
    check_bits: usize,
    interleave: usize,
}

impl RowLayout {
    /// Creates a layout for `interleave` codewords of `data_bits` data and
    /// `check_bits` check bits.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero (`check_bits` may be zero only for
    /// unprotected arrays).
    pub fn new(data_bits: usize, check_bits: usize, interleave: usize) -> Self {
        assert!(data_bits > 0, "layout needs data bits");
        assert!(interleave > 0, "interleave degree must be >= 1");
        RowLayout {
            data_bits,
            check_bits,
            interleave,
        }
    }

    /// Data bits per word.
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// Check bits per word.
    pub fn check_bits(&self) -> usize {
        self.check_bits
    }

    /// Interleave degree (words per row).
    pub fn interleave(&self) -> usize {
        self.interleave
    }

    /// Total physical columns per row.
    pub fn row_cols(&self) -> usize {
        (self.data_bits + self.check_bits) * self.interleave
    }

    /// Physical column of data bit `bit` of word `word`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn data_col(&self, word: usize, bit: usize) -> usize {
        assert!(word < self.interleave, "word {word} out of range");
        assert!(bit < self.data_bits, "data bit {bit} out of range");
        bit * self.interleave + word
    }

    /// Physical column of check bit `bit` of word `word`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn check_col(&self, word: usize, bit: usize) -> usize {
        assert!(word < self.interleave, "word {word} out of range");
        assert!(bit < self.check_bits, "check bit {bit} out of range");
        self.data_bits * self.interleave + bit * self.interleave + word
    }

    /// Inverse map: which (word, logical codeword bit) lives at physical
    /// column `col`. Codeword bit indices follow the [`ecc::Code`]
    /// convention: `0..data_bits` data, then check bits.
    ///
    /// # Panics
    ///
    /// Panics if `col >= row_cols()`.
    pub fn col_to_word_bit(&self, col: usize) -> (usize, usize) {
        assert!(col < self.row_cols(), "column {col} out of range");
        let data_region = self.data_bits * self.interleave;
        if col < data_region {
            (col % self.interleave, col / self.interleave)
        } else {
            let c = col - data_region;
            (c % self.interleave, self.data_bits + c / self.interleave)
        }
    }

    /// Extracts the data word `word` from a physical row.
    ///
    /// # Panics
    ///
    /// Panics if the row width mismatches or `word` is out of range.
    pub fn extract_data(&self, row: &Bits, word: usize) -> Bits {
        let mut out = Bits::zeros(self.data_bits);
        self.extract_data_into(row, word, &mut out);
        out
    }

    /// Extracts the data word `word` from a physical row into an existing
    /// buffer — the scratch-buffer variant of [`RowLayout::extract_data`]
    /// that never touches the allocator.
    ///
    /// # Panics
    ///
    /// Panics if the row width mismatches, `word` is out of range, or
    /// `out.len() != data_bits`.
    pub fn extract_data_into(&self, row: &Bits, word: usize, out: &mut Bits) {
        assert_eq!(row.len(), self.row_cols(), "row width mismatch");
        assert_eq!(out.len(), self.data_bits, "data width mismatch");
        assert!(word < self.interleave, "word {word} out of range");
        let limbs = row.as_limbs();
        if fast_stride(self.interleave) {
            // Limb-at-a-time: each 64-bit window of the data word is one
            // strided gather.
            let mut off = 0;
            let mut i = 0;
            while off < self.data_bits {
                let count = 64.min(self.data_bits - off);
                out.set_limb(
                    i,
                    gather_span(limbs, off * self.interleave + word, self.interleave, count),
                );
                off += count;
                i += 1;
            }
            return;
        }
        out.clear();
        for bit in 0..self.data_bits {
            let col = bit * self.interleave + word;
            if (limbs[col / 64] >> (col % 64)) & 1 == 1 {
                out.set(bit, true);
            }
        }
    }

    /// Extracts up to 64 contiguous data bits (`bit_offset..bit_offset +
    /// width`) of word `word` straight from the row limbs into a `u64`,
    /// with no intermediate [`Bits`]. This is the read half of the u64
    /// fast lane: a 64-bit cache word moves between the interleaved row
    /// and the caller in one strided gather.
    ///
    /// # Panics
    ///
    /// Panics if the row width mismatches or the bit range falls outside
    /// the word's data bits (`width` must be `1..=64`).
    pub fn extract_data_u64(
        &self,
        row: &Bits,
        word: usize,
        bit_offset: usize,
        width: usize,
    ) -> u64 {
        assert_eq!(row.len(), self.row_cols(), "row width mismatch");
        self.extract_data_u64_from_limbs(row.as_limbs(), word, bit_offset, width)
    }

    /// The limb-slice core of [`RowLayout::extract_data_u64`]: extracts
    /// the data window of word `word` from a raw limb snapshot of one
    /// physical row. The slice must hold the full row
    /// (`row_cols().div_ceil(64)` limbs); extra limbs and nonzero bits
    /// beyond `row_cols()` are ignored. Exists so a caller that only has
    /// a stack copy of the row limbs — the optimistic read probe, which
    /// must not materialize a `Bits` — can extract without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the bit range falls outside the word's data bits
    /// (`width` must be `1..=64`) or the slice is shorter than the row.
    pub fn extract_data_u64_from_limbs(
        &self,
        limbs: &[u64],
        word: usize,
        bit_offset: usize,
        width: usize,
    ) -> u64 {
        assert!(word < self.interleave, "word {word} out of range");
        assert!(
            (1..=64).contains(&width) && bit_offset + width <= self.data_bits,
            "u64 window {bit_offset}+{width} outside {} data bits",
            self.data_bits
        );
        assert!(
            limbs.len() >= self.row_cols().div_ceil(64),
            "limb snapshot shorter than one row"
        );
        if fast_stride(self.interleave) {
            return gather_span(
                limbs,
                bit_offset * self.interleave + word,
                self.interleave,
                width,
            );
        }
        let mut out = 0u64;
        let mut col = bit_offset * self.interleave + word;
        for bit in 0..width {
            out |= ((limbs[col / 64] >> (col % 64)) & 1) << bit;
            col += self.interleave;
        }
        out
    }

    /// Extracts the check word of `word` straight from the row limbs into
    /// a `u64` (valid for codes with at most 64 check bits).
    ///
    /// # Panics
    ///
    /// Panics if the row width mismatches, `word` is out of range, or the
    /// code stores more than 64 check bits.
    pub fn extract_check_u64(&self, row: &Bits, word: usize) -> u64 {
        assert_eq!(row.len(), self.row_cols(), "row width mismatch");
        assert!(word < self.interleave, "word {word} out of range");
        assert!(self.check_bits <= 64, "check word wider than 64 bits");
        if self.check_bits == 0 {
            return 0;
        }
        let limbs = row.as_limbs();
        let base = self.data_bits * self.interleave;
        if fast_stride(self.interleave) {
            return gather_span(limbs, base + word, self.interleave, self.check_bits);
        }
        let mut out = 0u64;
        let mut col = base + word;
        for bit in 0..self.check_bits {
            out |= ((limbs[col / 64] >> (col % 64)) & 1) << bit;
            col += self.interleave;
        }
        out
    }

    /// Writes `width` data bits (`value`, at `bit_offset`) and the full
    /// check word (`check`) of `word` into a physical row, straight from
    /// `u64`s with no intermediate [`Bits`]. Columns of the word outside
    /// the addressed window keep their contents, so placing an XOR delta
    /// into a cleared scratch row builds exactly the row-wide delta of a
    /// sub-word update.
    ///
    /// # Panics
    ///
    /// Panics under the same range rules as [`RowLayout::extract_data_u64`]
    /// and [`RowLayout::extract_check_u64`].
    pub fn place_word_u64(
        &self,
        row: &mut Bits,
        word: usize,
        bit_offset: usize,
        value: u64,
        width: usize,
        check: u64,
    ) {
        self.place_data_u64(row, word, bit_offset, value, width);
        self.place_check_u64(row, word, check);
    }

    /// Writes only the `width`-bit data window of `word` (see
    /// [`RowLayout::place_word_u64`]).
    ///
    /// # Panics
    ///
    /// Panics under the same range rules as [`RowLayout::extract_data_u64`].
    pub fn place_data_u64(
        &self,
        row: &mut Bits,
        word: usize,
        bit_offset: usize,
        value: u64,
        width: usize,
    ) {
        assert_eq!(row.len(), self.row_cols(), "row width mismatch");
        assert!(word < self.interleave, "word {word} out of range");
        assert!(
            (1..=64).contains(&width) && bit_offset + width <= self.data_bits,
            "u64 window {bit_offset}+{width} outside {} data bits",
            self.data_bits
        );
        if fast_stride(self.interleave) {
            scatter_span(
                row,
                bit_offset * self.interleave + word,
                self.interleave,
                width,
                value,
            );
            return;
        }
        let value = value & low_mask(width);
        for bit in 0..width {
            let col = (bit_offset + bit) * self.interleave + word;
            row.set(col, (value >> bit) & 1 == 1);
        }
    }

    /// Writes only the check word of `word` (see
    /// [`RowLayout::place_word_u64`]).
    ///
    /// # Panics
    ///
    /// Panics under the same range rules as [`RowLayout::extract_check_u64`].
    pub fn place_check_u64(&self, row: &mut Bits, word: usize, check: u64) {
        assert_eq!(row.len(), self.row_cols(), "row width mismatch");
        assert!(word < self.interleave, "word {word} out of range");
        assert!(self.check_bits <= 64, "check word wider than 64 bits");
        if self.check_bits == 0 {
            return;
        }
        let base = self.data_bits * self.interleave;
        if fast_stride(self.interleave) {
            scatter_span(row, base + word, self.interleave, self.check_bits, check);
            return;
        }
        for bit in 0..self.check_bits {
            let col = base + bit * self.interleave + word;
            row.set(col, (check >> bit) & 1 == 1);
        }
    }

    /// Extracts the check word `word` from a physical row.
    ///
    /// # Panics
    ///
    /// Panics if the row width mismatches or `word` is out of range.
    pub fn extract_check(&self, row: &Bits, word: usize) -> Bits {
        assert_eq!(row.len(), self.row_cols(), "row width mismatch");
        let mut out = Bits::zeros(self.check_bits);
        for bit in 0..self.check_bits {
            if row.get(self.check_col(word, bit)) {
                out.set(bit, true);
            }
        }
        out
    }

    /// Writes `data` and `check` for `word` into a physical row in place.
    ///
    /// # Panics
    ///
    /// Panics on any width mismatch.
    pub fn place_word(&self, row: &mut Bits, word: usize, data: &Bits, check: &Bits) {
        assert_eq!(row.len(), self.row_cols(), "row width mismatch");
        assert_eq!(data.len(), self.data_bits, "data width mismatch");
        assert_eq!(check.len(), self.check_bits, "check width mismatch");
        for bit in 0..self.data_bits {
            row.set(self.data_col(word, bit), data.get(bit));
        }
        for bit in 0..self.check_bits {
            row.set(self.check_col(word, bit), check.get(bit));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_bijective() {
        let layout = RowLayout::new(64, 8, 4);
        let mut seen = vec![false; layout.row_cols()];
        for w in 0..4 {
            for b in 0..64 {
                let c = layout.data_col(w, b);
                assert!(!seen[c], "column {c} double-mapped");
                seen[c] = true;
                assert_eq!(layout.col_to_word_bit(c), (w, b));
            }
            for b in 0..8 {
                let c = layout.check_col(w, b);
                assert!(!seen[c], "column {c} double-mapped");
                seen[c] = true;
                assert_eq!(layout.col_to_word_bit(c), (w, 64 + b));
            }
        }
        assert!(seen.iter().all(|&s| s), "unmapped columns remain");
    }

    #[test]
    fn contiguous_burst_spreads_across_words() {
        // A burst of `interleave` adjacent data columns hits each word once.
        let layout = RowLayout::new(64, 8, 4);
        let words: Vec<usize> = (0..4).map(|c| layout.col_to_word_bit(c).0).collect();
        assert_eq!(words, vec![0, 1, 2, 3]);
        // A 32-column burst hits each word in 8 contiguous logical bits.
        for w in 0..4 {
            let bits: Vec<usize> = (0..32)
                .filter(|&c| layout.col_to_word_bit(c).0 == w)
                .map(|c| layout.col_to_word_bit(c).1)
                .collect();
            assert_eq!(bits, (0..8).collect::<Vec<_>>(), "word {w}");
        }
    }

    #[test]
    fn place_extract_roundtrip() {
        let layout = RowLayout::new(16, 5, 2);
        let mut row = Bits::zeros(layout.row_cols());
        let d0 = Bits::from_u64(0xBEEF, 16);
        let c0 = Bits::from_u64(0b10101, 5);
        let d1 = Bits::from_u64(0x1234, 16);
        let c1 = Bits::from_u64(0b01010, 5);
        layout.place_word(&mut row, 0, &d0, &c0);
        layout.place_word(&mut row, 1, &d1, &c1);
        assert_eq!(layout.extract_data(&row, 0), d0);
        assert_eq!(layout.extract_check(&row, 0), c0);
        assert_eq!(layout.extract_data(&row, 1), d1);
        assert_eq!(layout.extract_check(&row, 1), c1);
    }

    #[test]
    fn no_interleave_is_identity_for_data() {
        let layout = RowLayout::new(8, 3, 1);
        for b in 0..8 {
            assert_eq!(layout.data_col(0, b), b);
        }
        for b in 0..3 {
            assert_eq!(layout.check_col(0, b), 8 + b);
        }
    }

    #[test]
    fn u64_lanes_match_bits_paths() {
        let layout = RowLayout::new(64, 8, 4);
        let mut row = Bits::zeros(layout.row_cols());
        let data = Bits::from_u64(0xDEAD_BEEF_1234_5678, 64);
        let check = Bits::from_u64(0xA5, 8);
        layout.place_word(&mut row, 3, &data, &check);
        assert_eq!(layout.extract_data_u64(&row, 3, 0, 64), data.to_u64());
        assert_eq!(layout.extract_check_u64(&row, 3), check.to_u64());
        // Sub-word windows match slices of the Bits extraction.
        for (off, width) in [(0usize, 16usize), (16, 32), (48, 16), (5, 59)] {
            assert_eq!(
                layout.extract_data_u64(&row, 3, off, width),
                data.slice(off, width).to_u64(),
                "window {off}+{width}"
            );
        }
        // Untouched words read back zero.
        assert_eq!(layout.extract_data_u64(&row, 0, 0, 64), 0);
        // extract_data_into matches extract_data without allocating anew.
        let mut scratch = Bits::ones(64);
        layout.extract_data_into(&row, 3, &mut scratch);
        assert_eq!(scratch, data);
    }

    #[test]
    fn gather_scatter_kernels_match_per_bit_definition() {
        // Every interleave degree with a limb kernel (1/2/4/8) plus one
        // without (3): extraction and placement must match the per-bit
        // column map exactly, across unaligned windows.
        let mut state = 0x0123_4567_89AB_CDEFu64;
        for il in [1usize, 2, 4, 8, 3] {
            let layout = RowLayout::new(64, 8, il);
            let mut row = Bits::zeros(layout.row_cols());
            for w in 0..il {
                state = state
                    .wrapping_mul(0x5851_F42D_4C95_7F2D)
                    .wrapping_add(0x1405_7B7E_F767_814F);
                layout.place_word(
                    &mut row,
                    w,
                    &Bits::from_u64(state, 64),
                    &Bits::from_u64(state >> 32, 8),
                );
            }
            for w in 0..il {
                for (off, width) in [(0usize, 64usize), (0, 1), (7, 13), (31, 33), (63, 1)] {
                    let mut expect = 0u64;
                    for b in 0..width {
                        if row.get(layout.data_col(w, off + b)) {
                            expect |= 1 << b;
                        }
                    }
                    assert_eq!(
                        layout.extract_data_u64(&row, w, off, width),
                        expect,
                        "il={il} w={w} window {off}+{width}"
                    );
                }
                let mut expect = 0u64;
                for c in 0..8 {
                    if row.get(layout.check_col(w, c)) {
                        expect |= 1 << c;
                    }
                }
                assert_eq!(layout.extract_check_u64(&row, w), expect, "il={il} w={w}");
                // Scatter roundtrip: place into a fresh row, re-extract.
                let mut fresh = Bits::ones(layout.row_cols());
                let data = layout.extract_data_u64(&row, w, 0, 64);
                layout.place_word_u64(&mut fresh, w, 0, data, 64, expect);
                assert_eq!(layout.extract_data_u64(&fresh, w, 0, 64), data);
                assert_eq!(layout.extract_check_u64(&fresh, w), expect);
                // Untouched words of `fresh` keep their all-ones content.
                for other in 0..il {
                    if other != w {
                        assert_eq!(
                            layout.extract_data_u64(&fresh, other, 0, 64),
                            u64::MAX,
                            "il={il} w={w} other={other}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn place_word_u64_matches_place_word() {
        let layout = RowLayout::new(64, 8, 4);
        let mut via_bits = Bits::zeros(layout.row_cols());
        let mut via_u64 = Bits::zeros(layout.row_cols());
        let data = 0x0F0F_1234_ABCD_9876u64;
        let check = 0x3Cu64;
        layout.place_word(
            &mut via_bits,
            1,
            &Bits::from_u64(data, 64),
            &Bits::from_u64(check, 8),
        );
        layout.place_word_u64(&mut via_u64, 1, 0, data, 64, check);
        assert_eq!(via_bits, via_u64);
        // Narrow windows only touch their own columns.
        let mut row = Bits::ones(layout.row_cols());
        layout.place_word_u64(&mut row, 2, 8, 0, 16, 0);
        for bit in 0..64 {
            let expect = !(8..24).contains(&bit);
            assert_eq!(row.get(layout.data_col(2, bit)), expect, "bit {bit}");
        }
        for bit in 0..8 {
            assert!(!row.get(layout.check_col(2, bit)), "check bit {bit}");
        }
        assert!(row.get(layout.data_col(1, 10)), "other words untouched");
    }

    #[test]
    fn zero_check_bits_allowed() {
        let layout = RowLayout::new(8, 0, 2);
        assert_eq!(layout.row_cols(), 16);
        let row = Bits::zeros(16);
        assert_eq!(layout.extract_check(&row, 0).len(), 0);
    }
}
