//! Error-coverage measurement: which clustered-error footprints each
//! protection scheme corrects.
//!
//! Figure 3 of the paper contrasts three protections of a 256x256-bit
//! array: conventional SECDED+Intv4 (corrects 4-bit row bursts),
//! conventional OECNED+Intv4 (32-bit row bursts), and 2D coding with
//! EDC8+Intv4 horizontal plus EDC32 vertical (any cluster up to 32x32).
//! This module provides a *conventional* (horizontal-only) bank model and
//! exhaustive/Monte-Carlo coverage sweeps over cluster footprints for both
//! conventional and 2D banks.

use crate::BitGrid;
use crate::{ErrorShape, FaultKind, FaultMap, Injector, RowLayout, TwoDArray, TwoDConfig};
use ecc::{Bits, Code, CodeKind, Decoded};
use rand::Rng;

/// A bank protected only by a horizontal per-word code (no vertical
/// parity) — the conventional baseline.
pub struct ConventionalBank {
    grid: BitGrid,
    layout: RowLayout,
    code: Box<dyn Code + Send + Sync>,
    faults: FaultMap,
    reference: Vec<Vec<Bits>>,
}

impl ConventionalBank {
    /// Creates a zero-filled conventional bank.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero.
    pub fn new(rows: usize, horizontal: CodeKind, data_bits: usize, interleave: usize) -> Self {
        let code = horizontal.build(data_bits);
        let layout = RowLayout::new(data_bits, code.check_bits(), interleave);
        let grid = BitGrid::new(rows, layout.row_cols());
        let reference = vec![vec![Bits::zeros(data_bits); interleave]; rows];
        ConventionalBank {
            grid,
            layout,
            code,
            faults: FaultMap::new(),
            reference,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.grid.rows()
    }

    /// Physical columns.
    pub fn cols(&self) -> usize {
        self.grid.cols()
    }

    /// Fills every word with RNG data (stored encoded).
    pub fn fill_random<R: Rng>(&mut self, rng: &mut R) {
        for r in 0..self.grid.rows() {
            let mut row = Bits::zeros(self.layout.row_cols());
            for w in 0..self.layout.interleave() {
                let limbs: Vec<u64> = (0..self.layout.data_bits().div_ceil(64))
                    .map(|_| rng.gen())
                    .collect();
                let data = Bits::from_limbs(&limbs, self.layout.data_bits());
                let check = self.code.encode(&data);
                self.layout.place_word(&mut row, w, &data, &check);
                self.reference[r][w] = data;
            }
            self.grid.set_row(r, &row);
        }
    }

    /// Injects a transient error.
    pub fn inject(&mut self, shape: ErrorShape) {
        Injector::new(&mut self.grid, &mut self.faults).inject(shape, FaultKind::Transient);
    }

    /// Decodes every word and classifies the bank state after an
    /// injection.
    pub fn check(&self) -> CoverageOutcome {
        let mut outcome = CoverageOutcome::Corrected;
        for r in 0..self.grid.rows() {
            let mut row = self.grid.row(r);
            self.faults.overlay_row(r, &mut row);
            for w in 0..self.layout.interleave() {
                let data = self.layout.extract_data(&row, w);
                let check = self.layout.extract_check(&row, w);
                match self.code.decode(&data, &check) {
                    Decoded::Clean => {
                        if data != self.reference[r][w] {
                            return CoverageOutcome::SilentCorruption;
                        }
                    }
                    Decoded::Corrected { data: fixed, .. } => {
                        if fixed != self.reference[r][w] {
                            return CoverageOutcome::SilentCorruption;
                        }
                    }
                    Decoded::Detected => {
                        outcome = CoverageOutcome::DetectedUncorrectable;
                    }
                }
            }
        }
        outcome
    }
}

impl std::fmt::Debug for ConventionalBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ConventionalBank({}x{}, code={})",
            self.grid.rows(),
            self.grid.cols(),
            self.code.name()
        )
    }
}

/// Result of decoding an entire bank after an injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoverageOutcome {
    /// Every word reads back correctly (clean or corrected).
    Corrected,
    /// At least one word flagged an uncorrectable error (data loss, but
    /// detected).
    DetectedUncorrectable,
    /// At least one word decoded to the *wrong* value without detection
    /// (miscorrection or undetected corruption).
    SilentCorruption,
}

/// Coverage of a 2D-protected bank against one error shape: fills with
/// random data, injects, recovers, and verifies every word.
pub fn twod_covers<R: Rng>(config: TwoDConfig, shape: ErrorShape, rng: &mut R) -> CoverageOutcome {
    let mut bank = TwoDArray::new(config);
    let mut reference =
        vec![vec![Bits::zeros(config.data_bits); bank.words_per_row()]; bank.rows()];
    for r in 0..bank.rows() {
        for w in 0..bank.words_per_row() {
            let limbs: Vec<u64> = (0..config.data_bits.div_ceil(64))
                .map(|_| rng.gen())
                .collect();
            let data = Bits::from_limbs(&limbs, config.data_bits);
            bank.write_word(r, w, &data);
            reference[r][w] = data;
        }
    }
    bank.inject(shape);
    match bank.recover() {
        Err(_) => CoverageOutcome::DetectedUncorrectable,
        Ok(_) => {
            for r in 0..bank.rows() {
                for w in 0..bank.words_per_row() {
                    match bank.read_word(r, w) {
                        Ok(out) => {
                            if out.into_data() != reference[r][w] {
                                return CoverageOutcome::SilentCorruption;
                            }
                        }
                        Err(_) => return CoverageOutcome::DetectedUncorrectable,
                    }
                }
            }
            CoverageOutcome::Corrected
        }
    }
}

/// Coverage of a conventional bank against one error shape.
pub fn conventional_covers<R: Rng>(
    rows: usize,
    horizontal: CodeKind,
    data_bits: usize,
    interleave: usize,
    shape: ErrorShape,
    rng: &mut R,
) -> CoverageOutcome {
    let mut bank = ConventionalBank::new(rows, horizontal, data_bits, interleave);
    bank.fill_random(rng);
    bank.inject(shape);
    bank.check()
}

/// Measured fraction of random cluster placements of a given footprint
/// that a scheme corrects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoveragePoint {
    /// Cluster height in rows.
    pub height: usize,
    /// Cluster width in physical columns.
    pub width: usize,
    /// Fraction of trials fully corrected.
    pub corrected: f64,
    /// Fraction flagged uncorrectable.
    pub detected: f64,
    /// Fraction silently corrupted.
    pub silent: f64,
}

/// Measures the outcome distribution for *scattered* random bit flips —
/// outside the clustered-error model the scheme targets. Interleaved
/// parity can miss patterns whose flips pairwise cancel within a parity
/// group, so scattered multi-bit errors carry a small silent-corruption
/// probability that clustered errors do not; this function quantifies it.
pub fn scattered_flip_outcomes<R: Rng>(
    config: TwoDConfig,
    flips: usize,
    trials: usize,
    rng: &mut R,
) -> ScatterStats {
    let mut stats = ScatterStats::default();
    for _ in 0..trials {
        let mut bank = TwoDArray::new(config);
        let mut reference =
            vec![vec![Bits::zeros(config.data_bits); bank.words_per_row()]; bank.rows()];
        for r in 0..bank.rows() {
            for w in 0..bank.words_per_row() {
                let limbs: Vec<u64> = (0..config.data_bits.div_ceil(64))
                    .map(|_| rng.gen())
                    .collect();
                let data = Bits::from_limbs(&limbs, config.data_bits);
                bank.write_word(r, w, &data);
                reference[r][w] = data;
            }
        }
        bank.injector().inject_random_flips(rng, flips);
        match verify(&mut bank, &reference) {
            CoverageOutcome::Corrected => stats.corrected += 1,
            CoverageOutcome::DetectedUncorrectable => stats.detected += 1,
            CoverageOutcome::SilentCorruption => stats.silent += 1,
        }
    }
    stats
}

fn verify(bank: &mut TwoDArray, reference: &[Vec<Bits>]) -> CoverageOutcome {
    if bank.recover().is_err() {
        return CoverageOutcome::DetectedUncorrectable;
    }
    for (r, row_ref) in reference.iter().enumerate() {
        for (w, expect) in row_ref.iter().enumerate() {
            match bank.read_word(r, w) {
                Ok(out) => {
                    if out.into_data() != *expect {
                        return CoverageOutcome::SilentCorruption;
                    }
                }
                Err(_) => return CoverageOutcome::DetectedUncorrectable,
            }
        }
    }
    CoverageOutcome::Corrected
}

/// Tally of scattered-error trials.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScatterStats {
    /// Trials fully corrected.
    pub corrected: usize,
    /// Trials flagged uncorrectable (data loss detected).
    pub detected: usize,
    /// Trials with undetected wrong data.
    pub silent: usize,
}

impl ScatterStats {
    /// Fraction of trials ending in silent corruption.
    pub fn silent_fraction(&self) -> f64 {
        let total = self.corrected + self.detected + self.silent;
        if total == 0 {
            0.0
        } else {
            self.silent as f64 / total as f64
        }
    }
}

/// Sweeps cluster footprints over a 2D bank, `trials` random anchor
/// positions each.
pub fn sweep_twod<R: Rng>(
    config: TwoDConfig,
    footprints: &[(usize, usize)],
    trials: usize,
    rng: &mut R,
) -> Vec<CoveragePoint> {
    footprints
        .iter()
        .map(|&(height, width)| {
            let mut tally = [0usize; 3];
            for _ in 0..trials {
                let probe = TwoDArray::new(config);
                let max_r = probe.rows().saturating_sub(height);
                let max_c = probe.cols().saturating_sub(width);
                let shape = ErrorShape::Cluster {
                    row: rng.gen_range(0..=max_r),
                    col: rng.gen_range(0..=max_c),
                    height,
                    width,
                };
                match twod_covers(config, shape, rng) {
                    CoverageOutcome::Corrected => tally[0] += 1,
                    CoverageOutcome::DetectedUncorrectable => tally[1] += 1,
                    CoverageOutcome::SilentCorruption => tally[2] += 1,
                }
            }
            let t = trials as f64;
            CoveragePoint {
                height,
                width,
                corrected: tally[0] as f64 / t,
                detected: tally[1] as f64 / t,
                silent: tally[2] as f64 / t,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn secded_intv4_corrects_4bit_row_burst() {
        // Figure 3(a): 4-way interleaved SECDED covers any 4-bit burst
        // along a row (one bit per word).
        let mut rng = StdRng::seed_from_u64(1);
        for start in [0usize, 17, 100, 200] {
            let outcome = conventional_covers(
                64,
                CodeKind::Secded,
                64,
                4,
                ErrorShape::Cluster {
                    row: 5,
                    col: start,
                    height: 1,
                    width: 4,
                },
                &mut rng,
            );
            assert_eq!(outcome, CoverageOutcome::Corrected, "start={start}");
        }
    }

    #[test]
    fn secded_intv4_detects_but_cannot_correct_wider_bursts() {
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = conventional_covers(
            64,
            CodeKind::Secded,
            64,
            4,
            ErrorShape::Cluster {
                row: 5,
                col: 0,
                height: 1,
                width: 8, // 2 bits per word -> DED territory
            },
            &mut rng,
        );
        assert_eq!(outcome, CoverageOutcome::DetectedUncorrectable);
    }

    #[test]
    fn oecned_intv4_corrects_32bit_row_burst() {
        // Figure 3(b): OECNED+Intv4 corrects 32-bit row bursts (8 bits
        // per word).
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = conventional_covers(
            32,
            CodeKind::Oecned,
            64,
            4,
            ErrorShape::Cluster {
                row: 3,
                col: 11,
                height: 1,
                width: 32,
            },
            &mut rng,
        );
        assert_eq!(outcome, CoverageOutcome::Corrected);
    }

    #[test]
    fn conventional_cannot_correct_row_failure() {
        let mut rng = StdRng::seed_from_u64(4);
        let outcome = conventional_covers(
            32,
            CodeKind::Oecned,
            64,
            4,
            ErrorShape::Row { row: 3 },
            &mut rng,
        );
        assert_ne!(outcome, CoverageOutcome::Corrected);
    }

    #[test]
    fn twod_corrects_row_failure() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = TwoDConfig {
            rows: 64,
            horizontal: CodeKind::Edc(8),
            data_bits: 64,
            interleave: 4,
            vertical_rows: 16,
        };
        let outcome = twod_covers(config, ErrorShape::Row { row: 9 }, &mut rng);
        assert_eq!(outcome, CoverageOutcome::Corrected);
    }

    #[test]
    fn scattered_small_counts_mostly_recoverable() {
        // A handful of scattered flips usually lands at most one per
        // stripe and is recovered; escapes must never be silent for
        // single flips.
        let mut rng = StdRng::seed_from_u64(9);
        let config = TwoDConfig {
            rows: 64,
            horizontal: CodeKind::Edc(8),
            data_bits: 64,
            interleave: 4,
            vertical_rows: 16,
        };
        let single = scattered_flip_outcomes(config, 1, 6, &mut rng);
        assert_eq!(single.corrected, 6, "{single:?}");
        let few = scattered_flip_outcomes(config, 4, 6, &mut rng);
        assert_eq!(few.silent, 0, "{few:?}");
    }

    #[test]
    fn sweep_reports_full_coverage_inside_32x32() {
        let mut rng = StdRng::seed_from_u64(6);
        let config = TwoDConfig {
            rows: 64,
            horizontal: CodeKind::Edc(8),
            data_bits: 64,
            interleave: 4,
            vertical_rows: 16,
        };
        let points = sweep_twod(config, &[(4, 4), (16, 16)], 3, &mut rng);
        for p in points {
            assert_eq!(p.corrected, 1.0, "footprint {}x{}", p.height, p.width);
        }
    }
}
