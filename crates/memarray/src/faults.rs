//! Fault models and the error injector.
//!
//! The paper's threat model spans single-bit soft errors, single-event
//! multi-bit upsets (clusters up to tens of bits on a side), full row and
//! column failures, and manufacture-time or in-field hard (stuck-at)
//! faults. The injector produces all of these against a [`BitGrid`]; hard
//! faults are kept in a [`FaultMap`] overlay so cells keep reading the
//! stuck value even after a recovery rewrite.

use crate::BitGrid;
use rand::Rng;
use std::collections::BTreeMap;

/// Whether an injected fault is transient or permanent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Soft error: the stored value is inverted once.
    Transient,
    /// Hard error: the cell is stuck at a fixed value from now on.
    StuckAt(bool),
}

/// The spatial footprint of an error event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorShape {
    /// One cell.
    Single {
        /// Affected row.
        row: usize,
        /// Affected column.
        col: usize,
    },
    /// An axis-aligned cluster of `height x width` cells anchored at
    /// (`row`, `col`) — the paper's "clustered multi-bit error".
    Cluster {
        /// Top row of the cluster.
        row: usize,
        /// Leftmost column of the cluster.
        col: usize,
        /// Rows covered.
        height: usize,
        /// Columns covered.
        width: usize,
    },
    /// An entire wordline fails.
    Row {
        /// The failing row.
        row: usize,
    },
    /// An entire bitline fails.
    Column {
        /// The failing column.
        col: usize,
    },
}

impl ErrorShape {
    /// Enumerates the affected coordinates, clipped to `rows x cols`.
    pub fn cells(&self, rows: usize, cols: usize) -> Vec<(usize, usize)> {
        match *self {
            ErrorShape::Single { row, col } => {
                if row < rows && col < cols {
                    vec![(row, col)]
                } else {
                    Vec::new()
                }
            }
            ErrorShape::Cluster {
                row,
                col,
                height,
                width,
            } => {
                let mut cells = Vec::new();
                for r in row..(row + height).min(rows) {
                    for c in col..(col + width).min(cols) {
                        cells.push((r, c));
                    }
                }
                cells
            }
            ErrorShape::Row { row } => {
                if row < rows {
                    (0..cols).map(|c| (row, c)).collect()
                } else {
                    Vec::new()
                }
            }
            ErrorShape::Column { col } => {
                if col < cols {
                    (0..rows).map(|r| (r, col)).collect()
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// Bounding-box height and width of the footprint.
    pub fn extent(&self, rows: usize, cols: usize) -> (usize, usize) {
        match *self {
            ErrorShape::Single { .. } => (1, 1),
            ErrorShape::Cluster { height, width, .. } => (height, width),
            ErrorShape::Row { .. } => (1, cols),
            ErrorShape::Column { .. } => (rows, 1),
        }
    }
}

/// Overlay tracking hard-fault (stuck-at) cells.
///
/// Reads through the map return the stuck value regardless of what was
/// written to the underlying grid.
#[derive(Clone, Debug, Default)]
pub struct FaultMap {
    stuck: BTreeMap<(usize, usize), bool>,
}

impl FaultMap {
    /// Creates an empty fault map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a cell stuck at `value`.
    pub fn add_stuck(&mut self, row: usize, col: usize, value: bool) {
        self.stuck.insert((row, col), value);
    }

    /// Removes a stuck cell (e.g. remapped to a spare).
    pub fn clear_stuck(&mut self, row: usize, col: usize) {
        self.stuck.remove(&(row, col));
    }

    /// Whether the cell is stuck.
    pub fn is_stuck(&self, row: usize, col: usize) -> Option<bool> {
        self.stuck.get(&(row, col)).copied()
    }

    /// Number of stuck cells.
    pub fn len(&self) -> usize {
        self.stuck.len()
    }

    /// Whether no cells are stuck.
    pub fn is_empty(&self) -> bool {
        self.stuck.is_empty()
    }

    /// Iterates over stuck cells as `((row, col), value)`.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), bool)> + '_ {
        self.stuck.iter().map(|(&k, &v)| (k, v))
    }

    /// Applies the overlay to a freshly read row: stuck cells override the
    /// stored value.
    pub fn overlay_row(&self, row_idx: usize, row: &mut ecc::Bits) {
        // BTreeMap range query over the row's keyspace.
        for (&(r, c), &v) in self.stuck.range((row_idx, 0)..=(row_idx, usize::MAX)) {
            debug_assert_eq!(r, row_idx);
            if c < row.len() {
                row.set(c, v);
            }
        }
    }
}

/// Report of one injection: which cells actually changed observable state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InjectionReport {
    /// Cells whose observable value flipped.
    pub flipped: Vec<(usize, usize)>,
    /// Cells newly marked stuck (hard faults), flipped or not.
    pub stuck: Vec<(usize, usize)>,
}

impl InjectionReport {
    /// Total observable bit flips.
    pub fn flip_count(&self) -> usize {
        self.flipped.len()
    }
}

/// Injects faults into a grid + fault-map pair.
#[derive(Debug)]
pub struct Injector<'a> {
    grid: &'a mut BitGrid,
    faults: &'a mut FaultMap,
}

impl<'a> Injector<'a> {
    /// Creates an injector borrowing the target grid and fault map.
    pub fn new(grid: &'a mut BitGrid, faults: &'a mut FaultMap) -> Self {
        Injector { grid, faults }
    }

    /// Injects `kind` faults over `shape`. For transient faults every
    /// covered cell is flipped; for stuck-at faults every covered cell is
    /// pinned (the observable value flips only where it differed).
    pub fn inject(&mut self, shape: ErrorShape, kind: FaultKind) -> InjectionReport {
        let mut report = InjectionReport::default();
        for (r, c) in shape.cells(self.grid.rows(), self.grid.cols()) {
            match kind {
                FaultKind::Transient => {
                    // A flip of a cell that is already stuck has no
                    // observable effect.
                    if self.faults.is_stuck(r, c).is_none() {
                        self.grid.flip(r, c);
                        report.flipped.push((r, c));
                    }
                }
                FaultKind::StuckAt(v) => {
                    let before = self
                        .faults
                        .is_stuck(r, c)
                        .unwrap_or_else(|| self.grid.get(r, c));
                    self.faults.add_stuck(r, c, v);
                    report.stuck.push((r, c));
                    if before != v {
                        report.flipped.push((r, c));
                    }
                }
            }
        }
        report
    }

    /// Injects `count` transient single-bit flips at uniformly random
    /// distinct cells.
    pub fn inject_random_flips<R: Rng>(&mut self, rng: &mut R, count: usize) -> InjectionReport {
        let mut report = InjectionReport::default();
        let mut seen = std::collections::HashSet::new();
        let rows = self.grid.rows();
        let cols = self.grid.cols();
        let capacity = rows * cols;
        let count = count.min(capacity);
        while report.flipped.len() < count {
            let r = rng.gen_range(0..rows);
            let c = rng.gen_range(0..cols);
            if !seen.insert((r, c)) {
                continue;
            }
            if self.faults.is_stuck(r, c).is_none() {
                self.grid.flip(r, c);
                report.flipped.push((r, c));
            } else if seen.len() >= capacity {
                break;
            }
        }
        report
    }

    /// Injects a random clustered transient error with footprint at most
    /// `max_height x max_width` (the paper's single-event multi-bit upset
    /// model). Each covered cell flips with probability `density`.
    pub fn inject_random_cluster<R: Rng>(
        &mut self,
        rng: &mut R,
        max_height: usize,
        max_width: usize,
        density: f64,
    ) -> InjectionReport {
        let rows = self.grid.rows();
        let cols = self.grid.cols();
        let height = rng.gen_range(1..=max_height.min(rows));
        let width = rng.gen_range(1..=max_width.min(cols));
        let row = rng.gen_range(0..=rows - height);
        let col = rng.gen_range(0..=cols - width);
        let mut report = InjectionReport::default();
        for r in row..row + height {
            for c in col..col + width {
                if rng.gen_bool(density) && self.faults.is_stuck(r, c).is_none() {
                    self.grid.flip(r, c);
                    report.flipped.push((r, c));
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_flip() {
        let mut g = BitGrid::new(4, 4);
        let mut f = FaultMap::new();
        let report = Injector::new(&mut g, &mut f)
            .inject(ErrorShape::Single { row: 1, col: 2 }, FaultKind::Transient);
        assert_eq!(report.flipped, vec![(1, 2)]);
        assert!(g.get(1, 2));
        assert!(f.is_empty());
    }

    #[test]
    fn cluster_clipped_at_edges() {
        let mut g = BitGrid::new(4, 4);
        let mut f = FaultMap::new();
        let report = Injector::new(&mut g, &mut f).inject(
            ErrorShape::Cluster {
                row: 3,
                col: 3,
                height: 4,
                width: 4,
            },
            FaultKind::Transient,
        );
        assert_eq!(report.flip_count(), 1);
        assert!(g.get(3, 3));
    }

    #[test]
    fn row_and_column_failures() {
        let mut g = BitGrid::new(4, 6);
        let mut f = FaultMap::new();
        Injector::new(&mut g, &mut f).inject(ErrorShape::Row { row: 2 }, FaultKind::Transient);
        assert_eq!(g.count_ones(), 6);
        Injector::new(&mut g, &mut f).inject(ErrorShape::Column { col: 0 }, FaultKind::Transient);
        // column flip inverts (2,0) back off
        assert_eq!(g.count_ones(), 6 - 1 + 3);
    }

    #[test]
    fn stuck_at_overrides_writes() {
        let mut g = BitGrid::new(2, 2);
        let mut f = FaultMap::new();
        Injector::new(&mut g, &mut f).inject(
            ErrorShape::Single { row: 0, col: 0 },
            FaultKind::StuckAt(true),
        );
        assert_eq!(f.is_stuck(0, 0), Some(true));
        // Underlying grid still zero; overlay reports one.
        let mut row = g.row(0);
        f.overlay_row(0, &mut row);
        assert!(row.get(0));
    }

    #[test]
    fn transient_on_stuck_cell_is_masked() {
        let mut g = BitGrid::new(2, 2);
        let mut f = FaultMap::new();
        f.add_stuck(0, 1, false);
        let report = Injector::new(&mut g, &mut f)
            .inject(ErrorShape::Single { row: 0, col: 1 }, FaultKind::Transient);
        assert!(report.flipped.is_empty());
    }

    #[test]
    fn stuck_at_same_value_not_a_flip() {
        let mut g = BitGrid::new(2, 2);
        let mut f = FaultMap::new();
        let report = Injector::new(&mut g, &mut f).inject(
            ErrorShape::Single { row: 0, col: 0 },
            FaultKind::StuckAt(false),
        );
        assert!(report.flipped.is_empty());
        assert_eq!(report.stuck, vec![(0, 0)]);
    }

    #[test]
    fn random_flips_distinct() {
        let mut g = BitGrid::new(16, 16);
        let mut f = FaultMap::new();
        let mut rng = StdRng::seed_from_u64(42);
        let report = Injector::new(&mut g, &mut f).inject_random_flips(&mut rng, 50);
        assert_eq!(report.flip_count(), 50);
        assert_eq!(g.count_ones(), 50);
    }

    #[test]
    fn random_cluster_within_bounds() {
        let mut g = BitGrid::new(64, 64);
        let mut f = FaultMap::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let report = Injector::new(&mut g, &mut f).inject_random_cluster(&mut rng, 8, 8, 1.0);
            for &(r, c) in &report.flipped {
                assert!(r < 64 && c < 64);
            }
            let (h, w) = bounding_box(&report.flipped);
            assert!(h <= 8 && w <= 8);
        }
    }

    fn bounding_box(cells: &[(usize, usize)]) -> (usize, usize) {
        if cells.is_empty() {
            return (0, 0);
        }
        let rmin = cells.iter().map(|c| c.0).min().unwrap();
        let rmax = cells.iter().map(|c| c.0).max().unwrap();
        let cmin = cells.iter().map(|c| c.1).min().unwrap();
        let cmax = cells.iter().map(|c| c.1).max().unwrap();
        (rmax - rmin + 1, cmax - cmin + 1)
    }

    #[test]
    fn shape_extent() {
        assert_eq!(
            ErrorShape::Cluster {
                row: 0,
                col: 0,
                height: 3,
                width: 5
            }
            .extent(10, 10),
            (3, 5)
        );
        assert_eq!(ErrorShape::Row { row: 1 }.extent(10, 20), (1, 20));
        assert_eq!(ErrorShape::Column { col: 1 }.extent(10, 20), (10, 1));
    }
}
