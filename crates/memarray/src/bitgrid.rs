//! A dense two-dimensional bit matrix modelling the storage cells of one
//! SRAM sub-array (data columns plus check columns).

use ecc::Bits;
use std::fmt;

/// A `rows x cols` bit matrix with row-granular access.
///
/// Rows are the physical wordlines; columns are the physical bitlines.
/// Storage is row-major over `u64` limbs, each row padded to a limb
/// boundary so row extraction is cheap.
///
/// # Examples
///
/// ```
/// use memarray::BitGrid;
///
/// let mut g = BitGrid::new(4, 16);
/// g.set(2, 5, true);
/// assert!(g.get(2, 5));
/// assert_eq!(g.row(2).count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitGrid {
    rows: usize,
    cols: usize,
    limbs_per_row: usize,
    data: Vec<u64>,
}

impl BitGrid {
    /// Creates an all-zero grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be nonzero");
        let limbs_per_row = cols.div_ceil(64);
        BitGrid {
            rows,
            cols,
            limbs_per_row,
            data: vec![0; rows * limbs_per_row],
        }
    }

    /// Number of rows (wordlines).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (bitlines).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads the cell at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.check_bounds(row, col);
        let limb = self.data[row * self.limbs_per_row + col / 64];
        (limb >> (col % 64)) & 1 == 1
    }

    /// Writes the cell at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        self.check_bounds(row, col);
        let idx = row * self.limbs_per_row + col / 64;
        let mask = 1u64 << (col % 64);
        if value {
            self.data[idx] |= mask;
        } else {
            self.data[idx] &= !mask;
        }
    }

    /// Inverts the cell at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn flip(&mut self, row: usize, col: usize) {
        self.check_bounds(row, col);
        self.data[row * self.limbs_per_row + col / 64] ^= 1u64 << (col % 64);
    }

    /// Extracts row `row` as a [`Bits`] of width `cols`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row(&self, row: usize) -> Bits {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        let start = row * self.limbs_per_row;
        Bits::from_limbs(&self.data[start..start + self.limbs_per_row], self.cols)
    }

    /// Copies row `row` into an existing [`Bits`] without allocating
    /// (scratch-buffer variant of [`BitGrid::row`] for hot loops).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or `out.len() != cols`.
    #[inline]
    pub fn row_into(&self, row: usize, out: &mut Bits) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        assert_eq!(out.len(), self.cols, "row width mismatch");
        let start = row * self.limbs_per_row;
        out.copy_from_limbs(&self.data[start..start + self.limbs_per_row]);
    }

    /// Overwrites row `row`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or `value.len() != cols`.
    pub fn set_row(&mut self, row: usize, value: &Bits) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        assert_eq!(value.len(), self.cols, "row width mismatch");
        let start = row * self.limbs_per_row;
        self.data[start..start + self.limbs_per_row].copy_from_slice(value.as_limbs());
    }

    /// XORs `mask` into row `row`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or `mask.len() != cols`.
    pub fn xor_row(&mut self, row: usize, mask: &Bits) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        assert_eq!(mask.len(), self.cols, "row width mismatch");
        let start = row * self.limbs_per_row;
        for (dst, src) in self.data[start..start + self.limbs_per_row]
            .iter_mut()
            .zip(mask.as_limbs())
        {
            *dst ^= *src;
        }
    }

    /// Limbs of storage per row (rows are padded to a limb boundary, so
    /// this is `cols().div_ceil(64)`).
    pub fn limbs_per_row(&self) -> usize {
        self.limbs_per_row
    }

    /// Raw limbs of `count` consecutive rows starting at `start`, in
    /// row-major order with a [`BitGrid::limbs_per_row`] stride. Padding
    /// bits beyond `cols` in each row are always zero. This is the
    /// batched-verification view: one borrow covers a whole scrub slice
    /// without copying any row.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the row count.
    #[inline]
    pub(crate) fn row_range_limbs(&self, start: usize, count: usize) -> &[u64] {
        assert!(
            start + count <= self.rows,
            "row range {start}+{count} out of range {}",
            self.rows
        );
        &self.data[start * self.limbs_per_row..(start + count) * self.limbs_per_row]
    }

    /// Raw pointer to the first limb of the row-major storage. Row `r`
    /// starts at offset `r * limbs_per_row()`.
    ///
    /// The backing `Vec<u64>` is sized once at construction and never
    /// reallocated by any `BitGrid` operation (`set_row` / `xor_row` /
    /// `set` all mutate in place), so the pointer stays valid for the
    /// grid's whole lifetime even if the owning struct moves. This is the
    /// stability guarantee the optimistic read probe
    /// ([`crate::ArrayProbe`]) relies on.
    pub(crate) fn limb_base(&self) -> *const u64 {
        self.data.as_ptr()
    }

    /// Total number of set cells.
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(|l| l.count_ones() as usize).sum()
    }

    #[inline]
    fn check_bounds(&self, row: usize, col: usize) {
        assert!(
            row < self.rows && col < self.cols,
            "cell ({row},{col}) out of range ({},{})",
            self.rows,
            self.cols
        );
    }
}

impl fmt::Debug for BitGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BitGrid({}x{}, {} ones)",
            self.rows,
            self.cols,
            self.count_ones()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_cells() {
        let mut g = BitGrid::new(8, 100);
        g.set(0, 0, true);
        g.set(7, 99, true);
        g.set(3, 64, true);
        assert!(g.get(0, 0) && g.get(7, 99) && g.get(3, 64));
        assert_eq!(g.count_ones(), 3);
        g.flip(3, 64);
        assert_eq!(g.count_ones(), 2);
    }

    #[test]
    fn row_extraction_isolated() {
        let mut g = BitGrid::new(4, 70);
        g.set(1, 69, true);
        g.set(2, 0, true);
        assert!(g.row(0).is_zero());
        assert_eq!(g.row(1).iter_ones().collect::<Vec<_>>(), vec![69]);
        assert_eq!(g.row(2).iter_ones().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn set_row_and_xor_row() {
        let mut g = BitGrid::new(2, 128);
        let r = Bits::from_positions(128, &[0, 64, 127]);
        g.set_row(0, &r);
        assert_eq!(g.row(0), r);
        g.xor_row(0, &r);
        assert!(g.row(0).is_zero());
        g.xor_row(1, &r);
        assert_eq!(g.row(1), r);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_panics() {
        let g = BitGrid::new(2, 2);
        let _ = g.get(2, 0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be nonzero")]
    fn zero_dims_panic() {
        let _ = BitGrid::new(0, 4);
    }
}
