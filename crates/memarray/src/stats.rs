//! Operation counters for the 2D engine, used by overhead analyses and
//! the examples to report how much background work the scheme performs.

/// Counters accumulated by a [`crate::TwoDArray`] over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Word reads requested by the user.
    pub reads: u64,
    /// Word writes requested by the user.
    pub writes: u64,
    /// Extra array reads issued for read-before-write vertical updates.
    pub extra_reads: u64,
    /// Word writes suppressed because the read-before-write found the
    /// stored word already equal to the new data. Suppressing the row
    /// write and the vertical-parity update for such *silent writes* is
    /// the lever of traffic-aware ECC schemes ("Using Silent Writes in
    /// Low-Power Traffic-Aware ECC", Kishani et al.): when a write
    /// changes nothing, all coding work can be skipped without touching
    /// correctness. The read-before-write the 2D scheme already performs
    /// makes the detection free.
    pub silent_writes: u64,
    /// Errors corrected in-line by the horizontal code (e.g. SECDED).
    pub inline_corrections: u64,
    /// 2D recovery invocations.
    pub recoveries: u64,
    /// Total rows scanned during recovery (BIST march cost proxy).
    pub recovery_rows_scanned: u64,
    /// Bits restored by 2D recovery.
    pub bits_recovered: u64,
    /// Hard-fault cells substituted by BISR remap during recovery.
    pub cells_remapped: u64,
    /// Scrub passes completed.
    pub scrub_passes: u64,
}

impl EngineStats {
    /// Fraction of array accesses that are 2D-induced extra reads.
    pub fn extra_read_fraction(&self) -> f64 {
        let total = self.reads + self.writes + self.extra_reads;
        if total == 0 {
            0.0
        } else {
            self.extra_reads as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra_read_fraction_zero_when_idle() {
        assert_eq!(EngineStats::default().extra_read_fraction(), 0.0);
    }

    #[test]
    fn extra_read_fraction_counts() {
        let stats = EngineStats {
            reads: 60,
            writes: 20,
            extra_reads: 20,
            ..Default::default()
        };
        assert!((stats.extra_read_fraction() - 0.2).abs() < 1e-12);
    }
}
