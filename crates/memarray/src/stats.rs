//! Operation counters for the 2D engine, used by overhead analyses and
//! the examples to report how much background work the scheme performs.

/// Counters accumulated by a [`crate::TwoDArray`] over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Word reads requested by the user.
    pub reads: u64,
    /// Word writes requested by the user.
    pub writes: u64,
    /// Extra array reads issued for read-before-write vertical updates.
    pub extra_reads: u64,
    /// Word writes suppressed because the read-before-write found the
    /// stored word already equal to the new data. Suppressing the row
    /// write and the vertical-parity update for such *silent writes* is
    /// the lever of traffic-aware ECC schemes ("Using Silent Writes in
    /// Low-Power Traffic-Aware ECC", Kishani et al.): when a write
    /// changes nothing, all coding work can be skipped without touching
    /// correctness. The read-before-write the 2D scheme already performs
    /// makes the detection free.
    pub silent_writes: u64,
    /// Errors corrected in-line by the horizontal code (e.g. SECDED).
    pub inline_corrections: u64,
    /// 2D recovery invocations.
    pub recoveries: u64,
    /// Total rows scanned during recovery (BIST march cost proxy).
    pub recovery_rows_scanned: u64,
    /// Bits restored by 2D recovery.
    pub bits_recovered: u64,
    /// Hard-fault cells substituted by BISR remap during recovery.
    pub cells_remapped: u64,
    /// Scrub passes completed.
    pub scrub_passes: u64,
    /// Incremental scrub slices completed (see
    /// [`crate::TwoDArray::scrub_step`]).
    pub scrub_slices: u64,
    /// Rows scanned by incremental scrub slices.
    pub scrub_rows_scanned: u64,
    /// Dirty rows first discovered by a scrub slice (as opposed to a
    /// foreground access) — the error-traffic signal an adaptive
    /// scrubbing rate controller feeds on.
    pub scrub_errors_found: u64,
}

impl EngineStats {
    /// Fraction of array accesses that are 2D-induced extra reads.
    pub fn extra_read_fraction(&self) -> f64 {
        let total = self.reads + self.writes + self.extra_reads;
        if total == 0 {
            0.0
        } else {
            self.extra_reads as f64 / total as f64
        }
    }

    /// Adds every counter of `other` into `self`. Aggregation paths
    /// (e.g. summing per-bank stats) go through this single place, so a
    /// newly added counter cannot silently be dropped from the totals.
    pub fn merge(&mut self, other: &EngineStats) {
        let EngineStats {
            reads,
            writes,
            extra_reads,
            silent_writes,
            inline_corrections,
            recoveries,
            recovery_rows_scanned,
            bits_recovered,
            cells_remapped,
            scrub_passes,
            scrub_slices,
            scrub_rows_scanned,
            scrub_errors_found,
        } = *other;
        self.reads += reads;
        self.writes += writes;
        self.extra_reads += extra_reads;
        self.silent_writes += silent_writes;
        self.inline_corrections += inline_corrections;
        self.recoveries += recoveries;
        self.recovery_rows_scanned += recovery_rows_scanned;
        self.bits_recovered += bits_recovered;
        self.cells_remapped += cells_remapped;
        self.scrub_passes += scrub_passes;
        self.scrub_slices += scrub_slices;
        self.scrub_rows_scanned += scrub_rows_scanned;
        self.scrub_errors_found += scrub_errors_found;
    }

    /// Error events this engine has observed and handled, deduplicated
    /// to one count per physical event: inline corrections plus full 2D
    /// recoveries. (Dirty rows found by scrub slices are not added on
    /// top — a scrub find always triggers a recovery, which is the event
    /// already counted.) Monotonic; adaptive scrub controllers and the
    /// online FIT estimator diff successive snapshots to measure live
    /// error traffic.
    pub fn observed_errors(&self) -> u64 {
        self.inline_corrections + self.recoveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra_read_fraction_zero_when_idle() {
        assert_eq!(EngineStats::default().extra_read_fraction(), 0.0);
    }

    #[test]
    fn merge_sums_every_counter() {
        let a = EngineStats {
            reads: 1,
            writes: 2,
            extra_reads: 3,
            silent_writes: 4,
            inline_corrections: 5,
            recoveries: 6,
            recovery_rows_scanned: 7,
            bits_recovered: 8,
            cells_remapped: 9,
            scrub_passes: 10,
            scrub_slices: 11,
            scrub_rows_scanned: 12,
            scrub_errors_found: 13,
        };
        let mut total = a;
        total.merge(&a);
        assert_eq!(total.reads, 2);
        assert_eq!(total.silent_writes, 8);
        assert_eq!(total.scrub_errors_found, 26);
        assert_eq!(total.observed_errors(), 2 * (5 + 6));
    }

    #[test]
    fn extra_read_fraction_counts() {
        let stats = EngineStats {
            reads: 60,
            writes: 20,
            extra_reads: 20,
            ..Default::default()
        };
        assert!((stats.extra_read_fraction() - 0.2).abs() < 1e-12);
    }
}
