//! The 2D-protected array engine: horizontal per-word coding, vertical
//! interleaved parity, read-before-write updates, and the BIST-style
//! multi-bit recovery process of the paper's Figure 4(b).

use crate::{BankScheme, BitGrid, ErrorShape, FaultKind, FaultMap, InjectionReport, Injector};
use crate::{EngineStats, RowLayout, VerticalParity};
use ecc::{Bits, Code, Decoded, DecodedInPlace};
use std::fmt;
use std::sync::Arc;

/// Correction latency of an in-line (SECDED-style) single-bit fix, in
/// array-access cycles: the one extra access that writes the corrected
/// word back. Returned by the `*_timed` accessors; the clean path costs
/// zero and a full 2D recovery costs [`RecoveryReport::cycles`].
pub const INLINE_CORRECT_CYCLES: u64 = 1;

/// Outcome of a word read from a 2D-protected array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The word was clean.
    Clean(Bits),
    /// The horizontal code corrected the word in-line (SECDED mode).
    CorrectedInline(Bits),
    /// A 2D recovery ran and the word is now readable.
    Recovered(Bits),
}

impl ReadOutcome {
    /// The data word regardless of how it was obtained.
    pub fn into_data(self) -> Bits {
        match self {
            ReadOutcome::Clean(d) | ReadOutcome::CorrectedInline(d) | ReadOutcome::Recovered(d) => {
                d
            }
        }
    }

    /// Borrowed view of the data word.
    pub fn data(&self) -> &Bits {
        match self {
            ReadOutcome::Clean(d) | ReadOutcome::CorrectedInline(d) | ReadOutcome::Recovered(d) => {
                d
            }
        }
    }

    /// How the word was obtained, without the data payload.
    pub fn kind(&self) -> ReadKind {
        match self {
            ReadOutcome::Clean(_) => ReadKind::Clean,
            ReadOutcome::CorrectedInline(_) => ReadKind::CorrectedInline,
            ReadOutcome::Recovered(_) => ReadKind::Recovered,
        }
    }
}

/// Payload-free version of [`ReadOutcome`], returned by the
/// scratch-buffer read variants where the data lands in a caller-owned
/// buffer instead of a freshly allocated [`Bits`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadKind {
    /// The word was clean.
    Clean,
    /// The horizontal code corrected the word in-line (SECDED mode).
    CorrectedInline,
    /// A 2D recovery ran and the word is now readable.
    Recovered,
}

/// Outcome of a write served by the u64 fast lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteKind {
    /// The row was updated (XOR delta applied to cells and parity).
    Stored,
    /// The stored word already equalled the new data: the row write and
    /// the vertical-parity update were suppressed (a *silent write*,
    /// after Kishani et al.).
    Silent,
}

/// Why a read or recovery failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// Recovery converged but verification still failed — the damage
    /// exceeded the scheme's `H x V` coverage.
    Uncorrectable {
        /// Rows that still fail their horizontal check after recovery.
        failing_rows: Vec<usize>,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Uncorrectable { failing_rows } => write!(
                f,
                "2D recovery could not restore {} row(s): damage exceeds coverage",
                failing_rows.len()
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Outcome of one incremental scrub slice (see
/// [`TwoDArray::scrub_step`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubSlice {
    /// Data rows scanned by this slice.
    pub rows_scanned: usize,
    /// Rows found failing their horizontal check.
    pub dirty_rows: usize,
    /// Whether a 2D recovery ran as a result of this slice.
    pub recovered: bool,
    /// Whether this slice completed a full sweep: the cursor reached the
    /// last row, the vertical stripes were verified, and the cursor
    /// wrapped back to row 0.
    pub wrapped: bool,
}

/// Summary of one 2D recovery invocation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Rows whose content was repaired via vertical reconstruction.
    pub rows_repaired: Vec<usize>,
    /// Individual bits repaired in column-failure mode, as (row, col).
    pub column_mode_bits: Vec<(usize, usize)>,
    /// Parity rows that had to be rebuilt (errors in the parity rows
    /// themselves).
    pub parity_rows_rebuilt: Vec<usize>,
    /// Hard-fault cells substituted by the BISR remap stage, as
    /// (row, col).
    pub cells_remapped: Vec<(usize, usize)>,
    /// Total bit flips applied.
    pub bits_flipped: usize,
    /// Estimated recovery latency in array-access cycles (BIST march
    /// cost: one access per row scanned per iteration).
    pub cycles: u64,
}

/// A memory bank protected by 2D error coding.
///
/// The bank stores `rows` physical rows, each holding
/// `layout.interleave()` codewords protected by the horizontal code, plus
/// `v` vertical parity rows maintained with read-before-write updates.
///
/// # Examples
///
/// ```
/// use ecc::{Bits, CodeKind};
/// use memarray::{ErrorShape, TwoDArray, TwoDConfig};
///
/// // The paper's example array: 256x256 data bits, EDC8 horizontal with
/// // 4-way interleaving, EDC32 vertical.
/// let mut bank = TwoDArray::new(TwoDConfig {
///     rows: 256,
///     horizontal: CodeKind::Edc(8),
///     data_bits: 64,
///     interleave: 4,
///     vertical_rows: 32,
/// });
///
/// let word = Bits::from_u64(0xDEAD_BEEF, 64);
/// bank.write_word(10, 2, &word);
///
/// // A 32x32 clustered error is fully correctable.
/// bank.inject(ErrorShape::Cluster { row: 0, col: 0, height: 32, width: 32 });
/// let out = bank.read_word(10, 2).unwrap();
/// assert_eq!(out.into_data(), word);
/// ```
pub struct TwoDArray {
    /// The immutable shared half: codec (with its precomputed tables),
    /// layout, clean masks, and geometry. One [`BankScheme`] instance is
    /// shared by every bank built from the same [`TwoDConfig`] — cloning
    /// the `Arc` is how a banked cache avoids duplicating table sets.
    scheme: Arc<BankScheme>,
    grid: BitGrid,
    vparity: VerticalParity,
    faults: FaultMap,
    stats: EngineStats,
    /// Reusable row-width scratch holding the current (overlaid) row
    /// content on the hot paths, so clean reads and writes never allocate.
    scratch_row: Bits,
    /// Second reusable row-width scratch: the XOR delta of a write (or
    /// the fully rebuilt row for line-granular writes).
    scratch_aux: Bits,
    /// Next row an incremental scrub slice will scan (wraps at `rows`).
    scrub_cursor: usize,
    /// Engine-owned recovery working set, reused across [`TwoDArray::recover`]
    /// calls so repeated recoveries (scrub campaigns, fault storms) stop
    /// re-allocating the bank snapshot. Taken out with `mem::take` for the
    /// duration of a recovery and put back when it finishes.
    recovery: RecoveryCache,
    /// When true, recovery remaps cells whose repair does not stick
    /// (stuck-at hard faults) to spares, mirroring BISR hardware.
    bisr_remap: bool,
    /// Maximum product-decoding iterations before declaring failure.
    max_iterations: usize,
}

/// Construction parameters for [`TwoDArray`], and the key under which
/// [`BankScheme`] instances are shared: two banks with equal configs use
/// one scheme (and one codec table set).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TwoDConfig {
    /// Number of data rows in the bank.
    pub rows: usize,
    /// Horizontal per-word code.
    pub horizontal: ecc::CodeKind,
    /// Data bits per word.
    pub data_bits: usize,
    /// Physical bit-interleave degree (words per row).
    pub interleave: usize,
    /// Number of vertical parity rows `V` (vertical interleave factor).
    pub vertical_rows: usize,
}

impl TwoDArray {
    /// Creates a zero-initialized protected bank, sharing its table set
    /// (codec, layout, clean masks) with every other bank built from the
    /// same configuration via the process-wide scheme registry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `vertical_rows > rows`.
    pub fn new(config: TwoDConfig) -> Self {
        TwoDArray::from_scheme(BankScheme::shared(config))
    }

    /// Creates a zero-initialized protected bank over an existing shared
    /// scheme. Only the mutable per-bank state (cell grid, vertical
    /// parity rows, fault overlay, stats) is allocated.
    pub fn from_scheme(scheme: Arc<BankScheme>) -> Self {
        let grid = BitGrid::new(scheme.rows(), scheme.cols());
        let vparity = VerticalParity::new(scheme.vertical_rows(), scheme.cols());
        let cols = scheme.cols();
        TwoDArray {
            scheme,
            grid,
            vparity,
            faults: FaultMap::new(),
            stats: EngineStats::default(),
            scratch_row: Bits::zeros(cols),
            scratch_aux: Bits::zeros(cols),
            scrub_cursor: 0,
            recovery: RecoveryCache::default(),
            bisr_remap: true,
            max_iterations: 4,
        }
    }

    /// The shared immutable scheme this bank runs on.
    pub fn scheme(&self) -> &Arc<BankScheme> {
        &self.scheme
    }

    /// Enables or disables the BISR remap stage of recovery (enabled by
    /// default). With remap off, persistent stuck-at cells remain in place
    /// and recovery reports the array uncorrectable if they defeat the
    /// horizontal code.
    pub fn set_bisr_remap(&mut self, enabled: bool) {
        self.bisr_remap = enabled;
    }

    /// Number of data rows.
    pub fn rows(&self) -> usize {
        self.grid.rows()
    }

    /// Physical columns per row.
    pub fn cols(&self) -> usize {
        self.grid.cols()
    }

    /// Words per row (the interleave degree).
    pub fn words_per_row(&self) -> usize {
        self.layout().interleave()
    }

    /// The physical row layout.
    pub fn layout(&self) -> RowLayout {
        self.scheme.layout()
    }

    /// The horizontal code protecting each word.
    pub fn horizontal_code(&self) -> &(dyn Code + Send + Sync) {
        self.scheme.codec().as_ref()
    }

    /// Internal shorthand for the shared horizontal codec.
    #[inline]
    fn hcode(&self) -> &(dyn Code + Send + Sync) {
        self.scheme.codec().as_ref()
    }

    /// The vertical parity state.
    pub fn vertical(&self) -> &VerticalParity {
        &self.vparity
    }

    /// Accumulated operation counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Resets the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// The hard-fault overlay (stuck-at cells).
    pub fn fault_map(&self) -> &FaultMap {
        &self.faults
    }

    /// Captures a borrow-free, verify-only window onto this bank's cell
    /// grid for seqlock-style optimistic readers. See [`ArrayProbe`] for
    /// the full contract; in short, the probe stays valid for the bank's
    /// whole lifetime (the grid's limb buffer is never reallocated), but
    /// values it returns are only trustworthy once the caller's sequence
    /// validation proves no writer ran concurrently.
    pub fn probe(&self) -> ArrayProbe {
        ArrayProbe {
            scheme: Arc::clone(&self.scheme),
            base: self.grid.limb_base(),
            limbs_per_row: self.grid.limbs_per_row(),
            rows: self.grid.rows(),
            words_per_row: self.scheme.layout().interleave(),
        }
    }

    /// Reads a physical row through the stuck-at overlay.
    fn read_row_raw(&self, row: usize) -> Bits {
        let mut bits = self.grid.row(row);
        self.faults.overlay_row(row, &mut bits);
        bits
    }

    /// Reads a physical row through the stuck-at overlay into an existing
    /// buffer (no allocation).
    fn read_row_raw_into(&self, row: usize, out: &mut Bits) {
        self.grid.row_into(row, out);
        self.faults.overlay_row(row, out);
    }

    /// Whether word `word` of a physical row stores a self-consistent
    /// codeword, checked against the scheme's precomputed clean masks.
    #[inline]
    fn word_clean(&self, row: &Bits, word: usize) -> bool {
        self.scheme.word_clean(row, word)
    }

    /// Writes a physical row; stuck cells silently retain their value
    /// (matching real stuck-at behaviour).
    fn write_row_raw(&mut self, row: usize, value: &Bits) {
        self.grid.set_row(row, value);
    }

    /// Writes a data word, maintaining horizontal check bits and vertical
    /// parity via read-before-write. If the old row content fails its
    /// horizontal check, recovery runs first so the parity update stays
    /// consistent.
    ///
    /// On the common path — the stored row checks clean — this performs
    /// zero heap allocations: the old row lands in a reusable scratch
    /// buffer, the update is computed as an XOR delta over the word's
    /// columns (applied to the cells via [`BitGrid::xor_row`] and to the
    /// parity via [`VerticalParity::update_delta`]), and a write whose
    /// data equals the stored word is suppressed entirely (a *silent
    /// write*; see [`EngineStats::silent_writes`]).
    ///
    /// # Panics
    ///
    /// Panics if `row`/`word` are out of range or `data` has the wrong
    /// width.
    pub fn write_word(&mut self, row: usize, word: usize, data: &Bits) {
        let _ = self.write_word_timed(row, word, data);
    }

    /// Like [`TwoDArray::write_word`], but additionally returns the
    /// correction latency the write incurred, in array-access cycles:
    /// `0` on the common clean path, [`INLINE_CORRECT_CYCLES`] when a
    /// latent single-bit error in the old word was fixed in-line, and
    /// the BIST march cost ([`RecoveryReport::cycles`]) when latent
    /// multi-bit damage forced a full recovery first. This is the
    /// latency hook the cycle-level cache simulators use to convert
    /// background correction work into bank back-pressure.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`word` are out of range or `data` has the wrong
    /// width.
    pub fn write_word_timed(&mut self, row: usize, word: usize, data: &Bits) -> u64 {
        assert!(row < self.rows(), "row {row} out of range");
        assert!(word < self.words_per_row(), "word {word} out of range");
        assert_eq!(data.len(), self.layout().data_bits(), "data width mismatch");
        // Read-before-write: fetch the old row for the vertical update.
        // The stored vertical parity always reflects the *intended* data,
        // so the old value fed into the update must be the intended old
        // word: latent errors are corrected (inline or via recovery)
        // before the incremental update.
        self.stats.extra_reads += 1;
        self.load_scratch_row(row);
        if self.scheme.word_clean(&self.scratch_row, word) {
            self.commit_clean_write(row, word, data);
            return 0;
        }
        // Latent-error path (cold; allocations acceptable here).
        let correction_cycles;
        let mut old_row = self.scratch_row.clone();
        let old_data = self.layout().extract_data(&old_row, word);
        let old_check = self.layout().extract_check(&old_row, word);
        match self.hcode().decode(&old_data, &old_check) {
            Decoded::Corrected { data: fixed, .. } if self.scheme.inline_correct() => {
                // Use the corrected old word for the parity delta.
                correction_cycles = INLINE_CORRECT_CYCLES;
                let fixed_check = self.hcode().encode(&fixed);
                self.layout()
                    .place_word(&mut old_row, word, &fixed, &fixed_check);
            }
            Decoded::Clean => correction_cycles = 0,
            _ => {
                // Latent multi-bit damage: repair first, then re-read.
                // A failed recovery still consumed a full march pass.
                correction_cycles = match self.recover() {
                    Ok(rec) => rec.cycles,
                    Err(_) => self.rows() as u64,
                };
                old_row = self.read_row_raw(row);
            }
        }
        let mut new_row = old_row.clone();
        let check = self.hcode().encode(data);
        self.layout().place_word(&mut new_row, word, data, &check);
        self.vparity.update(row, &old_row, &new_row);
        self.write_row_raw(row, &new_row);
        self.stats.writes += 1;
        correction_cycles
    }

    /// Loads the overlaid content of `row` into the reusable scratch row
    /// (no allocation).
    #[inline]
    fn load_scratch_row(&mut self, row: usize) {
        self.grid.row_into(row, &mut self.scratch_row);
        self.faults.overlay_row(row, &mut self.scratch_row);
    }

    /// Clean-path write commit: builds the XOR delta between the stored
    /// word (already verified clean, sitting in `scratch_row`) and the new
    /// codeword in `scratch_aux`, then applies it to the cells and the
    /// stripe parity. Performs no heap allocation unless the code stores
    /// more than 64 check bits (then one re-encode allocates).
    fn commit_clean_write(&mut self, row: usize, word: usize, data: &Bits) {
        let layout = self.layout();
        let il = layout.interleave();
        self.stats.writes += 1;
        self.scratch_aux.clear();
        let mut changed = false;
        if self.scheme.fast_u64() {
            // Windowed u64 delta: compare and place 64 data bits per
            // strided gather/scatter, folding the check delta from the
            // precomputed per-bit masks (exact by code linearity).
            let mut delta_check = 0u64;
            for (i, &dlimb) in data.as_limbs().iter().enumerate() {
                let off = i * 64;
                let count = 64.min(layout.data_bits() - off);
                let old = layout.extract_data_u64(&self.scratch_row, word, off, count);
                let delta = old ^ dlimb;
                if delta != 0 {
                    changed = true;
                    delta_check ^= self.scheme.encode_u64(off, delta, count);
                    layout.place_data_u64(&mut self.scratch_aux, word, off, delta, count);
                }
            }
            if changed {
                layout.place_check_u64(&mut self.scratch_aux, word, delta_check);
            }
        } else {
            // Wide-check codes: per-bit delta, one re-encode allocation.
            for b in 0..layout.data_bits() {
                let col = b * il + word;
                if self.scratch_row.get(col) != data.get(b) {
                    changed = true;
                    self.scratch_aux.set(col, true);
                }
            }
            if changed {
                let new_check = self.hcode().encode(data);
                for c in 0..layout.check_bits() {
                    let col = layout.check_col(word, c);
                    if self.scratch_row.get(col) != new_check.get(c) {
                        self.scratch_aux.set(col, true);
                    }
                }
            }
        }
        if !changed {
            // Silent write: the word is clean, so equal data implies an
            // equal stored check word too — nothing in the row changes
            // and the parity update is skipped wholesale.
            self.stats.silent_writes += 1;
            return;
        }
        self.vparity.update_delta(row, &self.scratch_aux);
        self.grid.xor_row(row, &self.scratch_aux);
    }

    /// Reads a data word. Clean and inline-corrected reads return
    /// immediately; an uncorrectable horizontal detection triggers the 2D
    /// recovery process and the read is retried.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Uncorrectable`] when recovery cannot restore
    /// the word (damage beyond the scheme's coverage).
    ///
    /// # Panics
    ///
    /// Panics if `row`/`word` are out of range.
    pub fn read_word(&mut self, row: usize, word: usize) -> Result<ReadOutcome, EngineError> {
        self.read_word_timed(row, word).map(|(out, _)| out)
    }

    /// Like [`TwoDArray::read_word`], but additionally returns the
    /// correction latency the read incurred, in array-access cycles:
    /// `0` for a clean read, [`INLINE_CORRECT_CYCLES`] for an in-line
    /// SECDED fix (the corrected word is written back), and the BIST
    /// march cost ([`RecoveryReport::cycles`]) when a 2D recovery had to
    /// run. Cycle-level cache simulators use this hook to turn
    /// correction work into measurable bank and MSHR back-pressure.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Uncorrectable`] when recovery cannot
    /// restore the word.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`word` are out of range.
    pub fn read_word_timed(
        &mut self,
        row: usize,
        word: usize,
    ) -> Result<(ReadOutcome, u64), EngineError> {
        assert!(row < self.rows(), "row {row} out of range");
        assert!(word < self.words_per_row(), "word {word} out of range");
        self.stats.reads += 1;
        // Clean fast path: verify the word's check equations at limb
        // granularity against the scratch row, then extract only the data
        // bits — no check extraction, no decode machinery, and the single
        // allocation is the returned data word itself.
        self.load_scratch_row(row);
        if self.scheme.word_clean(&self.scratch_row, word) {
            return Ok((
                ReadOutcome::Clean(self.layout().extract_data(&self.scratch_row, word)),
                0,
            ));
        }
        let row_bits = self.scratch_row.clone();
        let data = self.layout().extract_data(&row_bits, word);
        let check = self.layout().extract_check(&row_bits, word);
        match self.hcode().decode(&data, &check) {
            Decoded::Clean => Ok((ReadOutcome::Clean(data), 0)),
            Decoded::Corrected { data: fixed, .. } if self.scheme.inline_correct() => {
                self.stats.inline_corrections += 1;
                // Write back the corrected word. The correction restores
                // the intended data, which the stored vertical parity
                // already reflects, so the parity is NOT updated here.
                let mut new_row = row_bits.clone();
                let new_check = self.hcode().encode(&fixed);
                self.layout()
                    .place_word(&mut new_row, word, &fixed, &new_check);
                self.write_row_raw(row, &new_row);
                Ok((ReadOutcome::CorrectedInline(fixed), INLINE_CORRECT_CYCLES))
            }
            _ => {
                // Multi-bit (or detection-only) error: 2D recovery.
                let rec = self.recover()?;
                let row_bits = self.read_row_raw(row);
                let data = self.layout().extract_data(&row_bits, word);
                let check = self.layout().extract_check(&row_bits, word);
                match self.hcode().decode(&data, &check) {
                    Decoded::Clean => Ok((ReadOutcome::Recovered(data), rec.cycles)),
                    Decoded::Corrected { data: fixed, .. } => {
                        Ok((ReadOutcome::Recovered(fixed), rec.cycles))
                    }
                    Decoded::Detected => Err(EngineError::Uncorrectable {
                        failing_rows: vec![row],
                    }),
                }
            }
        }
    }

    /// Scratch-buffer read: like [`TwoDArray::read_word`] but the data
    /// lands in a caller-owned buffer, so the clean path performs zero
    /// heap allocations.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Uncorrectable`] when recovery cannot restore
    /// the word.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`word` are out of range or `out.len()` differs from
    /// the layout's data width.
    pub fn read_word_into(
        &mut self,
        row: usize,
        word: usize,
        out: &mut Bits,
    ) -> Result<ReadKind, EngineError> {
        assert!(row < self.rows(), "row {row} out of range");
        assert!(word < self.words_per_row(), "word {word} out of range");
        self.load_scratch_row(row);
        if self.scheme.word_clean(&self.scratch_row, word) {
            self.stats.reads += 1;
            self.layout()
                .extract_data_into(&self.scratch_row, word, out);
            return Ok(ReadKind::Clean);
        }
        // Dirty path: delegate to the allocating read (it counts the
        // read, runs inline correction / recovery) and copy the result.
        let outcome = self.read_word(row, word)?;
        out.copy_from(outcome.data());
        Ok(outcome.kind())
    }

    /// u64 read fast lane: returns `width` data bits of word `word`
    /// starting at `bit_offset`, straight from the row limbs, when the
    /// word is clean. Zero heap allocations. Returns `None` when the word
    /// fails its horizontal check — the caller must fall back to
    /// [`TwoDArray::read_word`], which runs inline correction or 2D
    /// recovery (the failed attempt counts nothing in the stats).
    ///
    /// # Panics
    ///
    /// Panics if `row`/`word` are out of range or the bit window falls
    /// outside the word's data bits.
    pub fn try_read_word_u64(
        &mut self,
        row: usize,
        word: usize,
        bit_offset: usize,
        width: usize,
    ) -> Option<u64> {
        assert!(row < self.rows(), "row {row} out of range");
        assert!(word < self.words_per_row(), "word {word} out of range");
        self.load_scratch_row(row);
        if !self.scheme.word_clean(&self.scratch_row, word) {
            return None;
        }
        self.stats.reads += 1;
        Some(
            self.layout()
                .extract_data_u64(&self.scratch_row, word, bit_offset, width),
        )
    }

    /// u64 write fast lane: overwrites `width` data bits of word `word`
    /// at `bit_offset` when the stored word is clean, with zero heap
    /// allocations. The update is an XOR delta built in a scratch row
    /// from the data difference and its re-encoded check difference
    /// (exact by code linearity), applied to the cells and the stripe
    /// parity in one pass; a write that changes nothing is suppressed as
    /// a silent write. Returns `None` — with nothing counted or written —
    /// when the stored word fails its check or the code stores more than
    /// 64 check bits; the caller must then fall back to the
    /// read-modify-write path over [`TwoDArray::read_word`] /
    /// [`TwoDArray::write_word`].
    ///
    /// # Panics
    ///
    /// Panics if `row`/`word` are out of range or the bit window falls
    /// outside the word's data bits.
    pub fn try_write_word_u64(
        &mut self,
        row: usize,
        word: usize,
        bit_offset: usize,
        value: u64,
        width: usize,
    ) -> Option<WriteKind> {
        assert!(row < self.rows(), "row {row} out of range");
        assert!(word < self.words_per_row(), "word {word} out of range");
        if !self.scheme.fast_u64() {
            return None;
        }
        self.load_scratch_row(row);
        if !self.scheme.word_clean(&self.scratch_row, word) {
            return None;
        }
        let layout = self.layout();
        self.stats.extra_reads += 1;
        self.stats.writes += 1;
        let old = layout.extract_data_u64(&self.scratch_row, word, bit_offset, width);
        let value = value & crate::layout::low_mask(width);
        if old == value {
            self.stats.silent_writes += 1;
            return Some(WriteKind::Silent);
        }
        let delta = old ^ value;
        let delta_check = self.scheme.encode_u64(bit_offset, delta, width);
        self.scratch_aux.clear();
        layout.place_word_u64(
            &mut self.scratch_aux,
            word,
            bit_offset,
            delta,
            width,
            delta_check,
        );
        self.vparity.update_delta(row, &self.scratch_aux);
        self.grid.xor_row(row, &self.scratch_aux);
        Some(WriteKind::Stored)
    }

    /// Line-granular read fast lane: extracts every word of `row` into
    /// `out` in one pass over a single row fetch, when the whole row is
    /// clean and words are at most 64 data bits wide. Zero heap
    /// allocations. Returns `false` (counting nothing) when any word
    /// fails its check or the geometry is ineligible; the caller falls
    /// back to per-word reads.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `out.len()` differs from the
    /// words-per-row interleave degree.
    pub fn try_read_row_u64(&mut self, row: usize, out: &mut [u64]) -> bool {
        assert!(row < self.rows(), "row {row} out of range");
        let layout = self.layout();
        assert_eq!(out.len(), layout.interleave(), "word count mismatch");
        if layout.data_bits() > 64 {
            return false;
        }
        self.load_scratch_row(row);
        for w in 0..layout.interleave() {
            if !self.scheme.word_clean(&self.scratch_row, w) {
                return false;
            }
        }
        self.stats.reads += layout.interleave() as u64;
        for (w, slot) in out.iter_mut().enumerate() {
            *slot = self
                .layout()
                .extract_data_u64(&self.scratch_row, w, 0, layout.data_bits());
        }
        true
    }

    /// Line-granular write fast lane: overwrites every word of `row` in
    /// one pass — one read-before-write row fetch, one rebuilt row, one
    /// vertical-parity update — instead of a read-modify-write per word.
    /// Zero heap allocations. A row rebuilt identical to the stored one
    /// is suppressed entirely (all its word writes count as silent).
    /// Returns `false` (counting and writing nothing) when any stored
    /// word fails its check or the geometry is ineligible (words wider
    /// than 64 data bits, or more than 64 check bits); the caller falls
    /// back to per-word writes, which engage recovery as needed.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `values.len()` differs from the
    /// words-per-row interleave degree.
    pub fn try_write_row_u64(&mut self, row: usize, values: &[u64]) -> bool {
        assert!(row < self.rows(), "row {row} out of range");
        let layout = self.layout();
        assert_eq!(values.len(), layout.interleave(), "word count mismatch");
        let data_bits = layout.data_bits();
        if data_bits > 64 || !self.scheme.fast_u64() {
            return false;
        }
        self.load_scratch_row(row);
        for w in 0..layout.interleave() {
            if !self.scheme.word_clean(&self.scratch_row, w) {
                return false;
            }
        }
        // Build the complete new row in the aux scratch.
        self.scratch_aux.clear();
        for (w, &value) in values.iter().enumerate() {
            let value = value & crate::layout::low_mask(data_bits);
            let check = self.scheme.encode_u64(0, value, data_bits);
            layout.place_word_u64(&mut self.scratch_aux, w, 0, value, data_bits, check);
        }
        self.stats.extra_reads += 1;
        self.stats.writes += layout.interleave() as u64;
        if self.scratch_aux == self.scratch_row {
            self.stats.silent_writes += layout.interleave() as u64;
            return true;
        }
        self.vparity
            .update(row, &self.scratch_row, &self.scratch_aux);
        self.grid.set_row(row, &self.scratch_aux);
        true
    }

    /// Injects a transient error of the given shape. Returns the affected
    /// cells.
    pub fn inject(&mut self, shape: ErrorShape) -> InjectionReport {
        Injector::new(&mut self.grid, &mut self.faults).inject(shape, FaultKind::Transient)
    }

    /// Injects a hard (stuck-at) fault of the given shape.
    pub fn inject_hard(&mut self, shape: ErrorShape, stuck_value: bool) -> InjectionReport {
        Injector::new(&mut self.grid, &mut self.faults)
            .inject(shape, FaultKind::StuckAt(stuck_value))
    }

    /// Injects with a caller-supplied RNG (random flips / clusters).
    pub fn injector(&mut self) -> Injector<'_> {
        Injector::new(&mut self.grid, &mut self.faults)
    }

    /// Whether every row currently passes its horizontal check and every
    /// stripe parity matches. Used by tests and scrubbing.
    pub fn audit(&self) -> bool {
        self.failing_rows().is_empty() && self.failing_stripes().is_empty()
    }

    /// Rows with at least one word in *uncorrectable* state. Words a
    /// SECDED horizontal code can still fix inline do not count: they are
    /// functionally readable (the paper's yield-mode argument).
    fn failing_rows(&self) -> Vec<usize> {
        let mut failing = Vec::new();
        let mut row = Bits::zeros(self.cols());
        for r in 0..self.rows() {
            self.read_row_raw_into(r, &mut row);
            if self.row_has_uncorrectable(&row) {
                failing.push(r);
            }
        }
        failing
    }

    /// Whether any word of a physical row is in uncorrectable (detected)
    /// state. Words the horizontal code can still fix inline do not
    /// count — they are functionally readable.
    fn row_has_uncorrectable(&self, row: &Bits) -> bool {
        (0..self.words_per_row()).any(|w| {
            // Clean words can't be uncorrectable: skip the decode.
            if self.word_clean(row, w) {
                return false;
            }
            let data = self.layout().extract_data(row, w);
            let check = self.layout().extract_check(row, w);
            self.hcode()
                .decode(&data, &check)
                .is_detected_uncorrectable()
        })
    }

    fn failing_stripes(&self) -> Vec<usize> {
        let v = self.vparity.interleave();
        (0..v)
            .filter(|&s| !self.stripe_syndrome(s).is_zero())
            .collect()
    }

    fn stripe_syndrome(&self, stripe: usize) -> Bits {
        let rows: Vec<Bits> = (stripe..self.rows())
            .step_by(self.vparity.interleave())
            .map(|r| self.read_row_raw(r))
            .collect();
        self.vparity.stripe_syndrome(stripe, rows.iter())
    }

    /// Runs the 2D recovery process (the paper's Figure 4(b), extended
    /// with the column-failure path): iteratively repairs rows via
    /// vertical reconstruction, falls back to horizontal-syndrome /
    /// vertical-syndrome intersection for column failures, and rebuilds
    /// parity rows that are themselves corrupt.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Uncorrectable`] when the damage exceeds the
    /// scheme's coverage and iteration stops making progress.
    pub fn recover(&mut self) -> Result<RecoveryReport, EngineError> {
        self.stats.recoveries += 1;
        let mut report = RecoveryReport::default();
        let v = self.vparity.interleave();
        // Snapshot the bank once and maintain the state incrementally:
        // per-row contents, per-row clean flags (decode outcomes), and
        // per-stripe vertical syndromes. Earlier revisions re-read and
        // re-decoded every row — and re-derived every stripe syndrome —
        // on each pass of each iteration; repairs now patch the caches
        // instead (engine.rs used to spend most of recovery there).
        //
        // The cache buffers are engine-owned and reused across recoveries:
        // taking the cache out of `self` lets the repair passes borrow the
        // engine mutably while reading/writing cache rows.
        let mut cache = std::mem::take(&mut self.recovery);
        cache.rebuild(self);
        for _iter in 0..self.max_iterations {
            // BIST march: scan every row once per iteration (the cycle
            // cost model is unchanged — hardware still marches the rows).
            report.cycles += self.rows() as u64;
            self.stats.recovery_rows_scanned += self.rows() as u64;
            let mut flagged: Vec<Vec<usize>> = vec![Vec::new(); v];
            for r in 0..self.rows() {
                if !cache.clean[r] {
                    flagged[r % v].push(r);
                }
            }
            let any_flagged = flagged.iter().any(|f| !f.is_empty());
            let mut progressed = false;

            // Pass 1 — inline-correctable single-bit rows (SECDED mode).
            if self.scheme.inline_correct() {
                for stripe_list in &flagged {
                    for &r in stripe_list {
                        progressed |= self.try_inline_row_fix(r, &mut cache, &mut report);
                    }
                }
                if progressed {
                    continue;
                }
            }

            // Pass 2 — row mode: stripes with exactly one flagged row are
            // repaired by XORing the stripe syndrome into that row.
            for stripe in 0..v {
                if flagged[stripe].len() == 1 {
                    let r = flagged[stripe][0];
                    if cache.stripe_syn[stripe].is_zero() {
                        continue;
                    }
                    cache.scratch.copy_from(&cache.rows[r]);
                    cache.scratch.xor_assign(&cache.stripe_syn[stripe]);
                    if self.row_clean(&cache.scratch) {
                        let flips = cache.stripe_syn[stripe].count_ones();
                        self.commit_row_repair(r, &mut cache, &mut report);
                        report.rows_repaired.push(r);
                        report.bits_flipped += flips;
                        progressed = true;
                    }
                }
            }
            if progressed {
                continue;
            }

            // Pass 3 — column mode: stripes with multiple flagged rows
            // indicate a failure along columns. Intersect each flagged
            // row's horizontal syndrome groups with the globally
            // vertical-flagged columns, at limb granularity.
            let suspect = cache.suspect_columns();
            if any_flagged && !suspect.is_zero() {
                for stripe_list in flagged.iter() {
                    for &r in stripe_list {
                        progressed |=
                            self.try_column_mode_fix(r, &suspect, &mut cache, &mut report);
                    }
                }
                if progressed {
                    continue;
                }
            }

            // Pass 4 — parity rows damaged: stripes whose syndrome is
            // nonzero but every data row checks clean get their parity
            // rebuilt from the (clean) data. The fresh parity is the
            // stored one XOR the syndrome — no rescan needed.
            for stripe in 0..v {
                if flagged[stripe].is_empty() && !cache.stripe_syn[stripe].is_zero() {
                    let fresh = self
                        .vparity
                        .parity_row(stripe)
                        .xor(&cache.stripe_syn[stripe]);
                    self.vparity.set_parity_row(stripe, fresh);
                    cache.stripe_syn[stripe].clear();
                    report.parity_rows_rebuilt.push(stripe);
                    progressed = true;
                }
            }

            if !progressed {
                break;
            }
        }
        // Only rows whose clean flag is still down can be uncorrectable.
        let mut failing = Vec::new();
        for r in 0..self.rows() {
            if !cache.clean[r] && self.row_has_uncorrectable(&cache.rows[r]) {
                failing.push(r);
            }
        }
        self.recovery = cache;
        self.stats.bits_recovered += report.bits_flipped as u64;
        if failing.is_empty() {
            Ok(report)
        } else {
            Err(EngineError::Uncorrectable {
                failing_rows: failing,
            })
        }
    }

    /// Manufacture-time BIST/BISR: runs a march test over the bank,
    /// substitutes every located hard-fault cell with a spare (clearing
    /// its stuck state), then zeroes the array and rebuilds the vertical
    /// parity. Returns the march report.
    ///
    /// This is the factory flow of the paper's yield discussion: after
    /// `manufacture_test`, remaining single-bit in-field hard errors can
    /// be absorbed by a SECDED horizontal code without redundancy.
    pub fn manufacture_test(&mut self, kind: crate::march::MarchKind) -> crate::march::MarchReport {
        let report = crate::march::run_march(&mut self.grid, &self.faults, kind);
        for &(r, c) in &report.faulty_cells {
            self.faults.clear_stuck(r, c);
            report_remap(&mut self.stats);
        }
        // March tests destroy content: reset to a known-zero state.
        let zero = Bits::zeros(self.cols());
        for r in 0..self.rows() {
            self.grid.set_row(r, &zero);
        }
        let rows: Vec<Bits> = (0..self.rows()).map(|r| self.read_row_raw(r)).collect();
        self.vparity.rebuild(rows.iter());
        report
    }

    /// Scrub pass: audits every row, running recovery if anything is
    /// found. Returns whether the array was clean to begin with.
    ///
    /// On a clean bank with no stuck-at overlay this is allocation-free:
    /// row verification runs batched over the raw limb block
    /// ([`BankScheme::rows_clean_limbs`]) and the stripe audit folds into
    /// the engine scratch rows.
    pub fn scrub(&mut self) -> Result<bool, EngineError> {
        self.stats.scrub_passes += 1;
        let was_clean = !self.any_row_failing() && !self.any_stripe_failing();
        if !was_clean {
            self.recover()?;
        }
        Ok(was_clean)
    }

    /// Whether any row has an uncorrectable word — the allocation-free
    /// core of [`TwoDArray::failing_rows`] for callers that only need the
    /// boolean. With no stuck-at overlay the raw limb block *is* the
    /// observable content, so a batched clean-mask sweep over all rows
    /// (one pass per mask, many rows per pass) settles the common case
    /// without copying a single row; any dirtiness falls back to the
    /// per-row decode walk for an exact answer.
    fn any_row_failing(&mut self) -> bool {
        if self.faults.is_empty()
            && self.scheme.rows_clean_limbs(
                self.grid.row_range_limbs(0, self.rows()),
                self.grid.limbs_per_row(),
                self.rows(),
            )
        {
            // Every word of every row checks clean, and clean words are
            // never uncorrectable.
            return false;
        }
        for r in 0..self.rows() {
            self.load_scratch_row(r);
            if self.row_has_uncorrectable(&self.scratch_row) {
                return true;
            }
        }
        false
    }

    /// Whether any vertical stripe has a nonzero syndrome — the
    /// allocation-free core of [`TwoDArray::failing_stripes`] for callers
    /// that only need the boolean (the scrub wrap check). Folds each
    /// stripe's rows into the engine scratch instead of collecting them.
    fn any_stripe_failing(&mut self) -> bool {
        let v = self.vparity.interleave();
        for stripe in 0..v {
            self.scratch_aux.copy_from(self.vparity.parity_row(stripe));
            let mut r = stripe;
            while r < self.rows() {
                self.load_scratch_row(r);
                self.scratch_aux.xor_assign(&self.scratch_row);
                r += v;
            }
            if !self.scratch_aux.is_zero() {
                return true;
            }
        }
        false
    }

    /// The next row an incremental scrub slice will scan.
    pub fn scrub_cursor(&self) -> usize {
        self.scrub_cursor
    }

    /// Incremental scrub: scans at most `max_rows` rows from the internal
    /// cursor, checking each against its horizontal code without
    /// allocating. Any dirty row triggers the full 2D recovery (the
    /// paper's repair process is bank-global; only *detection* is
    /// sliced). When the cursor reaches the last row, the vertical stripe
    /// parities are verified too — so one complete sweep of slices gives
    /// exactly the coverage of [`TwoDArray::scrub`] — and the cursor
    /// wraps.
    ///
    /// A background scrubber uses this to sweep a bank in short
    /// lock-bounded bursts, keeping foreground read/write latency bounded
    /// by `max_rows` row scans instead of a whole-bank audit.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Uncorrectable`] when a triggered recovery
    /// cannot restore the damage.
    ///
    /// # Panics
    ///
    /// Panics if `max_rows == 0`.
    pub fn scrub_step(&mut self, max_rows: usize) -> Result<ScrubSlice, EngineError> {
        assert!(max_rows > 0, "a scrub slice must cover at least one row");
        let start = self.scrub_cursor;
        let end = (start + max_rows).min(self.rows());
        let count = end - start;
        let mut slice = ScrubSlice::default();
        // Batched fast path: with no stuck-at overlay the raw limb block
        // is the observable content, so the whole slice is verified in one
        // mask-outer/rows-inner sweep over a single borrow of the grid —
        // no per-row copy, no allocation. Only a dirty slice (or an active
        // fault overlay) pays for the per-row walk that attributes
        // dirtiness to individual rows.
        let batch_clean = self.faults.is_empty()
            && self.scheme.rows_clean_limbs(
                self.grid.row_range_limbs(start, count),
                self.grid.limbs_per_row(),
                count,
            );
        if !batch_clean {
            for r in start..end {
                self.load_scratch_row(r);
                if !self.row_clean(&self.scratch_row) {
                    slice.dirty_rows += 1;
                }
            }
        }
        slice.rows_scanned = count;
        self.stats.scrub_slices += 1;
        self.stats.scrub_rows_scanned += slice.rows_scanned as u64;
        self.stats.scrub_errors_found += slice.dirty_rows as u64;
        let mut need_recovery = slice.dirty_rows > 0;
        if end == self.rows() {
            // Sweep complete: close it out with the stripe-parity check
            // that row-granular scans cannot see (errors confined to the
            // parity rows themselves).
            slice.wrapped = true;
            self.scrub_cursor = 0;
            need_recovery |= self.any_stripe_failing();
        } else {
            self.scrub_cursor = end;
        }
        if need_recovery {
            slice.recovered = true;
            self.recover()?;
        }
        Ok(slice)
    }

    /// Whether every word of a physical row stores a self-consistent
    /// codeword, checked against the precomputed clean masks.
    fn row_clean(&self, row: &Bits) -> bool {
        (0..self.words_per_row()).all(|w| self.word_clean(row, w))
    }

    /// Applies the repair staged in `cache.scratch` to row `r` and
    /// patches the recovery caches: row contents, clean flag, and the
    /// stripe syndrome. The stored parity reflects intended data and
    /// repairs restore intended data, so the syndrome changes by exactly
    /// `old ^ new-observable`. Allocation-free: the observable row after
    /// the repair lands back in the cache's own row buffer.
    fn commit_row_repair(
        &mut self,
        r: usize,
        cache: &mut RecoveryCache,
        report: &mut RecoveryReport,
    ) {
        self.apply_row_repair(r, report, &cache.scratch);
        let stripe = r % self.vparity.interleave();
        cache.stripe_syn[stripe].xor_assign(&cache.rows[r]);
        self.read_row_raw_into(r, &mut cache.rows[r]);
        cache.stripe_syn[stripe].xor_assign(&cache.rows[r]);
        cache.clean[r] = self.row_clean(&cache.rows[r]);
    }

    /// Attempts SECDED-style inline repair of every dirty word of row `r`.
    /// The candidate row is staged in `cache.scratch` and word decodes go
    /// through the reusable [`ecc::DecodeScratch`], so the only per-call
    /// allocations left are the word extraction buffers of genuinely
    /// dirty words.
    fn try_inline_row_fix(
        &mut self,
        r: usize,
        cache: &mut RecoveryCache,
        report: &mut RecoveryReport,
    ) -> bool {
        cache.scratch.copy_from(&cache.rows[r]);
        let mut fixed_any = false;
        for w in 0..self.words_per_row() {
            if self.word_clean(&cache.scratch, w) {
                continue;
            }
            let data = self.layout().extract_data(&cache.scratch, w);
            let check = self.layout().extract_check(&cache.scratch, w);
            if let DecodedInPlace::Corrected =
                self.hcode()
                    .decode_into(&data, &check, &mut cache.word_out, &mut cache.decode)
            {
                let new_check = self.hcode().encode(&cache.word_out);
                self.layout()
                    .place_word(&mut cache.scratch, w, &cache.word_out, &new_check);
                fixed_any = true;
            }
        }
        if fixed_any && self.row_clean(&cache.scratch) {
            let flips =
                ecc::kernels::xor_popcount(cache.rows[r].as_limbs(), cache.scratch.as_limbs());
            self.commit_row_repair(r, cache, report);
            report.bits_flipped += flips;
            report.rows_repaired.push(r);
            true
        } else {
            false
        }
    }

    /// Column-mode repair of one row: for each word whose horizontal
    /// syndrome is nonzero, flip suspect columns that uniquely explain the
    /// syndrome. All column intersections happen at limb granularity via
    /// row-width masks.
    fn try_column_mode_fix(
        &mut self,
        r: usize,
        suspect: &Bits,
        cache: &mut RecoveryCache,
        report: &mut RecoveryReport,
    ) -> bool {
        // Try flipping all suspect columns in this row; verify each word.
        cache.scratch.copy_from(&cache.rows[r]);
        cache.scratch.xor_assign(suspect);
        if self.row_clean(&cache.scratch) {
            report.bits_flipped += suspect.count_ones();
            report
                .column_mode_bits
                .extend(suspect.iter_ones().map(|c| (r, c)));
            self.commit_row_repair(r, cache, report);
            return true;
        }
        // Otherwise, try per-word subsets: flip only the suspect columns
        // of words whose check currently fails. Trial flips are applied
        // to the staged row and reverted in place when the word still
        // fails its check.
        cache.scratch.copy_from(&cache.rows[r]);
        let mut flipped_cols: Vec<usize> = Vec::new();
        for w in 0..self.words_per_row() {
            if self.word_clean(&cache.scratch, w) {
                continue;
            }
            let word_suspects = suspect.and(self.scheme.word_col_mask(w));
            if word_suspects.is_zero() {
                continue;
            }
            cache.scratch.xor_assign(&word_suspects);
            if self.word_clean(&cache.scratch, w) {
                flipped_cols.extend(word_suspects.iter_ones());
            } else {
                cache.scratch.xor_assign(&word_suspects);
            }
        }
        if !flipped_cols.is_empty() && self.row_clean(&cache.scratch) {
            report.bits_flipped += flipped_cols.len();
            report
                .column_mode_bits
                .extend(flipped_cols.iter().map(|&c| (r, c)));
            self.commit_row_repair(r, cache, report);
            true
        } else {
            false
        }
    }

    /// Writes a repaired row. The stored parity reflects the intended
    /// data, so restoring corrupted cells to their intended values leaves
    /// the parity untouched. Cells that reject the repair (stuck-at hard
    /// faults) are substituted by the BISR remap stage when enabled —
    /// the paper implements recovery inside BIST/BISR hardware for
    /// exactly this reason.
    fn apply_row_repair(&mut self, r: usize, report: &mut RecoveryReport, repaired: &Bits) {
        self.write_row_raw(r, repaired);
        let observable = self.read_row_raw(r);
        if observable != *repaired && self.bisr_remap {
            let stuck_discrepancy = observable.xor(repaired);
            for c in stuck_discrepancy.iter_ones() {
                self.faults.clear_stuck(r, c);
                self.grid.set(r, c, repaired.get(c));
                report.cells_remapped.push((r, c));
                self.stats.cells_remapped += 1;
            }
        }
    }
}

/// Incremental state shared by the passes of one [`TwoDArray::recover`]
/// call: row contents (through the stuck-at overlay), per-row decode
/// outcomes, and per-stripe vertical syndromes, plus the reusable repair
/// staging buffers (candidate row, decoded word, decode scratch).
///
/// The cache is owned by the engine and rebuilt in place at the start of
/// each recovery ([`RecoveryCache::rebuild`]): after the first recovery
/// of a bank's lifetime, subsequent ones reuse every buffer and the
/// snapshot phase allocates nothing. Patched in place by
/// [`TwoDArray::commit_row_repair`].
#[derive(Default)]
struct RecoveryCache {
    rows: Vec<Bits>,
    clean: Vec<bool>,
    stripe_syn: Vec<Bits>,
    /// Repair staging row: candidate content a fix pass builds before
    /// verification and commit.
    scratch: Bits,
    /// Decoded-data landing buffer for word repairs (`data_bits` wide).
    word_out: Bits,
    /// Reusable BCH decode working set threaded through the repair path.
    decode: ecc::DecodeScratch,
}

impl RecoveryCache {
    /// Refills the cache from the bank's current observable state,
    /// reusing every buffer from the previous recovery when the geometry
    /// matches (it always does for an engine-owned cache; the first call
    /// sizes everything).
    fn rebuild(&mut self, bank: &TwoDArray) {
        let rows = bank.rows();
        let cols = bank.cols();
        let v = bank.vparity.interleave();
        if self.rows.len() != rows || self.rows.first().is_some_and(|b| b.len() != cols) {
            self.rows = (0..rows).map(|_| Bits::zeros(cols)).collect();
            self.stripe_syn = (0..v).map(|_| Bits::zeros(cols)).collect();
            self.scratch = Bits::zeros(cols);
            self.word_out = Bits::zeros(bank.layout().data_bits());
        }
        self.clean.clear();
        self.clean.resize(rows, false);
        for s in 0..v {
            self.stripe_syn[s].copy_from(bank.vparity.parity_row(s));
        }
        for r in 0..rows {
            let row = &mut self.rows[r];
            bank.read_row_raw_into(r, row);
            self.stripe_syn[r % v].xor_assign(row);
            self.clean[r] = bank.row_clean(row);
        }
    }

    /// Union of every stripe's flagged columns as a row-width mask
    /// (limb-level OR instead of per-bit set insertion).
    fn suspect_columns(&self) -> Bits {
        let mut union = Bits::zeros(self.stripe_syn[0].len());
        for syn in &self.stripe_syn {
            union.or_assign(syn);
        }
        union
    }
}

fn report_remap(stats: &mut EngineStats) {
    stats.cells_remapped += 1;
}

impl fmt::Debug for TwoDArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TwoDArray({} rows x {} cols, {} words/row, hcode={}, V={})",
            self.rows(),
            self.cols(),
            self.words_per_row(),
            self.hcode().name(),
            self.vparity.interleave()
        )
    }
}

/// Widest row (in limbs) the probe's stack snapshot covers. Rows wider
/// than this make [`ArrayProbe::peek_word_u64`] return `None` — every
/// paper configuration (288-col data rows, 232-col tag rows, 544-col L2
/// rows) fits with room to spare.
pub const PROBE_MAX_ROW_LIMBS: usize = 16;

/// A borrow-free, verify-only window onto one bank's cell grid — the
/// reader half of a seqlock optimistic-read protocol.
///
/// A probe is captured once from a live [`TwoDArray`]
/// ([`TwoDArray::probe`]) and then used from threads that do **not**
/// hold any borrow of the array: [`ArrayProbe::peek_word_u64`] snapshots
/// one row's limbs with relaxed atomic loads, checks the word's clean
/// masks against the snapshot, and extracts the data bits — no
/// allocation, no stats, no mutation, no reference into the racing
/// storage is ever formed.
///
/// # What the probe does *not* guarantee
///
/// A peek can race a writer mutating the same row under its lock. The
/// snapshot may then mix old and new limbs ("torn"). Torn data is
/// *memory-safe* here — every index the probe uses derives from
/// construction-time geometry, never from loaded cell content — but the
/// returned value is garbage. The caller **must** sandwich the peek in a
/// sequence-counter validation (snapshot an even sequence before,
/// confirm it unchanged after) and discard the value otherwise; see
/// `docs/CONCURRENCY.md` for the full protocol and its happens-before
/// argument.
///
/// The probe also bypasses the stuck-at fault overlay
/// ([`TwoDArray::fault_map`]) — a raw limb snapshot cannot consult the
/// `BTreeMap` lock-free. Callers must keep a "hard faults present" hint
/// alongside the sequence counter and stop peeking while the overlay is
/// nonempty; `twod_cache`'s concurrent service does exactly that.
///
/// # Safety contract
///
/// `peek_word_u64` is `unsafe` because the probe holds a raw pointer to
/// the grid's limb buffer: the caller must guarantee the originating
/// [`TwoDArray`] is still alive (not dropped) at every call. The pointer
/// itself stays valid for the array's whole lifetime — the grid's
/// backing `Vec<u64>` is sized at construction and never reallocated by
/// any operation, so moving the owning struct does not move the heap
/// buffer.
///
/// # Examples
///
/// ```
/// use ecc::CodeKind;
/// use memarray::{TwoDArray, TwoDConfig};
///
/// let mut bank = TwoDArray::new(TwoDConfig {
///     rows: 64,
///     horizontal: CodeKind::Edc(8),
///     data_bits: 64,
///     interleave: 4,
///     vertical_rows: 16,
/// });
/// bank.try_write_word_u64(3, 1, 0, 0xBEEF, 64);
/// let probe = bank.probe();
/// // Quiescent bank, no concurrent writer: the peek is immediately
/// // trustworthy. Under contention a seqlock validation is required.
/// let v = unsafe { probe.peek_word_u64(3, 1, 0, 64) };
/// assert_eq!(v, Some(0xBEEF));
/// ```
pub struct ArrayProbe {
    /// Keeps the clean masks / layout alive independently of the array.
    scheme: Arc<BankScheme>,
    /// First limb of the grid's row-major storage (never reallocated).
    base: *const u64,
    limbs_per_row: usize,
    rows: usize,
    words_per_row: usize,
}

// SAFETY: the probe is an immutable bundle of geometry plus a raw
// pointer used only for relaxed atomic loads; all synchronization
// obligations are pushed onto the caller's seqlock (see type docs).
unsafe impl Send for ArrayProbe {}
unsafe impl Sync for ArrayProbe {}

impl ArrayProbe {
    /// Snapshots row `row` with relaxed atomic limb loads and, when word
    /// `word` checks clean against the snapshot, extracts `width` data
    /// bits at `bit_offset`. Returns `None` when the word fails its
    /// horizontal check (possibly due to a torn snapshot — either way
    /// the caller falls back to the locked path) or when the row is
    /// wider than [`PROBE_MAX_ROW_LIMBS`] limbs.
    ///
    /// # Safety
    ///
    /// The [`TwoDArray`] this probe was captured from must still be
    /// alive. Concurrent writers are allowed — that is the point — but
    /// the returned value is only trustworthy after the caller's
    /// sequence validation (see the type-level docs).
    ///
    /// # Panics
    ///
    /// Panics if `row`/`word` are out of range or the bit window falls
    /// outside the word's data bits. Never panics *because of* racing
    /// writes: all bounds derive from construction-time geometry.
    pub unsafe fn peek_word_u64(
        &self,
        row: usize,
        word: usize,
        bit_offset: usize,
        width: usize,
    ) -> Option<u64> {
        let mut snapshot = [0u64; PROBE_MAX_ROW_LIMBS];
        let limbs = self.snapshot_row(row, &mut snapshot)?;
        assert!(word < self.words_per_row, "word {word} out of range");
        if !self.scheme.word_clean_limbs(limbs, word) {
            return None;
        }
        Some(
            self.scheme
                .layout()
                .extract_data_u64_from_limbs(limbs, word, bit_offset, width),
        )
    }

    /// Snapshots row `row` into `buf` with relaxed atomic limb loads and
    /// returns the row's occupied prefix of `buf`. Returns `None` when
    /// the row is wider than [`PROBE_MAX_ROW_LIMBS`] limbs or (on exotic
    /// targets) `AtomicU64` is not layout-compatible with `u64` — the
    /// optimistic lane is unavailable and callers take the locked path.
    ///
    /// Separating the snapshot from [`Self::word_clean_in`] /
    /// [`Self::extract_in`] lets a caller amortize one row snapshot over
    /// several words (a set's tag entries share a row) and defer the
    /// clean-mask verification until a word is actually going to be
    /// trusted — the seqlock fast path extracts every way's tag
    /// unverified, then verifies only the matching way.
    ///
    /// # Safety
    ///
    /// The [`TwoDArray`] this probe was captured from must still be
    /// alive. Concurrent writers may tear the snapshot; the caller's
    /// sequence validation decides whether anything derived from it may
    /// be kept (see the type-level docs).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub unsafe fn snapshot_row<'a>(
        &self,
        row: usize,
        buf: &'a mut [u64; PROBE_MAX_ROW_LIMBS],
    ) -> Option<&'a [u64]> {
        use std::sync::atomic::{AtomicU64, Ordering};
        assert!(row < self.rows, "row {row} out of range");
        if self.limbs_per_row > PROBE_MAX_ROW_LIMBS
            || std::mem::size_of::<AtomicU64>() != std::mem::size_of::<u64>()
            || std::mem::align_of::<AtomicU64>() != std::mem::align_of::<u64>()
        {
            return None;
        }
        let base = self.base.add(row * self.limbs_per_row);
        for (i, limb) in buf.iter_mut().take(self.limbs_per_row).enumerate() {
            // SAFETY (of the cast): AtomicU64 has the same size and
            // alignment as u64 (checked above) and the grid's limbs are
            // only ever touched as whole u64s. Relaxed is enough — the
            // caller's acquire fence after the probes orders the loads
            // against the sequence re-check.
            *limb = (*(base.add(i) as *const AtomicU64)).load(Ordering::Relaxed);
        }
        Some(&buf[..self.limbs_per_row])
    }

    /// Whether word `word` passes its horizontal clean check against a
    /// row snapshot previously taken with [`Self::snapshot_row`] on this
    /// probe. A `false` may mean real damage or a torn snapshot; either
    /// way the caller falls back to the locked path.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range or `limbs` is shorter than the
    /// probe's row width.
    pub fn word_clean_in(&self, limbs: &[u64], word: usize) -> bool {
        assert!(word < self.words_per_row, "word {word} out of range");
        self.scheme.word_clean_limbs(limbs, word)
    }

    /// Extracts `width` data bits at `bit_offset` of word `word` from a
    /// row snapshot previously taken with [`Self::snapshot_row`] on this
    /// probe, **without** any clean check: the caller decides whether
    /// (and when) to pay for [`Self::word_clean_in`]. Extracting
    /// unverified bits is sound as long as acting on them is gated on
    /// verification or on a fallback that re-reads under the lock.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range, the bit window falls outside
    /// the word's data bits, or `limbs` is shorter than the probe's row
    /// width.
    pub fn extract_in(&self, limbs: &[u64], word: usize, bit_offset: usize, width: usize) -> u64 {
        assert!(word < self.words_per_row, "word {word} out of range");
        self.scheme
            .layout()
            .extract_data_u64_from_limbs(limbs, word, bit_offset, width)
    }

    /// Number of data rows of the underlying bank.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Words per row (the interleave degree) of the underlying bank.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }
}

impl fmt::Debug for ArrayProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ArrayProbe({} rows x {} limbs/row, {} words/row)",
            self.rows, self.limbs_per_row, self.words_per_row
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc::CodeKind;

    fn paper_bank() -> TwoDArray {
        // 256 rows x 256 data bits: EDC8 horizontal, 4-way interleave,
        // EDC32 vertical — the Figure 3(c) configuration.
        TwoDArray::new(TwoDConfig {
            rows: 256,
            horizontal: CodeKind::Edc(8),
            data_bits: 64,
            interleave: 4,
            vertical_rows: 32,
        })
    }

    fn fill(bank: &mut TwoDArray, seed: u64) -> Vec<Vec<Bits>> {
        let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(7);
        let mut words = Vec::new();
        for r in 0..bank.rows() {
            let mut row_words = Vec::new();
            for w in 0..bank.words_per_row() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let data = Bits::from_u64(state, bank.layout().data_bits());
                bank.write_word(r, w, &data);
                row_words.push(data);
            }
            words.push(row_words);
        }
        words
    }

    #[test]
    fn clean_write_read_roundtrip() {
        let mut bank = paper_bank();
        let words = fill(&mut bank, 1);
        for r in (0..256).step_by(37) {
            for w in 0..4 {
                let out = bank.read_word(r, w).unwrap();
                assert_eq!(out, ReadOutcome::Clean(words[r][w].clone()));
            }
        }
        assert!(bank.audit());
    }

    #[test]
    fn single_bit_error_recovers() {
        let mut bank = paper_bank();
        let words = fill(&mut bank, 2);
        bank.inject(ErrorShape::Single { row: 100, col: 40 });
        let out = bank.read_word(100, 0).unwrap();
        // col 40 -> word 0, bit 10
        assert_eq!(bank.layout().col_to_word_bit(40), (0, 10));
        assert_eq!(out.into_data(), words[100][0]);
        assert!(bank.audit());
    }

    #[test]
    fn cluster_32x32_recovers() {
        let mut bank = paper_bank();
        let words = fill(&mut bank, 3);
        bank.inject(ErrorShape::Cluster {
            row: 10,
            col: 50,
            height: 32,
            width: 32,
        });
        for r in 10..42 {
            for w in 0..4 {
                let out = bank.read_word(r, w).unwrap();
                assert_eq!(out.into_data(), words[r][w], "row {r} word {w}");
            }
        }
        assert!(bank.audit());
    }

    #[test]
    fn full_row_failure_recovers() {
        let mut bank = paper_bank();
        let words = fill(&mut bank, 4);
        bank.inject(ErrorShape::Row { row: 77 });
        for w in 0..4 {
            let out = bank.read_word(77, w).unwrap();
            assert_eq!(out.into_data(), words[77][w]);
        }
        assert!(bank.audit());
    }

    #[test]
    fn hard_column_failure_recovers_via_bisr() {
        // A stuck-at bitline: roughly half the rows read wrong at the
        // failed column. Vertical syndromes localize the column (stripes
        // with an odd number of discrepancies expose it), the horizontal
        // code flags the affected rows, and BISR remap substitutes the
        // dead cells.
        let mut bank = paper_bank();
        let words = fill(&mut bank, 5);
        bank.inject_hard(ErrorShape::Column { col: 123 }, true);
        let (word, _) = bank.layout().col_to_word_bit(123);
        for r in (0..256).step_by(13) {
            let out = bank.read_word(r, word).unwrap();
            assert_eq!(out.into_data(), words[r][word], "row {r}");
        }
        assert!(bank.stats().cells_remapped > 0);
        assert!(bank.audit());
    }

    #[test]
    fn transient_column_segment_recovers() {
        // A transient flip of one column across 200 rows spans far more
        // than V=32 rows, so row-mode reconstruction is impossible; the
        // column-mode path must locate and fix it. (200 = 6*32 + 8, so
        // every stripe holds an odd number of flips and the vertical
        // syndrome exposes the column.)
        let mut bank = paper_bank();
        let words = fill(&mut bank, 14);
        bank.inject(ErrorShape::Cluster {
            row: 0,
            col: 123,
            height: 200,
            width: 1,
        });
        let (word, _) = bank.layout().col_to_word_bit(123);
        for r in (0..200).step_by(11) {
            let out = bank.read_word(r, word).unwrap();
            assert_eq!(out.into_data(), words[r][word], "row {r}");
        }
        assert!(bank.audit());
    }

    #[test]
    fn cluster_33_rows_fails() {
        // Taller than V=32 in one stripe: two faulty rows share a stripe.
        let mut bank = paper_bank();
        let _ = fill(&mut bank, 6);
        bank.inject(ErrorShape::Cluster {
            row: 0,
            col: 0,
            height: 33,
            width: 33,
        });
        // Rows 0 and 32 share stripe 0 -> reconstruction must fail.
        let result = bank.read_word(0, 0);
        assert!(result.is_err(), "expected uncorrectable, got {result:?}");
    }

    #[test]
    fn writes_after_errors_stay_consistent() {
        let mut bank = paper_bank();
        let _ = fill(&mut bank, 7);
        bank.inject(ErrorShape::Single { row: 5, col: 5 });
        // Writing the same row triggers latent-error recovery first.
        let newdata = Bits::from_u64(0x1234_5678, 64);
        bank.write_word(5, 1, &newdata);
        assert!(bank.audit());
        assert_eq!(bank.read_word(5, 1).unwrap().into_data(), newdata);
    }

    #[test]
    fn secded_horizontal_corrects_inline() {
        let mut bank = TwoDArray::new(TwoDConfig {
            rows: 64,
            horizontal: CodeKind::Secded,
            data_bits: 64,
            interleave: 2,
            vertical_rows: 16,
        });
        let words = fill(&mut bank, 8);
        bank.inject(ErrorShape::Single { row: 9, col: 0 });
        let out = bank.read_word(9, 0).unwrap();
        assert!(matches!(out, ReadOutcome::CorrectedInline(_)));
        assert_eq!(out.into_data(), words[9][0]);
        assert_eq!(bank.stats().inline_corrections, 1);
        // The writeback leaves everything consistent.
        assert!(bank.audit());
    }

    #[test]
    fn secded_hard_fault_still_protected() {
        // A stuck cell is corrected inline on every read, and the array
        // still recovers a clustered soft error on top (the paper's yield
        // argument).
        let mut bank = TwoDArray::new(TwoDConfig {
            rows: 64,
            horizontal: CodeKind::Secded,
            data_bits: 64,
            interleave: 2,
            vertical_rows: 16,
        });
        let words = fill(&mut bank, 9);
        // Stuck-at fault.
        bank.inject_hard(ErrorShape::Single { row: 20, col: 10 }, true);
        let (w, _) = bank.layout().col_to_word_bit(10);
        let out = bank.read_word(20, w).unwrap();
        assert_eq!(out.data(), &words[20][w]);
        // Now a clustered soft error elsewhere.
        bank.inject(ErrorShape::Cluster {
            row: 30,
            col: 0,
            height: 8,
            width: 16,
        });
        for r in 30..38 {
            for w in 0..2 {
                assert_eq!(
                    bank.read_word(r, w).unwrap().into_data(),
                    words[r][w],
                    "row {r} word {w}"
                );
            }
        }
    }

    #[test]
    fn stats_count_extra_reads() {
        let mut bank = paper_bank();
        let _ = fill(&mut bank, 10);
        let stats = bank.stats();
        assert_eq!(stats.writes, 256 * 4);
        assert_eq!(stats.extra_reads, 256 * 4);
    }

    #[test]
    fn recovery_reports_march_cost() {
        let mut bank = paper_bank();
        let _ = fill(&mut bank, 11);
        bank.inject(ErrorShape::Row { row: 1 });
        let report = bank.recover().unwrap();
        assert_eq!(report.rows_repaired, vec![1]);
        // At least one full march over the 256 rows.
        assert!(report.cycles >= 256);
    }

    #[test]
    fn scrub_detects_and_repairs() {
        let mut bank = paper_bank();
        let words = fill(&mut bank, 12);
        assert!(bank.scrub().unwrap());
        bank.inject(ErrorShape::Single { row: 3, col: 3 });
        assert!(!bank.scrub().unwrap());
        assert!(bank.audit());
        // Read back the word the injected column actually lands in, so
        // the check stays valid if the layout's interleave ever changes.
        let (w, _) = bank.layout().col_to_word_bit(3);
        assert_eq!(bank.read_word(3, w).unwrap().into_data(), words[3][w]);
    }

    #[test]
    fn scrub_step_sweeps_and_wraps() {
        let mut bank = paper_bank();
        let _ = fill(&mut bank, 30);
        // 256 rows in slices of 100: 100 + 100 + 56, then wrap.
        let s1 = bank.scrub_step(100).unwrap();
        assert_eq!((s1.rows_scanned, s1.wrapped), (100, false));
        assert_eq!(bank.scrub_cursor(), 100);
        let s2 = bank.scrub_step(100).unwrap();
        assert_eq!((s2.rows_scanned, s2.wrapped), (100, false));
        let s3 = bank.scrub_step(100).unwrap();
        assert_eq!((s3.rows_scanned, s3.wrapped), (56, true));
        assert_eq!(bank.scrub_cursor(), 0);
        let stats = bank.stats();
        assert_eq!(stats.scrub_slices, 3);
        assert_eq!(stats.scrub_rows_scanned, 256);
        assert_eq!(stats.scrub_errors_found, 0);
    }

    #[test]
    fn scrub_step_finds_and_repairs_dirty_rows() {
        let mut bank = paper_bank();
        let words = fill(&mut bank, 31);
        bank.inject(ErrorShape::Cluster {
            row: 10,
            col: 0,
            height: 8,
            width: 8,
        });
        // The slice covering rows 0..64 sees the cluster and repairs it.
        let slice = bank.scrub_step(64).unwrap();
        assert_eq!(slice.dirty_rows, 8);
        assert!(slice.recovered);
        assert!(bank.audit());
        assert_eq!(bank.read_word(10, 0).unwrap().into_data(), words[10][0]);
        assert_eq!(bank.stats().scrub_errors_found, 8);
        // Errors behind the cursor are still caught: the wrap-time
        // stripe check (or at latest the next pass over those rows)
        // repairs them.
        bank.inject(ErrorShape::Single { row: 2, col: 2 });
        let mut recovered = false;
        for _ in 0..8 {
            recovered = bank.scrub_step(64).unwrap().recovered;
            if recovered {
                break;
            }
        }
        assert!(recovered, "sweep must find the error behind the cursor");
        assert!(bank.audit());
    }

    #[test]
    fn scrub_step_wrap_checks_stripe_parity() {
        let mut bank = paper_bank();
        let _ = fill(&mut bank, 32);
        // Corrupt a parity row: no data row fails its horizontal check,
        // so only the wrap-time stripe verification can see it.
        let bad = Bits::ones(bank.cols());
        bank.vparity.set_parity_row(3, bad);
        let s1 = bank.scrub_step(128).unwrap();
        assert!(!s1.recovered, "mid-sweep slices scan rows only");
        let s2 = bank.scrub_step(128).unwrap();
        assert!(s2.wrapped);
        assert!(s2.recovered, "wrap must verify the stripes");
        assert!(bank.audit());
    }

    #[test]
    fn full_sweep_of_slices_equals_scrub_coverage() {
        let mut bank = paper_bank();
        let words = fill(&mut bank, 33);
        bank.inject(ErrorShape::Cluster {
            row: 200,
            col: 40,
            height: 16,
            width: 16,
        });
        let mut slices = 0;
        loop {
            let s = bank.scrub_step(32).unwrap();
            slices += 1;
            if s.wrapped {
                break;
            }
        }
        assert_eq!(slices, 8);
        assert!(bank.audit());
        assert_eq!(bank.read_word(205, 2).unwrap().into_data(), words[205][2]);
    }

    #[test]
    fn manufacture_test_clears_factory_defects() {
        use crate::march::MarchKind;
        let mut bank = TwoDArray::new(TwoDConfig {
            rows: 32,
            horizontal: CodeKind::Secded,
            data_bits: 64,
            interleave: 2,
            vertical_rows: 8,
        });
        // Factory defects: several stuck cells.
        bank.inject_hard(ErrorShape::Single { row: 3, col: 7 }, true);
        bank.inject_hard(ErrorShape::Single { row: 20, col: 99 }, false);
        let report = bank.manufacture_test(MarchKind::MarchCMinus);
        // March C- finds both; stuck-at-0 cells only fail when 1 is
        // expected, which March C- exercises in both orders.
        assert_eq!(report.faulty_cells.len(), 2, "{report:?}");
        assert!(bank.fault_map().is_empty(), "defects remapped to spares");
        // The array is usable and consistent afterwards.
        let word = Bits::from_u64(0xCAFE, 64);
        bank.write_word(3, 0, &word);
        assert_eq!(bank.read_word(3, 0).unwrap().into_data(), word);
        assert!(bank.audit());
    }

    #[test]
    fn silent_writes_suppressed_and_counted() {
        // Kishani et al.: a write whose data equals the stored word can
        // skip all coding work. The read-before-write detects it for free.
        let mut bank = paper_bank();
        let word = Bits::from_u64(0xFEED_F00D, 64);
        bank.write_word(9, 2, &word);
        let grid_before = bank.grid.clone();
        let vparity_before = bank.vparity.clone();
        bank.write_word(9, 2, &word); // silent: nothing may change
        assert_eq!(bank.stats().silent_writes, 1);
        assert_eq!(bank.grid, grid_before, "row write suppressed");
        assert_eq!(bank.vparity, vparity_before, "parity update suppressed");
        // The write still counts as a write (and its read-before-write).
        assert_eq!(bank.stats().writes, 2);
        assert_eq!(bank.stats().extra_reads, 2);
        // The u64 lane detects silence the same way.
        assert_eq!(
            bank.try_write_word_u64(9, 2, 0, 0xFEED_F00D, 64),
            Some(WriteKind::Silent)
        );
        assert_eq!(bank.stats().silent_writes, 2);
        assert!(bank.audit());
    }

    #[test]
    fn u64_lanes_roundtrip_and_fall_back() {
        let mut bank = paper_bank();
        let words = fill(&mut bank, 21);
        // Clean reads through the lane match the Bits path.
        for r in (0..256).step_by(17) {
            for w in 0..4 {
                assert_eq!(
                    bank.try_read_word_u64(r, w, 0, 64),
                    Some(words[r][w].to_u64()),
                    "row {r} word {w}"
                );
            }
        }
        // Sub-word write through the lane, then full-word readback.
        assert_eq!(
            bank.try_write_word_u64(30, 1, 16, 0xABCD, 16),
            Some(WriteKind::Stored)
        );
        let mut expect = words[30][1].clone();
        expect.write_slice(16, &Bits::from_u64(0xABCD, 16));
        assert_eq!(bank.read_word(30, 1).unwrap().into_data(), expect);
        assert!(bank.audit(), "delta write keeps check bits and parity");
        // A dirty word refuses the lane and leaves no trace in the stats.
        bank.inject(ErrorShape::Single { row: 40, col: 2 });
        let (w, _) = bank.layout().col_to_word_bit(2);
        let stats_before = bank.stats();
        assert_eq!(bank.try_read_word_u64(40, w, 0, 64), None);
        assert_eq!(bank.try_write_word_u64(40, w, 0, 1, 64), None);
        assert_eq!(bank.stats(), stats_before);
        // The Bits fallback then recovers and serves the access.
        assert_eq!(bank.read_word(40, w).unwrap().into_data(), words[40][w]);
    }

    #[test]
    fn row_lanes_write_once_and_read_back() {
        let mut bank = paper_bank();
        let _ = fill(&mut bank, 22);
        let values = [0x1111u64, 0x2222, 0x3333, 0x4444];
        let stats_before = bank.stats();
        assert!(bank.try_write_row_u64(77, &values));
        let after = bank.stats();
        assert_eq!(after.extra_reads, stats_before.extra_reads + 1);
        assert_eq!(after.writes, stats_before.writes + 4);
        let mut out = [0u64; 4];
        assert!(bank.try_read_row_u64(77, &mut out));
        assert_eq!(out, values);
        assert!(bank.audit());
        // Rewriting the identical row is silent for all four words.
        assert!(bank.try_write_row_u64(77, &values));
        assert_eq!(bank.stats().silent_writes, 4);
        // A dirty row refuses both lanes.
        bank.inject(ErrorShape::Single { row: 77, col: 0 });
        assert!(!bank.try_read_row_u64(77, &mut out));
        assert!(!bank.try_write_row_u64(77, &values));
    }

    #[test]
    fn read_word_into_matches_read_word() {
        let mut bank = paper_bank();
        let words = fill(&mut bank, 23);
        let mut buf = Bits::zeros(64);
        assert_eq!(
            bank.read_word_into(3, 1, &mut buf).unwrap(),
            ReadKind::Clean
        );
        assert_eq!(buf, words[3][1]);
        // Dirty word: the scratch variant reports the recovery kind.
        bank.inject(ErrorShape::Cluster {
            row: 3,
            col: 0,
            height: 1,
            width: 8,
        });
        assert_eq!(
            bank.read_word_into(3, 1, &mut buf).unwrap(),
            ReadKind::Recovered
        );
        assert_eq!(buf, words[3][1]);
    }

    #[test]
    fn parity_row_corruption_rebuilt() {
        let mut bank = paper_bank();
        let _ = fill(&mut bank, 13);
        // Corrupt a parity row directly.
        let bad = Bits::ones(bank.cols());
        bank.vparity.set_parity_row(5, bad);
        let report = bank.recover().unwrap();
        assert!(report.parity_rows_rebuilt.contains(&5));
        assert!(bank.audit());
    }
}
