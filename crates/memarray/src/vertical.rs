//! Vertical interleaved parity — the correction half of 2D coding.
//!
//! `V` parity rows protect a bank of data rows: parity row `i` holds the
//! column-wise XOR of every data row `r` with `r % V == i` (its *stripe*).
//! The paper calls this `EDC32` when `V = 32`. Maintained incrementally on
//! every write via read-before-write (`P ^= old ^ new`), the stripe parity
//! can reconstruct any single lost row per stripe — which covers every
//! clustered error of height at most `V`.

use ecc::Bits;

/// The vertical parity-row register file of one bank.
///
/// # Examples
///
/// ```
/// use ecc::Bits;
/// use memarray::VerticalParity;
///
/// let mut vp = VerticalParity::new(4, 8);
/// let old = Bits::zeros(8);
/// let new = Bits::from_u64(0b1010_1010, 8);
/// vp.update(6, &old, &new);              // row 6 belongs to stripe 2
/// assert_eq!(vp.parity_row(2), &new);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerticalParity {
    rows: Vec<Bits>,
    cols: usize,
}

impl VerticalParity {
    /// Creates `v` zeroed parity rows of `cols` columns (matching an
    /// all-zero data array).
    ///
    /// # Panics
    ///
    /// Panics if `v == 0` or `cols == 0`.
    pub fn new(v: usize, cols: usize) -> Self {
        assert!(v > 0, "need at least one parity row");
        assert!(cols > 0, "parity rows need nonzero width");
        VerticalParity {
            rows: (0..v).map(|_| Bits::zeros(cols)).collect(),
            cols,
        }
    }

    /// Number of parity rows `V` (the vertical interleave factor).
    pub fn interleave(&self) -> usize {
        self.rows.len()
    }

    /// Width in columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stripe index of data row `row`.
    pub fn stripe_of(&self, row: usize) -> usize {
        row % self.rows.len()
    }

    /// The stored parity row for stripe `stripe`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn parity_row(&self, stripe: usize) -> &Bits {
        &self.rows[stripe]
    }

    /// Incremental update for a write to data row `row`: XORs
    /// `old ^ new` into the stripe parity. This is the paper's
    /// read-before-write path.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn update(&mut self, row: usize, old: &Bits, new: &Bits) {
        assert_eq!(old.len(), self.cols, "old row width mismatch");
        assert_eq!(new.len(), self.cols, "new row width mismatch");
        let stripe = self.stripe_of(row);
        // Fold both rows in directly — no delta allocation on the write
        // hot path.
        self.rows[stripe].xor_assign(old);
        self.rows[stripe].xor_assign(new);
    }

    /// Incremental update from a precomputed row delta: XORs `old ^ new`
    /// into the stripe parity of `row`. Equivalent to
    /// [`VerticalParity::update`] when the caller already holds the XOR
    /// of the old and new row contents — the write fast lane builds
    /// exactly that delta in a scratch row, so the full-row old/new pair
    /// (and its clone) never needs to exist.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[inline]
    pub fn update_delta(&mut self, row: usize, delta: &Bits) {
        assert_eq!(delta.len(), self.cols, "delta width mismatch");
        let stripe = self.stripe_of(row);
        self.rows[stripe].xor_assign(delta);
    }

    /// Directly XORs a delta into a stripe (used when recovery rewrites a
    /// row whose old content is already known to be corrupt).
    pub fn xor_stripe(&mut self, stripe: usize, delta: &Bits) {
        assert_eq!(delta.len(), self.cols, "delta width mismatch");
        self.rows[stripe].xor_assign(delta);
    }

    /// Overwrites a stripe's parity row (recomputation path).
    pub fn set_parity_row(&mut self, stripe: usize, value: Bits) {
        assert_eq!(value.len(), self.cols, "parity row width mismatch");
        self.rows[stripe] = value;
    }

    /// Recomputes all parity rows from scratch over `data_rows` and
    /// replaces the stored ones. Returns the stripes whose stored value
    /// disagreed with the recomputation (useful for audits).
    pub fn rebuild<'a, I>(&mut self, data_rows: I) -> Vec<usize>
    where
        I: IntoIterator<Item = &'a Bits>,
    {
        let v = self.rows.len();
        let mut fresh: Vec<Bits> = (0..v).map(|_| Bits::zeros(self.cols)).collect();
        for (r, row) in data_rows.into_iter().enumerate() {
            fresh[r % v].xor_assign(row);
        }
        let mut dirty = Vec::new();
        for (s, new_row) in fresh.into_iter().enumerate() {
            if self.rows[s] != new_row {
                dirty.push(s);
            }
            self.rows[s] = new_row;
        }
        dirty
    }

    /// Computes the vertical syndrome of one stripe: stored parity XOR
    /// the XOR of the supplied rows of that stripe. Nonzero bits mark
    /// columns with an odd number of errors in the stripe.
    pub fn stripe_syndrome<'a, I>(&self, stripe: usize, stripe_rows: I) -> Bits
    where
        I: IntoIterator<Item = &'a Bits>,
    {
        let mut syn = self.rows[stripe].clone();
        for row in stripe_rows {
            syn.xor_assign(row);
        }
        syn
    }

    /// Reconstructs one lost row: XOR of the stripe parity with all
    /// *other* rows of the stripe.
    pub fn reconstruct_row<'a, I>(&self, stripe: usize, other_rows: I) -> Bits
    where
        I: IntoIterator<Item = &'a Bits>,
    {
        let mut rebuilt = self.rows[stripe].clone();
        for row in other_rows {
            rebuilt.xor_assign(row);
        }
        rebuilt
    }

    /// Extra storage (in bits) for the vertical code.
    pub fn storage_bits(&self) -> usize {
        self.rows.len() * self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_rows(n: usize, cols: usize, seed: u64) -> Vec<Bits> {
        // Small deterministic generator, avoids pulling rand into the unit test.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                let limbs: Vec<u64> = (0..cols.div_ceil(64))
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    })
                    .collect();
                Bits::from_limbs(&limbs, cols)
            })
            .collect()
    }

    #[test]
    fn incremental_equals_rebuild() {
        let cols = 96;
        let v = 4;
        let rows = random_rows(16, cols, 99);
        // Start from zero data; write each row once via update.
        let mut vp = VerticalParity::new(v, cols);
        let zero = Bits::zeros(cols);
        for (r, row) in rows.iter().enumerate() {
            vp.update(r, &zero, row);
        }
        let mut reference = VerticalParity::new(v, cols);
        let dirty = reference.rebuild(rows.iter());
        assert_eq!(vp, reference);
        // rebuild on a fresh instance reports every nonzero stripe dirty
        assert_eq!(dirty.len(), v);
    }

    #[test]
    fn update_sequences_commute() {
        let cols = 64;
        let mut vp = VerticalParity::new(2, cols);
        let zero = Bits::zeros(cols);
        let a = Bits::from_u64(0xAAAA, cols);
        let b = Bits::from_u64(0xBBBB, cols);
        vp.update(0, &zero, &a); // write a to row 0
        vp.update(0, &a, &b); // overwrite with b
        assert_eq!(vp.parity_row(0), &b);
        vp.update(2, &zero, &a); // row 2 shares stripe 0
        assert_eq!(vp.parity_row(0), &b.xor(&a));
    }

    #[test]
    fn update_delta_equals_update() {
        let cols = 96;
        let mut a = VerticalParity::new(4, cols);
        let mut b = VerticalParity::new(4, cols);
        let old = Bits::from_positions(cols, &[0, 40, 95]);
        let new = Bits::from_positions(cols, &[1, 40, 70]);
        a.update(6, &old, &new);
        b.update_delta(6, &old.xor(&new));
        assert_eq!(a, b);
    }

    #[test]
    fn reconstructs_lost_row() {
        let cols = 128;
        let v = 8;
        let rows = random_rows(64, cols, 5);
        let mut vp = VerticalParity::new(v, cols);
        vp.rebuild(rows.iter());
        // Lose row 37 (stripe 37 % 8 = 5); rebuild it from the others.
        let lost = 37;
        let stripe = vp.stripe_of(lost);
        let others: Vec<&Bits> = (0..64)
            .filter(|&r| r % v == stripe && r != lost)
            .map(|r| &rows[r])
            .collect();
        let rebuilt = vp.reconstruct_row(stripe, others);
        assert_eq!(rebuilt, rows[lost]);
    }

    #[test]
    fn stripe_syndrome_marks_error_columns() {
        let cols = 32;
        let v = 4;
        let mut rows = random_rows(16, cols, 11);
        let mut vp = VerticalParity::new(v, cols);
        vp.rebuild(rows.iter());
        // Corrupt columns 3 and 17 of row 6 (stripe 2).
        rows[6].flip(3);
        rows[6].flip(17);
        let stripe_rows: Vec<&Bits> = (0..16).filter(|r| r % v == 2).map(|r| &rows[r]).collect();
        let syn = vp.stripe_syndrome(2, stripe_rows);
        assert_eq!(syn.iter_ones().collect::<Vec<_>>(), vec![3, 17]);
    }

    #[test]
    fn storage_matches_paper_config() {
        // 32 parity rows over a 256-column array = 25% of a 256x256 data
        // array... the paper's Figure 3(c) overhead combines horizontal
        // EDC8 (12.5%) + 32/256 vertical rows (12.5%) = 25%.
        let vp = VerticalParity::new(32, 256);
        assert_eq!(vp.storage_bits(), 32 * 256);
        assert_eq!(vp.storage_bits() as f64 / (256.0 * 256.0), 0.125);
    }
}
