//! # memarray — 2D-error-coded SRAM array model
//!
//! The array-level substrate of the reproduction of *"Multi-bit Error
//! Tolerant Caches Using Two-Dimensional Error Coding"* (Kim et al.,
//! MICRO-40, 2007):
//!
//! * [`BitGrid`] — a dense rows x columns cell matrix;
//! * [`RowLayout`] — physical bit interleaving of codewords along a row;
//! * [`VerticalParity`] — the interleaved vertical parity rows (the
//!   correction half of 2D coding), maintained by read-before-write;
//! * [`BankScheme`] — the immutable shared half of a bank (codec with
//!   its precomputed tables, layout, clean masks), built once per
//!   distinct [`TwoDConfig`] and shared by every bank via `Arc`;
//! * [`TwoDArray`] — the complete 2D-protected bank: per-word horizontal
//!   coding, vertical parity updates, in-line SECDED correction, and the
//!   BIST-style multi-bit recovery process (row mode, column mode, and
//!   parity-row rebuild);
//! * [`Injector`] / [`ErrorShape`] / [`FaultMap`] — transient and
//!   stuck-at fault injection with arbitrary clustered footprints;
//! * [`coverage`] — exhaustive and Monte-Carlo coverage sweeps used to
//!   regenerate the paper's Figure 3.
//!
//! ## Example: surviving a 32x32 clustered upset
//!
//! ```
//! use ecc::{Bits, CodeKind};
//! use memarray::{ErrorShape, TwoDArray, TwoDConfig};
//!
//! let mut bank = TwoDArray::new(TwoDConfig {
//!     rows: 256,
//!     horizontal: CodeKind::Edc(8),
//!     data_bits: 64,
//!     interleave: 4,
//!     vertical_rows: 32,
//! });
//! let secret = Bits::from_u64(0x5EC2E7, 64);
//! bank.write_word(40, 1, &secret);
//! bank.inject(ErrorShape::Cluster { row: 32, col: 0, height: 32, width: 32 });
//! assert_eq!(bank.read_word(40, 1).unwrap().into_data(), secret);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitgrid;
pub mod coverage;
mod engine;
mod faults;
mod layout;
pub mod march;
pub mod scrub;
mod shared;
mod stats;
mod vertical;

pub use bitgrid::BitGrid;
pub use engine::{
    ArrayProbe, EngineError, ReadKind, ReadOutcome, RecoveryReport, ScrubSlice, TwoDArray,
    TwoDConfig, WriteKind, INLINE_CORRECT_CYCLES, PROBE_MAX_ROW_LIMBS,
};
pub use faults::{ErrorShape, FaultKind, FaultMap, InjectionReport, Injector};
pub use layout::RowLayout;
pub use shared::{shared_scheme_builds, BankScheme};
pub use stats::EngineStats;
pub use vertical::VerticalParity;
