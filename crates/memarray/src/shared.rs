//! The immutable, shareable half of a 2D-protected bank.
//!
//! A [`TwoDConfig`] fully determines everything about a bank that never
//! changes after construction: the horizontal codec (with its
//! precomputed parity/syndrome tables), the physical [`RowLayout`], the
//! row-level clean masks derived from the codec's parity matrix, and the
//! vertical-parity geometry. [`BankScheme`] packages exactly that state,
//! and [`BankScheme::shared`] hands out one `Arc` per distinct config,
//! so an N-bank cache — or the data and tag arrays of one cache — pays
//! for one table set instead of N.
//!
//! The mutable remainder (cell grid, parity row contents, fault overlay,
//! stats) lives in [`crate::TwoDArray`], one instance per bank.

use crate::{RowLayout, TwoDConfig};
use ecc::{Bits, Code};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Cumulative count of [`BankScheme`] table-set constructions performed
/// by [`BankScheme::shared`] (cache misses). Like
/// [`ecc::shared_codec_builds`], tests compare deltas of this counter to
/// prove that identical configurations reuse one scheme.
static SHARED_SCHEME_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Total bank-scheme table sets constructed so far through the shared
/// registry. Monotonically increasing.
pub fn shared_scheme_builds() -> u64 {
    SHARED_SCHEME_BUILDS.load(Ordering::SeqCst)
}

type SchemeRegistry = Mutex<HashMap<TwoDConfig, Weak<BankScheme>>>;

fn scheme_registry() -> &'static SchemeRegistry {
    static REGISTRY: OnceLock<SchemeRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The immutable shared part of a 2D-protected bank: codec, layout, and
/// the precomputed masks every access path checks against.
///
/// Construction is comparatively expensive (the codec builds its parity
/// and syndrome tables, and one clean mask is derived per check equation
/// per interleaved word); cloning the `Arc` is free. Both the data and
/// tag arrays of a cache, and every bank of a banked cache, share one
/// instance per distinct [`TwoDConfig`].
pub struct BankScheme {
    config: TwoDConfig,
    hcode: Arc<dyn Code + Send + Sync>,
    layout: RowLayout,
    /// Row-level clean masks, flattened `[word * check_bits + c]`: the
    /// horizontal code is linear, so word `word` stores a self-consistent
    /// codeword iff `parity(row & mask) == 0` for each of its check
    /// equations. Lets reads, writes, and recovery scans check
    /// cleanliness with limb AND+popcount instead of per-bit extraction
    /// and a full decode.
    clean_masks: Vec<Bits>,
    /// Nonzero limb range `[lo, hi)` of each clean mask, index-aligned
    /// with `clean_masks`. An interleaved check equation touches a
    /// handful of neighbouring columns, so its mask is nonzero in only
    /// one or two of a row's limbs; the spans let the hot verify loops
    /// skip the all-zero remainder.
    clean_mask_spans: Vec<(u16, u16)>,
    /// All physical columns (data + check) belonging to each word, used
    /// for limb-level column-intersection during column-mode recovery.
    word_col_masks: Vec<Bits>,
    /// Per-data-bit check words packed into `u64`s: entry `i` is the
    /// check word of the `i`-th data unit vector. Because every code in
    /// the workspace is linear over GF(2), the check word of any data
    /// pattern — including an XOR *delta* between an old and a new word —
    /// is the XOR-fold of these masks over its set bits. Present whenever
    /// the code stores at most 64 check bits; this is what lets the u64
    /// write fast lane re-encode without calling into the codec (and
    /// without allocating).
    check_masks_u64: Option<Vec<u64>>,
    /// When true (SECDED horizontal), single-bit errors found on reads
    /// are corrected in-line without engaging 2D recovery.
    inline_correct: bool,
}

impl BankScheme {
    /// Builds the scheme for `config` from scratch. The horizontal codec
    /// still comes from the process-wide codec registry
    /// ([`ecc::CodeKind::build_shared`]), so even unshared schemes with
    /// the same `(kind, data_bits)` share codec tables. Prefer
    /// [`BankScheme::shared`] unless a private instance is explicitly
    /// wanted.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `vertical_rows > rows`.
    pub fn new(config: TwoDConfig) -> Self {
        assert!(config.rows > 0, "bank needs rows");
        assert!(
            config.vertical_rows >= 1 && config.vertical_rows <= config.rows,
            "vertical rows must be in 1..=rows"
        );
        let hcode = config.horizontal.build_shared(config.data_bits);
        let layout = RowLayout::new(config.data_bits, hcode.check_bits(), config.interleave);
        let inline_correct = hcode.correctable() >= 1;
        // Row-level clean masks: check equation c of word w covers the
        // physical columns of the data bits feeding check bit c plus the
        // stored check bit itself.
        let parity_matrix = hcode.parity_matrix();
        let check_bits = hcode.check_bits();
        let mut clean_masks = Vec::with_capacity(layout.interleave() * check_bits);
        let mut word_col_masks = Vec::with_capacity(layout.interleave());
        for w in 0..layout.interleave() {
            for c in 0..check_bits {
                let mut mask = Bits::zeros(layout.row_cols());
                for (i, check_row) in parity_matrix.iter().enumerate() {
                    if check_row.get(c) {
                        mask.set(layout.data_col(w, i), true);
                    }
                }
                mask.set(layout.check_col(w, c), true);
                clean_masks.push(mask);
            }
            let mut cols = Bits::zeros(layout.row_cols());
            for i in 0..layout.data_bits() {
                cols.set(layout.data_col(w, i), true);
            }
            for c in 0..check_bits {
                cols.set(layout.check_col(w, c), true);
            }
            word_col_masks.push(cols);
        }
        let check_masks_u64 = (check_bits <= 64).then(|| {
            parity_matrix
                .iter()
                .map(|row| row.as_limbs().first().copied().unwrap_or(0))
                .collect()
        });
        let clean_mask_spans = clean_masks
            .iter()
            .map(|mask| {
                let limbs = mask.as_limbs();
                let lo = limbs.iter().position(|&l| l != 0).unwrap_or(0);
                let hi = limbs.iter().rposition(|&l| l != 0).map_or(0, |i| i + 1);
                (lo as u16, hi as u16)
            })
            .collect();
        BankScheme {
            config,
            hcode,
            layout,
            clean_masks,
            clean_mask_spans,
            word_col_masks,
            check_masks_u64,
            inline_correct,
        }
    }

    /// Returns the process-wide shared scheme for `config`, building its
    /// table set only on first use. Identical configs — every bank of a
    /// banked cache, or the data arrays of sibling caches — receive
    /// clones of one `Arc`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `vertical_rows > rows`.
    pub fn shared(config: TwoDConfig) -> Arc<BankScheme> {
        let mut registry = scheme_registry().lock().expect("scheme registry poisoned");
        if let Some(existing) = registry.get(&config).and_then(Weak::upgrade) {
            return existing;
        }
        let fresh = Arc::new(BankScheme::new(config));
        SHARED_SCHEME_BUILDS.fetch_add(1, Ordering::SeqCst);
        registry.insert(config, Arc::downgrade(&fresh));
        fresh
    }

    /// The configuration this scheme was built from.
    pub fn config(&self) -> TwoDConfig {
        self.config
    }

    /// The shared horizontal codec.
    pub fn codec(&self) -> &Arc<dyn Code + Send + Sync> {
        &self.hcode
    }

    /// The physical row layout.
    pub fn layout(&self) -> RowLayout {
        self.layout
    }

    /// Number of data rows per bank.
    pub fn rows(&self) -> usize {
        self.config.rows
    }

    /// Physical columns per row.
    pub fn cols(&self) -> usize {
        self.layout.row_cols()
    }

    /// Vertical parity rows per bank (the vertical interleave factor).
    pub fn vertical_rows(&self) -> usize {
        self.config.vertical_rows
    }

    /// Whether the horizontal code corrects single-bit errors in-line.
    pub fn inline_correct(&self) -> bool {
        self.inline_correct
    }

    /// Whether word `word` of a physical row stores a self-consistent
    /// codeword (its stored check equals the re-encode of its data),
    /// checked at limb granularity against the precomputed clean masks.
    /// Equivalent to `decode(..) == Decoded::Clean` for the linear codes
    /// this crate uses.
    #[inline]
    pub fn word_clean(&self, row: &Bits, word: usize) -> bool {
        let cb = self.hcode.check_bits();
        self.clean_masks[word * cb..(word + 1) * cb]
            .iter()
            .all(|mask| !row.masked_parity(mask))
    }

    /// [`BankScheme::word_clean`] over a raw limb snapshot of one
    /// physical row instead of a `Bits`. The slice must hold the full row
    /// (`cols().div_ceil(64)` limbs); the clean masks are zero in their
    /// padding bits, so any garbage beyond `cols()` in the snapshot is
    /// masked out. This is the verification step of the optimistic read
    /// probe, which works on stack copies of row limbs and must not
    /// allocate or borrow the grid.
    ///
    /// # Panics
    ///
    /// Panics if the slice is shorter than one row or `word` is out of
    /// range.
    #[inline]
    pub fn word_clean_limbs(&self, limbs: &[u64], word: usize) -> bool {
        let cb = self.hcode.check_bits();
        let base = word * cb;
        assert!(
            limbs.len() * 64 >= self.layout.row_cols(),
            "limb snapshot too short"
        );
        self.clean_masks[base..base + cb]
            .iter()
            .zip(&self.clean_mask_spans[base..base + cb])
            .all(|(mask, &(lo, hi))| {
                // Only the mask's nonzero limb span contributes parity.
                let (lo, hi) = (lo as usize, hi as usize);
                !ecc::kernels::masked_parity(&limbs[lo..hi], &mask.as_limbs()[lo..hi])
            })
    }

    /// Batched [`BankScheme::row_clean`] over a row-major limb block:
    /// whether *every* one of `rows` consecutive physical rows, stored
    /// `limbs_per_row` limbs apart starting at `limbs[0]`, is a
    /// self-consistent codeword in every word.
    ///
    /// This is the scrub fast path. Instead of materializing each row as
    /// a `Bits` and walking every clean mask per row, it iterates masks
    /// in the outer loop and rows in the inner loop, so one pass per
    /// check equation streams the whole block through its one- or
    /// two-limb span ([`ecc::kernels`] folds). The block stays in L1
    /// (a 32-row slice of the paper geometry is 1.3 KiB) while each mask
    /// is loaded exactly once. Returns on the first dirty equation; the
    /// caller then re-walks the slice per-row to attribute and repair.
    ///
    /// Padding bits beyond [`BankScheme::cols`] in each row are ignored
    /// (the masks are zero there), matching
    /// [`BankScheme::word_clean_limbs`].
    ///
    /// # Panics
    ///
    /// Panics if the stride is narrower than one row or the block is
    /// shorter than `rows` rows.
    pub fn rows_clean_limbs(&self, limbs: &[u64], limbs_per_row: usize, rows: usize) -> bool {
        assert!(
            limbs_per_row * 64 >= self.layout.row_cols(),
            "row stride too narrow"
        );
        assert!(
            limbs.len() >= rows * limbs_per_row,
            "limb block shorter than {rows} rows"
        );
        for (mask, &(lo, hi)) in self.clean_masks.iter().zip(&self.clean_mask_spans) {
            let (lo, hi) = (lo as usize, hi as usize);
            let mask_span = &mask.as_limbs()[lo..hi];
            let mut dirty = false;
            for row in limbs.chunks_exact(limbs_per_row).take(rows) {
                dirty |= ecc::kernels::masked_parity(&row[lo..hi], mask_span);
            }
            if dirty {
                return false;
            }
        }
        true
    }

    /// Whether every word of a physical row stores a self-consistent
    /// codeword.
    pub fn row_clean(&self, row: &Bits) -> bool {
        (0..self.layout.interleave()).all(|w| self.word_clean(row, w))
    }

    /// All physical columns (data + check) belonging to word `word`, as
    /// a row-width mask.
    pub fn word_col_mask(&self, word: usize) -> &Bits {
        &self.word_col_masks[word]
    }

    /// Whether the u64 encode fast lane is available (the code stores at
    /// most 64 check bits, so check words fit one limb).
    #[inline]
    pub fn fast_u64(&self) -> bool {
        self.check_masks_u64.is_some()
    }

    /// The check word of the `bit`-th data unit vector as a `u64` (the
    /// `bit`-th row of the parity matrix, packed). Building a check delta
    /// bit-by-bit folds these masks.
    ///
    /// # Panics
    ///
    /// Panics if the fast lane is unavailable ([`BankScheme::fast_u64`]).
    #[inline]
    pub fn check_mask_u64(&self, bit: usize) -> u64 {
        self.check_masks_u64
            .as_ref()
            .expect("u64 encode lane needs <=64 check bits")[bit]
    }

    /// Check word of a `width`-bit data pattern `value` positioned at
    /// `bit_offset` inside an otherwise-zero data word, computed as the
    /// XOR-fold of the precomputed per-bit check masks. By linearity this
    /// is both "encode a narrow word" and "check-delta of a narrow data
    /// delta"; the result is exact for full-width words too
    /// (`bit_offset = 0`, `width = data_bits`, for words of at most
    /// 64 data bits).
    ///
    /// # Panics
    ///
    /// Panics if the fast lane is unavailable ([`BankScheme::fast_u64`])
    /// or the window falls outside the data word.
    #[inline]
    pub fn encode_u64(&self, bit_offset: usize, value: u64, width: usize) -> u64 {
        let masks = self
            .check_masks_u64
            .as_ref()
            .expect("u64 encode lane needs <=64 check bits");
        assert!(
            (1..=64).contains(&width) && bit_offset + width <= self.config.data_bits,
            "u64 window {bit_offset}+{width} outside {} data bits",
            self.config.data_bits
        );
        let mut rest = value & crate::layout::low_mask(width);
        let mut check = 0u64;
        while rest != 0 {
            let bit = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            check ^= masks[bit_offset + bit];
        }
        check
    }
}

impl std::fmt::Debug for BankScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BankScheme({} rows x {} cols, {} words/row, hcode={}, V={})",
            self.rows(),
            self.cols(),
            self.layout.interleave(),
            self.hcode.name(),
            self.vertical_rows()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc::CodeKind;

    fn config(rows: usize) -> TwoDConfig {
        TwoDConfig {
            rows,
            horizontal: CodeKind::Edc(8),
            data_bits: 64,
            interleave: 4,
            vertical_rows: 32,
        }
    }

    #[test]
    fn shared_reuses_identical_configs() {
        let a = BankScheme::shared(config(128));
        let before = shared_scheme_builds();
        let b = BankScheme::shared(config(128));
        assert!(Arc::ptr_eq(&a, &b), "identical configs must share");
        assert_eq!(shared_scheme_builds(), before, "no rebuild on reuse");
        // A different row count is a different scheme...
        let c = BankScheme::shared(config(256));
        assert!(!Arc::ptr_eq(&a, &c));
        // ...but still shares the codec tables underneath.
        assert!(Arc::ptr_eq(a.codec(), c.codec()));
    }

    #[test]
    fn encode_u64_matches_codec() {
        use ecc::Bits;
        for kind in [CodeKind::Edc(8), CodeKind::Secded] {
            let scheme = BankScheme::new(TwoDConfig {
                rows: 64,
                horizontal: kind,
                data_bits: 64,
                interleave: 4,
                vertical_rows: 16,
            });
            assert!(scheme.fast_u64());
            let mut state = 0x1357_9BDF_2468_ACE0u64;
            for _ in 0..32 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let expect = scheme.codec().encode(&Bits::from_u64(state, 64)).to_u64();
                assert_eq!(
                    scheme.encode_u64(0, state, 64),
                    expect,
                    "{kind:?} {state:#x}"
                );
            }
            // Narrow windows equal the encode of the shifted pattern.
            let narrow = scheme
                .codec()
                .encode(&Bits::from_u64(0xABu64 << 20, 64))
                .to_u64();
            assert_eq!(scheme.encode_u64(20, 0xAB, 8), narrow);
        }
    }

    #[test]
    fn clean_masks_match_encode() {
        use ecc::Bits;
        let scheme = BankScheme::new(config(64));
        let layout = scheme.layout();
        // Place one encoded word; the row must check clean for that word.
        let data = Bits::from_u64(0xDEAD_BEEF_1234_5678, 64);
        let check = scheme.codec().encode(&data);
        let mut row = Bits::zeros(layout.row_cols());
        layout.place_word(&mut row, 2, &data, &check);
        assert!(scheme.word_clean(&row, 2));
        // Any single flipped bit of that word must dirty it.
        let col = layout.data_col(2, 17);
        row.flip(col);
        assert!(!scheme.word_clean(&row, 2));
    }
}
