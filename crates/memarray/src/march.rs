//! BIST march tests: the memory self-test algorithms the paper's
//! recovery process piggybacks on ("implemented as part of the on-chip
//! BIST/BISR hardware", §4).
//!
//! A march test walks the array applying read/write elements in
//! prescribed address orders; different march algorithms trade test
//! length for fault-model coverage. This module implements MATS+ and
//! March C- against a [`BitGrid`] + [`FaultMap`] pair and reports the
//! located faulty cells — the input a BISR controller needs for spare
//! allocation, and the cost model behind the recovery-latency claim.

use crate::{BitGrid, FaultMap};

/// A march algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MarchKind {
    /// MATS+: `{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}` — detects stuck-at faults,
    /// 5N operations.
    MatsPlus,
    /// March C-: `{⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0);
    /// ⇕(r0)}` — adds coupling-fault coverage, 10N operations.
    MarchCMinus,
}

impl MarchKind {
    /// Operations per cell (the N-multiplier of the test length).
    pub fn ops_per_cell(&self) -> u64 {
        match self {
            MarchKind::MatsPlus => 5,
            MarchKind::MarchCMinus => 10,
        }
    }
}

/// Result of a march run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MarchReport {
    /// Cells that returned a wrong value at least once, as (row, col).
    pub faulty_cells: Vec<(usize, usize)>,
    /// Total read+write operations performed (the latency proxy).
    pub operations: u64,
}

impl MarchReport {
    /// Whether the array passed.
    pub fn passed(&self) -> bool {
        self.faulty_cells.is_empty()
    }
}

/// March-element direction.
#[derive(Clone, Copy)]
enum Dir {
    Up,
    Down,
}

/// Runs `kind` over the array. The grid content is destroyed (march
/// tests overwrite everything); stuck-at cells in `faults` are the
/// faults being hunted.
pub fn run_march(grid: &mut BitGrid, faults: &FaultMap, kind: MarchKind) -> MarchReport {
    let mut report = MarchReport::default();
    match kind {
        MarchKind::MatsPlus => {
            element_write(grid, faults, Dir::Up, false, &mut report);
            element_read_write(grid, faults, Dir::Up, false, true, &mut report);
            element_read_write(grid, faults, Dir::Down, true, false, &mut report);
        }
        MarchKind::MarchCMinus => {
            element_write(grid, faults, Dir::Up, false, &mut report);
            element_read_write(grid, faults, Dir::Up, false, true, &mut report);
            element_read_write(grid, faults, Dir::Up, true, false, &mut report);
            element_read_write(grid, faults, Dir::Down, false, true, &mut report);
            element_read_write(grid, faults, Dir::Down, true, false, &mut report);
            element_read(grid, faults, Dir::Up, false, &mut report);
        }
    }
    report.faulty_cells.sort_unstable();
    report.faulty_cells.dedup();
    report
}

fn cells(grid: &BitGrid, dir: Dir) -> Box<dyn Iterator<Item = (usize, usize)>> {
    let rows = grid.rows();
    let cols = grid.cols();
    match dir {
        Dir::Up => Box::new((0..rows).flat_map(move |r| (0..cols).map(move |c| (r, c)))),
        Dir::Down => Box::new(
            (0..rows)
                .rev()
                .flat_map(move |r| (0..cols).rev().map(move |c| (r, c))),
        ),
    }
}

fn observe(grid: &BitGrid, faults: &FaultMap, r: usize, c: usize) -> bool {
    faults.is_stuck(r, c).unwrap_or_else(|| grid.get(r, c))
}

fn element_write(
    grid: &mut BitGrid,
    _faults: &FaultMap,
    dir: Dir,
    value: bool,
    report: &mut MarchReport,
) {
    for (r, c) in cells(grid, dir) {
        grid.set(r, c, value);
        report.operations += 1;
    }
}

fn element_read(
    grid: &mut BitGrid,
    faults: &FaultMap,
    dir: Dir,
    expect: bool,
    report: &mut MarchReport,
) {
    for (r, c) in cells(grid, dir) {
        if observe(grid, faults, r, c) != expect {
            report.faulty_cells.push((r, c));
        }
        report.operations += 1;
    }
}

fn element_read_write(
    grid: &mut BitGrid,
    faults: &FaultMap,
    dir: Dir,
    expect: bool,
    write: bool,
    report: &mut MarchReport,
) {
    for (r, c) in cells(grid, dir) {
        if observe(grid, faults, r, c) != expect {
            report.faulty_cells.push((r, c));
        }
        grid.set(r, c, write);
        report.operations += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_array_passes_both_marches() {
        for kind in [MarchKind::MatsPlus, MarchKind::MarchCMinus] {
            let mut grid = BitGrid::new(16, 32);
            let faults = FaultMap::new();
            let report = run_march(&mut grid, &faults, kind);
            assert!(report.passed(), "{kind:?}");
        }
    }

    #[test]
    fn stuck_at_zero_and_one_both_located() {
        let mut grid = BitGrid::new(8, 8);
        let mut faults = FaultMap::new();
        faults.add_stuck(2, 3, false);
        faults.add_stuck(5, 6, true);
        for kind in [MarchKind::MatsPlus, MarchKind::MarchCMinus] {
            let mut g = grid.clone();
            let report = run_march(&mut g, &faults, kind);
            assert_eq!(
                report.faulty_cells,
                vec![(2, 3), (5, 6)],
                "{kind:?} missed a stuck cell"
            );
        }
        let _ = &mut grid;
    }

    #[test]
    fn operation_counts_match_test_length() {
        let mut grid = BitGrid::new(16, 16);
        let faults = FaultMap::new();
        let n = 16 * 16;
        let mats = run_march(&mut grid, &faults, MarchKind::MatsPlus);
        assert_eq!(mats.operations, MarchKind::MatsPlus.ops_per_cell() * n);
        let mc = run_march(&mut grid, &faults, MarchKind::MarchCMinus);
        assert_eq!(mc.operations, MarchKind::MarchCMinus.ops_per_cell() * n);
    }

    #[test]
    fn recovery_latency_comparable_to_march() {
        // The paper's claim (§4): 2D recovery latency ~ a march test.
        // Recovery scans rows (not cells), so its per-invocation cost is
        // *below* even MATS+ for the same array.
        use crate::{ErrorShape, TwoDArray, TwoDConfig};
        let mut bank = TwoDArray::new(TwoDConfig {
            rows: 64,
            horizontal: ecc::CodeKind::Edc(8),
            data_bits: 64,
            interleave: 2,
            vertical_rows: 16,
        });
        let word = ecc::Bits::from_u64(9, 64);
        for r in 0..64 {
            bank.write_word(r, 0, &word);
        }
        bank.inject(ErrorShape::Single { row: 8, col: 8 });
        let recovery = bank.recover().unwrap();
        let mut grid = BitGrid::new(64, bank.cols());
        let report = run_march(&mut grid, &FaultMap::new(), MarchKind::MatsPlus);
        // March counts per-cell ops; recovery counts row accesses.
        assert!(recovery.cycles < report.operations);
    }

    #[test]
    fn whole_column_stuck_located_in_full() {
        let mut grid = BitGrid::new(8, 8);
        let mut faults = FaultMap::new();
        for r in 0..8 {
            faults.add_stuck(r, 4, true);
        }
        let report = run_march(&mut grid, &faults, MarchKind::MarchCMinus);
        let expected: Vec<(usize, usize)> = (0..8).map(|r| (r, 4)).collect();
        assert_eq!(report.faulty_cells, expected);
    }
}
