//! API-surface tests for the engine's auxiliary types: error display,
//! outcome accessors, stats, and the BISR toggle.

use ecc::{Bits, CodeKind};
use memarray::{EngineError, ErrorShape, ReadOutcome, TwoDArray, TwoDConfig};

fn bank() -> TwoDArray {
    TwoDArray::new(TwoDConfig {
        rows: 32,
        horizontal: CodeKind::Edc(8),
        data_bits: 64,
        interleave: 2,
        vertical_rows: 8,
    })
}

#[test]
fn engine_error_displays_row_count() {
    let e = EngineError::Uncorrectable {
        failing_rows: vec![1, 2, 3],
    };
    let msg = e.to_string();
    assert!(msg.contains("3 row(s)"), "{msg}");
    // And implements std::error::Error.
    let _: &dyn std::error::Error = &e;
}

#[test]
fn read_outcome_accessors() {
    let word = Bits::from_u64(5, 64);
    let clean = ReadOutcome::Clean(word.clone());
    assert_eq!(clean.data(), &word);
    assert_eq!(clean.into_data(), word);
    let rec = ReadOutcome::Recovered(word.clone());
    assert_eq!(rec.into_data(), word);
}

#[test]
fn outcome_kinds_distinguish_paths() {
    let mut b = bank();
    let word = Bits::from_u64(0xEE, 64);
    b.write_word(7, 0, &word);
    // Clean path.
    assert!(matches!(b.read_word(7, 0).unwrap(), ReadOutcome::Clean(_)));
    // Recovered path (EDC horizontal cannot correct inline).
    b.inject(ErrorShape::Single { row: 7, col: 0 });
    assert!(matches!(
        b.read_word(7, 0).unwrap(),
        ReadOutcome::Recovered(_)
    ));
}

#[test]
fn bisr_disabled_reports_uncorrectable_hard_columns() {
    let mut b = bank();
    b.set_bisr_remap(false);
    let word = Bits::from_u64(0x77, 64);
    for r in 0..32 {
        for w in 0..2 {
            b.write_word(r, w, &word);
        }
    }
    b.inject_hard(ErrorShape::Column { col: 5 }, true);
    // Without remap, stuck cells that defeat the detection-only
    // horizontal code leave the array uncorrectable...
    let any_err = (0..32).any(|r| b.read_word(r, 0).is_err());
    // ...unless no stored bit differed from the stuck value (word is
    // constant here, so discrepancies exist on roughly half the cells
    // only if bit 5's value differs — compute directly).
    let expects_errors = !word.get(2); // col 5 -> word 1... safe check below
    let _ = expects_errors;
    // The strong assertion: with remap re-enabled, everything recovers.
    let mut b2 = bank();
    for r in 0..32 {
        for w in 0..2 {
            b2.write_word(r, w, &word);
        }
    }
    b2.inject_hard(ErrorShape::Column { col: 5 }, true);
    for r in 0..32 {
        assert_eq!(b2.read_word(r, 0).unwrap().into_data(), word);
    }
    let _ = any_err;
}

#[test]
fn stats_reset() {
    let mut b = bank();
    b.write_word(0, 0, &Bits::from_u64(1, 64));
    assert!(b.stats().writes > 0);
    b.reset_stats();
    assert_eq!(b.stats().writes, 0);
    assert_eq!(b.stats().extra_reads, 0);
}

#[test]
fn debug_representations_nonempty() {
    let b = bank();
    assert!(!format!("{b:?}").is_empty());
    assert!(format!("{b:?}").contains("EDC8"));
}
