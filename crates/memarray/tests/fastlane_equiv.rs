//! Equivalence replay: the scratch-buffer / u64 fast lanes must be
//! bit-for-bit indistinguishable from the allocating `Bits` paths, under
//! random traffic *and* random fault injection.
//!
//! Two banks with identical configurations replay the same operation
//! stream — one through `try_read_word_u64` / `try_write_word_u64` /
//! `try_{read,write}_row_u64` (with the documented fallbacks), the other
//! through `read_word` / `write_word` — interleaved with identical error
//! injections. After every round, every word of both banks is read back
//! and compared, the vertical parity registers are compared, and both
//! banks must pass their full audit. Raw cell contents are deliberately
//! *not* compared: under stuck-at faults the two paths may leave
//! different values beneath a stuck cell (the overlay masks both), which
//! is an explicitly documented non-observable difference.

use ecc::{Bits, CodeKind};
use memarray::{ErrorShape, TwoDArray, TwoDConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

const ROWS: usize = 64;
const WORDS: usize = 4;

fn config(horizontal: CodeKind) -> TwoDConfig {
    TwoDConfig {
        rows: ROWS,
        horizontal,
        data_bits: 64,
        interleave: 4,
        vertical_rows: 16,
    }
}

/// Writes through the fast lanes exactly the way the cache layer does:
/// u64 lane first, allocating read-modify-write fallback on refusal.
fn lane_write(bank: &mut TwoDArray, row: usize, word: usize, off: usize, value: u64, width: usize) {
    if bank
        .try_write_word_u64(row, word, off, value, width)
        .is_some()
    {
        return;
    }
    let mut stored = match bank.read_word(row, word) {
        Ok(out) => out.into_data(),
        Err(_) => Bits::zeros(64),
    };
    stored.write_slice(off, &Bits::from_u64(value, width));
    bank.write_word(row, word, &stored);
}

/// Reference path: plain allocating read-modify-write over `Bits`.
fn bits_write(bank: &mut TwoDArray, row: usize, word: usize, off: usize, value: u64, width: usize) {
    let mut stored = match bank.read_word(row, word) {
        Ok(out) => out.into_data(),
        Err(_) => Bits::zeros(64),
    };
    stored.write_slice(off, &Bits::from_u64(value, width));
    bank.write_word(row, word, &stored);
}

fn lane_read(bank: &mut TwoDArray, row: usize, word: usize) -> u64 {
    match bank.try_read_word_u64(row, word, 0, 64) {
        Some(v) => v,
        None => bank.read_word(row, word).unwrap().into_data().to_u64(),
    }
}

/// `max_w`/`max_h` bound the injected cluster footprints to the scheme's
/// guaranteed coverage, so recovery always converges and audits pass.
fn replay(horizontal: CodeKind, seed: u64, max_w: usize, max_h: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fast = TwoDArray::new(config(horizontal));
    let mut slow = TwoDArray::new(config(horizontal));
    for round in 0..12 {
        // A burst of writes: full words, sub-word windows, and whole rows.
        for _ in 0..40 {
            let row = rng.gen_range(0..ROWS);
            let word = rng.gen_range(0..WORDS);
            match rng.gen_range(0..4u32) {
                0 => {
                    // Sub-word window write.
                    let off = rng.gen_range(0..56usize);
                    let width = rng.gen_range(1..=(64 - off).min(32));
                    let value: u64 = rng.gen();
                    lane_write(&mut fast, row, word, off, value, width);
                    bits_write(&mut slow, row, word, off, value, width);
                }
                1 => {
                    // Row-granular write vs four word writes.
                    let mut values = [0u64; WORDS];
                    for v in &mut values {
                        *v = rng.gen();
                    }
                    if !fast.try_write_row_u64(row, &values) {
                        for (w, &v) in values.iter().enumerate() {
                            lane_write(&mut fast, row, w, 0, v, 64);
                        }
                    }
                    for (w, &v) in values.iter().enumerate() {
                        slow.write_word(row, w, &Bits::from_u64(v, 64));
                    }
                }
                _ => {
                    // Full-word write; occasionally a repeat of the stored
                    // value so the silent-write path gets traffic.
                    let value: u64 = if rng.gen_bool(0.15) {
                        lane_read(&mut fast, row, word)
                    } else {
                        rng.gen()
                    };
                    lane_write(&mut fast, row, word, 0, value, 64);
                    slow.write_word(row, word, &Bits::from_u64(value, 64));
                }
            }
        }
        // Identical fault injection, within the scheme's H x V coverage.
        let shape = if rng.gen_bool(0.5) {
            ErrorShape::Single {
                row: rng.gen_range(0..ROWS),
                col: rng.gen_range(0..fast.cols()),
            }
        } else {
            ErrorShape::Cluster {
                row: rng.gen_range(0..ROWS - max_h),
                col: rng.gen_range(0..fast.cols() - max_w),
                height: rng.gen_range(1..=max_h),
                width: rng.gen_range(1..=max_w),
            }
        };
        fast.inject(shape);
        slow.inject(shape);
        // Full readback through the respective lanes: every word must
        // match bit for bit, errors and recoveries included.
        for row in 0..ROWS {
            let mut row_vals = [0u64; WORDS];
            let row_ok = fast.try_read_row_u64(row, &mut row_vals);
            for word in 0..WORDS {
                let f = lane_read(&mut fast, row, word);
                let s = slow.read_word(row, word).unwrap().into_data().to_u64();
                assert_eq!(f, s, "round {round} row {row} word {word}");
                if row_ok {
                    assert_eq!(row_vals[word], s, "row lane, round {round} row {row}");
                }
            }
        }
        assert_eq!(
            fast.vertical(),
            slow.vertical(),
            "round {round}: vertical parity diverged"
        );
        assert!(fast.audit(), "round {round}: fast bank fails audit");
        assert!(slow.audit(), "round {round}: slow bank fails audit");
    }
    // Both paths suppressed the same silent writes.
    assert_eq!(fast.stats().silent_writes, slow.stats().silent_writes);
}

#[test]
fn edc_lanes_match_bits_paths_under_faults() {
    replay(CodeKind::Edc(8), 0xFA57_1A4E, 16, 8);
}

#[test]
fn secded_lanes_match_bits_paths_under_faults() {
    // SECDED exercises the inline-correction refusal path of the lanes.
    // Cluster width stays within the interleave degree (one bit per
    // word per row) so inline correction is always sound.
    replay(CodeKind::Secded, 0x5EC_DED, 4, 8);
}

#[test]
fn stuck_at_faults_stay_equivalent_observably() {
    let mut fast = TwoDArray::new(config(CodeKind::Secded));
    let mut slow = TwoDArray::new(config(CodeKind::Secded));
    let mut rng = StdRng::seed_from_u64(77);
    for bank in [&mut fast, &mut slow] {
        bank.inject_hard(ErrorShape::Single { row: 5, col: 9 }, true);
        bank.inject_hard(ErrorShape::Single { row: 20, col: 100 }, false);
    }
    for _ in 0..200 {
        let row = rng.gen_range(0..ROWS);
        let word = rng.gen_range(0..WORDS);
        let value: u64 = rng.gen();
        lane_write(&mut fast, row, word, 0, value, 64);
        slow.write_word(row, word, &Bits::from_u64(value, 64));
    }
    for row in 0..ROWS {
        for word in 0..WORDS {
            let f = lane_read(&mut fast, row, word);
            let s = slow.read_word(row, word).unwrap().into_data().to_u64();
            assert_eq!(f, s, "row {row} word {word}");
        }
    }
    assert_eq!(fast.vertical(), slow.vertical());
}
