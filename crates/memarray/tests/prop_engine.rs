//! Property-based tests for the 2D engine's central guarantees:
//!
//! * the vertical-parity invariant holds across arbitrary write sequences;
//! * any clustered error within the scheme's H x V window is corrected;
//! * recovery never silently corrupts data it claims to have repaired.

use ecc::{Bits, CodeKind};
use memarray::{ErrorShape, TwoDArray, TwoDConfig};
use proptest::collection::vec;
use proptest::prelude::*;

const CFG: TwoDConfig = TwoDConfig {
    rows: 64,
    horizontal: CodeKind::Edc(8),
    data_bits: 64,
    interleave: 4,
    vertical_rows: 16,
};

fn word_strategy() -> impl Strategy<Value = Bits> {
    any::<u64>().prop_map(|v| Bits::from_u64(v, 64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any sequence of writes, every stripe parity equals the XOR of
    /// its data rows (checked via audit + per-word readback).
    #[test]
    fn parity_invariant_over_write_sequences(
        ops in vec((0usize..64, 0usize..4, word_strategy()), 1..60),
    ) {
        let mut bank = TwoDArray::new(CFG);
        let mut shadow = vec![vec![Bits::zeros(64); 4]; 64];
        for (r, w, data) in ops {
            bank.write_word(r, w, &data);
            shadow[r][w] = data;
        }
        prop_assert!(bank.audit());
        for r in 0..64 {
            for w in 0..4 {
                let got = bank.read_word(r, w).unwrap().into_data();
                prop_assert_eq!(&got, &shadow[r][w], "row {} word {}", r, w);
            }
        }
    }

    /// Any cluster within 16 rows x 32 columns is fully corrected.
    #[test]
    fn clusters_within_window_corrected(
        ops in vec((0usize..64, 0usize..4, word_strategy()), 8..24),
        anchor_r in 0usize..48,
        anchor_c in 0usize..256,
        height in 1usize..=16,
        width in 1usize..=32,
    ) {
        let mut bank = TwoDArray::new(CFG);
        let mut shadow = vec![vec![Bits::zeros(64); 4]; 64];
        for (r, w, data) in ops {
            bank.write_word(r, w, &data);
            shadow[r][w] = data;
        }
        let anchor_c = anchor_c.min(bank.cols() - width);
        bank.inject(ErrorShape::Cluster {
            row: anchor_r,
            col: anchor_c,
            height,
            width,
        });
        let report = bank.recover();
        prop_assert!(report.is_ok(), "recovery failed: {:?}", report);
        for r in 0..64 {
            for w in 0..4 {
                let got = bank.read_word(r, w).unwrap().into_data();
                prop_assert_eq!(&got, &shadow[r][w], "row {} word {}", r, w);
            }
        }
    }

    /// Random scattered single-bit flips, at most one per stripe-column,
    /// are always corrected (each stripe sees each error isolated).
    #[test]
    fn isolated_flips_corrected(
        rows in proptest::sample::subsequence((0..16usize).collect::<Vec<_>>(), 1..8),
        col in 0usize..288,
    ) {
        let mut bank = TwoDArray::new(CFG);
        let mut shadow = vec![vec![Bits::zeros(64); 4]; 64];
        for r in 0..64 {
            for w in 0..4 {
                let data = Bits::from_u64((r as u64) << 32 | w as u64, 64);
                bank.write_word(r, w, &data);
                shadow[r][w] = data;
            }
        }
        // One flip per distinct stripe (rows 0..16 are distinct stripes).
        for &r in &rows {
            bank.inject(ErrorShape::Single { row: r, col });
        }
        prop_assert!(bank.recover().is_ok());
        for &r in &rows {
            for w in 0..4 {
                let got = bank.read_word(r, w).unwrap().into_data();
                prop_assert_eq!(&got, &shadow[r][w]);
            }
        }
    }

    /// SECDED-horizontal banks absorb a stuck-at cell and still correct a
    /// soft cluster elsewhere (the paper's yield-mode claim).
    #[test]
    fn secded_yield_mode_keeps_soft_protection(
        stuck_row in 0usize..32,
        stuck_col in 0usize..144,
        cluster_row in 32usize..48,
    ) {
        let cfg = TwoDConfig {
            rows: 64,
            horizontal: CodeKind::Secded,
            data_bits: 64,
            interleave: 2,
            vertical_rows: 16,
        };
        let mut bank = TwoDArray::new(cfg);
        let mut shadow = vec![vec![Bits::zeros(64); 2]; 64];
        for r in 0..64 {
            for w in 0..2 {
                let data = Bits::from_u64((r as u64 * 31) ^ (w as u64), 64);
                bank.write_word(r, w, &data);
                shadow[r][w] = data;
            }
        }
        bank.inject_hard(ErrorShape::Single { row: stuck_row, col: stuck_col }, true);
        bank.inject(ErrorShape::Cluster { row: cluster_row, col: 0, height: 8, width: 8 });
        // Every word still reads back correctly.
        for r in 0..64 {
            for w in 0..2 {
                let got = bank.read_word(r, w).unwrap().into_data();
                prop_assert_eq!(&got, &shadow[r][w], "row {} word {}", r, w);
            }
        }
    }
}
