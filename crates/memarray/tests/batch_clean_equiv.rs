//! Equivalence property tests for batched row verification.
//!
//! The incremental scrub path verifies whole slices with one
//! mask-outer/rows-inner sweep over the raw limb block
//! ([`BankScheme::rows_clean_limbs`]) instead of walking rows and words
//! individually. These tests pin the batched verdict bit-for-bit against
//! the per-word reference path ([`BankScheme::row_clean`]) across every
//! paper geometry — including odd tail-limb widths, where a row's last
//! limb is only partially used — for clean blocks, single corrupted
//! bits, arbitrary random blocks, and sub-range (scrub-slice shaped)
//! views; and they pin the engine's batched `scrub_step` dirty-row
//! accounting against injected ground truth.

use ecc::{Bits, CodeKind};
use memarray::{BankScheme, ErrorShape, TwoDArray, TwoDConfig};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

/// Geometries with distinct tail shapes: 288 cols (4.5 limbs), 144 cols
/// (2.25 limbs), 40 cols (0.625 limbs), and a BCH row whose check width
/// is not a power of two.
fn configs() -> Vec<TwoDConfig> {
    vec![
        TwoDConfig {
            rows: 32,
            horizontal: CodeKind::Edc(8),
            data_bits: 64,
            interleave: 4,
            vertical_rows: 8,
        },
        TwoDConfig {
            rows: 32,
            horizontal: CodeKind::Secded,
            data_bits: 64,
            interleave: 2,
            vertical_rows: 8,
        },
        TwoDConfig {
            rows: 32,
            horizontal: CodeKind::Edc(8),
            data_bits: 32,
            interleave: 1,
            vertical_rows: 8,
        },
        TwoDConfig {
            rows: 32,
            horizontal: CodeKind::Dected,
            data_bits: 64,
            interleave: 2,
            vertical_rows: 8,
        },
    ]
}

/// A valid (all words clean) row built from random data words.
fn clean_row(scheme: &BankScheme, limbs: &[u64]) -> Bits {
    let layout = scheme.layout();
    let mut row = Bits::zeros(scheme.cols());
    for w in 0..layout.interleave() {
        let data = Bits::from_limbs(&limbs[w % limbs.len().max(1)..], layout.data_bits());
        let check = scheme.codec().encode(&data);
        layout.place_word(&mut row, w, &data, &check);
    }
    row
}

/// Flattens rows into the row-major limb block `rows_clean_limbs` scans.
fn flatten(rows: &[Bits], stride: usize) -> Vec<u64> {
    let mut block = Vec::with_capacity(rows.len() * stride);
    for r in rows {
        block.extend_from_slice(r.as_limbs());
        block.resize(block.len().next_multiple_of(stride.max(1)), 0);
    }
    block
}

fn reference_all_clean(scheme: &BankScheme, rows: &[Bits]) -> bool {
    rows.iter().all(|r| scheme.row_clean(r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clean blocks: batched and per-row verdicts agree (both clean),
    /// and corrupting any single bit of any row flips both verdicts.
    #[test]
    fn batched_agrees_on_clean_and_single_flip(
        cfg_idx in 0usize..4,
        seeds in vec(any::<u64>(), 8),
        dirty_row in 0usize..32,
        dirty_bit in any::<usize>(),
    ) {
        let scheme: Arc<BankScheme> = BankScheme::shared(configs()[cfg_idx]);
        let stride = scheme.cols().div_ceil(64);
        let mut rows: Vec<Bits> = (0..scheme.rows())
            .map(|r| {
                let s: Vec<u64> = seeds.iter().map(|&x| x.rotate_left(r as u32)).collect();
                clean_row(&scheme, &s)
            })
            .collect();
        let block = flatten(&rows, stride);
        prop_assert!(reference_all_clean(&scheme, &rows));
        prop_assert!(scheme.rows_clean_limbs(&block, stride, rows.len()));

        // One flipped bit anywhere must be seen by both paths.
        rows[dirty_row].flip(dirty_bit % scheme.cols());
        let block = flatten(&rows, stride);
        prop_assert!(!reference_all_clean(&scheme, &rows));
        prop_assert!(!scheme.rows_clean_limbs(&block, stride, rows.len()));
    }

    /// Arbitrary random blocks: the batched verdict equals the per-word
    /// reference verdict, for the full block and for every slice-shaped
    /// sub-range (the view `scrub_step` actually checks).
    #[test]
    fn batched_matches_reference_on_random_blocks(
        cfg_idx in 0usize..4,
        limbs in vec(any::<u64>(), 5 * 32),
        start in 0usize..32,
        len in 1usize..32,
    ) {
        let scheme: Arc<BankScheme> = BankScheme::shared(configs()[cfg_idx]);
        let stride = scheme.cols().div_ceil(64);
        let rows: Vec<Bits> = (0..scheme.rows())
            .map(|r| Bits::from_limbs(&limbs[r * stride..(r + 1) * stride], scheme.cols()))
            .collect();
        let block = flatten(&rows, stride);
        prop_assert_eq!(
            scheme.rows_clean_limbs(&block, stride, rows.len()),
            reference_all_clean(&scheme, &rows)
        );
        let start = start.min(scheme.rows() - 1);
        let len = len.min(scheme.rows() - start);
        prop_assert_eq!(
            scheme.rows_clean_limbs(&block[start * stride..], stride, len),
            reference_all_clean(&scheme, &rows[start..start + len])
        );
    }

    /// Engine-level ground truth: single-bit errors injected into
    /// distinct stripes are counted exactly by the (batched) scrub
    /// sweep, trigger recovery, and leave the bank auditing clean.
    #[test]
    fn scrub_step_counts_injected_rows_exactly(
        stripes in proptest::sample::subsequence((0..8usize).collect::<Vec<_>>(), 0..=8),
        col_seed in any::<u64>(),
        word_seed in any::<u64>(),
    ) {
        let mut bank = TwoDArray::new(configs()[0]);
        let word = Bits::from_u64(word_seed, 64);
        for r in 0..bank.rows() {
            for w in 0..bank.words_per_row() {
                bank.write_word(r, w, &word);
            }
        }
        for (i, &stripe) in stripes.iter().enumerate() {
            bank.inject(ErrorShape::Single {
                row: stripe,
                col: (col_seed.rotate_left(i as u32) as usize) % bank.cols(),
            });
        }
        let slice = bank.scrub_step(bank.rows()).unwrap();
        prop_assert_eq!(slice.rows_scanned, bank.rows());
        prop_assert_eq!(slice.dirty_rows, stripes.len());
        prop_assert!(slice.wrapped);
        prop_assert_eq!(slice.recovered, !stripes.is_empty());
        prop_assert!(bank.audit(), "bank must audit clean after recovery");
    }
}
