//! # twod-cache — 2D error coding for caches
//!
//! The primary-contribution library of the reproduction of *"Multi-bit
//! Error Tolerant Caches Using Two-Dimensional Error Coding"* (Kim,
//! Hardavellas, Mai, Falsafi, Hoe — MICRO-40, 2007).
//!
//! 2D error coding decouples error *detection* (a light-weight per-word
//! horizontal code read on every access) from error *correction* (a set
//! of vertical parity rows maintained in the background by
//! read-before-write updates). The result is correction of clustered
//! errors up to 32x32 bits at a fraction of the area, latency, and power
//! of conventional multi-bit ECC.
//!
//! * [`TwoDScheme`] — protection configurations (the paper's L1/L2
//!   schemes plus yield mode);
//! * [`ProtectedCache`] — a functional set-associative write-back cache
//!   with 2D-protected data and tag arrays, transparent recovery, and
//!   fault injection hooks;
//! * [`ConcurrentBankedCache`] — the thread-safe sharded service: one
//!   lock per bank, `&self` reads/writes, per-bank recovery that never
//!   stalls sibling banks;
//! * [`Scrubber`] — the self-healing layer: background threads sweeping
//!   the banks in lock-bounded slices, with an adaptive rate controller
//!   driven by observed error traffic and online FIT/MTTF accounting;
//! * [`BankedProtectedCache`] — the sequential (`&mut self`) facade over
//!   the same banks;
//! * [`analysis`] — the overhead composition behind the paper's Figure 7.
//!
//! ## Quickstart
//!
//! ```
//! use twod_cache::{CacheConfig, ProtectedCache};
//! use memarray::ErrorShape;
//!
//! let mut cache = ProtectedCache::new(CacheConfig::l1_64kb());
//! cache.write(0x2000, 42).unwrap();
//!
//! // A multi-bit clustered upset strikes the data array...
//! cache.inject_data_error(ErrorShape::Cluster { row: 3, col: 10, height: 20, width: 30 });
//!
//! // ...and the read still returns the right value.
//! assert_eq!(cache.read(0x2000).unwrap(), 42);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod banked;
mod cache;
mod concurrent;
mod scheme;
mod scrubber;

pub use banked::BankedProtectedCache;
pub use cache::{CacheConfig, CacheStats, ProtectedCache, LINE_BYTES};
pub use concurrent::{BankGuard, BatchOp, BatchOutcome, ConcurrentBankedCache};
pub use scheme::TwoDScheme;
pub use scrubber::{Scrubber, ScrubberConfig, ScrubberStats};
