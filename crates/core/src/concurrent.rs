//! A thread-safe sharded 2D-protected cache: the concurrency layer the
//! paper's banked L2 organization implies but a `&mut self` API cannot
//! express.
//!
//! [`ConcurrentBankedCache`] wraps each bank ([`ProtectedCache`]) in its
//! own lock and interleaves line addresses across banks, so accesses to
//! different banks proceed in parallel and a bank running its multi-bit
//! recovery march never stalls its siblings — exactly the independence
//! the per-bank vertical parity was designed around. The whole service
//! is `Send + Sync` and every operation takes `&self`, which is what
//! lets a multi-threaded frontend (see `cachesim::service`) drive it.
//!
//! Lock discipline: every operation locks exactly one bank — the one
//! owning the address — for the duration of the access, including any
//! transparent recovery. Aggregation paths ([`Self::stats`],
//! [`Self::audit`], [`Self::scrub`]) visit banks one at a time; there is
//! no global lock anywhere, so no lock ordering and no deadlock.

use crate::{CacheConfig, CacheStats, ProtectedCache};
use memarray::{EngineError, EngineStats, ErrorShape, ScrubSlice};
use std::fmt;
use std::sync::{Mutex, MutexGuard};

/// An address-interleaved, lock-per-bank array of [`ProtectedCache`]
/// banks with a `&self` (shared-reference) access API.
///
/// Lines are distributed across banks by line-address modulo, the same
/// mapping the paper's banked L2 uses. All banks are built from one
/// shared [`memarray::BankScheme`] per array kind, so the codec table
/// memory exists once regardless of the bank count.
///
/// # Examples
///
/// ```
/// use std::thread;
/// use twod_cache::{CacheConfig, ConcurrentBankedCache};
///
/// let l2 = ConcurrentBankedCache::new(CacheConfig::l1_64kb(), 4);
/// thread::scope(|s| {
///     for t in 0u64..4 {
///         let l2 = &l2;
///         s.spawn(move || {
///             let addr = 0x1000 + t * 8;
///             l2.write(addr, t + 1).unwrap();
///             assert_eq!(l2.read(addr).unwrap(), t + 1);
///         });
///     }
/// });
/// ```
pub struct ConcurrentBankedCache {
    banks: Vec<Mutex<ProtectedCache>>,
    line_bytes: u64,
}

impl ConcurrentBankedCache {
    /// Creates `banks` independent banks, each configured per `config`.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0` or the per-bank geometry is invalid.
    pub fn new(config: CacheConfig, banks: usize) -> Self {
        assert!(banks > 0, "need at least one bank");
        ConcurrentBankedCache {
            banks: (0..banks)
                .map(|_| Mutex::new(ProtectedCache::new(config)))
                .collect(),
            line_bytes: crate::LINE_BYTES as u64,
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Total capacity across banks.
    pub fn capacity(&self) -> usize {
        (0..self.banks.len())
            .map(|i| self.lock_bank(i).config().capacity())
            .sum()
    }

    /// Which bank serves `addr`.
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) % self.banks.len() as u64) as usize
    }

    /// Bank-local address: the line index within the bank, preserving the
    /// in-line offset.
    fn local_addr(&self, addr: u64) -> u64 {
        let line = addr / self.line_bytes;
        let offset = addr % self.line_bytes;
        (line / self.banks.len() as u64) * self.line_bytes + offset
    }

    /// Locks one bank and returns the guard. A bank whose lock was
    /// poisoned (a panic inside another thread's access) is recovered
    /// rather than propagated: the bank's own 2D consistency machinery —
    /// audits, scrubbing, recovery — is the integrity story, not the
    /// poison flag, and one crashed worker must not take a bank (and
    /// every line it shards) permanently offline.
    pub fn lock_bank(&self, index: usize) -> MutexGuard<'_, ProtectedCache> {
        self.banks[index]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access to one bank without locking (requires `&mut self`,
    /// which proves exclusive ownership).
    pub fn bank_mut(&mut self, index: usize) -> &mut ProtectedCache {
        match self.banks[index].get_mut() {
            Ok(bank) => bank,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Reads the aligned 64-bit word at `addr`, locking only the owning
    /// bank.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the owning bank's protection was
    /// defeated.
    pub fn read(&self, addr: u64) -> Result<u64, EngineError> {
        let bank = self.bank_of(addr);
        let local = self.local_addr(addr);
        self.lock_bank(bank).read(local)
    }

    /// Writes the aligned 64-bit word at `addr`, locking only the owning
    /// bank.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the owning bank's protection was
    /// defeated.
    pub fn write(&self, addr: u64, value: u64) -> Result<(), EngineError> {
        let bank = self.bank_of(addr);
        let local = self.local_addr(addr);
        self.lock_bank(bank).write(local, value)
    }

    /// Injects an error into one bank's data array. Safe to call while
    /// other threads are accessing the cache — the owning bank is locked
    /// for the injection, and its next access triggers recovery.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn inject_bank_error(&self, bank: usize, shape: ErrorShape) {
        self.lock_bank(bank).inject_data_error(shape);
    }

    /// Injects a stuck-at fault into one bank's data array.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn inject_bank_hard_error(&self, bank: usize, shape: ErrorShape, stuck: bool) {
        self.lock_bank(bank).inject_data_hard_error(shape, stuck);
    }

    /// Scrubs every bank, one at a time — banks not currently being
    /// scrubbed stay available to other threads.
    ///
    /// # Errors
    ///
    /// Returns the first bank's [`EngineError`] if any bank holds
    /// uncorrectable damage.
    pub fn scrub(&self) -> Result<(), EngineError> {
        for i in 0..self.banks.len() {
            self.lock_bank(i).scrub()?;
        }
        Ok(())
    }

    /// Incremental scrub of one bank: locks the bank only for a
    /// `max_rows`-row slice (plus any recovery it triggers), so
    /// foreground accesses to the bank wait for a bounded scan instead
    /// of a whole-bank audit. See [`ProtectedCache::scrub_step`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the bank holds uncorrectable damage.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn scrub_bank_step(&self, bank: usize, max_rows: usize) -> Result<ScrubSlice, EngineError> {
        self.lock_bank(bank).scrub_step(max_rows)
    }

    /// Error events observed by one bank from any detection source
    /// (monotonic; see [`ProtectedCache::observed_errors`]).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank_observed_errors(&self, bank: usize) -> u64 {
        self.lock_bank(bank).observed_errors()
    }

    /// Whether every bank passes its audit (locks one bank at a time).
    pub fn audit(&self) -> bool {
        (0..self.banks.len()).all(|i| self.lock_bank(i).audit())
    }

    /// Aggregated access statistics across banks, collected bank by bank
    /// without any global lock. The result is a consistent snapshot per
    /// bank, not across banks — under concurrent traffic the totals are
    /// momentarily approximate, which is the standard contract for
    /// sharded counters.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for i in 0..self.banks.len() {
            let s = self.lock_bank(i).stats();
            total.read_hits += s.read_hits;
            total.read_misses += s.read_misses;
            total.write_hits += s.write_hits;
            total.write_misses += s.write_misses;
            total.writebacks += s.writebacks;
            total.errors_corrected += s.errors_corrected;
        }
        total
    }

    /// Aggregated data-array engine statistics across banks (recoveries,
    /// extra reads, ...), collected bank by bank. Uses
    /// [`EngineStats::merge`], so every counter — including ones added
    /// after this aggregation was written — participates.
    pub fn data_engine_stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for i in 0..self.banks.len() {
            total.merge(&self.lock_bank(i).data_engine_stats());
        }
        total
    }
}

impl fmt::Debug for ConcurrentBankedCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ConcurrentBankedCache({} banks x {}B)",
            self.banks.len(),
            self.lock_bank(0).config().capacity()
        )
    }
}

// The whole point of the type: it can be shared across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ConcurrentBankedCache>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoDScheme;
    use std::thread;

    fn small_concurrent(banks: usize) -> ConcurrentBankedCache {
        ConcurrentBankedCache::new(
            CacheConfig {
                sets: 16,
                ways: 2,
                data_scheme: TwoDScheme::l1_paper(),
                tag_scheme: TwoDScheme {
                    data_bits: 50,
                    ..TwoDScheme::l1_paper()
                },
            },
            banks,
        )
    }

    #[test]
    fn shared_reference_read_write() {
        let c = small_concurrent(4);
        for i in 0..64u64 {
            c.write(i * 8, i + 1).unwrap();
        }
        for i in 0..64u64 {
            assert_eq!(c.read(i * 8).unwrap(), i + 1, "word {i}");
        }
        assert!(c.audit());
    }

    #[test]
    fn parallel_threads_span_all_banks() {
        let c = small_concurrent(4);
        thread::scope(|s| {
            for t in 0u64..4 {
                let c = &c;
                s.spawn(move || {
                    // Each thread touches every bank (stride one line).
                    for i in 0..32u64 {
                        let addr = (t * 32 + i) * 64;
                        c.write(addr, t * 1000 + i).unwrap();
                        assert_eq!(c.read(addr).unwrap(), t * 1000 + i);
                    }
                });
            }
        });
        let stats = c.stats();
        assert_eq!(stats.write_misses + stats.write_hits, 128);
        assert!(c.audit());
    }

    #[test]
    fn injection_under_shared_reference_recovers() {
        let c = small_concurrent(2);
        for i in 0..32u64 {
            c.write(i * 64, i ^ 0x5A).unwrap();
        }
        c.inject_bank_error(
            1,
            ErrorShape::Cluster {
                row: 0,
                col: 0,
                height: 16,
                width: 16,
            },
        );
        for i in 0..32u64 {
            assert_eq!(c.read(i * 64).unwrap(), i ^ 0x5A, "line {i}");
        }
        assert!(c.lock_bank(1).data_engine_stats().recoveries >= 1);
        assert_eq!(c.lock_bank(0).data_engine_stats().recoveries, 0);
        assert!(c.audit());
    }

    #[test]
    fn engine_stats_aggregate_across_banks() {
        let c = small_concurrent(2);
        for i in 0..16u64 {
            c.write(i * 64, i).unwrap();
        }
        let engine = c.data_engine_stats();
        assert!(engine.writes > 0);
        assert_eq!(
            engine.writes,
            c.lock_bank(0).data_engine_stats().writes + c.lock_bank(1).data_engine_stats().writes
        );
    }
}
