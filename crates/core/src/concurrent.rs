//! A thread-safe sharded 2D-protected cache: the concurrency layer the
//! paper's banked L2 organization implies but a `&mut self` API cannot
//! express.
//!
//! [`ConcurrentBankedCache`] wraps each bank ([`ProtectedCache`]) in its
//! own lock and interleaves line addresses across banks, so accesses to
//! different banks proceed in parallel and a bank running its multi-bit
//! recovery march never stalls its siblings — exactly the independence
//! the per-bank vertical parity was designed around. The whole service
//! is `Send + Sync` and every operation takes `&self`, which is what
//! lets a multi-threaded frontend (see `cachesim::service`) drive it.
//!
//! # Lock discipline
//!
//! Every locked operation locks exactly one bank — the one owning the
//! address — for the duration of the access, including any transparent
//! recovery. Aggregation paths ([`Self::stats`], [`Self::audit`],
//! [`Self::scrub`]) visit banks one at a time; there is no global lock
//! anywhere, so no lock ordering and no deadlock.
//!
//! # The seqlock clean-read fast path
//!
//! The paper's premise is that clean reads are the overwhelmingly common
//! case: 2D coding makes them *verify-only* (masked row-parity checks,
//! no mutation, no decode). That asymmetry is what makes an optimistic
//! read protocol sound here, so each bank additionally carries a seqlock
//! generation counter:
//!
//! * every lock acquisition ([`Self::lock_bank`]) bumps the bank's
//!   sequence to **odd** on entry and back to **even** on release —
//!   every locked operation is a *writer* for sequencing purposes, even
//!   logical reads (they mutate LRU stacks, stats, and scratch rows);
//! * [`Self::try_optimistic_read`] snapshots an even sequence, probes
//!   the tag and data grids through borrow-free verify-only
//!   [`memarray::ArrayProbe`]s, re-checks the sequence, and hands any
//!   torn read, odd sequence, dirty-word signal, or tag miss to the
//!   locked fallback path;
//! * [`Self::read`] tries the optimistic path first and falls back to
//!   the locked bank transparently.
//!
//! The full protocol — invariants, memory orderings with the
//! happens-before argument, and the torn-read fallback state machine —
//! is documented in `docs/CONCURRENCY.md`.

use crate::cache::{CacheGeometry, TagEntry, TAG_ENTRY_BITS};
use crate::{CacheConfig, CacheStats, ProtectedCache};
use memarray::{ArrayProbe, EngineError, EngineStats, ErrorShape, ScrubSlice};
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// One bank: the protected cache plus the seqlock state guarding it.
///
/// The [`ProtectedCache`] lives in an [`UnsafeCell`] because optimistic
/// readers probe its grids while a writer may be mutating them under the
/// mutex — Rust's `&`/`&mut` aliasing rules cannot express a seqlock, so
/// the discipline is enforced by hand:
///
/// * `&mut ProtectedCache` is only ever formed while holding `lock`
///   (via [`BankGuard`]) or while holding `&mut` on the whole cache
///   (via [`ConcurrentBankedCache::bank_mut`]);
/// * lock-free readers never form *any* reference into the racing
///   storage — the [`ArrayProbe`]s read raw grid limbs with relaxed
///   atomic loads and all validation happens against the stack snapshot.
struct Bank {
    /// Seqlock generation counter: odd while a [`BankGuard`] is live,
    /// even when quiescent. Only ever mutated under `lock`.
    seq: AtomicU64,
    /// The writer-exclusion mutex. Holds no data — the payload lives in
    /// `cache` so readers can reach it without the borrow the mutex
    /// would impose.
    lock: Mutex<()>,
    cache: UnsafeCell<ProtectedCache>,
    /// Verify-only window onto `cache`'s data grid (captured once at
    /// construction; the grid's limb buffer never reallocates).
    data_probe: ArrayProbe,
    /// Verify-only window onto `cache`'s tag grid.
    tag_probe: ArrayProbe,
    /// Reads served by the optimistic path (they bypass the per-bank
    /// `CacheStats`, which only a locked borrow may touch).
    opt_hits: AtomicU64,
    /// Whether the bank's fault overlay holds stuck-at cells. The probes
    /// read raw grid limbs and cannot consult the overlay's `BTreeMap`
    /// lock-free, so optimistic reads are disabled while this is set.
    /// Refreshed on every [`BankGuard`] release; pessimistically pinned
    /// `true` by [`ConcurrentBankedCache::bank_mut`] (whose caller may
    /// inject faults without ever taking the lock).
    hard_faults: AtomicBool,
}

// SAFETY: `Bank` is shared across threads by design. All `&mut` access
// to the `UnsafeCell` payload is serialized by `lock` (or by `&mut self`
// on the owning cache), and the only lock-free access is through the
// probes' relaxed atomic limb loads, validated by the seqlock protocol
// (see module docs and docs/CONCURRENCY.md).
unsafe impl Send for Bank {}
unsafe impl Sync for Bank {}

impl Bank {
    fn new(config: CacheConfig) -> Self {
        let cache = ProtectedCache::new(config);
        // Capture the probes before the cache moves into the cell: they
        // point at the grids' heap limb buffers, which stay put when the
        // owning struct moves and are never reallocated afterwards.
        let data_probe = cache.data_array().probe();
        let tag_probe = cache.tag_array().probe();
        Bank {
            seq: AtomicU64::new(0),
            lock: Mutex::new(()),
            cache: UnsafeCell::new(cache),
            data_probe,
            tag_probe,
            opt_hits: AtomicU64::new(0),
            hard_faults: AtomicBool::new(false),
        }
    }
}

/// A locked bank: exclusive access to one [`ProtectedCache`], with the
/// bank's seqlock sequence held **odd** for as long as the guard lives.
///
/// Obtained from [`ConcurrentBankedCache::lock_bank`]. Dereferences to
/// the bank's [`ProtectedCache`], so existing `MutexGuard`-era call
/// sites (`cache.lock_bank(b).scrub_step(..)`, scrubber workers,
/// campaign drivers) work unchanged — and by construction every one of
/// them, including logical reads, sequences as a seqlock *writer*: lock
/// acquisition stores an odd sequence before any payload access is
/// possible, and the guard's `Drop` publishes the even successor with
/// `Release` ordering after all mutation is done.
pub struct BankGuard<'a> {
    bank: &'a Bank,
    /// Held for exclusion only; payload access goes through the cell.
    _lock: MutexGuard<'a, ()>,
}

impl Deref for BankGuard<'_> {
    type Target = ProtectedCache;

    fn deref(&self) -> &ProtectedCache {
        // SAFETY: the mutex is held, so no other `&mut` exists; lock-free
        // probes never form references into the payload.
        unsafe { &*self.bank.cache.get() }
    }
}

impl DerefMut for BankGuard<'_> {
    fn deref_mut(&mut self) -> &mut ProtectedCache {
        // SAFETY: as above — the mutex serializes all `&mut` access.
        unsafe { &mut *self.bank.cache.get() }
    }
}

impl Drop for BankGuard<'_> {
    fn drop(&mut self) {
        // Refresh the hard-fault hint while still sequenced: the store
        // lands before the even sequence below, so a reader that
        // validates against the new sequence also sees the new hint.
        let cache = unsafe { &*self.bank.cache.get() };
        let hard =
            !cache.data_array().fault_map().is_empty() || !cache.tag_array().fault_map().is_empty();
        self.bank.hard_faults.store(hard, Ordering::Relaxed);
        // Writer exit: publish the even successor. `Release` orders every
        // payload store of this critical section before the store, so a
        // reader whose `Acquire` snapshot observes it sees the section's
        // writes in full. The body runs before `_lock` drops, so the
        // sequence is even again before the mutex is released.
        let s = self.bank.seq.load(Ordering::Relaxed);
        self.bank.seq.store(s.wrapping_add(1), Ordering::Release);
    }
}

impl fmt::Debug for BankGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BankGuard({:?})", **self)
    }
}

/// An address-interleaved, lock-per-bank array of [`ProtectedCache`]
/// banks with a `&self` (shared-reference) access API and a seqlock
/// optimistic fast path for clean read hits.
///
/// Lines are distributed across banks by line-address modulo, the same
/// mapping the paper's banked L2 uses. All banks are built from one
/// shared [`memarray::BankScheme`] per array kind, so the codec table
/// memory exists once regardless of the bank count.
///
/// # Examples
///
/// ```
/// use std::thread;
/// use twod_cache::{CacheConfig, ConcurrentBankedCache};
///
/// let l2 = ConcurrentBankedCache::new(CacheConfig::l1_64kb(), 4);
/// thread::scope(|s| {
///     for t in 0u64..4 {
///         let l2 = &l2;
///         s.spawn(move || {
///             let addr = 0x1000 + t * 8;
///             l2.write(addr, t + 1).unwrap();
///             assert_eq!(l2.read(addr).unwrap(), t + 1);
///         });
///     }
/// });
/// // Re-reads of resident clean lines are served lock-free.
/// assert!(l2.read(0x1000).is_ok());
/// assert!(l2.optimistic_hits() > 0);
/// ```
pub struct ConcurrentBankedCache {
    banks: Vec<Bank>,
    line_bytes: u64,
    /// `Copy` snapshot of the per-bank address arithmetic, so the
    /// optimistic path computes (set, way, row, slot) coordinates
    /// without borrowing any bank.
    geometry: CacheGeometry,
    /// Total [`Self::lock_bank`] acquisitions, across banks and callers.
    /// The amortization ledger: batched execution's whole claim is that
    /// this grows sublinearly in operations served, and the bench gate
    /// pins locks-per-op against it.
    lock_acquisitions: AtomicU64,
}

/// One operation of a batch handed to
/// [`ConcurrentBankedCache::execute_batch`]. Ops carry full (global)
/// addresses; the batch executor routes each to its owning bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchOp {
    /// Read the aligned 64-bit word at the address.
    Read(u64),
    /// Write the value to the aligned 64-bit word at the address.
    Write(u64, u64),
}

impl BatchOp {
    /// The address the op targets.
    pub fn addr(&self) -> u64 {
        match *self {
            BatchOp::Read(addr) | BatchOp::Write(addr, _) => addr,
        }
    }
}

/// Per-op result of a batched execution, position-matched to the input
/// slice. `Failed` carries the bank's [`EngineError`] (protection
/// defeated), exactly what the scalar [`ConcurrentBankedCache::read`] /
/// [`ConcurrentBankedCache::write`] would have returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchOutcome {
    /// A read completed and produced this value.
    Value(u64),
    /// A write completed.
    Written,
    /// The owning bank's protection was defeated for this op.
    Failed(EngineError),
}

impl ConcurrentBankedCache {
    /// Creates `banks` independent banks, each configured per `config`.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0` or the per-bank geometry is invalid.
    pub fn new(config: CacheConfig, banks: usize) -> Self {
        assert!(banks > 0, "need at least one bank");
        ConcurrentBankedCache {
            banks: (0..banks).map(|_| Bank::new(config)).collect(),
            line_bytes: crate::LINE_BYTES as u64,
            geometry: CacheGeometry::new(&config),
            lock_acquisitions: AtomicU64::new(0),
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Total capacity across banks.
    pub fn capacity(&self) -> usize {
        (0..self.banks.len())
            .map(|i| self.lock_bank(i).config().capacity())
            .sum()
    }

    /// Which bank serves `addr`.
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) % self.banks.len() as u64) as usize
    }

    /// Bank-local address: the line index within the bank, preserving the
    /// in-line offset.
    fn local_addr(&self, addr: u64) -> u64 {
        let line = addr / self.line_bytes;
        let offset = addr % self.line_bytes;
        (line / self.banks.len() as u64) * self.line_bytes + offset
    }

    /// Locks one bank and returns the guard, entering the bank's seqlock
    /// write side (sequence goes odd; see [`BankGuard`]). A bank whose
    /// lock was poisoned (a panic inside another thread's access) is
    /// recovered rather than propagated: the bank's own 2D consistency
    /// machinery — audits, scrubbing, recovery — is the integrity story,
    /// not the poison flag, and one crashed worker must not take a bank
    /// (and every line it shards) permanently offline.
    pub fn lock_bank(&self, index: usize) -> BankGuard<'_> {
        self.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        let bank = &self.banks[index];
        let lock = bank
            .lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Writer entry: make the sequence odd *before* any payload
        // mutation can happen. The store itself can be `Relaxed` (only
        // lock holders mutate `seq`, and the mutex serialized us); the
        // `Release` fence keeps it from sinking below the critical
        // section's payload stores, which is what lets a racing reader's
        // acquire-fence validation observe "writer active" whenever it
        // observed any of those stores (see docs/CONCURRENCY.md).
        let s = bank.seq.load(Ordering::Relaxed);
        bank.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        BankGuard { bank, _lock: lock }
    }

    /// Mutable access to one bank without locking (requires `&mut self`,
    /// which proves exclusive ownership — no optimistic reader can run
    /// concurrently, so no sequence bump is needed). The hard-fault hint
    /// is pessimistically pinned until the next locked access recomputes
    /// it, because the caller may inject stuck-at faults through the
    /// returned reference without ever taking the lock.
    pub fn bank_mut(&mut self, index: usize) -> &mut ProtectedCache {
        let bank = &mut self.banks[index];
        bank.hard_faults.store(true, Ordering::Relaxed);
        bank.cache.get_mut()
    }

    /// Attempts a lock-free optimistic read of the aligned 64-bit word at
    /// `addr`: the seqlock read side. Returns the value only when the
    /// whole attempt was provably race-free and clean —
    ///
    /// 1. the bank's hard-fault hint is clear (the probes bypass the
    ///    stuck-at overlay, so any stuck cell disables the fast path),
    /// 2. the sequence snapshot is even (no writer in the bank),
    /// 3. the tag lookup finds a valid matching way and that way's tag
    ///    word verifies clean (other ways' tags are extracted without
    ///    verification — a corrupted non-match can only demote this
    ///    attempt to the locked path, never serve data),
    /// 4. the data word probes clean,
    /// 5. the sequence re-check equals the snapshot (no writer ran
    ///    during the probes — the value is not torn).
    ///
    /// `None` means "take the locked path": it covers misses as well as
    /// contention and dirty words, so the caller cannot distinguish them
    /// — [`Self::read`] does the fallback automatically and is what
    /// ordinary callers want.
    ///
    /// # Examples
    ///
    /// ```
    /// use twod_cache::{CacheConfig, ConcurrentBankedCache};
    ///
    /// let cache = ConcurrentBankedCache::new(CacheConfig::l1_64kb(), 2);
    /// // Line address 0x80 is line 2, which interleaves onto bank 0.
    /// cache.write(0x80, 7).unwrap();
    ///
    /// // Clean resident hit: served lock-free.
    /// assert_eq!(cache.try_optimistic_read(0x80), Some(7));
    /// // Miss: refused, the locked path would fill it.
    /// assert_eq!(cache.try_optimistic_read(0x4000_0000), None);
    /// // Writer in the bank (odd sequence): refused until it leaves.
    /// let guard = cache.lock_bank(0);
    /// assert_eq!(cache.try_optimistic_read(0x80), None);
    /// drop(guard);
    /// assert_eq!(cache.try_optimistic_read(0x80), Some(7));
    /// ```
    pub fn try_optimistic_read(&self, addr: u64) -> Option<u64> {
        let bank = &self.banks[self.bank_of(addr)];
        if bank.hard_faults.load(Ordering::Relaxed) {
            return None;
        }
        // Reader entry: snapshot the sequence. `Acquire` pairs with the
        // `Release` store of the previous writer's exit, so an even
        // snapshot implies that writer's payload stores are fully
        // visible.
        let s1 = bank.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            return None;
        }
        let (set, tag, word_in_line) = self.geometry.split(self.local_addr(addr));
        // Way scan, tuned to keep the common case cheap: one snapshot
        // covers every way whose tag entry shares a row, each way's tag
        // is extracted *unverified*, and the clean-mask checks run only
        // for the way that actually matches. A corrupted (or torn)
        // non-matching tag can only cause a miss here — the fallback
        // path re-reads under the lock and recovers — while a matching
        // tag is never trusted without its clean check passing.
        let mut tag_snap = [0u64; memarray::PROBE_MAX_ROW_LIMBS];
        let mut snap_row = usize::MAX;
        let mut value = None;
        for way in 0..self.geometry.ways {
            let (trow, tslot) = self.geometry.tag_coords(set, way);
            if trow != snap_row {
                // SAFETY: the probes' source arrays live inside `self`
                // and are alive for the duration of this call; torn
                // snapshots are rejected by the sequence re-check below.
                unsafe { bank.tag_probe.snapshot_row(trow, &mut tag_snap) }?;
                snap_row = trow;
            }
            let limbs = &tag_snap[..];
            let entry =
                TagEntry::from_u64(bank.tag_probe.extract_in(limbs, tslot, 0, TAG_ENTRY_BITS));
            if entry.valid && entry.tag == tag {
                if !bank.tag_probe.word_clean_in(limbs, tslot) {
                    return None;
                }
                let (row, slot, sub) = self.geometry.data_coords(set, way, word_in_line);
                // SAFETY: as above.
                value = Some(unsafe { bank.data_probe.peek_word_u64(row, slot, sub, 64) }?);
                break;
            }
        }
        let value = value?;
        // Reader exit: the acquire fence orders the probe loads above
        // before the sequence re-check, pairing with the release fence
        // of a writer's entry — if any probe load observed a store from
        // a writer's critical section, the re-check observes that
        // writer's odd sequence (or a later one) and rejects.
        fence(Ordering::Acquire);
        if bank.seq.load(Ordering::Relaxed) != s1 {
            return None;
        }
        bank.opt_hits.fetch_add(1, Ordering::Relaxed);
        Some(value)
    }

    /// Reads the aligned 64-bit word at `addr`: lock-free via
    /// [`Self::try_optimistic_read`] when the word is a clean resident
    /// hit and nothing raced, else through the owning bank's lock (which
    /// runs misses, LRU updates, inline correction, and 2D recovery).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the owning bank's protection was
    /// defeated.
    pub fn read(&self, addr: u64) -> Result<u64, EngineError> {
        if let Some(value) = self.try_optimistic_read(addr) {
            return Ok(value);
        }
        let bank = self.bank_of(addr);
        let local = self.local_addr(addr);
        self.lock_bank(bank).read(local)
    }

    /// Writes the aligned 64-bit word at `addr`, locking only the owning
    /// bank (writes always take the lock — the seqlock has no optimistic
    /// write side).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the owning bank's protection was
    /// defeated.
    pub fn write(&self, addr: u64, value: u64) -> Result<(), EngineError> {
        let bank = self.bank_of(addr);
        let local = self.local_addr(addr);
        self.lock_bank(bank).write(local, value)
    }

    /// Executes a batch of reads and writes, grouping ops by owning bank
    /// so each bank's group pays **at most one** [`Self::lock_bank`]
    /// acquisition — the amortization the batched network serve path is
    /// built on. Outcomes land in `out` position-matched to `ops`
    /// (`out` is cleared and refilled; its capacity is reused).
    ///
    /// Per-op ordering within a bank follows batch order, and the
    /// bank guard is taken *lazily*:
    ///
    /// * while the bank's guard has not been taken yet, each read first
    ///   tries the seqlock optimistic path ([`Self::try_optimistic_read`])
    ///   — clean resident Zipf read traffic stays entirely lock-free even
    ///   inside a batch;
    /// * the first write (or first read that the optimistic path
    ///   refuses) locks the bank once, and every later op of that bank's
    ///   group runs under the same guard, in batch order.
    ///
    /// That lazy discipline is also the ordering argument: a read that
    /// must observe an earlier write *in the same batch* targets the
    /// same address, hence the same bank, hence runs after that write
    /// under the guard the write forced. Ops on different banks target
    /// different addresses, so executing bank groups in bank order (not
    /// arrival order) is unobservable. See docs/CONCURRENCY.md.
    ///
    /// `observe` is called once per bank group that actually took the
    /// lock, with the bank index and the time spent holding the guard —
    /// the hook the server's slow-op degraded-mode detection uses.
    pub fn execute_batch_observed<F>(
        &self,
        ops: &[BatchOp],
        out: &mut Vec<BatchOutcome>,
        observe: F,
    ) where
        F: FnMut(usize, std::time::Duration),
    {
        let mut observe = observe;
        out.clear();
        out.resize(ops.len(), BatchOutcome::Written);
        for bank_idx in 0..self.banks.len() {
            let mut guard: Option<BankGuard<'_>> = None;
            let mut entered = None;
            for (i, op) in ops.iter().enumerate() {
                if self.bank_of(op.addr()) != bank_idx {
                    continue;
                }
                let local = self.local_addr(op.addr());
                match *op {
                    BatchOp::Read(addr) => {
                        if guard.is_none() {
                            if let Some(value) = self.try_optimistic_read(addr) {
                                out[i] = BatchOutcome::Value(value);
                                continue;
                            }
                        }
                        let g = guard.get_or_insert_with(|| {
                            entered = Some(std::time::Instant::now());
                            self.lock_bank(bank_idx)
                        });
                        out[i] = match g.read(local) {
                            Ok(value) => BatchOutcome::Value(value),
                            Err(e) => BatchOutcome::Failed(e),
                        };
                    }
                    BatchOp::Write(_, value) => {
                        let g = guard.get_or_insert_with(|| {
                            entered = Some(std::time::Instant::now());
                            self.lock_bank(bank_idx)
                        });
                        out[i] = match g.write(local, value) {
                            Ok(()) => BatchOutcome::Written,
                            Err(e) => BatchOutcome::Failed(e),
                        };
                    }
                }
            }
            if let Some(g) = guard {
                let held = entered.expect("guard implies entry timestamp").elapsed();
                drop(g);
                observe(bank_idx, held);
            }
        }
    }

    /// [`Self::execute_batch_observed`] without the per-bank-group
    /// timing hook.
    pub fn execute_batch(&self, ops: &[BatchOp], out: &mut Vec<BatchOutcome>) {
        self.execute_batch_observed(ops, out, |_, _| {});
    }

    /// Batched read of many (possibly bank-interleaved) addresses:
    /// optimistic per-op first, then at most one lock per bank for the
    /// fallbacks. Results land in `out` position-matched to `addrs`.
    ///
    /// # Examples
    ///
    /// ```
    /// use twod_cache::{CacheConfig, ConcurrentBankedCache};
    ///
    /// let c = ConcurrentBankedCache::new(CacheConfig::l1_64kb(), 4);
    /// let addrs: Vec<u64> = (0..32u64).map(|i| i * 64).collect();
    /// for &a in &addrs {
    ///     c.write(a, a + 1).unwrap();
    /// }
    /// let mut out = Vec::new();
    /// c.read_batch(&addrs, &mut out);
    /// assert!(addrs.iter().zip(&out).all(|(&a, r)| *r == Ok(a + 1)));
    /// ```
    pub fn read_batch(&self, addrs: &[u64], out: &mut Vec<Result<u64, EngineError>>) {
        out.clear();
        out.resize(addrs.len(), Ok(0));
        for bank_idx in 0..self.banks.len() {
            let mut guard: Option<BankGuard<'_>> = None;
            for (i, &addr) in addrs.iter().enumerate() {
                if self.bank_of(addr) != bank_idx {
                    continue;
                }
                if guard.is_none() {
                    if let Some(value) = self.try_optimistic_read(addr) {
                        out[i] = Ok(value);
                        continue;
                    }
                }
                let local = self.local_addr(addr);
                let g = guard.get_or_insert_with(|| self.lock_bank(bank_idx));
                out[i] = g.read(local);
            }
        }
    }

    /// Batched write of many `(addr, value)` pairs: one lock per bank
    /// that owns at least one pair (writes always take the lock — the
    /// seqlock has no optimistic write side). Results land in `out`
    /// position-matched to `items`.
    pub fn write_batch(&self, items: &[(u64, u64)], out: &mut Vec<Result<(), EngineError>>) {
        out.clear();
        out.resize(items.len(), Ok(()));
        for bank_idx in 0..self.banks.len() {
            let mut guard: Option<BankGuard<'_>> = None;
            for (i, &(addr, value)) in items.iter().enumerate() {
                if self.bank_of(addr) != bank_idx {
                    continue;
                }
                let local = self.local_addr(addr);
                let g = guard.get_or_insert_with(|| self.lock_bank(bank_idx));
                out[i] = g.write(local, value);
            }
        }
    }

    /// Total bank-lock acquisitions so far (monotonic, all callers —
    /// foreground ops, batches, scrubbers, stats aggregation). Deltas
    /// around a known op sequence give a deterministic locks-per-op
    /// figure; the bench gate holds batched execution to < 0.2 under
    /// pipelined Zipf traffic.
    pub fn lock_acquisitions(&self) -> u64 {
        self.lock_acquisitions.load(Ordering::Relaxed)
    }

    /// Injects an error into one bank's data array. Safe to call while
    /// other threads are accessing the cache — the owning bank is locked
    /// (sequencing out optimistic readers) for the injection, and its
    /// next access triggers recovery.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn inject_bank_error(&self, bank: usize, shape: ErrorShape) {
        self.lock_bank(bank).inject_data_error(shape);
    }

    /// Injects a stuck-at fault into one bank's data array. The bank's
    /// hard-fault hint is set before the injecting guard releases its
    /// sequence, so optimistic readers never probe past a stuck cell.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn inject_bank_hard_error(&self, bank: usize, shape: ErrorShape, stuck: bool) {
        self.lock_bank(bank).inject_data_hard_error(shape, stuck);
    }

    /// Scrubs every bank, one at a time — banks not currently being
    /// scrubbed stay available to other threads (scrubbing a bank
    /// sequences as a writer, pushing that bank's readers onto the
    /// locked path for the duration).
    ///
    /// # Errors
    ///
    /// Returns the first bank's [`EngineError`] if any bank holds
    /// uncorrectable damage.
    pub fn scrub(&self) -> Result<(), EngineError> {
        for i in 0..self.banks.len() {
            self.lock_bank(i).scrub()?;
        }
        Ok(())
    }

    /// Incremental scrub of one bank: locks the bank only for a
    /// `max_rows`-row slice (plus any recovery it triggers), so
    /// foreground accesses to the bank wait for a bounded scan instead
    /// of a whole-bank audit. See [`ProtectedCache::scrub_step`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the bank holds uncorrectable damage.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn scrub_bank_step(&self, bank: usize, max_rows: usize) -> Result<ScrubSlice, EngineError> {
        self.lock_bank(bank).scrub_step(max_rows)
    }

    /// Error events observed by one bank from any detection source
    /// (monotonic; see [`ProtectedCache::observed_errors`]).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank_observed_errors(&self, bank: usize) -> u64 {
        self.lock_bank(bank).observed_errors()
    }

    /// Whether every bank passes its audit (locks one bank at a time).
    pub fn audit(&self) -> bool {
        (0..self.banks.len()).all(|i| self.lock_bank(i).audit())
    }

    /// Reads served by the optimistic lock-free path, across banks.
    /// These are genuine read hits; [`Self::stats`] already folds them
    /// into [`CacheStats::read_hits`].
    pub fn optimistic_hits(&self) -> u64 {
        self.banks
            .iter()
            .map(|b| b.opt_hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Aggregated access statistics across banks, collected bank by bank
    /// without any global lock. Optimistic reads bypass the locked
    /// per-bank counters, so their tally is folded into
    /// [`CacheStats::read_hits`] here (an optimistic hit is by
    /// construction a read hit). The result is a consistent snapshot per
    /// bank, not across banks — under concurrent traffic the totals are
    /// momentarily approximate, which is the standard contract for
    /// sharded counters.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for i in 0..self.banks.len() {
            let s = self.lock_bank(i).stats();
            total.read_hits += s.read_hits + self.banks[i].opt_hits.load(Ordering::Relaxed);
            total.read_misses += s.read_misses;
            total.write_hits += s.write_hits;
            total.write_misses += s.write_misses;
            total.writebacks += s.writebacks;
            total.errors_corrected += s.errors_corrected;
        }
        total
    }

    /// Aggregated data-array engine statistics across banks (recoveries,
    /// extra reads, ...), collected bank by bank. Uses
    /// [`EngineStats::merge`], so every counter — including ones added
    /// after this aggregation was written — participates. Optimistic
    /// reads never touch the engine (they are verify-only against raw
    /// limbs), so they appear in no engine counter by design.
    pub fn data_engine_stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for i in 0..self.banks.len() {
            total.merge(&self.lock_bank(i).data_engine_stats());
        }
        total
    }
}

impl fmt::Debug for ConcurrentBankedCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ConcurrentBankedCache({} banks x {}B)",
            self.banks.len(),
            self.lock_bank(0).config().capacity()
        )
    }
}

// The whole point of the type: it can be shared across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ConcurrentBankedCache>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoDScheme;
    use std::thread;

    fn small_concurrent(banks: usize) -> ConcurrentBankedCache {
        ConcurrentBankedCache::new(
            CacheConfig {
                sets: 16,
                ways: 2,
                data_scheme: TwoDScheme::l1_paper(),
                tag_scheme: TwoDScheme {
                    data_bits: 50,
                    ..TwoDScheme::l1_paper()
                },
            },
            banks,
        )
    }

    #[test]
    fn shared_reference_read_write() {
        let c = small_concurrent(4);
        for i in 0..64u64 {
            c.write(i * 8, i + 1).unwrap();
        }
        for i in 0..64u64 {
            assert_eq!(c.read(i * 8).unwrap(), i + 1, "word {i}");
        }
        assert!(c.audit());
    }

    #[test]
    fn parallel_threads_span_all_banks() {
        let c = small_concurrent(4);
        thread::scope(|s| {
            for t in 0u64..4 {
                let c = &c;
                s.spawn(move || {
                    // Each thread touches every bank (stride one line).
                    for i in 0..32u64 {
                        let addr = (t * 32 + i) * 64;
                        c.write(addr, t * 1000 + i).unwrap();
                        assert_eq!(c.read(addr).unwrap(), t * 1000 + i);
                    }
                });
            }
        });
        let stats = c.stats();
        assert_eq!(stats.write_misses + stats.write_hits, 128);
        assert!(c.audit());
    }

    #[test]
    fn injection_under_shared_reference_recovers() {
        let c = small_concurrent(2);
        for i in 0..32u64 {
            c.write(i * 64, i ^ 0x5A).unwrap();
        }
        c.inject_bank_error(
            1,
            ErrorShape::Cluster {
                row: 0,
                col: 0,
                height: 16,
                width: 16,
            },
        );
        for i in 0..32u64 {
            assert_eq!(c.read(i * 64).unwrap(), i ^ 0x5A, "line {i}");
        }
        assert!(c.lock_bank(1).data_engine_stats().recoveries >= 1);
        assert_eq!(c.lock_bank(0).data_engine_stats().recoveries, 0);
        assert!(c.audit());
    }

    #[test]
    fn engine_stats_aggregate_across_banks() {
        let c = small_concurrent(2);
        for i in 0..16u64 {
            c.write(i * 64, i).unwrap();
        }
        let engine = c.data_engine_stats();
        assert!(engine.writes > 0);
        assert_eq!(
            engine.writes,
            c.lock_bank(0).data_engine_stats().writes + c.lock_bank(1).data_engine_stats().writes
        );
    }

    #[test]
    fn optimistic_hits_serve_clean_resident_reads() {
        let c = small_concurrent(2);
        for i in 0..16u64 {
            c.write(i * 64, i + 100).unwrap();
        }
        assert_eq!(c.optimistic_hits(), 0, "writes never take the fast path");
        for i in 0..16u64 {
            assert_eq!(c.read(i * 64).unwrap(), i + 100);
        }
        // Every read was a clean resident hit on a quiescent cache.
        assert_eq!(c.optimistic_hits(), 16);
        // The fold into stats counts them as ordinary read hits.
        let stats = c.stats();
        assert_eq!(stats.read_hits, 16);
        assert_eq!(stats.read_misses, 0);
    }

    #[test]
    fn optimistic_read_observes_locked_writes() {
        let c = small_concurrent(1);
        c.write(0x40, 1).unwrap();
        assert_eq!(c.try_optimistic_read(0x40), Some(1));
        c.write(0x40, 2).unwrap();
        assert_eq!(c.try_optimistic_read(0x40), Some(2), "no stale value");
    }

    #[test]
    fn optimistic_read_falls_back_while_bank_locked() {
        let c = small_concurrent(1);
        c.write(0x40, 7).unwrap();
        assert_eq!(c.try_optimistic_read(0x40), Some(7));
        {
            let guard = c.lock_bank(0);
            // Sequence is odd: the fast path must refuse.
            assert_eq!(c.try_optimistic_read(0x40), None);
            drop(guard);
        }
        // Quiescent again: the fast path resumes (and the locked read
        // still works, proving the fallback is never wedged).
        assert_eq!(c.try_optimistic_read(0x40), Some(7));
        assert_eq!(c.read(0x40).unwrap(), 7);
    }

    #[test]
    fn optimistic_read_falls_back_on_miss_and_dirty_words() {
        let c = small_concurrent(1);
        // Not resident: fast path refuses, full read allocates.
        assert_eq!(c.try_optimistic_read(0x80), None);
        assert_eq!(c.read(0x80).unwrap(), 0);
        // Recoverable transient damage covering the rows that store line
        // 0x80 (set 2 maps to rows 8/10): the clean check fails and the
        // fast path refuses even for resident lines.
        c.write(0x80, 5).unwrap();
        c.inject_bank_error(
            0,
            ErrorShape::Cluster {
                row: 0,
                col: 0,
                height: 16,
                width: 16,
            },
        );
        assert_eq!(c.try_optimistic_read(0x80), None);
        // The locked path recovers transparently.
        assert_eq!(c.read(0x80).unwrap(), 5);
    }

    #[test]
    fn optimistic_read_disabled_by_hard_faults() {
        let c = small_concurrent(1);
        c.write(0x40, 9).unwrap();
        assert_eq!(c.try_optimistic_read(0x40), Some(9));
        c.inject_bank_hard_error(0, ErrorShape::Single { row: 0, col: 0 }, true);
        // The probes cannot see the stuck-at overlay; the hint must
        // force every read onto the locked path.
        assert_eq!(c.try_optimistic_read(0x40), None);
        assert_eq!(c.read(0x40).unwrap(), 9);
    }

    #[test]
    fn batch_matches_scalar_ops_and_amortizes_locks() {
        let c = small_concurrent(4);
        // Warm 64 lines so batched reads are resident hits.
        for i in 0..64u64 {
            c.write(i * 64, i + 7).unwrap();
        }
        let addrs: Vec<u64> = (0..64u64).map(|i| i * 64).collect();
        let mut reads = Vec::new();
        let before = c.lock_acquisitions();
        c.read_batch(&addrs, &mut reads);
        assert_eq!(
            c.lock_acquisitions(),
            before,
            "clean resident batched reads must stay fully lock-free"
        );
        for (i, r) in reads.iter().enumerate() {
            assert_eq!(*r, Ok(i as u64 + 7), "read {i}");
        }
        // 64 writes across 4 banks: exactly one lock per bank.
        let items: Vec<(u64, u64)> = (0..64u64).map(|i| (i * 64, i + 100)).collect();
        let mut writes = Vec::new();
        let before = c.lock_acquisitions();
        c.write_batch(&items, &mut writes);
        assert_eq!(c.lock_acquisitions() - before, 4, "one lock per bank");
        assert!(writes.iter().all(|r| r.is_ok()));
        c.read_batch(&addrs, &mut reads);
        for (i, r) in reads.iter().enumerate() {
            assert_eq!(*r, Ok(i as u64 + 100), "read-back {i}");
        }
    }

    #[test]
    fn mixed_batch_orders_same_address_write_before_read() {
        let c = small_concurrent(2);
        c.write(0x40, 1).unwrap();
        // Write then read of the same address inside one batch: the read
        // must observe the batch's own write (same bank, so the write
        // forces the guard and the read runs after it, locked).
        let ops = [
            BatchOp::Read(0x40),
            BatchOp::Write(0x40, 42),
            BatchOp::Read(0x40),
            BatchOp::Read(0x80),
        ];
        let mut out = Vec::new();
        c.execute_batch(&ops, &mut out);
        assert_eq!(
            out,
            vec![
                BatchOutcome::Value(1),
                BatchOutcome::Written,
                BatchOutcome::Value(42),
                BatchOutcome::Value(0),
            ]
        );
    }

    #[test]
    fn batch_observer_fires_once_per_locked_bank_group() {
        let c = small_concurrent(4);
        // 8 writes over 2 banks plus one optimistic-eligible read.
        for i in 0..8u64 {
            c.write(i * 64, i).unwrap();
        }
        let ops: Vec<BatchOp> = (0..8u64)
            .map(|i| BatchOp::Write((i % 2) * 64, i))
            .chain(std::iter::once(BatchOp::Read(2 * 64)))
            .collect();
        let mut out = Vec::new();
        let mut observed = Vec::new();
        c.execute_batch_observed(&ops, &mut out, |bank, _| observed.push(bank));
        assert_eq!(observed, vec![0, 1], "one observation per locked bank");
    }

    #[test]
    fn bank_mut_pins_hard_fault_hint_until_next_lock() {
        let mut c = small_concurrent(1);
        c.write(0x40, 3).unwrap();
        assert_eq!(c.try_optimistic_read(0x40), Some(3));
        // An exclusive borrow may have injected anything: pessimism.
        let _ = c.bank_mut(0).stats();
        assert_eq!(c.try_optimistic_read(0x40), None);
        // The next locked access recomputes the hint accurately.
        assert_eq!(c.read(0x40).unwrap(), 3);
        assert_eq!(c.try_optimistic_read(0x40), Some(3));
    }
}
