//! 2D protection-scheme descriptors: the horizontal code + physical
//! interleave + vertical parity configuration of one cache level.

use ecc::CodeKind;
use memarray::TwoDConfig;

/// A complete 2D coding configuration for a cache data (or tag) array.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TwoDScheme {
    /// Horizontal per-word code (detection, or SECDED for yield mode).
    pub horizontal: CodeKind,
    /// Data bits per protected word.
    pub data_bits: usize,
    /// Physical bit-interleave degree.
    pub interleave: usize,
    /// Vertical parity rows per bank (the vertical interleave factor).
    pub vertical_rows: usize,
}

impl TwoDScheme {
    /// The paper's L1 configuration: 4-way interleaved EDC8 over 64-bit
    /// words with an EDC32 vertical code — detects and corrects 32x32
    /// clustered errors.
    pub fn l1_paper() -> Self {
        TwoDScheme {
            horizontal: CodeKind::Edc(8),
            data_bits: 64,
            interleave: 4,
            vertical_rows: 32,
        }
    }

    /// The paper's L2 configuration: 2-way interleaved EDC16 over 256-bit
    /// words with an EDC32 vertical code.
    pub fn l2_paper() -> Self {
        TwoDScheme {
            horizontal: CodeKind::Edc(16),
            data_bits: 256,
            interleave: 2,
            vertical_rows: 32,
        }
    }

    /// Yield-enhancement mode: horizontal SECDED corrects single-bit
    /// manufacture-time hard errors in-line while the vertical code keeps
    /// multi-bit soft/hard protection.
    pub fn yield_mode() -> Self {
        TwoDScheme {
            horizontal: CodeKind::Secded,
            data_bits: 64,
            interleave: 2,
            vertical_rows: 32,
        }
    }

    /// Guaranteed correctable cluster footprint `(rows, cols)`: any
    /// clustered error within this bounding box is corrected.
    pub fn coverage(&self) -> (usize, usize) {
        let horizontal_cols = match self.horizontal {
            CodeKind::Edc(n) => n * self.interleave,
            // SECDED detects 2 per word but corrects 1: the safe
            // detection-driven width is 1 bit per word.
            _ => self.interleave,
        };
        (self.vertical_rows, horizontal_cols)
    }

    /// Storage overhead relative to the raw data bits: horizontal check
    /// bits plus the vertical parity rows amortized over `rows` data
    /// rows per bank.
    pub fn storage_overhead(&self, rows: usize) -> f64 {
        let check = self.horizontal.check_bits(self.data_bits) as f64;
        let horizontal = check / self.data_bits as f64;
        let vertical =
            self.vertical_rows as f64 / rows as f64 * (1.0 + check / self.data_bits as f64);
        horizontal + vertical
    }

    /// The bank configuration for `rows` data rows.
    pub fn bank_config(&self, rows: usize) -> TwoDConfig {
        TwoDConfig {
            rows,
            horizontal: self.horizontal,
            data_bits: self.data_bits,
            interleave: self.interleave,
            vertical_rows: self.vertical_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_coverages() {
        assert_eq!(TwoDScheme::l1_paper().coverage(), (32, 32));
        assert_eq!(TwoDScheme::l2_paper().coverage(), (32, 32));
    }

    #[test]
    fn figure3c_storage_overhead() {
        // 256-row bank of the Figure 3(c) example: EDC8 horizontal
        // (12.5%) + 32/256 vertical rows (~14% incl. their check-bit
        // columns) ~ 25%.
        let overhead = TwoDScheme::l1_paper().storage_overhead(256);
        assert!(
            (overhead - 0.25).abs() < 0.02,
            "expected ~25%, got {overhead}"
        );
    }

    #[test]
    fn l2_scheme_cheaper_relative() {
        // Wide L2 words amortize the horizontal code far better.
        let l1 = TwoDScheme::l1_paper().storage_overhead(1024);
        let l2 = TwoDScheme::l2_paper().storage_overhead(1024);
        assert!(l2 < l1);
    }

    #[test]
    fn bank_config_roundtrip() {
        let cfg = TwoDScheme::l1_paper().bank_config(128);
        assert_eq!(cfg.rows, 128);
        assert_eq!(cfg.interleave, 4);
        assert_eq!(cfg.vertical_rows, 32);
    }
}
