//! A multi-bank 2D-protected cache: the paper's shared-L2 organization,
//! where each bank carries its own vertical parity rows and recovers
//! independently (errors in one bank never stall the others).
//!
//! Since the concurrency refactor this type is a thin sequential facade
//! over [`ConcurrentBankedCache`]: the bank sharding, per-bank locking,
//! and stats aggregation live there, and this wrapper keeps the original
//! `&mut self` API for single-threaded callers (examples, figure bins,
//! equivalence tests). Use [`BankedProtectedCache::shared`] or
//! [`BankedProtectedCache::into_concurrent`] to hand the same cache to a
//! multi-threaded frontend.

use crate::{CacheConfig, CacheStats, ConcurrentBankedCache, ProtectedCache};
use memarray::{EngineError, ErrorShape};
use std::fmt;

/// An address-interleaved array of [`ProtectedCache`] banks with a
/// sequential (`&mut self`) API.
///
/// Lines are distributed across banks by line-address modulo, the same
/// mapping the paper's banked L2 uses. Each bank is an independent
/// 2D-protected cache with its own data/tag arrays and recovery engine.
///
/// # Examples
///
/// ```
/// use twod_cache::{BankedProtectedCache, CacheConfig};
///
/// let mut l2 = BankedProtectedCache::new(CacheConfig::l1_64kb(), 4);
/// l2.write(0x1234_5678, 99).unwrap();
/// assert_eq!(l2.read(0x1234_5678).unwrap(), 99);
/// ```
pub struct BankedProtectedCache {
    inner: ConcurrentBankedCache,
}

impl BankedProtectedCache {
    /// Creates `banks` independent banks, each configured per `config`.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0` or the per-bank geometry is invalid.
    pub fn new(config: CacheConfig, banks: usize) -> Self {
        BankedProtectedCache {
            inner: ConcurrentBankedCache::new(config, banks),
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.inner.banks()
    }

    /// Total capacity across banks.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Which bank serves `addr`.
    pub fn bank_of(&self, addr: u64) -> usize {
        self.inner.bank_of(addr)
    }

    /// The thread-safe service this facade wraps. Handing `&self.shared()`
    /// to worker threads is how a sequentially-built cache goes
    /// concurrent.
    pub fn shared(&self) -> &ConcurrentBankedCache {
        &self.inner
    }

    /// Unwraps into the thread-safe service.
    pub fn into_concurrent(self) -> ConcurrentBankedCache {
        self.inner
    }

    /// Reads the aligned 64-bit word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the owning bank's protection was
    /// defeated.
    pub fn read(&mut self, addr: u64) -> Result<u64, EngineError> {
        self.inner.read(addr)
    }

    /// Writes the aligned 64-bit word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the owning bank's protection was
    /// defeated.
    pub fn write(&mut self, addr: u64, value: u64) -> Result<(), EngineError> {
        self.inner.write(addr, value)
    }

    /// Injects an error into one bank's data array.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn inject_bank_error(&mut self, bank: usize, shape: ErrorShape) {
        self.inner.inject_bank_error(bank, shape);
    }

    /// Scrubs every bank.
    ///
    /// # Errors
    ///
    /// Returns the first bank's [`EngineError`] if any bank holds
    /// uncorrectable damage.
    pub fn scrub(&mut self) -> Result<(), EngineError> {
        self.inner.scrub()
    }

    /// Whether every bank passes its audit.
    pub fn audit(&self) -> bool {
        self.inner.audit()
    }

    /// Aggregated access statistics across banks.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Per-bank view (for inspection and targeted injection). Takes
    /// `&mut self` — the exclusive borrow reaches the bank without
    /// touching its lock, so no guard escapes and two `bank()` calls in
    /// one expression can never deadlock on the non-reentrant mutex
    /// underneath. Concurrent callers use
    /// [`ConcurrentBankedCache::lock_bank`] instead.
    pub fn bank(&mut self, index: usize) -> &ProtectedCache {
        self.inner.bank_mut(index)
    }

    /// Mutable per-bank view.
    pub fn bank_mut(&mut self, index: usize) -> &mut ProtectedCache {
        self.inner.bank_mut(index)
    }
}

impl fmt::Debug for BankedProtectedCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BankedProtectedCache({} banks x {}B)",
            self.banks(),
            self.inner.lock_bank(0).config().capacity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoDScheme;

    fn small_banked(banks: usize) -> BankedProtectedCache {
        BankedProtectedCache::new(
            CacheConfig {
                sets: 16,
                ways: 2,
                data_scheme: TwoDScheme::l1_paper(),
                tag_scheme: TwoDScheme {
                    data_bits: 50,
                    ..TwoDScheme::l1_paper()
                },
            },
            banks,
        )
    }

    #[test]
    fn addresses_spread_across_banks() {
        let c = small_banked(4);
        let mut seen = [false; 4];
        for line in 0..16u64 {
            seen[c.bank_of(line * 64)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Consecutive lines hit different banks.
        assert_ne!(c.bank_of(0), c.bank_of(64));
    }

    #[test]
    fn read_after_write_across_banks() {
        let mut c = small_banked(4);
        for i in 0..64u64 {
            c.write(i * 8, i + 1).unwrap();
        }
        for i in 0..64u64 {
            assert_eq!(c.read(i * 8).unwrap(), i + 1, "word {i}");
        }
    }

    #[test]
    fn bank_error_is_contained() {
        let mut c = small_banked(4);
        for i in 0..64u64 {
            c.write(i * 8, i ^ 0xABCD).unwrap();
        }
        c.inject_bank_error(
            2,
            ErrorShape::Cluster {
                row: 0,
                col: 0,
                height: 16,
                width: 16,
            },
        );
        // Every word in every bank still reads correctly; only bank 2
        // performs a recovery.
        for i in 0..64u64 {
            assert_eq!(c.read(i * 8).unwrap(), i ^ 0xABCD, "word {i}");
        }
        assert!(c.bank(2).data_engine_stats().recoveries >= 1);
        assert_eq!(c.bank(0).data_engine_stats().recoveries, 0);
        assert!(c.audit());
    }

    #[test]
    fn capacity_and_stats_aggregate() {
        let mut c = small_banked(2);
        assert_eq!(c.capacity(), 2 * 16 * 2 * 64);
        c.write(0, 1).unwrap();
        c.write(64, 2).unwrap(); // other bank
        let stats = c.stats();
        assert_eq!(stats.write_misses, 2);
    }

    #[test]
    fn local_addresses_do_not_collide() {
        // Two different global lines mapping to the same bank must get
        // different local addresses: distinct global addresses owned by
        // one bank must stay distinct after read/write round-trips.
        let mut c = small_banked(4);
        let a = 0u64; // line 0 -> bank 0 local line 0
        let b = 4 * 64; // line 4 -> bank 0 local line 1
        assert_eq!(c.bank_of(a), c.bank_of(b));
        c.write(a, 11).unwrap();
        c.write(b, 22).unwrap();
        assert_eq!(c.read(a).unwrap(), 11);
        assert_eq!(c.read(b).unwrap(), 22);
    }

    #[test]
    fn scrub_covers_all_banks() {
        let mut c = small_banked(3);
        for bank in 0..3 {
            c.inject_bank_error(bank, ErrorShape::Single { row: 1, col: 1 });
        }
        c.scrub().unwrap();
        assert!(c.audit());
    }

    #[test]
    fn facade_and_service_share_state() {
        let mut c = small_banked(2);
        c.write(0x40, 123).unwrap();
        // The concurrent service view reads the same cells.
        assert_eq!(c.shared().read(0x40).unwrap(), 123);
        let service = c.into_concurrent();
        assert_eq!(service.read(0x40).unwrap(), 123);
    }
}
