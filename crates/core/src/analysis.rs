//! Scheme-level overhead comparison — the composition behind Figure 7:
//! code-storage area, coding latency, and dynamic power of 2D coding
//! versus the conventional 32-bit-coverage configurations, normalized to
//! SECDED with 2-way interleaving.

use crate::TwoDScheme;
use cachegeom::{optimize, ArrayGeometry, CacheSpec, CostModel, Objective};
use ecc::{CodeKind, InterleavedScheme};

/// One bar group of Figure 7: the three normalized overheads of a scheme.
#[derive(Clone, Debug, PartialEq)]
pub struct OverheadReport {
    /// Scheme label as it appears in the figure.
    pub label: String,
    /// Check-bit (plus vertical-row) storage, normalized.
    pub code_area: f64,
    /// Detection-path coding latency, normalized.
    pub coding_latency: f64,
    /// Dynamic read power including interleaving pseudo-reads, check-bit
    /// columns, coding logic, and (for 2D) the extra read traffic.
    pub dynamic_power: f64,
}

/// A scheme under comparison in Figure 7.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ComparedScheme {
    /// 2D coding (horizontal code + vertical parity + 20% extra reads).
    TwoD(TwoDScheme),
    /// Conventional per-word ECC with physical interleaving.
    Conventional(InterleavedScheme),
    /// Light-weight EDC horizontal code with write-through duplication in
    /// the next level (the paper's right-most L1 bar).
    WriteThrough(InterleavedScheme),
}

impl ComparedScheme {
    /// Display label matching the figure legend.
    pub fn label(&self, _spec: &CacheSpec) -> String {
        match self {
            ComparedScheme::TwoD(s) => format!(
                "2D ({}+Intv{},EDC{})",
                s.horizontal, s.interleave, s.vertical_rows
            ),
            ComparedScheme::Conventional(s) => s.to_string(),
            ComparedScheme::WriteThrough(s) => format!("{s} (Wr-through)"),
        }
    }

    /// The Figure 7(a) set for the 64kB L1.
    pub fn figure7_l1_set() -> Vec<ComparedScheme> {
        vec![
            ComparedScheme::TwoD(TwoDScheme::l1_paper()),
            ComparedScheme::Conventional(InterleavedScheme::new(CodeKind::Dected, 16)),
            ComparedScheme::Conventional(InterleavedScheme::new(CodeKind::Qecped, 8)),
            ComparedScheme::Conventional(InterleavedScheme::new(CodeKind::Oecned, 4)),
            ComparedScheme::WriteThrough(InterleavedScheme::new(CodeKind::Edc(8), 4)),
        ]
    }

    /// The Figure 7(b) set for the 4MB L2.
    pub fn figure7_l2_set() -> Vec<ComparedScheme> {
        vec![
            ComparedScheme::TwoD(TwoDScheme::l2_paper()),
            ComparedScheme::Conventional(InterleavedScheme::new(CodeKind::Dected, 16)),
            ComparedScheme::Conventional(InterleavedScheme::new(CodeKind::Qecped, 8)),
            ComparedScheme::Conventional(InterleavedScheme::new(CodeKind::Oecned, 4)),
        ]
    }
}

/// Raw (unnormalized) overhead triple.
#[derive(Clone, Copy, Debug)]
struct RawOverheads {
    area: f64,
    latency: f64,
    power: f64,
}

/// Fraction of extra array reads 2D coding adds (Fig. 6: ~20%).
const EXTRA_READ_FRACTION: f64 = 0.2;

/// Write-through duplication: fraction of L1 accesses that become
/// duplicate writes into the (much larger) L2, plus their bandwidth cost
/// multiplier relative to an L1 read.
const WRITE_THROUGH_WRITE_FRACTION: f64 = 0.3;
const L2_WRITE_ENERGY_MULTIPLIER: f64 = 4.0;

fn raw_overheads(model: &CostModel, spec: &CacheSpec, scheme: &ComparedScheme) -> RawOverheads {
    match scheme {
        ComparedScheme::TwoD(s) => {
            let check = s.horizontal.check_bits(spec.word_data_bits);
            let cost = s.horizontal.logic_cost(spec.word_data_bits);
            // Area: horizontal check bits per word + vertical rows
            // amortized over the bank's actual row count.
            let rows_per_bank = spec.words_per_bank() / s.interleave;
            let horizontal_bits = check as f64 / spec.word_data_bits as f64;
            let vertical_bits = s.vertical_rows as f64 / rows_per_bank as f64;
            let area = horizontal_bits + vertical_bits;
            // Power: array read at this interleave with check columns,
            // plus coding logic, plus the extra 2D read traffic.
            let energy = read_energy(model, spec, check, s.interleave);
            let logic = cost.xor_gates as f64 * LOGIC_ENERGY_UNIT;
            let power = (energy + logic) * (1.0 + EXTRA_READ_FRACTION);
            RawOverheads {
                area,
                latency: cost.total_depth() as f64,
                power,
            }
        }
        ComparedScheme::Conventional(s) => {
            let check = s.code.check_bits(spec.word_data_bits);
            let cost = s.code.logic_cost(spec.word_data_bits);
            let energy = read_energy(model, spec, check, s.interleave);
            let logic = cost.xor_gates as f64 * LOGIC_ENERGY_UNIT;
            RawOverheads {
                area: check as f64 / spec.word_data_bits as f64,
                latency: cost.total_depth() as f64,
                power: energy + logic,
            }
        }
        ComparedScheme::WriteThrough(s) => {
            let check = s.code.check_bits(spec.word_data_bits);
            let cost = s.code.logic_cost(spec.word_data_bits);
            let energy = read_energy(model, spec, check, s.interleave);
            let logic = cost.xor_gates as f64 * LOGIC_ENERGY_UNIT;
            // Every store duplicates into the L2: substantial bandwidth
            // and power cost, but (almost) no extra area in the L1. The
            // duplicated values consume L2 capacity — the paper's "2x
            // area" critique is charged as doubling the protected level's
            // effective storage need.
            RawOverheads {
                area: check as f64 / spec.word_data_bits as f64 + 1.0,
                latency: cost.total_depth() as f64,
                power: energy
                    + logic
                    + WRITE_THROUGH_WRITE_FRACTION * L2_WRITE_ENERGY_MULTIPLIER * energy,
            }
        }
    }
}

/// Energy of one XOR gate relative to the array-model units.
const LOGIC_ENERGY_UNIT: f64 = 0.5;

fn read_energy(model: &CostModel, spec: &CacheSpec, check_bits: usize, interleave: usize) -> f64 {
    let geom = ArrayGeometry::new(
        spec.words_per_bank(),
        spec.word_data_bits + check_bits,
        interleave,
    );
    optimize(model, &geom, Objective::Balanced)
        .metrics
        .read_energy
}

/// Computes the Figure 7 bars for `spec`, normalized to SECDED+Intv2.
pub fn figure7(
    model: &CostModel,
    spec: &CacheSpec,
    schemes: &[ComparedScheme],
) -> Vec<OverheadReport> {
    let baseline = ComparedScheme::Conventional(InterleavedScheme::figure7_baseline());
    let base = raw_overheads(model, spec, &baseline);
    schemes
        .iter()
        .map(|s| {
            let raw = raw_overheads(model, spec, s);
            OverheadReport {
                label: s.label(spec),
                code_area: raw.area / base.area,
                coding_latency: raw.latency / base.latency,
                dynamic_power: raw.power / base.power,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1_reports() -> Vec<OverheadReport> {
        figure7(
            &CostModel::default(),
            &CacheSpec::l1_64kb(),
            &ComparedScheme::figure7_l1_set(),
        )
    }

    #[test]
    fn twod_beats_every_conventional_scheme_on_power() {
        let reports = l1_reports();
        let twod = &reports[0];
        for conv in &reports[1..4] {
            assert!(
                twod.dynamic_power < conv.dynamic_power,
                "2D {} should beat {} ({})",
                twod.dynamic_power,
                conv.label,
                conv.dynamic_power
            );
        }
    }

    #[test]
    fn twod_latency_below_multibit_ecc() {
        let reports = l1_reports();
        let twod = &reports[0];
        for conv in &reports[1..4] {
            assert!(
                twod.coding_latency <= conv.coding_latency,
                "2D latency {} vs {} {}",
                twod.coding_latency,
                conv.label,
                conv.coding_latency
            );
        }
    }

    #[test]
    fn twod_area_close_to_secded_baseline() {
        // Paper: the extra area of 2D over the SECDED baseline is only
        // ~5-6%. Our model: area ratio stays well below the multi-bit
        // ECC schemes.
        let reports = l1_reports();
        let twod = &reports[0];
        assert!(
            twod.code_area < 1.5,
            "2D area ratio {} should stay near baseline",
            twod.code_area
        );
        let oecned = &reports[3];
        assert!(oecned.code_area > 3.0, "OECNED should cost several x");
    }

    #[test]
    fn write_through_trades_area_and_power() {
        // The write-through variant avoids strong codes but duplicates
        // storage (area ~2x data) and burns power in the L2.
        let reports = l1_reports();
        let wt = &reports[4];
        assert!(wt.code_area > 5.0, "duplication should dominate area");
        assert!(wt.dynamic_power > reports[0].dynamic_power);
    }

    #[test]
    fn l2_panel_same_ordering() {
        let reports = figure7(
            &CostModel::default(),
            &CacheSpec::l2_4mb(),
            &ComparedScheme::figure7_l2_set(),
        );
        let twod = &reports[0];
        for conv in &reports[1..] {
            assert!(twod.dynamic_power < conv.dynamic_power, "{}", conv.label);
            assert!(twod.code_area < conv.code_area, "{}", conv.label);
        }
    }

    #[test]
    fn labels_match_figure() {
        let reports = l1_reports();
        assert_eq!(reports[0].label, "2D (EDC8+Intv4,EDC32)");
        assert_eq!(reports[1].label, "DECTED+Intv16");
        assert_eq!(reports[4].label, "EDC8+Intv4 (Wr-through)");
    }
}
