//! Background scrubbing service for [`ConcurrentBankedCache`]: the
//! self-healing layer the paper's reliability argument assumes.
//!
//! The 2D scheme only meets its multi-bit targets if errors are removed
//! from the array faster than they accumulate into clusters the `H x V`
//! coverage cannot span (the accumulation analysis lives in
//! [`memarray::scrub`]). Relying on callers to invoke `scrub()` makes
//! that a hope, not a property. [`Scrubber`] makes it a property: it
//! owns dedicated threads that sweep every bank in short *lock-sliced*
//! bursts — each slice locks one bank for a bounded number of row scans
//! ([`ScrubberConfig::rows_per_slice`]), so foreground read/write
//! latency stays bounded while the sweep marches in the background.
//!
//! The sweep cadence is not fixed. An AIMD-style controller watches each
//! bank's observed error traffic (inline corrections + recoveries, the
//! deduplicated event count of [`memarray::EngineStats::observed_errors`])
//! and halves the inter-slice interval while errors are arriving,
//! doubling it back toward the idle cadence once the array stays clean —
//! the traffic-aware scrubbing Kishani et al. argue for, applied to the
//! repair rate instead of the coding rate.
//!
//! Every error event also feeds an [`reliability::OnlineRateEstimator`],
//! so a running service can report the FIT/MTTF its own telemetry
//! implies (with exact Poisson confidence bounds) instead of a datasheet
//! assumption.
//!
//! ## Interaction with the optimistic read path
//!
//! Each scrub slice runs under [`ConcurrentBankedCache::lock_bank`], so
//! it sequences as a *seqlock writer*: the per-bank generation counter
//! goes odd for the duration of the slice and any optimistic reader that
//! overlaps it falls back to the locked path (see `docs/CONCURRENCY.md`).
//! A slice that repairs cells therefore can never be half-observed by a
//! lock-free reader — scrubbing needs no extra coordination beyond the
//! bank lock it already takes.

use crate::ConcurrentBankedCache;
use memarray::EngineError;
use reliability::{OnlineRateEstimator, ReliabilitySnapshot};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`Scrubber`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScrubberConfig {
    /// Dedicated scrubbing threads. Banks are partitioned round-robin
    /// across them; the effective count is clamped to the bank count.
    pub threads: usize,
    /// Rows scanned per bank lock acquisition — the foreground-latency
    /// knob. Smaller slices bound foreground stalls tighter but cost
    /// more lock traffic per sweep.
    pub rows_per_slice: usize,
    /// Inter-slice interval while the array is clean (the controller's
    /// ceiling).
    pub idle_interval: Duration,
    /// Inter-slice interval floor under sustained error traffic (the
    /// controller's maximum aggression).
    pub min_interval: Duration,
    /// Whether the adaptive rate controller is enabled. When false the
    /// scrubber holds a fixed `idle_interval` cadence.
    pub adaptive: bool,
    /// Unitless time-acceleration factor for the online FIT/MTTF
    /// accounting: how many device-seconds of exposure one wall-clock
    /// second represents. `1.0` means real time; `3600.0` makes one
    /// wall-second model one device-hour. Fault-injection campaigns
    /// compressing years into seconds set this high so the estimates
    /// read as field rates.
    pub time_acceleration: f64,
}

impl Default for ScrubberConfig {
    fn default() -> Self {
        ScrubberConfig {
            threads: 1,
            rows_per_slice: 32,
            idle_interval: Duration::from_millis(5),
            min_interval: Duration::from_micros(50),
            adaptive: true,
            time_acceleration: 1.0,
        }
    }
}

/// Aggregate counters of a [`Scrubber`]'s background work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubberStats {
    /// Scrub slices executed.
    pub slices: u64,
    /// Data rows scanned across slices.
    pub rows_scanned: u64,
    /// Dirty rows first discovered by the scrubber (rather than by a
    /// foreground access).
    pub errors_found: u64,
    /// Recoveries triggered by scrub slices.
    pub repairs: u64,
    /// Completed full sweeps, summed over banks.
    pub full_passes: u64,
    /// Slices that hit uncorrectable damage (the bank's own access paths
    /// will keep reporting it; the scrubber records and moves on).
    pub uncorrectable: u64,
    /// Total time spent holding bank locks, in nanoseconds — the
    /// foreground-interference budget actually consumed.
    pub busy_ns: u64,
    /// Rows scanned by slices that triggered no recovery.
    pub clean_rows_scanned: u64,
    /// Lock-held time of those clean slices, in nanoseconds. With
    /// `clean_rows_scanned` this gives a pure detection-throughput
    /// figure (ns per clean row scanned) that is not polluted by
    /// however much repair work a particular run happened to do.
    pub clean_busy_ns: u64,
    /// Physical storage swept by those clean slices, in bytes (row
    /// columns divided by 8, summed over scanned rows). Numerator of
    /// [`ScrubberStats::clean_scan_gbps`].
    pub clean_bytes_scanned: u64,
}

impl ScrubberStats {
    /// Adds every counter of `other` into `self`. All aggregation paths
    /// go through this single exhaustive destructure — the same
    /// discipline as [`memarray::EngineStats::merge`] — so a newly
    /// added counter cannot silently be dropped from the totals.
    pub fn merge(&mut self, other: &ScrubberStats) {
        let ScrubberStats {
            slices,
            rows_scanned,
            errors_found,
            repairs,
            full_passes,
            uncorrectable,
            busy_ns,
            clean_rows_scanned,
            clean_busy_ns,
            clean_bytes_scanned,
        } = *other;
        self.slices += slices;
        self.rows_scanned += rows_scanned;
        self.errors_found += errors_found;
        self.repairs += repairs;
        self.full_passes += full_passes;
        self.uncorrectable += uncorrectable;
        self.busy_ns += busy_ns;
        self.clean_rows_scanned += clean_rows_scanned;
        self.clean_busy_ns += clean_busy_ns;
        self.clean_bytes_scanned += clean_bytes_scanned;
    }

    /// Clean-detection scan throughput in gigabytes per second:
    /// bytes swept by recovery-free slices over the lock-held time of
    /// those slices (bytes/ns ≡ GB/s). Zero until a clean slice has
    /// been timed. Like the ns-per-row figure this is a *lock-held
    /// detection* rate — repair work is excluded by construction — and
    /// it is runner-dependent: absolute values are only comparable on
    /// the same hardware.
    pub fn clean_scan_gbps(&self) -> f64 {
        if self.clean_busy_ns == 0 {
            0.0
        } else {
            self.clean_bytes_scanned as f64 / self.clean_busy_ns as f64
        }
    }
}

/// Lifecycle state of the scrub workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Running,
    Paused,
    Stopping,
}

struct Control {
    mode: Mode,
    idle_workers: usize,
}

/// Online FIT accounting shared by the workers: exposure advances with
/// wall-clock time exactly once no matter how many workers tick it.
struct Telemetry {
    estimator: OnlineRateEstimator,
    last_tick: Instant,
}

struct Shared {
    cache: Arc<ConcurrentBankedCache>,
    config: ScrubberConfig,
    control: Mutex<Control>,
    wake: Condvar,
    stats: Mutex<ScrubberStats>,
    telemetry: Mutex<Telemetry>,
}

impl Shared {
    /// Advances device-time exposure to now and records `events` new
    /// error observations.
    fn tick_telemetry(&self, events: u64) {
        let mut t = self.telemetry.lock().unwrap_or_else(|p| p.into_inner());
        let now = Instant::now();
        let dt = now.duration_since(t.last_tick).as_secs_f64();
        t.last_tick = now;
        t.estimator
            .advance_hours(dt * self.config.time_acceleration / 3600.0);
        t.estimator.observe(events);
    }
}

/// A self-healing service wrapped around a shared
/// [`ConcurrentBankedCache`]: dedicated background threads sweep the
/// banks in lock-bounded slices, an adaptive controller matches the
/// sweep rate to observed error traffic, and an online estimator keeps
/// live FIT/MTTF figures.
///
/// # Lifecycle
///
/// A scrubber starts running as soon as [`Scrubber::spawn`] returns.
/// [`Scrubber::pause`] quiesces the workers (blocking until every one
/// is parked outside any bank lock), [`Scrubber::resume`] restarts
/// them, and [`Scrubber::drain`] quiesces and then synchronously scrubs
/// every bank clean — the call to make before a deterministic audit or
/// checkpoint. Dropping (or [`Scrubber::stop`]ping) the scrubber joins
/// the threads; the cache itself is unaffected.
///
/// Lifecycle calls are intended to come from one controlling thread.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use twod_cache::{CacheConfig, ConcurrentBankedCache, Scrubber, ScrubberConfig};
///
/// let cache = Arc::new(ConcurrentBankedCache::new(CacheConfig::l1_64kb(), 4));
/// let scrubber = Scrubber::spawn(Arc::clone(&cache), ScrubberConfig::default());
/// cache.write(0x40, 7).unwrap(); // foreground traffic proceeds normally
/// scrubber.drain().unwrap();     // quiesce: every bank verified clean
/// assert!(cache.audit());
/// ```
pub struct Scrubber {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Scrubber {
    /// Starts the background workers over `cache` per `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.threads == 0`, `config.rows_per_slice == 0`,
    /// or `config.min_interval > config.idle_interval`.
    pub fn spawn(cache: Arc<ConcurrentBankedCache>, config: ScrubberConfig) -> Self {
        assert!(config.threads > 0, "need at least one scrub worker");
        assert!(config.rows_per_slice > 0, "slices must cover >= 1 row");
        assert!(
            config.min_interval <= config.idle_interval,
            "interval floor must not exceed the idle cadence"
        );
        let mbits = (cache.capacity() as f64) * 8.0 / 1e6;
        let workers = config.threads.min(cache.banks());
        let shared = Arc::new(Shared {
            cache,
            config,
            control: Mutex::new(Control {
                mode: Mode::Running,
                idle_workers: 0,
            }),
            wake: Condvar::new(),
            stats: Mutex::new(ScrubberStats::default()),
            telemetry: Mutex::new(Telemetry {
                estimator: OnlineRateEstimator::new(mbits.max(1e-6)),
                last_tick: Instant::now(),
            }),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("scrubber-{w}"))
                    .spawn(move || worker_loop(&shared, w, workers))
                    .expect("spawning scrub worker")
            })
            .collect();
        Scrubber {
            shared,
            workers: handles,
        }
    }

    /// The configuration this scrubber runs with.
    pub fn config(&self) -> ScrubberConfig {
        self.shared.config
    }

    /// Snapshot of the background-work counters.
    pub fn stats(&self) -> ScrubberStats {
        *self.shared.stats.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Live FIT/MTTF estimate from the error events observed so far
    /// (exposure is advanced to now before snapshotting).
    pub fn reliability(&self) -> ReliabilitySnapshot {
        self.shared.tick_telemetry(0);
        self.shared
            .telemetry
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .estimator
            .snapshot()
    }

    /// Pauses the workers, blocking until every one is parked outside
    /// any bank lock. Idempotent. Poison-tolerant: a worker that
    /// panicked mid-slice must not also wedge the control plane (the
    /// network tier calls these on live traffic paths).
    pub fn pause(&self) {
        let mut ctl = self
            .shared
            .control
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if ctl.mode == Mode::Stopping {
            return;
        }
        ctl.mode = Mode::Paused;
        self.shared.wake.notify_all();
        while ctl.idle_workers < self.workers.len() {
            ctl = self
                .shared
                .wake
                .wait(ctl)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Restarts paused workers. Idempotent.
    pub fn resume(&self) {
        let mut ctl = self
            .shared
            .control
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if ctl.mode == Mode::Paused {
            ctl.mode = Mode::Running;
            self.shared.wake.notify_all();
        }
    }

    /// Drains the service: pauses the workers, then synchronously scrubs
    /// every bank to a verified-clean state. On return the cache holds
    /// no latent correctable damage and the scrubber is paused (call
    /// [`Scrubber::resume`] to continue background sweeping).
    ///
    /// # Errors
    ///
    /// Returns the first bank's [`EngineError`] if uncorrectable damage
    /// is found; remaining banks are still drained.
    pub fn drain(&self) -> Result<(), EngineError> {
        self.pause();
        let mut first_err = None;
        let mut repairs = 0u64;
        for bank in 0..self.shared.cache.banks() {
            let mut guard = self.shared.cache.lock_bank(bank);
            let was_clean = guard.audit();
            match guard.scrub() {
                Ok(()) => repairs += u64::from(!was_clean),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        self.shared
            .stats
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .merge(&ScrubberStats {
                repairs,
                uncorrectable: u64::from(first_err.is_some()),
                ..ScrubberStats::default()
            });
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Stops and joins the workers. Equivalent to dropping the scrubber,
    /// but explicit and able to surface a worker panic.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    pub fn stop(mut self) {
        self.shutdown();
        for handle in std::mem::take(&mut self.workers) {
            handle.join().expect("scrub worker panicked");
        }
    }

    fn shutdown(&self) {
        let mut ctl = self
            .shared
            .control
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        ctl.mode = Mode::Stopping;
        self.shared.wake.notify_all();
    }
}

impl Drop for Scrubber {
    fn drop(&mut self) {
        self.shutdown();
        for handle in std::mem::take(&mut self.workers) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Scrubber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Scrubber({} workers over {} banks, {:?})",
            self.workers.len(),
            self.shared.cache.banks(),
            self.stats()
        )
    }
}

/// One worker: sweeps its round-robin share of the banks, one
/// `rows_per_slice` slice per bank per round, adapting its inter-round
/// interval to the error traffic it observes.
fn worker_loop(shared: &Shared, index: usize, workers: usize) {
    let banks: Vec<usize> = (index..shared.cache.banks()).step_by(workers).collect();
    let cfg = &shared.config;
    let mut interval = cfg.idle_interval;
    let mut last_observed: Vec<u64> = banks
        .iter()
        .map(|&b| shared.cache.bank_observed_errors(b))
        .collect();
    loop {
        // Park while paused; exit on stop.
        {
            let mut ctl = shared.control.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                match ctl.mode {
                    Mode::Running => break,
                    Mode::Stopping => return,
                    Mode::Paused => {
                        ctl.idle_workers += 1;
                        shared.wake.notify_all();
                        ctl = shared.wake.wait(ctl).unwrap_or_else(|p| p.into_inner());
                        ctl.idle_workers -= 1;
                    }
                }
            }
        }

        // One lock-bounded slice per owned bank.
        let mut round = ScrubberStats::default();
        let mut pressure = 0u64;
        for (i, &bank) in banks.iter().enumerate() {
            // Time the slice only once the lock is held: busy_ns and
            // clean_busy_ns document lock-*held* time, and the gated
            // detection-throughput figure must not absorb however long
            // foreground traffic made us wait for the lock.
            let mut guard = shared.cache.lock_bank(bank);
            let held = Instant::now();
            let result = guard.scrub_step(cfg.rows_per_slice);
            let held_ns = held.elapsed().as_nanos() as u64;
            let observed = guard.observed_errors();
            let row_bytes = guard.scrub_row_bytes() as u64;
            drop(guard);
            round.busy_ns += held_ns;
            match result {
                Ok(slice) => {
                    round.slices += 1;
                    round.rows_scanned += slice.rows_scanned as u64;
                    round.errors_found += slice.dirty_rows as u64;
                    round.repairs += u64::from(slice.recovered);
                    round.full_passes += u64::from(slice.wrapped);
                    if !slice.recovered {
                        round.clean_rows_scanned += slice.rows_scanned as u64;
                        round.clean_busy_ns += held_ns;
                        round.clean_bytes_scanned += slice.rows_scanned as u64 * row_bytes;
                    }
                }
                Err(_) => round.uncorrectable += 1,
            }
            pressure += observed - last_observed[i];
            last_observed[i] = observed;
        }
        shared
            .stats
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .merge(&round);
        shared.tick_telemetry(pressure);

        // AIMD-flavoured cadence: error traffic halves the interval
        // (down to the floor), a clean round doubles it back (up to the
        // idle ceiling).
        if cfg.adaptive {
            interval = if pressure > 0 {
                (interval / 2).max(cfg.min_interval)
            } else {
                interval
                    .checked_mul(2)
                    .unwrap_or(cfg.idle_interval)
                    .min(cfg.idle_interval)
            };
        }

        // Interruptible sleep: stop/pause wake us immediately.
        let ctl = shared.control.lock().unwrap_or_else(|p| p.into_inner());
        if ctl.mode == Mode::Running && !interval.is_zero() {
            let _ = shared
                .wake
                .wait_timeout(ctl, interval)
                .unwrap_or_else(|p| p.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, TwoDScheme};
    use memarray::ErrorShape;
    use std::time::Duration;

    fn small_cache(banks: usize) -> Arc<ConcurrentBankedCache> {
        Arc::new(ConcurrentBankedCache::new(
            CacheConfig {
                sets: 16,
                ways: 2,
                data_scheme: TwoDScheme::l1_paper(),
                tag_scheme: TwoDScheme {
                    data_bits: 50,
                    ..TwoDScheme::l1_paper()
                },
            },
            banks,
        ))
    }

    fn aggressive() -> ScrubberConfig {
        ScrubberConfig {
            threads: 2,
            rows_per_slice: 16,
            idle_interval: Duration::from_micros(500),
            min_interval: Duration::from_micros(20),
            adaptive: true,
            time_acceleration: 3600.0, // 1 wall second = 1 device-hour
        }
    }

    /// Polls `pred` for up to ~5 s; panics with `what` on timeout.
    fn wait_for(what: &str, mut pred: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !pred() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn background_sweep_repairs_injected_errors() {
        let cache = small_cache(4);
        for i in 0..64u64 {
            cache.write(i * 64, i ^ 0xAB).unwrap();
        }
        let scrubber = Scrubber::spawn(Arc::clone(&cache), aggressive());
        cache.inject_bank_error(
            2,
            ErrorShape::Cluster {
                row: 0,
                col: 0,
                height: 8,
                width: 8,
            },
        );
        // No foreground access touches bank 2: only the scrubber can
        // repair it.
        wait_for("scrubber to repair bank 2", || cache.lock_bank(2).audit());
        // A worker merges its round into the shared stats only after
        // finishing the whole round, so the repair can be visible in the
        // bank before it is visible in the counters — wait for the
        // accounting instead of racing it.
        wait_for("repair to be accounted", || scrubber.stats().repairs >= 1);
        let stats = scrubber.stats();
        assert!(stats.repairs >= 1, "{stats:?}");
        assert!(stats.slices > 0);
        for i in 0..64u64 {
            assert_eq!(cache.read(i * 64).unwrap(), i ^ 0xAB, "word {i}");
        }
        scrubber.stop();
        assert!(cache.audit());
    }

    #[test]
    fn pause_holds_and_resume_continues() {
        let cache = small_cache(2);
        for i in 0..16u64 {
            cache.write(i * 64, i).unwrap();
        }
        let scrubber = Scrubber::spawn(Arc::clone(&cache), aggressive());
        scrubber.pause();
        let parked = scrubber.stats().slices;
        cache.inject_bank_error(1, ErrorShape::Single { row: 0, col: 0 });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            scrubber.stats().slices,
            parked,
            "paused workers must not slice"
        );
        assert!(!cache.lock_bank(1).audit(), "error still latent");
        scrubber.resume();
        wait_for("post-resume repair", || cache.lock_bank(1).audit());
        scrubber.stop();
    }

    #[test]
    fn drain_quiesces_and_cleans() {
        let cache = small_cache(4);
        for i in 0..32u64 {
            cache.write(i * 64, i).unwrap();
        }
        let scrubber = Scrubber::spawn(Arc::clone(&cache), aggressive());
        for bank in 0..4 {
            cache.inject_bank_error(bank, ErrorShape::Single { row: 1, col: 1 });
        }
        scrubber.drain().unwrap();
        // No waiting, no polling: drain's contract is clean-on-return.
        assert!(cache.audit());
        // Drained means paused.
        let parked = scrubber.stats().slices;
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(scrubber.stats().slices, parked);
        scrubber.resume();
        wait_for("slices after resume", || scrubber.stats().slices > parked);
        scrubber.stop();
    }

    #[test]
    fn telemetry_counts_events_and_exposure() {
        let cache = small_cache(2);
        for i in 0..16u64 {
            cache.write(i * 64, i).unwrap();
        }
        let scrubber = Scrubber::spawn(Arc::clone(&cache), aggressive());
        for _ in 0..3 {
            cache.inject_bank_error(0, ErrorShape::Single { row: 2, col: 3 });
            wait_for("repair", || cache.lock_bank(0).audit());
        }
        // The repairing worker ticks telemetry only after finishing its
        // round, so the last event can trail the repair itself — wait
        // for the accounting instead of racing it.
        wait_for("telemetry to account 3 events", || {
            scrubber.reliability().events >= 3
        });
        let snap = scrubber.reliability();
        assert!(snap.events >= 3, "{snap:?}");
        assert!(snap.hours > 0.0);
        assert!(snap.fit > 0.0);
        assert!(snap.fit_upper_95 > snap.fit);
        scrubber.stop();
    }

    #[test]
    fn drop_joins_workers() {
        let cache = small_cache(2);
        {
            let _scrubber = Scrubber::spawn(Arc::clone(&cache), aggressive());
            cache.write(0, 1).unwrap();
        }
        // Workers are gone; the cache is still usable.
        assert_eq!(cache.read(0).unwrap(), 1);
    }
}
