//! A functional set-associative write-back cache whose data and tag
//! arrays are protected by 2D error coding — the paper's architecture as
//! an adoptable component.
//!
//! The cache stores 64-byte lines over a backing store, with LRU
//! replacement and write-back/write-allocate policy. Both the data array
//! and the tag array live inside [`memarray::TwoDArray`] banks, so every
//! write performs the read-before-write vertical update, every read is
//! checked by the horizontal code, and detected multi-bit errors trigger
//! the 2D recovery process transparently.

use crate::TwoDScheme;
use ecc::Bits;
use memarray::{EngineError, ErrorShape, TwoDArray};
use std::collections::HashMap;
use std::fmt;

/// Bytes per cache line.
pub const LINE_BYTES: usize = 64;

/// Construction parameters for a [`ProtectedCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Protection scheme for the data array.
    pub data_scheme: TwoDScheme,
    /// Protection scheme for the tag array (word width is overridden to
    /// fit the tag entry).
    pub tag_scheme: TwoDScheme,
}

impl CacheConfig {
    /// A 64kB 2-way cache with the paper's L1 protection.
    pub fn l1_64kb() -> Self {
        CacheConfig {
            sets: 512,
            ways: 2,
            data_scheme: TwoDScheme::l1_paper(),
            tag_scheme: TwoDScheme {
                data_bits: TAG_ENTRY_BITS,
                ..TwoDScheme::l1_paper()
            },
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * LINE_BYTES
    }
}

/// Tag entry width: 48-bit tag + valid + dirty bits.
pub(crate) const TAG_ENTRY_BITS: usize = 50;
/// Stack-buffer capacity for line-granular row operations; interleave
/// degrees beyond this (none of the paper's schemes) fall back to
/// per-word accesses.
const MAX_INTERLEAVE: usize = 8;
/// Words of `data_bits` per line (64B lines).
const fn words_per_line(data_bits: usize) -> usize {
    LINE_BYTES * 8 / data_bits
}

/// The pure address arithmetic of a [`ProtectedCache`]: how a byte
/// address splits into (set, tag, word) and where a logical word lives
/// inside the interleaved data/tag arrays. Extracted from the cache so
/// the optimistic read path in [`crate::ConcurrentBankedCache`] computes
/// coordinates from a `Copy` snapshot without borrowing any bank — the
/// cache's own accessors delegate here, keeping one source of truth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct CacheGeometry {
    pub(crate) sets: usize,
    pub(crate) ways: usize,
    pub(crate) data_bits: usize,
    pub(crate) data_interleave: usize,
    pub(crate) tag_interleave: usize,
}

impl CacheGeometry {
    pub(crate) fn new(config: &CacheConfig) -> Self {
        CacheGeometry {
            sets: config.sets,
            ways: config.ways,
            data_bits: config.data_scheme.data_bits,
            data_interleave: config.data_scheme.interleave,
            tag_interleave: config.tag_scheme.interleave,
        }
    }

    /// Splits a byte address into (set, tag, 64-bit-word-in-line).
    pub(crate) fn split(&self, addr: u64) -> (usize, u64, usize) {
        let line = addr / LINE_BYTES as u64;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let word_in_line = (addr as usize % LINE_BYTES) / 8;
        (set, tag, word_in_line)
    }

    /// Data-array coordinates of `(set, way, word64)`: the (row, word
    /// slot, bit offset) storing the 64-bit word. The data array stores
    /// `data_bits`-bit words; a 64-bit word maps into one of them.
    pub(crate) fn data_coords(
        &self,
        set: usize,
        way: usize,
        word64: usize,
    ) -> (usize, usize, usize) {
        let bits = self.data_bits;
        let sub = 64 * word64 % bits; // bit offset inside the stored word
        let wpl = words_per_line(bits);
        let word_index = (set * self.ways + way) * wpl + (word64 * 64 / bits);
        let row = word_index / self.data_interleave;
        let slot = word_index % self.data_interleave;
        (row, slot, sub)
    }

    /// Tag-array coordinates (row, word slot) of `(set, way)`.
    pub(crate) fn tag_coords(&self, set: usize, way: usize) -> (usize, usize) {
        let idx = set * self.ways + way;
        (idx / self.tag_interleave, idx % self.tag_interleave)
    }
}

/// Statistics of a protected cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read hits.
    pub read_hits: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Dirty lines written back to the backing store.
    pub writebacks: u64,
    /// Errors corrected transparently during accesses (any mechanism).
    pub errors_corrected: u64,
}

impl CacheStats {
    /// Hit ratio over all accesses.
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.read_hits + self.write_hits;
        let total = hits + self.read_misses + self.write_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// A 2D-protected set-associative write-back cache over a 64-bit address
/// space.
///
/// # Examples
///
/// ```
/// use twod_cache::{CacheConfig, ProtectedCache};
/// use memarray::ErrorShape;
///
/// let mut cache = ProtectedCache::new(CacheConfig::l1_64kb());
/// cache.write(0x1000, 0xDEAD_BEEF_0123_4567).unwrap();
///
/// // A 32x32 clustered upset in the data array is survivable.
/// cache.inject_data_error(ErrorShape::Cluster { row: 0, col: 0, height: 32, width: 32 });
/// assert_eq!(cache.read(0x1000).unwrap(), 0xDEAD_BEEF_0123_4567);
/// ```
pub struct ProtectedCache {
    config: CacheConfig,
    data: TwoDArray,
    tags: TwoDArray,
    /// LRU stacks per set (most recent first).
    lru: Vec<Vec<usize>>,
    /// Backing store (line-granular).
    memory: HashMap<u64, [u8; LINE_BYTES]>,
    stats: CacheStats,
}

impl ProtectedCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not tile into whole rows (the data
    /// scheme's interleave must divide the words per set-row).
    pub fn new(config: CacheConfig) -> Self {
        let wpl = words_per_line(config.data_scheme.data_bits);
        let total_words = config.sets * config.ways * wpl;
        let data_rows = total_words / config.data_scheme.interleave;
        assert!(
            total_words.is_multiple_of(config.data_scheme.interleave),
            "data words must tile into interleaved rows"
        );
        let tag_entries = config.sets * config.ways;
        let tag_rows = tag_entries.div_ceil(config.tag_scheme.interleave);
        // Small arrays cannot hold more parity rows than data rows; clamp
        // the vertical interleave to the bank height.
        let mut data_cfg = config.data_scheme.bank_config(data_rows);
        data_cfg.vertical_rows = data_cfg.vertical_rows.min(data_rows);
        let mut tag_cfg = config.tag_scheme.bank_config(tag_rows);
        tag_cfg.vertical_rows = tag_cfg.vertical_rows.min(tag_rows);
        let data = TwoDArray::new(data_cfg);
        let tags = TwoDArray::new(tag_cfg);
        let lru = (0..config.sets)
            .map(|_| (0..config.ways).collect())
            .collect();
        ProtectedCache {
            config,
            data,
            tags,
            lru,
            memory: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Access statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Engine statistics of the data array (extra reads, recoveries...).
    pub fn data_engine_stats(&self) -> memarray::EngineStats {
        self.data.stats()
    }

    /// Read-only view of the protected data array (scheme inspection,
    /// codec-sharing assertions).
    pub fn data_array(&self) -> &TwoDArray {
        &self.data
    }

    /// Read-only view of the protected tag array.
    pub fn tag_array(&self) -> &TwoDArray {
        &self.tags
    }

    /// Pre-loads the backing store at `line_addr`.
    pub fn fill_memory(&mut self, line_addr: u64, bytes: [u8; LINE_BYTES]) {
        self.memory
            .insert(line_addr & !(LINE_BYTES as u64 - 1), bytes);
    }

    /// Reads the aligned 64-bit word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if an uncorrectable error defeated the
    /// protection (data loss is detected, never silent).
    pub fn read(&mut self, addr: u64) -> Result<u64, EngineError> {
        let (set, tag, word_in_line) = self.split(addr);
        let way = match self.lookup(set, tag)? {
            Some((w, _)) => {
                self.stats.read_hits += 1;
                w
            }
            None => {
                self.stats.read_misses += 1;
                self.allocate(set, tag, false)?
            }
        };
        self.touch(set, way);
        let word64 = self.read_line_word(set, way, word_in_line)?;
        Ok(word64)
    }

    /// Writes the aligned 64-bit word at `addr` (write-allocate).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if an uncorrectable error defeated the
    /// protection.
    pub fn write(&mut self, addr: u64, value: u64) -> Result<(), EngineError> {
        let (set, tag, word_in_line) = self.split(addr);
        match self.lookup(set, tag)? {
            Some((way, entry)) => {
                self.stats.write_hits += 1;
                self.touch(set, way);
                self.write_line_word(set, way, word_in_line, value);
                // Mark dirty — but the lookup already returned the live
                // tag entry, so a line that is dirty stays as-is and the
                // protected tag read-modify-write disappears from the
                // steady-state write-hit path.
                if !entry.dirty {
                    self.write_tag(set, way, tag, true, true);
                }
            }
            None => {
                self.stats.write_misses += 1;
                // The allocation writes the tag entry exactly once, with
                // the dirty bit already set for this write.
                let way = self.allocate(set, tag, true)?;
                self.touch(set, way);
                self.write_line_word(set, way, word_in_line, value);
            }
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr` (need not be aligned).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if an uncorrectable error defeated the
    /// protection.
    pub fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EngineError> {
        // Batch at word granularity: each aligned 64-bit word backing the
        // span is read exactly once, never once per byte.
        let mut i = 0usize;
        while i < buf.len() {
            let a = addr + i as u64;
            let off = (a % 8) as usize;
            let n = (8 - off).min(buf.len() - i);
            let word = self.read(a & !7)?.to_le_bytes();
            buf[i..i + n].copy_from_slice(&word[off..off + n]);
            i += n;
        }
        Ok(())
    }

    /// Writes `bytes` starting at `addr` (need not be aligned), batched
    /// at word granularity: a fully covered aligned word is written
    /// outright (no read), and a partially covered word costs exactly one
    /// read-modify-write — an 8-byte aligned span is one word op, not
    /// eight.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if an uncorrectable error defeated the
    /// protection.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), EngineError> {
        let mut i = 0usize;
        while i < bytes.len() {
            let a = addr + i as u64;
            let off = (a % 8) as usize;
            let n = (8 - off).min(bytes.len() - i);
            let word_addr = a & !7;
            if n == 8 {
                // Full word covered: no read-before-merge needed.
                let mut w = [0u8; 8];
                w.copy_from_slice(&bytes[i..i + 8]);
                self.write(word_addr, u64::from_le_bytes(w))?;
            } else {
                let mut word = self.read(word_addr)?.to_le_bytes();
                word[off..off + n].copy_from_slice(&bytes[i..i + n]);
                self.write(word_addr, u64::from_le_bytes(word))?;
            }
            i += n;
        }
        Ok(())
    }

    /// Injects a transient error into the data array.
    pub fn inject_data_error(&mut self, shape: ErrorShape) {
        self.data.inject(shape);
    }

    /// Injects a stuck-at fault into the data array.
    pub fn inject_data_hard_error(&mut self, shape: ErrorShape, stuck: bool) {
        self.data.inject_hard(shape, stuck);
    }

    /// Injects a transient error into the tag array.
    pub fn inject_tag_error(&mut self, shape: ErrorShape) {
        self.tags.inject(shape);
    }

    /// Runs a scrub pass over both arrays.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if either array holds uncorrectable damage.
    pub fn scrub(&mut self) -> Result<(), EngineError> {
        self.data.scrub()?;
        self.tags.scrub()?;
        Ok(())
    }

    /// Incremental scrub: advances the data array's scrub cursor by at
    /// most `max_rows` rows (see [`memarray::TwoDArray::scrub_step`]).
    /// When the data sweep wraps, the tag array — orders of magnitude
    /// smaller — is scrubbed whole, so one full sweep of slices covers
    /// everything [`ProtectedCache::scrub`] covers.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if either array holds uncorrectable
    /// damage.
    pub fn scrub_step(&mut self, max_rows: usize) -> Result<memarray::ScrubSlice, EngineError> {
        let slice = self.data.scrub_step(max_rows)?;
        if slice.wrapped {
            self.tags.scrub()?;
        }
        Ok(slice)
    }

    /// Physical bytes one scanned data row represents (row columns —
    /// data plus check bits — divided by 8). Multiplied by
    /// `ScrubSlice::rows_scanned` this converts scrub progress into a
    /// bytes-swept figure for throughput accounting.
    pub fn scrub_row_bytes(&self) -> usize {
        self.data.cols().div_ceil(8)
    }

    /// Engine statistics of the tag array.
    pub fn tag_engine_stats(&self) -> memarray::EngineStats {
        self.tags.stats()
    }

    /// Error events observed by either array from any detection source
    /// (inline corrections, recoveries, scrub finds). Monotonic — the
    /// adaptive scrub-rate controller diffs successive snapshots to
    /// estimate this bank's live error traffic.
    pub fn observed_errors(&self) -> u64 {
        self.data.stats().observed_errors() + self.tags.stats().observed_errors()
    }

    /// Whether both arrays pass their full consistency audit.
    pub fn audit(&self) -> bool {
        self.data.audit() && self.tags.audit()
    }

    // ---- internals -----------------------------------------------------

    /// The `Copy` address-arithmetic snapshot of this cache (see
    /// [`CacheGeometry`]).
    pub(crate) fn geometry(&self) -> CacheGeometry {
        CacheGeometry::new(&self.config)
    }

    fn split(&self, addr: u64) -> (usize, u64, usize) {
        self.geometry().split(addr)
    }

    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        (tag * self.config.sets as u64 + set as u64) * LINE_BYTES as u64
    }

    fn data_coords(&self, set: usize, way: usize, word64: usize) -> (usize, usize, usize) {
        self.geometry().data_coords(set, way, word64)
    }

    fn tag_coords(&self, set: usize, way: usize) -> (usize, usize) {
        self.geometry().tag_coords(set, way)
    }

    fn read_tag(&mut self, set: usize, way: usize) -> Result<TagEntry, EngineError> {
        let (row, slot) = self.tag_coords(set, way);
        // u64 fast lane: a clean tag entry (50 bits) moves straight from
        // the row limbs into a `u64` — no `Bits` temporaries, no decode.
        if let Some(raw) = self.tags.try_read_word_u64(row, slot, 0, TAG_ENTRY_BITS) {
            return Ok(TagEntry::from_u64(raw));
        }
        let out = self.tags.read_word(row, slot)?;
        Ok(TagEntry::from_bits(out.data()))
    }

    fn write_tag(&mut self, set: usize, way: usize, tag: u64, valid: bool, dirty: bool) {
        let (row, slot) = self.tag_coords(set, way);
        let entry = TagEntry { tag, valid, dirty };
        if self
            .tags
            .try_write_word_u64(row, slot, 0, entry.to_u64(), TAG_ENTRY_BITS)
            .is_some()
        {
            return;
        }
        self.tags
            .write_word(row, slot, &entry.to_bits(self.config.tag_scheme.data_bits));
    }

    /// Looks up `tag` in `set`, returning the matching way *and* its
    /// decoded tag entry so callers can skip the redundant protected tag
    /// re-read (e.g. the dirty-bit read-modify-write on write hits).
    fn lookup(&mut self, set: usize, tag: u64) -> Result<Option<(usize, TagEntry)>, EngineError> {
        for way in 0..self.config.ways {
            let entry = self.read_tag(set, way)?;
            if entry.valid && entry.tag == tag {
                return Ok(Some((way, entry)));
            }
        }
        Ok(None)
    }

    fn touch(&mut self, set: usize, way: usize) {
        let stack = &mut self.lru[set];
        if let Some(pos) = stack.iter().position(|&w| w == way) {
            stack.remove(pos);
        }
        stack.insert(0, way);
    }

    /// Allocates a way for (set, tag): evicts LRU (writing back dirty
    /// data), fills from memory. The fill writes each stored data row
    /// once through the line-granular lane (instead of a protected
    /// read-modify-write per 64-bit word) and the tag entry exactly once,
    /// with `dirty` pre-set for write allocations.
    fn allocate(&mut self, set: usize, tag: u64, dirty: bool) -> Result<usize, EngineError> {
        let victim = *self.lru[set].last().expect("nonempty LRU stack");
        let old = self.read_tag(set, victim)?;
        if old.valid && old.dirty {
            let line = self.collect_line(set, victim)?;
            let addr = self.line_addr(set, old.tag);
            self.memory.insert(addr, line);
            self.stats.writebacks += 1;
        }
        // Fill from memory (zeroes if never written).
        let addr = self.line_addr(set, tag);
        let line = *self.memory.entry(addr).or_insert([0u8; LINE_BYTES]);
        self.fill_line(set, victim, &line);
        self.write_tag(set, victim, tag, true, dirty);
        Ok(victim)
    }

    /// Whether the data geometry admits line-at-row granularity: 64-bit
    /// stored words whose line occupies whole interleaved rows. Returns
    /// the words-per-row chunk size.
    fn line_row_chunk(&self, set: usize, way: usize) -> Option<usize> {
        let il = self.config.data_scheme.interleave;
        if self.config.data_scheme.data_bits != 64 || il > MAX_INTERLEAVE {
            return None;
        }
        let wpl = LINE_BYTES / 8;
        let base = (set * self.config.ways + way) * wpl;
        (wpl.is_multiple_of(il) && base.is_multiple_of(il)).then_some(il)
    }

    /// Writes a full line into (set, way), one stored row at a time where
    /// the geometry allows: each covered row costs one read-before-write
    /// and one vertical-parity update instead of one RMW per word.
    fn fill_line(&mut self, set: usize, way: usize, line: &[u8; LINE_BYTES]) {
        let word_at = |w: usize| {
            let mut v = [0u8; 8];
            v.copy_from_slice(&line[w * 8..(w + 1) * 8]);
            u64::from_le_bytes(v)
        };
        if let Some(chunk) = self.line_row_chunk(set, way) {
            let mut vals = [0u64; MAX_INTERLEAVE];
            let mut w = 0;
            while w < LINE_BYTES / 8 {
                let (row, _, _) = self.data_coords(set, way, w);
                for k in 0..chunk {
                    vals[k] = word_at(w + k);
                }
                if !self.data.try_write_row_u64(row, &vals[..chunk]) {
                    // Row holds latent damage: per-word writes engage
                    // correction / recovery as before.
                    for k in 0..chunk {
                        self.write_line_word(set, way, w + k, vals[k]);
                    }
                }
                w += chunk;
            }
            return;
        }
        for w in 0..LINE_BYTES / 8 {
            self.write_line_word(set, way, w, word_at(w));
        }
    }

    /// Reads a full line from (set, way), one stored row at a time where
    /// the geometry allows (writeback path).
    fn collect_line(&mut self, set: usize, way: usize) -> Result<[u8; LINE_BYTES], EngineError> {
        let mut line = [0u8; LINE_BYTES];
        if let Some(chunk) = self.line_row_chunk(set, way) {
            let mut vals = [0u64; MAX_INTERLEAVE];
            let mut w = 0;
            while w < LINE_BYTES / 8 {
                let (row, _, _) = self.data_coords(set, way, w);
                if self.data.try_read_row_u64(row, &mut vals[..chunk]) {
                    for k in 0..chunk {
                        line[(w + k) * 8..(w + k + 1) * 8].copy_from_slice(&vals[k].to_le_bytes());
                    }
                } else {
                    for k in 0..chunk {
                        let v = self.read_line_word(set, way, w + k)?;
                        line[(w + k) * 8..(w + k + 1) * 8].copy_from_slice(&v.to_le_bytes());
                    }
                }
                w += chunk;
            }
            return Ok(line);
        }
        for w in 0..LINE_BYTES / 8 {
            let v = self.read_line_word(set, way, w)?;
            line[w * 8..(w + 1) * 8].copy_from_slice(&v.to_le_bytes());
        }
        Ok(line)
    }

    fn read_line_word(
        &mut self,
        set: usize,
        way: usize,
        word64: usize,
    ) -> Result<u64, EngineError> {
        let (row, slot, sub) = self.data_coords(set, way, word64);
        // u64 fast lane: a clean 64-bit window moves straight from the
        // row limbs to the caller with zero heap allocations.
        if let Some(v) = self.data.try_read_word_u64(row, slot, sub, 64) {
            return Ok(v);
        }
        let stored = self.data.read_word(row, slot)?;
        Ok(stored.data().slice(sub, 64).to_u64())
    }

    fn write_line_word(&mut self, set: usize, way: usize, word64: usize, value: u64) {
        let (row, slot, sub) = self.data_coords(set, way, word64);
        // u64 fast lane: clean stored word, XOR-delta update in place
        // (and silent-write suppression), zero heap allocations.
        if self
            .data
            .try_write_word_u64(row, slot, sub, value, 64)
            .is_some()
        {
            return;
        }
        let bits = self.config.data_scheme.data_bits;
        // Read-modify-write of the stored (possibly wider) word.
        let mut stored = match self.data.read_word(row, slot) {
            Ok(out) => out.into_data(),
            Err(_) => Bits::zeros(bits),
        };
        stored.write_slice(sub, &Bits::from_u64(value, 64));
        self.data.write_word(row, slot, &stored);
    }
}

impl fmt::Debug for ProtectedCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ProtectedCache({} sets x {} ways, {}B, scheme={:?})",
            self.config.sets,
            self.config.ways,
            self.config.capacity(),
            self.config.data_scheme.horizontal
        )
    }
}

/// Decoded tag-array entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct TagEntry {
    pub(crate) tag: u64,
    pub(crate) valid: bool,
    pub(crate) dirty: bool,
}

impl TagEntry {
    fn from_bits(bits: &Bits) -> Self {
        let tag = bits.slice(0, 48).to_u64();
        TagEntry {
            tag,
            valid: bits.get(48),
            dirty: bits.get(49),
        }
    }

    /// Decodes the packed 50-bit form used by the u64 tag fast lane.
    pub(crate) fn from_u64(raw: u64) -> Self {
        TagEntry {
            tag: raw & ((1u64 << 48) - 1),
            valid: (raw >> 48) & 1 == 1,
            dirty: (raw >> 49) & 1 == 1,
        }
    }

    /// Packs the entry into the 50-bit form used by the u64 tag fast lane.
    fn to_u64(self) -> u64 {
        (self.tag & ((1u64 << 48) - 1))
            | (u64::from(self.valid) << 48)
            | (u64::from(self.dirty) << 49)
    }

    fn to_bits(self, width: usize) -> Bits {
        let mut b = Bits::zeros(width);
        b.write_slice(0, &Bits::from_u64(self.tag, 48));
        b.set(48, self.valid);
        b.set(49, self.dirty);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> ProtectedCache {
        // 16 sets x 2 ways x 64B = 2kB, quick for tests.
        ProtectedCache::new(CacheConfig {
            sets: 16,
            ways: 2,
            data_scheme: TwoDScheme::l1_paper(),
            tag_scheme: TwoDScheme {
                data_bits: TAG_ENTRY_BITS,
                ..TwoDScheme::l1_paper()
            },
        })
    }

    #[test]
    fn read_after_write() {
        let mut c = small_cache();
        c.write(0x40, 77).unwrap();
        assert_eq!(c.read(0x40).unwrap(), 77);
        assert_eq!(c.read(0x48).unwrap(), 0);
    }

    #[test]
    fn misses_then_hits() {
        let mut c = small_cache();
        assert_eq!(c.read(0x1000).unwrap(), 0);
        assert_eq!(c.stats().read_misses, 1);
        let _ = c.read(0x1000).unwrap();
        assert_eq!(c.stats().read_hits, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_lines() {
        let mut c = small_cache();
        // Three lines mapping to set 0 in a 2-way cache (16 sets, 64B
        // lines -> stride 1024).
        c.write(0x0, 1).unwrap();
        c.write(0x400, 2).unwrap();
        c.write(0x800, 3).unwrap(); // evicts line 0x0
        assert!(c.stats().writebacks >= 1);
        // Line 0 returns from the backing store intact.
        assert_eq!(c.read(0x0).unwrap(), 1);
    }

    #[test]
    fn lru_order_respected() {
        let mut c = small_cache();
        c.write(0x0, 1).unwrap();
        c.write(0x400, 2).unwrap();
        let _ = c.read(0x0).unwrap(); // 0x400 now LRU
        c.write(0x800, 3).unwrap(); // evicts 0x400

        // 0x0 must still hit.
        let hits_before = c.stats().read_hits;
        let _ = c.read(0x0).unwrap();
        assert_eq!(c.stats().read_hits, hits_before + 1);
    }

    #[test]
    fn survives_clustered_data_error() {
        let mut c = small_cache();
        for i in 0..32u64 {
            c.write(0x40 * i, i * 3 + 1).unwrap();
        }
        c.inject_data_error(ErrorShape::Cluster {
            row: 0,
            col: 0,
            height: 16,
            width: 32,
        });
        for i in 0..32u64 {
            assert_eq!(c.read(0x40 * i).unwrap(), i * 3 + 1, "line {i}");
        }
    }

    #[test]
    fn survives_tag_array_error() {
        let mut c = small_cache();
        c.write(0x123 * 64, 9).unwrap();
        c.inject_tag_error(ErrorShape::Cluster {
            row: 0,
            col: 0,
            height: 4,
            width: 8,
        });
        assert_eq!(c.read(0x123 * 64).unwrap(), 9);
    }

    #[test]
    fn scrub_and_audit() {
        let mut c = small_cache();
        c.write(0x40, 5).unwrap();
        assert!(c.audit());
        c.inject_data_error(ErrorShape::Single { row: 1, col: 1 });
        c.scrub().unwrap();
        assert!(c.audit());
        assert_eq!(c.read(0x40).unwrap(), 5);
    }

    #[test]
    fn hit_ratio_accounting() {
        let mut c = small_cache();
        c.write(0x40, 1).unwrap(); // miss
        let _ = c.read(0x40).unwrap(); // hit
        let _ = c.read(0x40).unwrap(); // hit
        assert!((c.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity() {
        assert_eq!(CacheConfig::l1_64kb().capacity(), 64 * 1024);
    }

    #[test]
    fn line_fill_writes_rows_not_words() {
        let mut c = small_cache();
        assert_eq!(c.read(0x1000).unwrap(), 0); // miss -> allocate fills the line
        let stats = c.data_engine_stats();
        // Eight 64-bit word writes served by two row-granular writes
        // (4-way interleave): one read-before-write per stored row, not
        // one per word.
        assert_eq!(stats.writes, 8);
        assert_eq!(stats.extra_reads, 2);
        assert_eq!(stats.reads, 1);
    }

    #[test]
    fn silent_store_suppressed() {
        let mut c = small_cache();
        c.write(0x80, 42).unwrap();
        let before = c.data_engine_stats().silent_writes;
        c.write(0x80, 42).unwrap(); // same value: all coding work skipped
        let after = c.data_engine_stats();
        assert_eq!(after.silent_writes, before + 1);
        assert_eq!(c.read(0x80).unwrap(), 42);
        // The dirty bit was already set, so the write-hit also skipped
        // the protected tag read-modify-write.
        assert!(c.audit());
    }

    #[test]
    fn aligned_byte_span_costs_one_word_op() {
        let mut c = small_cache();
        // Warm the line so the accesses below are pure hits.
        c.write(0x100, 0).unwrap();
        let before = c.data_engine_stats();
        c.write_bytes(0x100, &[7u8; 8]).unwrap();
        let after_write = c.data_engine_stats();
        assert_eq!(
            after_write.writes - before.writes,
            1,
            "aligned 8-byte span must be one word write"
        );
        assert_eq!(after_write.reads, before.reads, "no read-before-merge");
        let mut buf = [0u8; 8];
        c.read_bytes(0x100, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 8]);
        assert_eq!(
            c.data_engine_stats().reads - after_write.reads,
            1,
            "aligned 8-byte read must be one word read"
        );
    }

    #[test]
    fn byte_level_roundtrip() {
        let mut c = small_cache();
        c.write_bytes(0x101, b"hello 2d coding").unwrap();
        let mut buf = [0u8; 15];
        c.read_bytes(0x101, &mut buf).unwrap();
        assert_eq!(&buf, b"hello 2d coding");
        // Unaligned spans crossing word and line boundaries.
        let mut long = [0u8; 80];
        c.write_bytes(0x3D, &(0..80u8).collect::<Vec<_>>()).unwrap();
        c.read_bytes(0x3D, &mut long).unwrap();
        assert_eq!(long.to_vec(), (0..80u8).collect::<Vec<_>>());
    }

    #[test]
    fn byte_writes_survive_errors() {
        let mut c = small_cache();
        c.write_bytes(0x200, b"resilient").unwrap();
        c.inject_data_error(ErrorShape::Cluster {
            row: 0,
            col: 0,
            height: 16,
            width: 16,
        });
        let mut buf = [0u8; 9];
        c.read_bytes(0x200, &mut buf).unwrap();
        assert_eq!(&buf, b"resilient");
    }
}
