//! Table-sharing contract across the stack: one codec table set per
//! `(CodeKind, data_bits)` pair and one bank-scheme table set per
//! `TwoDConfig`, no matter how many banks, arrays, or caches are built.
//!
//! All registry-delta assertions live in ONE test function: the counters
//! are process-global and tests in a binary run in parallel, so spreading
//! deltas across `#[test]`s would race.

use std::sync::Arc;
use twod_cache::{BankedProtectedCache, CacheConfig, ProtectedCache, TwoDScheme};

/// A scheme with a word width unique to this test binary, so registry
/// deltas measured here cannot be perturbed by other tests.
fn scheme_32() -> TwoDScheme {
    TwoDScheme {
        horizontal: ecc::CodeKind::Edc(8),
        data_bits: 32,
        interleave: 4,
        vertical_rows: 16,
    }
}

#[test]
fn codec_and_scheme_tables_are_shared_across_the_stack() {
    // --- data and tag arrays with coinciding schemes share one codec ---
    let cache = ProtectedCache::new(CacheConfig {
        sets: 16,
        ways: 2,
        data_scheme: scheme_32(),
        tag_scheme: scheme_32(),
    });
    let data_codec = cache.data_array().scheme().codec();
    let tag_codec = cache.tag_array().scheme().codec();
    assert!(
        Arc::ptr_eq(data_codec, tag_codec),
        "coinciding data/tag schemes must share one Arc<dyn Code>"
    );
    // The bank geometries differ (data rows != tag rows), so the bank
    // schemes are distinct — only the codec underneath is shared.
    assert!(!Arc::ptr_eq(
        cache.data_array().scheme(),
        cache.tag_array().scheme()
    ));

    // --- construction counts: N banks cost zero additional table sets ---
    let codec_builds_before = ecc::shared_codec_builds();
    let scheme_builds_before = memarray::shared_scheme_builds();
    let mut banked = BankedProtectedCache::new(
        CacheConfig {
            sets: 16,
            ways: 2,
            data_scheme: scheme_32(),
            tag_scheme: scheme_32(),
        },
        8,
    );
    // The single cache above already built the codec and both bank
    // schemes (data geometry + tag geometry); eight more banks of the
    // same config must not build anything.
    assert_eq!(
        ecc::shared_codec_builds(),
        codec_builds_before,
        "8-bank construction must reuse the existing codec tables"
    );
    assert_eq!(
        memarray::shared_scheme_builds(),
        scheme_builds_before,
        "8-bank construction must reuse the existing bank schemes"
    );
    // Every bank's data array runs on literally the same scheme (and the
    // first cache's, too).
    let scheme0 = Arc::clone(banked.bank(0).data_array().scheme());
    for bank in 1..banked.banks() {
        assert!(
            Arc::ptr_eq(&scheme0, banked.bank(bank).data_array().scheme()),
            "bank {bank} duplicated the shared scheme"
        );
    }
    assert!(Arc::ptr_eq(&scheme0, cache.data_array().scheme()));

    // --- a genuinely new width does build exactly one codec ---
    let before = ecc::shared_codec_builds();
    let wide = TwoDScheme {
        horizontal: ecc::CodeKind::Edc(8),
        data_bits: 128,
        interleave: 2,
        vertical_rows: 16,
    };
    let one = ProtectedCache::new(CacheConfig {
        sets: 16,
        ways: 2,
        data_scheme: wide,
        tag_scheme: wide,
    });
    assert_eq!(
        ecc::shared_codec_builds(),
        before + 1,
        "one fresh (kind, width) pair must cost exactly one codec build"
    );
    drop(one);
}
