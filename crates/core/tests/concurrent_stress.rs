//! Concurrency contract of [`ConcurrentBankedCache`]:
//!
//! * sequential equivalence — a seeded replay through the `&self` API
//!   returns exactly what an independently-sharded sequential reference
//!   (hand-rolled `Vec<ProtectedCache>` with the same interleaving math)
//!   and a plain value model return;
//! * per-address linearizability under threads — each address has one
//!   writer, and every read observes a value actually written to that
//!   address (read-your-writes for owners, no cross-address smearing for
//!   anyone);
//! * fault storm under load — clustered errors injected into live banks
//!   are recovered without corrupting served data and without sibling
//!   banks performing (or being blocked behind) recoveries.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::thread;
use twod_cache::{
    BankedProtectedCache, CacheConfig, ConcurrentBankedCache, ProtectedCache, TwoDScheme,
    LINE_BYTES,
};

fn config() -> CacheConfig {
    CacheConfig {
        sets: 16,
        ways: 2,
        data_scheme: TwoDScheme::l1_paper(),
        tag_scheme: TwoDScheme {
            data_bits: 50,
            ..TwoDScheme::l1_paper()
        },
    }
}

/// A hand-rolled sequential reference: the same address-interleaved
/// sharding math as the banked caches, over independent sequential
/// banks. Deliberately NOT built from `BankedProtectedCache` (which is
/// itself a facade over the concurrent type) so the equivalence test
/// compares two independent implementations.
struct ReferenceSharded {
    banks: Vec<ProtectedCache>,
}

impl ReferenceSharded {
    fn new(config: CacheConfig, banks: usize) -> Self {
        ReferenceSharded {
            banks: (0..banks).map(|_| ProtectedCache::new(config)).collect(),
        }
    }

    fn split(&self, addr: u64) -> (usize, u64) {
        let lb = LINE_BYTES as u64;
        let line = addr / lb;
        let bank = (line % self.banks.len() as u64) as usize;
        let local = (line / self.banks.len() as u64) * lb + addr % lb;
        (bank, local)
    }

    fn read(&mut self, addr: u64) -> u64 {
        let (bank, local) = self.split(addr);
        self.banks[bank].read(local).unwrap()
    }

    fn write(&mut self, addr: u64, value: u64) {
        let (bank, local) = self.split(addr);
        self.banks[bank].write(local, value).unwrap();
    }
}

#[test]
fn seeded_replay_matches_sequential_reference() {
    const BANKS: usize = 4;
    const LINES: u64 = 128;
    let concurrent = ConcurrentBankedCache::new(config(), BANKS);
    let mut facade = BankedProtectedCache::new(config(), BANKS);
    let mut reference = ReferenceSharded::new(config(), BANKS);
    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut rng = StdRng::seed_from_u64(2024);
    for op in 0..20_000u64 {
        let line = rng.gen_range(0..LINES);
        let word = rng.gen_range(0..(LINE_BYTES as u64 / 8));
        let addr = line * LINE_BYTES as u64 + word * 8;
        if rng.gen_bool(0.4) {
            let value: u64 = rng.gen();
            concurrent.write(addr, value).unwrap();
            facade.write(addr, value).unwrap();
            reference.write(addr, value);
            model.insert(addr, value);
        } else {
            let got = concurrent.read(addr).unwrap();
            assert_eq!(got, facade.read(addr).unwrap(), "op {op} addr {addr:#x}");
            assert_eq!(got, reference.read(addr), "op {op} addr {addr:#x}");
            assert_eq!(
                got,
                model.get(&addr).copied().unwrap_or(0),
                "op {op} addr {addr:#x}"
            );
        }
    }
    // The two implementations also agree on aggregate behaviour.
    let c = concurrent.stats();
    let r: Vec<_> = reference.banks.iter().map(|b| b.stats()).collect();
    assert_eq!(
        c.read_hits + c.read_misses,
        r.iter().map(|s| s.read_hits + s.read_misses).sum::<u64>()
    );
    assert!(concurrent.audit());
}

/// Values are tagged with the address's line so any reader can check a
/// read value was genuinely written *to that address*: value =
/// line << 24 | seq. The initial (never-written) value 0 is also legal.
fn tagged(line: u64, seq: u64) -> u64 {
    (line << 24) | (seq & 0xFF_FFFF)
}

#[test]
fn per_address_linearizability_across_threads() {
    const BANKS: usize = 8;
    const THREADS: usize = 4;
    const LINES: u64 = 64;
    const OPS: u64 = 4_000;
    let cache = ConcurrentBankedCache::new(config(), BANKS);
    let barrier = Barrier::new(THREADS);
    thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let cache = &cache;
            let barrier = &barrier;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(77 + t);
                // Thread t exclusively writes lines with line % THREADS == t.
                let mut last_written: HashMap<u64, u64> = HashMap::new();
                let mut seq = 0u64;
                barrier.wait();
                for _ in 0..OPS {
                    let line = rng.gen_range(0..LINES);
                    let addr = line * LINE_BYTES as u64; // word 0 of the line
                    let owned = line % THREADS as u64 == t;
                    if owned && rng.gen_bool(0.5) {
                        seq += 1;
                        let value = tagged(line, seq);
                        cache.write(addr, value).unwrap();
                        last_written.insert(addr, value);
                    } else {
                        let got = cache.read(addr).unwrap();
                        if owned {
                            // Read-your-writes: the owner must see its
                            // latest write (no one else writes here).
                            let expect = last_written.get(&addr).copied().unwrap_or(0);
                            assert_eq!(got, expect, "thread {t} addr {addr:#x}");
                        } else {
                            // Foreign reads must never observe a value
                            // smeared from another address.
                            assert!(
                                got == 0 || got >> 24 == line,
                                "thread {t} read {got:#x} from line {line}"
                            );
                        }
                    }
                }
            });
        }
    });
    assert!(cache.audit());
}

#[test]
fn fault_storm_under_load_isolates_banks() {
    const BANKS: usize = 4;
    const THREADS: usize = 2;
    const LINES: u64 = 64;
    const OPS: u64 = 3_000;
    const STORM_BANKS: [usize; 2] = [1, 3];
    let cache = ConcurrentBankedCache::new(config(), BANKS);
    // Pre-fill every line so reads have known values.
    for line in 0..LINES {
        cache
            .write(line * LINE_BYTES as u64, tagged(line, 1))
            .unwrap();
    }
    let done = AtomicBool::new(false);
    let barrier = Barrier::new(THREADS + 1);
    thread::scope(|s| {
        let mut readers = Vec::new();
        for t in 0..THREADS as u64 {
            let cache = &cache;
            let barrier = &barrier;
            readers.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(31 + t);
                barrier.wait();
                for _ in 0..OPS {
                    let line = rng.gen_range(0..LINES);
                    let addr = line * LINE_BYTES as u64;
                    let got = cache.read(addr).unwrap();
                    assert_eq!(got, tagged(line, 1), "line {line} served wrong data");
                }
            }));
        }
        // The storm thread repeatedly injures the storm banks while the
        // readers run. Pre-scrub keeps each bank at one live clustered
        // event (the scheme's coverage contract). At least two rounds
        // fire per storm bank even if the readers finish first.
        let cache_ref = &cache;
        let barrier = &barrier;
        let done_ref = &done;
        let storm = s.spawn(move || {
            let mut rng = StdRng::seed_from_u64(1234);
            let mut fired = 0usize;
            barrier.wait();
            while fired < 2 * STORM_BANKS.len()
                || (!done_ref.load(Ordering::Acquire) && fired < 512)
            {
                let bank = STORM_BANKS[fired % STORM_BANKS.len()];
                cache_ref.lock_bank(bank).scrub().unwrap();
                let rows = cache_ref.lock_bank(bank).data_array().rows();
                let row = rng.gen_range(0..rows.saturating_sub(16).max(1));
                cache_ref.inject_bank_error(
                    bank,
                    memarray::ErrorShape::Cluster {
                        row,
                        col: 0,
                        height: 16,
                        width: 16,
                    },
                );
                fired += 1;
                thread::yield_now();
            }
            fired
        });
        for reader in readers {
            reader.join().expect("reader thread panicked");
        }
        done.store(true, Ordering::Release);
        let fired = storm.join().expect("storm thread panicked");
        assert!(fired >= 2 * STORM_BANKS.len(), "storm fired {fired} rounds");
    });
    // No wrong data was served (asserted in the readers). Damage still
    // latent from the last injection is recoverable:
    cache.scrub().unwrap();
    assert!(cache.audit());
    // Bank isolation: recoveries happened only where errors were
    // injected; sibling banks never ran a recovery march.
    for bank in 0..BANKS {
        let recoveries = cache.lock_bank(bank).data_engine_stats().recoveries;
        if STORM_BANKS.contains(&bank) {
            assert!(recoveries >= 1, "storm bank {bank} should have recovered");
        } else {
            assert_eq!(recoveries, 0, "sibling bank {bank} must stay untouched");
        }
    }
}
