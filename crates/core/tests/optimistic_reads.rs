//! Torn-read coverage for the seqlock optimistic read path of
//! [`ConcurrentBankedCache`].
//!
//! The seeded yield-stress test pins **one** bank (so every access
//! contends on a single seqlock) and races optimistic readers against
//! writers, scrub slices, and injected transient faults. Each writer
//! publishes a per-line monotonic write stamp *after* its cache write
//! completes; a reader that first observes stamp `s` for a line and then
//! reads the line must see stamp `>= s` — anything less is a stale or
//! torn value leaking through the fast path. The high half of every
//! stored word carries the line number, so a torn or cross-line value
//! also fails loudly.
//!
//! The property test pins the other half of the contract: whenever the
//! sequence check cannot succeed (a [`BankGuard`] is live, so the bank's
//! sequence is odd), the optimistic path must refuse — for *any*
//! address — and the locked fallback must still serve the value after
//! the guard drops.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;
use twod_cache::{CacheConfig, ConcurrentBankedCache, TwoDScheme};

/// The shared 16-set 2-way geometry the concurrency unit tests use:
/// small enough that recovery marches are fast, large enough that a
/// whole working set stays resident.
fn small_concurrent(banks: usize) -> ConcurrentBankedCache {
    ConcurrentBankedCache::new(
        CacheConfig {
            sets: 16,
            ways: 2,
            data_scheme: TwoDScheme::l1_paper(),
            tag_scheme: TwoDScheme {
                data_bits: 50,
                ..TwoDScheme::l1_paper()
            },
        },
        banks,
    )
}

/// Lines the stress test keeps resident (capacity is 32 lines: lines
/// 0..16 fill way 0 of every set, 16..24 add a second way to half).
const LINES: u64 = 24;
const LINE: u64 = 64;
const STAMP_MASK: u64 = 0xFFFF_FFFF;

fn encode(line: u64, stamp: u64) -> u64 {
    (line << 32) | (stamp & STAMP_MASK)
}

/// One hot bank, 2 writers, 3 optimistic readers, 1 chaos thread
/// injecting detectable transient faults and running scrub slices.
/// Readers assert the per-line monotonic write-stamp invariant: no
/// reader ever observes a value older than a stamp it already saw
/// published, and no value ever decodes to the wrong line.
#[test]
fn stress_readers_never_observe_torn_or_stale_values() {
    const READERS: usize = 2;
    const WRITERS: u64 = 2;
    // The chaos schedule bounds the run: writers and readers race until
    // every fault round has been injected and scrubbed. Debug-mode
    // recovery marches are expensive; the release-mode CI stress lane
    // re-runs this with optimizations on and a longer campaign.
    const CHAOS_ROUNDS: u64 = if cfg!(debug_assertions) { 24 } else { 160 };

    let cache = small_concurrent(1);
    let published: Vec<AtomicU64> = (0..LINES).map(|_| AtomicU64::new(0)).collect();
    let stop = AtomicBool::new(false);

    // Prewarm: every line resident with stamp 0 before anyone races.
    for line in 0..LINES {
        cache.write(line * LINE, encode(line, 0)).unwrap();
    }

    thread::scope(|s| {
        for w in 0..WRITERS {
            let cache = &cache;
            let published = &published;
            let stop = &stop;
            s.spawn(move || {
                let mut stamp = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    stamp += 1;
                    for line in (w..LINES).step_by(WRITERS as usize) {
                        cache.write(line * LINE, encode(line, stamp)).unwrap();
                        // Publish only after the cache write committed:
                        // the Release pairs with the reader's Acquire, so
                        // an observed stamp implies the write finished.
                        published[line as usize].store(stamp, Ordering::Release);
                        thread::yield_now();
                    }
                }
            });
        }

        {
            let cache = &cache;
            let stop = &stop;
            s.spawn(move || {
                use memarray::ErrorShape;
                for round in 0..CHAOS_ROUNDS {
                    // A 16x16 transient cluster is horizontally
                    // detectable on this geometry and recoverable by the
                    // vertical code: readers must reject, never misread.
                    // Clusters force full recovery marches, so ration
                    // them — singles carry most of the probe-dirty load.
                    if round % 8 == 0 {
                        cache.inject_bank_error(
                            0,
                            ErrorShape::Cluster {
                                row: 0,
                                col: 0,
                                height: 16,
                                width: 16,
                            },
                        );
                    } else {
                        cache.inject_bank_error(
                            0,
                            ErrorShape::Single {
                                row: (round % 64) as usize,
                                col: (round % 61) as usize,
                            },
                        );
                    }
                    // Scrub slices sequence as seqlock writers too.
                    cache.scrub_bank_step(0, 16).unwrap();
                    for _ in 0..64 {
                        thread::yield_now();
                    }
                }
                // Leave the array clean for the final audit, then let
                // the writers and readers drain.
                cache.scrub().unwrap();
                stop.store(true, Ordering::Relaxed);
            });
        }

        for r in 0..READERS {
            let cache = &cache;
            let published = &published;
            let stop = &stop;
            s.spawn(move || {
                // Cheap deterministic per-reader line sequence; quality
                // does not matter, coverage of all lines does.
                let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ (r as u64).wrapping_mul(0xA24B_AED4);
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let line = x % LINES;
                    let floor = published[line as usize].load(Ordering::Acquire);
                    let value = cache.read(line * LINE).unwrap();
                    assert_eq!(value >> 32, line, "torn/cross-line value {value:#x}");
                    assert!(
                        value & STAMP_MASK >= floor,
                        "stale read on line {line}: stamp {} < published floor {floor}",
                        value & STAMP_MASK,
                    );
                    if x & 0xF == 0 {
                        thread::yield_now();
                    }
                }
            });
        }
    });

    // The race actually exercised the fast path and the arrays survived.
    assert!(cache.optimistic_hits() > 0, "fast path never taken");
    assert!(cache.audit(), "arrays failed the post-race audit");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whenever the sequence check cannot pass — a guard holds the bank,
    /// so its sequence is odd — the fast path refuses every address that
    /// maps to that bank, resident or not, and the locked path still
    /// serves the committed value once the guard is gone.
    #[test]
    fn fallback_taken_whenever_sequence_check_fails(
        banks in 1usize..=4,
        lines in proptest::collection::vec(0u64..16, 1..12),
    ) {
        let cache = small_concurrent(banks);
        for &line in &lines {
            cache.write(line * LINE, encode(line, 7)).unwrap();
        }
        for &line in &lines {
            let addr = line * LINE;
            let guard = cache.lock_bank(cache.bank_of(addr));
            prop_assert_eq!(
                cache.try_optimistic_read(addr), None,
                "fast path served {addr:#x} under a live guard"
            );
            drop(guard);
            prop_assert_eq!(cache.read(addr).unwrap(), encode(line, 7));
        }
    }
}
