//! Serde round-trips for the configuration types (compiled only with
//! `--features serde`).

#![cfg(feature = "serde")]

use twod_cache::TwoDScheme;

#[test]
fn scheme_roundtrips_through_json_like_form() {
    // serde_json is not a dependency; round-trip through the
    // self-describing token form provided by serde's test-friendly
    // in-memory format: here we use `serde::Serialize` into a string via
    // the `ron`-less debug approach — simplest available: postcard-style
    // is unavailable, so use `serde::de::value` primitives.
    use serde::de::IntoDeserializer;
    use serde::Deserialize;

    // Serialize to a `serde_value`-free structure by deserializing from
    // the serializer's own output is impossible without a format crate;
    // instead verify that Serialize/Deserialize impls exist and agree on
    // a hand-built deserializer input for the unit-ish enum field.
    let scheme = TwoDScheme::l1_paper();
    // Compile-time checks that the impls exist:
    fn assert_serialize<T: serde::Serialize>(_: &T) {}
    fn assert_deserialize<'de, T: serde::Deserialize<'de>>() {}
    assert_serialize(&scheme);
    assert_deserialize::<TwoDScheme>();

    // Deserialize a CodeKind from its externally-tagged map form.
    let kind: Result<ecc::CodeKind, serde::de::value::Error> =
        ecc::CodeKind::deserialize("Secded".into_deserializer());
    assert_eq!(kind.unwrap(), ecc::CodeKind::Secded);
}
