//! Serde-feature witness for the configuration types (compiled only
//! with `--features serde`, which CI's feature-matrix job does).
//!
//! The workspace's `serde` is the vendored compile-surface stub
//! (`vendor/serde`): marker traits plus marker-impl derives, enough to
//! keep every `#[cfg_attr(feature = "serde", ...)]` site building and
//! impl-producing. When a real registry `serde` replaces the stub,
//! upgrade this into an actual round-trip test through a format crate.

#![cfg(feature = "serde")]

use twod_cache::TwoDScheme;

fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}

#[test]
fn gated_derives_produce_impls() {
    assert_serde::<TwoDScheme>();
    assert_serde::<ecc::CodeKind>();
    assert_serde::<ecc::InterleavedScheme>();
}

#[test]
fn scheme_with_derives_still_behaves() {
    // The derive expansion must not disturb the type itself.
    let scheme = TwoDScheme::l1_paper();
    assert_eq!(scheme.coverage(), (32, 32));
}
