//! Randomized stress tests for the protected cache: long interleaved
//! sequences of reads, writes, fault injections, and scrubs, replayed
//! against a software shadow model. Any divergence is a protection hole.

use memarray::ErrorShape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use twod_cache::{CacheConfig, ProtectedCache, TwoDScheme};

fn build(sets: usize, ways: usize, scheme: TwoDScheme) -> ProtectedCache {
    ProtectedCache::new(CacheConfig {
        sets,
        ways,
        data_scheme: scheme,
        tag_scheme: TwoDScheme {
            data_bits: 50,
            ..scheme
        },
    })
}

fn stress(seed: u64, scheme: TwoDScheme, with_hard_faults: bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cache = build(32, 2, scheme);
    let mut shadow: HashMap<u64, u64> = HashMap::new();
    let addr_space = 2048u64; // words

    for step in 0..1500 {
        match rng.gen_range(0..100) {
            0..=54 => {
                // Read: must match the shadow (default 0).
                let addr = rng.gen_range(0..addr_space) * 8;
                let expect = shadow.get(&addr).copied().unwrap_or(0);
                let got = cache.read(addr).unwrap_or_else(|e| {
                    panic!("step {step}: uncorrectable on read {addr:#x}: {e}")
                });
                assert_eq!(got, expect, "step {step} seed {seed} addr {addr:#x}");
            }
            55..=89 => {
                let addr = rng.gen_range(0..addr_space) * 8;
                let value: u64 = rng.gen();
                cache.write(addr, value).expect("write must succeed");
                shadow.insert(addr, value);
            }
            90..=95 => {
                // Soft clustered error within coverage. The paper's error
                // model is rare single events with recovery triggered on
                // detection, so the event is scrubbed before the next one
                // can land — two unrecovered clusters sharing a stripe
                // would (correctly) exceed any V-row scheme's coverage.
                let (vmax, hmax) = scheme.coverage();
                let h = rng.gen_range(1..=vmax.min(16));
                let w = rng.gen_range(1..=hmax.min(16));
                cache.inject_data_error(ErrorShape::Cluster {
                    row: rng.gen_range(0..32),
                    col: rng.gen_range(0..64),
                    height: h,
                    width: w,
                });
                cache.scrub().expect("recovery of a covered cluster");
            }
            96..=97 => {
                if with_hard_faults {
                    cache.inject_data_hard_error(
                        ErrorShape::Single {
                            row: rng.gen_range(0..32),
                            col: rng.gen_range(0..64),
                        },
                        rng.gen(),
                    );
                    cache.scrub().expect("recovery of a hard fault");
                }
            }
            _ => {
                cache.scrub().expect("scrub must succeed");
            }
        }
    }
    // Final sweep: every shadowed word still reads back.
    for (&addr, &value) in &shadow {
        assert_eq!(cache.read(addr).unwrap(), value, "final sweep {addr:#x}");
    }
}

#[test]
fn stress_edc_scheme_soft_errors() {
    for seed in 0..4 {
        stress(seed, TwoDScheme::l1_paper(), false);
    }
}

#[test]
fn stress_yield_scheme_with_hard_faults() {
    for seed in 10..13 {
        stress(seed, TwoDScheme::yield_mode(), true);
    }
}

#[test]
fn stress_l2_scheme_wide_words() {
    for seed in 20..22 {
        stress(seed, TwoDScheme::l2_paper(), false);
    }
}

#[test]
fn engine_stats_monotone_under_stress() {
    let mut cache = build(32, 2, TwoDScheme::l1_paper());
    let mut rng = StdRng::seed_from_u64(99);
    let mut last_writes = 0;
    for _ in 0..200 {
        let addr = rng.gen_range(0..512u64) * 8;
        cache.write(addr, rng.gen()).unwrap();
        let stats = cache.data_engine_stats();
        assert!(stats.writes > last_writes);
        // Every word write is backed by a read-before-write, but a
        // line-granular fill amortizes one row read over all the words
        // of the row, so the physical extra reads sit between
        // writes / interleave and writes.
        let interleave = cache.data_array().scheme().layout().interleave() as u64;
        assert!(stats.extra_reads >= stats.writes / interleave);
        assert!(stats.extra_reads <= stats.writes);
        last_writes = stats.writes;
    }
}
