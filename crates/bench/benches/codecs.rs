//! Criterion micro-benchmarks of the codecs underlying every figure:
//! encode/decode throughput of EDC8, SECDED, and the BCH family — the
//! raw-latency story behind the paper's coding-latency comparisons
//! (Figures 1(c) and 7).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ecc::{Bch, Bits, Code, Edc, Secded};
use std::hint::black_box;

fn bench_encode(c: &mut Criterion) {
    let data = Bits::from_u64(0x0123_4567_89AB_CDEF, 64);
    let mut group = c.benchmark_group("encode_64b");
    group.bench_function("edc8", |b| {
        let code = Edc::new(64, 8);
        b.iter(|| black_box(code.encode(black_box(&data))))
    });
    group.bench_function("secded", |b| {
        let code = Secded::new(64);
        b.iter(|| black_box(code.encode(black_box(&data))))
    });
    group.bench_function("dected", |b| {
        let code = Bch::new(64, 2);
        b.iter(|| black_box(code.encode(black_box(&data))))
    });
    group.bench_function("qecped", |b| {
        let code = Bch::new(64, 4);
        b.iter(|| black_box(code.encode(black_box(&data))))
    });
    group.bench_function("oecned", |b| {
        let code = Bch::new(64, 8);
        b.iter(|| black_box(code.encode(black_box(&data))))
    });
    group.finish();
}

fn bench_decode_clean(c: &mut Criterion) {
    let data = Bits::from_u64(0xFEED_FACE_CAFE_F00D, 64);
    let mut group = c.benchmark_group("decode_clean_64b");
    group.bench_function("edc8", |b| {
        let code = Edc::new(64, 8);
        let check = code.encode(&data);
        b.iter(|| black_box(code.decode(black_box(&data), black_box(&check))))
    });
    group.bench_function("secded", |b| {
        let code = Secded::new(64);
        let check = code.encode(&data);
        b.iter(|| black_box(code.decode(black_box(&data), black_box(&check))))
    });
    group.bench_function("oecned", |b| {
        let code = Bch::new(64, 8);
        let check = code.encode(&data);
        b.iter(|| black_box(code.decode(black_box(&data), black_box(&check))))
    });
    group.finish();
}

fn bench_decode_with_errors(c: &mut Criterion) {
    let data = Bits::from_u64(0xAAAA_5555_0F0F_F0F0, 64);
    let mut group = c.benchmark_group("decode_errors_64b");
    group.bench_function("secded_1bit", |b| {
        let code = Secded::new(64);
        let check = code.encode(&data);
        b.iter_batched(
            || {
                let mut d = data.clone();
                d.flip(17);
                d
            },
            |noisy| black_box(code.decode(&noisy, &check)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("dected_2bit", |b| {
        let code = Bch::new(64, 2);
        let check = code.encode(&data);
        b.iter_batched(
            || {
                let mut d = data.clone();
                d.flip(5);
                d.flip(44);
                d
            },
            |noisy| black_box(code.decode(&noisy, &check)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("oecned_8bit", |b| {
        let code = Bch::new(64, 8);
        let check = code.encode(&data);
        b.iter_batched(
            || {
                let mut d = data.clone();
                for i in [1usize, 9, 17, 25, 33, 41, 49, 57] {
                    d.flip(i);
                }
                d
            },
            |noisy| black_box(code.decode(&noisy, &check)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode_clean,
    bench_decode_with_errors
);
criterion_main!(benches);
