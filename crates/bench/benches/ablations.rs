//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * vertical interleave factor V (coverage-vs-update-cost trade-off);
//! * horizontal code choice (EDC8 vs SECDED vs EDC16);
//! * port stealing on/off under rising port utilization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecc::{Bits, CodeKind};
use memarray::{ErrorShape, TwoDArray, TwoDConfig};
use std::hint::black_box;

/// Vertical interleave sweep: recovery work depends on stripe size
/// (rows/V per stripe), while the per-write update cost is V-independent.
fn ablation_vertical(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_vertical_rows");
    group.sample_size(20);
    for v in [8usize, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, &v| {
            b.iter_with_setup(
                || {
                    let mut bank = TwoDArray::new(TwoDConfig {
                        rows: 256,
                        horizontal: CodeKind::Edc(8),
                        data_bits: 64,
                        interleave: 4,
                        vertical_rows: v,
                    });
                    let word = Bits::from_u64(3, 64);
                    for r in 0..256 {
                        bank.write_word(r, 0, &word);
                    }
                    // Cluster sized to the coverage window of this V.
                    bank.inject(ErrorShape::Cluster {
                        row: 0,
                        col: 0,
                        height: v,
                        width: 16,
                    });
                    bank
                },
                |mut bank| {
                    black_box(bank.recover().unwrap());
                },
            )
        });
    }
    group.finish();
}

/// Horizontal code sweep: write-path cost (encode on every write) for
/// detection-only vs inline-correcting horizontal codes.
fn ablation_horizontal(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_horizontal_code");
    for (label, code, data_bits) in [
        ("edc8_64b", CodeKind::Edc(8), 64usize),
        ("secded_64b", CodeKind::Secded, 64),
        ("edc16_256b", CodeKind::Edc(16), 256),
    ] {
        group.bench_function(label, |b| {
            let mut bank = TwoDArray::new(TwoDConfig {
                rows: 128,
                horizontal: code,
                data_bits,
                interleave: 2,
                vertical_rows: 16,
            });
            let word = Bits::from_u64(0xFEED, data_bits);
            let mut i = 0usize;
            b.iter(|| {
                bank.write_word(i % 128, i % 2, black_box(&word));
                i = i.wrapping_add(1);
            })
        });
    }
    group.finish();
}

/// Port stealing ablation measured through the cycle simulator: wall-time
/// of a fixed window is roughly constant, so this reports the *simulated*
/// cost difference via a throughput proxy (instructions simulated per
/// bench iteration).
fn ablation_portsteal(c: &mut Criterion) {
    use cachesim::{run_sim, ProtectionPolicy, SystemConfig, WorkloadProfile};
    let mut group = c.benchmark_group("ablation_port_stealing");
    group.sample_size(10);
    for (label, policy) in [
        ("l1_no_steal", ProtectionPolicy::l1_only()),
        ("l1_steal", ProtectionPolicy::l1_steal()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let stats = run_sim(
                    SystemConfig::fat_cmp(),
                    policy,
                    WorkloadProfile::oltp(),
                    5_000,
                    9,
                );
                black_box(stats.instructions)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_vertical,
    ablation_horizontal,
    ablation_portsteal
);
criterion_main!(benches);
