//! Criterion groups mirroring the figure pipelines: one bench group per
//! paper artifact, so `cargo bench` exercises every experiment's code
//! path and reports its runtime cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig1_codes(c: &mut Criterion) {
    use cachegeom::{energy_overhead, storage_overhead, CacheSpec, CostModel, Objective};
    use ecc::CodeKind;
    let model = CostModel::default();
    c.bench_function("fig1_overheads", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for code in CodeKind::paper_set() {
                acc += storage_overhead(code, 64);
                acc += energy_overhead(&model, &CacheSpec::l1_64kb(), code, Objective::Balanced);
            }
            black_box(acc)
        })
    });
}

fn fig2_sweep(c: &mut Criterion) {
    use cachegeom::{interleave_sweep, CostModel, Objective};
    let model = CostModel::default();
    c.bench_function("fig2_interleave_sweep", |b| {
        b.iter(|| {
            let pts = interleave_sweep(&model, 8192, 72, &[1, 2, 4, 8, 16], Objective::Balanced);
            black_box(pts.len())
        })
    });
}

fn fig3_coverage(c: &mut Criterion) {
    use ecc::CodeKind;
    use memarray::coverage::twod_covers;
    use memarray::{ErrorShape, TwoDConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let config = TwoDConfig {
        rows: 64,
        horizontal: CodeKind::Edc(8),
        data_bits: 64,
        interleave: 4,
        vertical_rows: 16,
    };
    let mut group = c.benchmark_group("fig3_coverage_trial");
    group.sample_size(10);
    group.bench_function("cluster_16x16", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let out = twod_covers(
                config,
                ErrorShape::Cluster {
                    row: 3,
                    col: 5,
                    height: 16,
                    width: 16,
                },
                &mut rng,
            );
            black_box(out)
        })
    });
    group.finish();
}

fn fig5_simulation(c: &mut Criterion) {
    use cachesim::{run_sim, ProtectionPolicy, SystemConfig, WorkloadProfile};
    let mut group = c.benchmark_group("fig5_sim_window");
    group.sample_size(10);
    group.bench_function("fat_oltp_full_5k_cycles", |b| {
        b.iter(|| {
            let stats = run_sim(
                SystemConfig::fat_cmp(),
                ProtectionPolicy::full(),
                WorkloadProfile::oltp(),
                5_000,
                3,
            );
            black_box(stats.ipc())
        })
    });
    group.finish();
}

fn fig7_analysis(c: &mut Criterion) {
    use cachegeom::{CacheSpec, CostModel};
    use twod_cache::analysis::{figure7, ComparedScheme};
    let model = CostModel::default();
    c.bench_function("fig7_overhead_analysis", |b| {
        b.iter(|| {
            let reports = figure7(
                &model,
                &CacheSpec::l1_64kb(),
                &ComparedScheme::figure7_l1_set(),
            );
            black_box(reports.len())
        })
    });
}

fn fig8_models(c: &mut Criterion) {
    use reliability::{FieldModel, RepairScheme, YieldModel};
    let model = YieldModel::l2_16mb();
    c.bench_function("fig8_yield_curve", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cells in (0..=4000u64).step_by(400) {
                acc += model.yield_probability(cells, RepairScheme::EccPlusSpares(16));
                acc += FieldModel::paper_system(0.001e-2).success_without_2d(cells as f64 / 800.0);
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    fig1_codes,
    fig2_sweep,
    fig3_coverage,
    fig5_simulation,
    fig7_analysis,
    fig8_models
);
criterion_main!(benches);
