//! Criterion benchmarks of the 2D engine's operational costs: write path
//! (read-before-write + vertical update), clean read path, and the
//! recovery march — the costs behind the paper's Section 4/5 claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecc::{Bits, CodeKind};
use memarray::{ErrorShape, TwoDArray, TwoDConfig};
use std::hint::black_box;

fn paper_config(rows: usize) -> TwoDConfig {
    TwoDConfig {
        rows,
        horizontal: CodeKind::Edc(8),
        data_bits: 64,
        interleave: 4,
        vertical_rows: 32,
    }
}

fn bench_write_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_write");
    for (label, horizontal) in [("edc8", CodeKind::Edc(8)), ("secded", CodeKind::Secded)] {
        group.bench_function(label, |b| {
            let mut bank = TwoDArray::new(TwoDConfig {
                rows: 256,
                horizontal,
                data_bits: 64,
                interleave: 4,
                vertical_rows: 32,
            });
            let word = Bits::from_u64(0x1234_5678_9ABC_DEF0, 64);
            let mut i = 0usize;
            b.iter(|| {
                bank.write_word(i % 256, i % 4, black_box(&word));
                i = i.wrapping_add(1);
            })
        });
    }
    group.finish();
}

fn bench_read_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_read_clean");
    group.bench_function("edc8", |b| {
        let mut bank = TwoDArray::new(paper_config(256));
        let word = Bits::from_u64(42, 64);
        for r in 0..256 {
            for w in 0..4 {
                bank.write_word(r, w, &word);
            }
        }
        let mut i = 0usize;
        b.iter(|| {
            let out = bank.read_word(i % 256, i % 4).unwrap();
            i = i.wrapping_add(1);
            black_box(out)
        })
    });
    group.finish();
}

fn bench_recovery_march(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_march");
    group.sample_size(20);
    for rows in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter_with_setup(
                || {
                    let mut bank = TwoDArray::new(paper_config(rows));
                    let word = Bits::from_u64(7, 64);
                    for r in 0..rows {
                        bank.write_word(r, 0, &word);
                    }
                    bank.inject(ErrorShape::Cluster {
                        row: 1,
                        col: 0,
                        height: 16.min(rows),
                        width: 16,
                    });
                    bank
                },
                |mut bank| {
                    black_box(bank.recover().unwrap());
                },
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_write_path,
    bench_read_path,
    bench_recovery_march
);
criterion_main!(benches);
