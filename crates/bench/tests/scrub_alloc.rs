//! Allocation-regression pin for the background self-healing lanes:
//! clean scrub slices (including the wrap check) and the scratch-based
//! BCH decode must perform ZERO heap allocations — the contract that
//! makes background scrubbing as cheap as the hit lanes.
//!
//! Separate binary from `alloc_regression.rs` on purpose: the counting
//! allocator is process-global, so each test binary registers its own
//! and runs everything inside ONE `#[test]` function (libtest worker
//! threads would otherwise race the counter).

use bench::alloc_counter::{self, CountingAlloc};
use ecc::{Bch, Bits, Code, CodeKind, DecodeScratch};
use memarray::{TwoDArray, TwoDConfig};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Asserts that `f` performs zero allocations in at least one of three
/// runs. The process-global counter can pick up stray one-off
/// allocations from the harness (lazy stdio/thread init on another
/// thread), but a genuine hot-path regression allocates on *every*
/// slice or decode — hundreds per window — and can never produce a
/// zero window.
fn assert_zero_allocs(label: &str, mut f: impl FnMut()) {
    let mut counts = [0u64; 3];
    for slot in &mut counts {
        let ((), allocs) = alloc_counter::count(&mut f);
        *slot = allocs;
        if allocs == 0 {
            return;
        }
    }
    panic!("{label} must not touch the allocator (3 windows: {counts:?})");
}

#[test]
fn zero_allocation_scrub_paths() {
    clean_scrub_slices();
    bch_decode_into();
}

/// Incremental scrub over a clean bank: every slice — including the one
/// that wraps the cursor and runs the vertical-parity stripe check —
/// must stay on the batched limb sweep and never allocate.
fn clean_scrub_slices() {
    let mut bank = TwoDArray::new(TwoDConfig {
        rows: 256,
        horizontal: CodeKind::Edc(8),
        data_bits: 64,
        interleave: 4,
        vertical_rows: 32,
    });
    for r in 0..bank.rows() {
        for w in 0..bank.words_per_row() {
            bank.write_word(r, w, &Bits::from_u64((r * 4 + w) as u64, 64));
        }
    }
    // Warm: one full pass sizes the engine-owned scratch rows.
    while !bank.scrub_step(32).unwrap().wrapped {}
    assert_zero_allocs("clean scrub slices", || {
        // 32 slices of 32 rows = 4 full passes over 256 rows: the
        // window crosses the wrap (stripe verification) 4 times.
        for _ in 0..32 {
            let slice = bank.scrub_step(32).unwrap();
            assert_eq!(slice.dirty_rows, 0);
            assert!(!slice.recovered);
        }
    });
}

/// `Code::decode_into` with a warmed scratch: clean, correctable, and
/// detected-only words all stay allocation-free for the BCH codecs the
/// repair path leans on (DEC-TED t=2 through OEC-NED t=8).
fn bch_decode_into() {
    for t in [2usize, 4, 8] {
        let code = Bch::new(64, t);
        let data = Bits::from_u64(0xDEAD_BEEF_CAFE_F00D, 64);
        let check = code.encode(&data);
        let mut out = Bits::zeros(code.data_bits());
        let mut scratch = DecodeScratch::default();
        // Warm: one decode of each weight sizes the scratch vectors.
        for weight in 0..=t + 1 {
            let mut d = data.clone();
            for p in 0..weight {
                d.flip((p * 7) % code.data_bits());
            }
            code.decode_into(&d, &check, &mut out, &mut scratch);
        }
        let mut noisy = data.clone();
        noisy.flip(3);
        noisy.flip(41);
        assert_zero_allocs("BCH decode_into (warmed scratch)", || {
            for _ in 0..256 {
                std::hint::black_box(code.decode_into(
                    std::hint::black_box(&noisy),
                    &check,
                    &mut out,
                    &mut scratch,
                ));
                std::hint::black_box(code.decode_into(
                    std::hint::black_box(&data),
                    &check,
                    &mut out,
                    &mut scratch,
                ));
            }
        });
    }
}
