//! Allocation- and lock-amortization pin for the batched serve path:
//! a pipelined batch of clean GET/SET frames through
//! [`CacheServer::execute_frames`] must perform ZERO heap allocations
//! and take fewer than 0.2 bank-lock acquisitions per request — the
//! two contracts the batch refactor exists to provide.
//!
//! Separate binary from `alloc_regression.rs`/`scrub_alloc.rs` on
//! purpose: the counting allocator is process-global, so each test
//! binary registers its own and runs everything inside ONE `#[test]`
//! function (libtest worker threads would otherwise race the counter).

use bench::alloc_counter::{self, CountingAlloc};
use cachesim::net::{protocol, BatchArena, CacheServer, Request, ServerConfig};
use cachesim::ZipfSampler;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;
use twod_cache::{CacheConfig, ConcurrentBankedCache, TwoDScheme};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Asserts that `f` performs zero allocations in at least one of three
/// runs. The process-global counter can pick up stray one-off
/// allocations from harness threads (the server's parked monitor, lazy
/// stdio init), but a genuine serve-path regression allocates on every
/// request — thousands per window — and can never produce a zero
/// window.
fn assert_zero_allocs(label: &str, mut f: impl FnMut()) {
    let mut counts = [0u64; 3];
    for slot in &mut counts {
        let ((), allocs) = alloc_counter::count(&mut f);
        *slot = allocs;
        if allocs == 0 {
            return;
        }
    }
    panic!("{label} must not touch the allocator (3 windows: {counts:?})");
}

#[test]
fn batched_serve_path_is_allocation_free_and_lock_amortized() {
    const DEPTH: usize = 16;
    const BATCHES: usize = 128;
    const WRITE_FRACTION: f64 = 0.1;
    // Working set sized to the cache (4 banks x 256 sets x 4 ways =
    // 4096 lines for 8192 Zipf(1.1) ranks): the pin measures the
    // resident serve path, where optimistic reads should keep banks
    // untouched — a miss legitimately locks to fill.
    const KEY_RANKS: usize = 8192;

    let config = CacheConfig {
        sets: 256,
        ways: 4,
        data_scheme: TwoDScheme::l1_paper(),
        tag_scheme: TwoDScheme {
            data_bits: 50,
            ..TwoDScheme::l1_paper()
        },
    };
    let cache = Arc::new(ConcurrentBankedCache::new(config, 4));
    let server = CacheServer::spawn(
        Arc::clone(&cache),
        None,
        "127.0.0.1:0",
        ServerConfig {
            // Park the monitor so its periodic poll stays out of the
            // measurement windows.
            monitor_interval: Duration::from_secs(3600),
            ..ServerConfig::default()
        },
    )
    .expect("loopback listener");

    // Pre-encode every batch: frame construction may allocate, the
    // serve path under measurement must not.
    let mut rng = StdRng::seed_from_u64(0x000A_110C_BA7C);
    let sampler = ZipfSampler::new(KEY_RANKS, 1.1);
    let mut id = 1u32;
    let batches: Vec<Vec<u8>> = (0..BATCHES)
        .map(|_| {
            let mut buf = Vec::new();
            for _ in 0..DEPTH {
                let key = sampler.sample(&mut rng) as u64;
                let req = if rng.gen_bool(WRITE_FRACTION) {
                    Request::Set {
                        key,
                        value: rng.gen(),
                    }
                } else {
                    Request::Get { key }
                };
                protocol::encode_request(id, &req, &mut buf);
                id = id.wrapping_add(1);
            }
            buf
        })
        .collect();

    let mut arena = BatchArena::new();
    let mut out = Vec::new();
    let ops = (BATCHES * DEPTH) as u64;
    let run_window = |arena: &mut BatchArena, out: &mut Vec<u8>| {
        for frames in &batches {
            out.clear();
            server
                .execute_frames(frames, out, arena)
                .expect("pre-encoded frames decode");
        }
    };
    // Warmup: sizes the arena, the response buffer, and first-touch
    // engine scratch, and fills the hot lines.
    run_window(&mut arena, &mut out);

    let locks_before = cache.lock_acquisitions();
    run_window(&mut arena, &mut out);
    let locks_per_op = (cache.lock_acquisitions() - locks_before) as f64 / ops as f64;
    assert!(
        locks_per_op < 0.2,
        "batched path took {locks_per_op:.4} bank lock(s)/op over {ops} ops (budget < 0.2)",
    );

    assert_zero_allocs("batched clean GET/SET serve path", || {
        run_window(&mut arena, &mut out)
    });

    server.shutdown();
}
