//! Allocation-regression pin: clean read hits and clean write hits must
//! perform ZERO heap allocations, end to end through the protected
//! cache — this is the contract of the scratch-buffer / u64 fast lanes.
//!
//! The counting allocator is registered for this whole test binary, and
//! its counter is process-global — so everything runs inside ONE `#[test]`
//! function: with multiple tests, libtest's worker threads (and the
//! harness itself) would allocate concurrently with a measured window
//! and the counts would race. Each section warms its cache/bank so the
//! measured window contains only clean hits, then counts allocations
//! across a burst of operations.

use bench::alloc_counter::{self, CountingAlloc};
use ecc::{Bits, CodeKind};
use memarray::{TwoDArray, TwoDConfig};
use twod_cache::{CacheConfig, ProtectedCache};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const OPS: u64 = 4_096;

/// Asserts that `f` performs zero allocations in at least one of three
/// runs. The process-global counter can pick up stray one-off
/// allocations from the harness (lazy stdio/thread init on another
/// thread), but a genuine hot-path regression allocates on *every* op —
/// thousands per window — and can never produce a zero window.
fn assert_zero_allocs(label: &str, mut f: impl FnMut()) {
    let mut counts = [0u64; 3];
    for slot in &mut counts {
        let ((), allocs) = alloc_counter::count(&mut f);
        *slot = allocs;
        if allocs == 0 {
            return;
        }
    }
    panic!("{label} must not touch the allocator (3 windows: {counts:?})");
}

#[test]
fn zero_allocation_hot_paths() {
    clean_read_hits();
    clean_write_hits();
    engine_u64_lanes();
    bits_write_word_clean_path();
}

fn clean_read_hits() {
    let mut cache = ProtectedCache::new(CacheConfig::l1_64kb());
    // Warm: allocate the lines so every measured access is a pure hit.
    for i in 0..64u64 {
        cache.write(i * 8, i).unwrap();
    }
    assert_zero_allocs("clean read hits", || {
        let mut acc = 0u64;
        for op in 0..OPS {
            acc ^= cache.read((op % 64) * 8).unwrap();
        }
        std::hint::black_box(acc);
    });
}

fn clean_write_hits() {
    let mut cache = ProtectedCache::new(CacheConfig::l1_64kb());
    for i in 0..64u64 {
        cache.write(i * 8, i).unwrap(); // lines resident and already dirty
    }
    assert_zero_allocs("clean write hits", || {
        for op in 0..OPS {
            cache.write((op % 64) * 8, op).unwrap();
        }
    });
    // Silent write hits (value unchanged) are equally allocation-free.
    // The last writer of slot k stored `OPS - 64 + k`; rewrite exactly that.
    assert_zero_allocs("silent write hits", || {
        for op in 0..OPS {
            cache.write((op % 64) * 8, OPS - 64 + op % 64).unwrap();
        }
    });
}

fn engine_u64_lanes() {
    let mut bank = TwoDArray::new(TwoDConfig {
        rows: 256,
        horizontal: CodeKind::Edc(8),
        data_bits: 64,
        interleave: 4,
        vertical_rows: 32,
    });
    for r in 0..256 {
        for w in 0..4 {
            bank.write_word(r, w, &Bits::from_u64((r * 4 + w) as u64, 64));
        }
    }
    assert_zero_allocs("engine u64 lanes", || {
        let mut acc = 0u64;
        for op in 0..OPS as usize {
            acc ^= bank.try_read_word_u64(op % 256, op % 4, 0, 64).unwrap();
            bank.try_write_word_u64((op * 7) % 256, op % 4, 0, acc, 64)
                .unwrap();
        }
        std::hint::black_box(acc);
    });
    // Row-granular lanes too.
    let mut vals = [0u64; 4];
    assert_zero_allocs("engine row lanes", || {
        for r in 0..256 {
            assert!(bank.try_read_row_u64(r, &mut vals));
            assert!(bank.try_write_row_u64(r, &vals));
        }
    });
}

fn bits_write_word_clean_path() {
    // The generic `Bits` write path also goes through the scratch-buffer
    // XOR delta when the stored row is clean.
    let mut bank = TwoDArray::new(TwoDConfig {
        rows: 64,
        horizontal: CodeKind::Edc(8),
        data_bits: 64,
        interleave: 4,
        vertical_rows: 16,
    });
    let a = Bits::from_u64(0xAAAA_5555_AAAA_5555, 64);
    let b = Bits::from_u64(0x5555_AAAA_5555_AAAA, 64);
    bank.write_word(0, 0, &a);
    assert_zero_allocs("clean Bits writes", || {
        for op in 0..OPS {
            bank.write_word(0, 0, if op % 2 == 0 { &b } else { &a });
        }
    });
}
