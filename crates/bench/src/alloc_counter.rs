//! A counting global allocator for allocation-regression tests and
//! allocs-per-op bench rows.
//!
//! [`CountingAlloc`] forwards every request to the system allocator and
//! counts allocations in a relaxed atomic, so the overhead on the code
//! under measurement is one fetch-add per allocation — and the whole
//! point of the hot paths it guards is that they perform none.
//!
//! Registration is explicit: a test binary installs it with
//! `#[global_allocator]` itself, and the `perf` binary registers it only
//! when the crate is built with the `count-allocs` feature, so ordinary
//! builds keep the stock allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper that counts every allocation (including
/// reallocations, which may allocate).
#[derive(Debug)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// A const constructor so the allocator can be a `static`.
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: pure pass-through to `System`; the counter has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocations performed so far by a registered [`CountingAlloc`].
/// Stays at zero when no counting allocator is installed.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Allocations performed by `f`. Meaningful only in a binary that
/// registered a [`CountingAlloc`] with `#[global_allocator]` (the
/// allocation-regression test does so directly; the perf binary does it
/// behind the `count-allocs` feature — see
/// [`counting_feature_enabled`]). Without one, the count is trivially
/// zero.
pub fn count<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = allocations();
    let out = f();
    (out, allocations() - before)
}

/// Whether this build registers the counting allocator in the perf
/// binary (the `count-allocs` feature).
pub const fn counting_feature_enabled() -> bool {
    cfg!(feature = "count-allocs")
}
