//! Shared output helpers for the figure-regeneration binaries, plus the
//! counting global allocator used by the allocation-regression suite and
//! (behind the `count-allocs` feature) the perf emitter.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper and prints it as an aligned ASCII table plus, where useful, a
//! crude bar rendering so the *shape* can be eyeballed against the
//! original figure.

pub mod alloc_counter;
pub mod bench_json;

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Prints one labelled row of values with a fixed label width.
pub fn row(label: &str, values: &[(String, f64)]) {
    print!("  {label:<26}");
    for (name, v) in values {
        print!(" {name}={v:<8.3}");
    }
    println!();
}

/// Renders a horizontal bar scaled to `max` over `width` characters.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(n)
}

/// Prints a labelled bar line.
pub fn bar_row(label: &str, value: f64, max: f64) {
    println!("  {label:<26} {value:8.3} |{}", bar(value, max, 40));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10).len(), 5);
        assert_eq!(bar(10.0, 10.0, 10).len(), 10);
        assert_eq!(bar(0.0, 10.0, 10).len(), 0);
        assert_eq!(bar(1.0, 0.0, 10).len(), 0);
    }

    #[test]
    fn bar_clamps_overflow() {
        assert_eq!(bar(20.0, 10.0, 10).len(), 10);
    }
}
