//! The single emitter of the `twod-repro/bench-v1` JSON row schema.
//!
//! Both the `perf` baseline emitter and the `campaign` soak driver
//! write `BENCH_*.json` files consumed by `scripts/bench_gate.py`; the
//! schema string, row field order, and formatting live here once so the
//! two producers cannot drift apart.

use std::fmt::Write as _;

/// One measured row of a `BENCH_*.json` file.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    /// Section name (e.g. `"scrub"`).
    pub name: String,
    /// Operation name within the section (e.g. `"slice_clean"`).
    pub op: String,
    /// Mean wall-clock nanoseconds per operation.
    pub mean_ns: f64,
    /// Iterations (or samples) behind the mean.
    pub iters: u64,
    /// Mean heap allocations per operation, when measured (perf built
    /// with `count-allocs`).
    pub allocs_per_op: Option<f64>,
}

/// Renders rows in the `twod-repro/bench-v1` schema. `mode` records how
/// the numbers were measured (`"full"`, `"quick"`, `"campaign"`).
pub fn render(mode: &str, rows: &[BenchRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"twod-repro/bench-v1\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let allocs = match r.allocs_per_op {
            Some(a) => format!(", \"allocs_per_op\": {a:.3}"),
            None => String::new(),
        };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"op\": \"{}\", \"mean_ns\": {:.3}, \"iters\": {}{allocs}}}{comma}",
            r.name, r.op, r.mean_ns, r.iters
        );
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_schema_and_rows() {
        let rows = vec![
            BenchRow {
                name: "scrub".into(),
                op: "row_scan".into(),
                mean_ns: 123.456,
                iters: 10,
                allocs_per_op: None,
            },
            BenchRow {
                name: "cache".into(),
                op: "read_hit".into(),
                mean_ns: 1.0,
                iters: 5,
                allocs_per_op: Some(0.0),
            },
        ];
        let out = render("quick", &rows);
        assert!(out.contains("\"schema\": \"twod-repro/bench-v1\""));
        assert!(out.contains("\"mode\": \"quick\""));
        assert!(out.contains("\"mean_ns\": 123.456"));
        assert!(out.contains("\"allocs_per_op\": 0.000"));
        // Exactly one trailing comma between the two rows, none after
        // the last (valid JSON).
        assert_eq!(out.matches("},").count(), 1);
    }
}
