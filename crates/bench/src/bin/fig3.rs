//! Figure 3: error coverage and storage overhead of three protections of
//! a 256x256-bit array — conventional SECDED+Intv4, conventional
//! OECNED+Intv4, and 2D coding (EDC8+Intv4 horizontal, EDC32 vertical).
//!
//! The storage overheads are computed exactly; the coverage claims are
//! validated empirically by Monte-Carlo fault injection at the claimed
//! footprint boundary (inside: always corrected; outside: no longer
//! guaranteed).

use bench::header;
use ecc::{CodeKind, InterleavedScheme};
use memarray::coverage::{conventional_covers, twod_covers, CoverageOutcome};
use memarray::{ErrorShape, TwoDConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 256;
const TRIALS: usize = 12;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);

    header("Figure 3: storage overhead (256x256 data array)");
    let secded = InterleavedScheme::new(CodeKind::Secded, 4);
    let oecned = InterleavedScheme::new(CodeKind::Oecned, 4);
    println!(
        "  (a) SECDED+Intv4           {:5.1}%  (corrects 4-bit row bursts)",
        secded.storage_overhead(64) * 100.0
    );
    println!(
        "  (b) OECNED+Intv4           {:5.1}%  (corrects 32-bit row bursts)",
        oecned.storage_overhead(64) * 100.0
    );
    // 2D: EDC8 horizontal (8/64) + 32 parity rows over 256 rows.
    let twod_overhead = 8.0 / 64.0 + 32.0 / 256.0 * (1.0 + 8.0 / 64.0);
    println!(
        "  (c) 2D EDC8+Intv4, EDC32   {:5.1}%  (corrects 32x32 clusters)",
        twod_overhead * 100.0
    );

    header("Coverage validation (Monte-Carlo fault injection)");
    let twod = TwoDConfig {
        rows: ROWS,
        horizontal: CodeKind::Edc(8),
        data_bits: 64,
        interleave: 4,
        vertical_rows: 32,
    };

    // (a) SECDED+Intv4: 4-bit row bursts corrected, 8-bit not.
    let a_in = conventional_rate(&mut rng, CodeKind::Secded, 4, 1, 4);
    let a_out = conventional_rate(&mut rng, CodeKind::Secded, 4, 1, 8);
    println!("  SECDED+Intv4:  1x4 bursts corrected {a_in:5.1}%   1x8 bursts {a_out:5.1}%");

    // (b) OECNED+Intv4: 32-bit row bursts corrected, row failure not.
    let b_in = conventional_rate(&mut rng, CodeKind::Oecned, 4, 1, 32);
    let b_row = conventional_row_failure_rate(&mut rng, CodeKind::Oecned, 4);
    println!("  OECNED+Intv4:  1x32 bursts corrected {b_in:5.1}%   row failures {b_row:5.1}%");

    // (c) 2D: 32x32 clusters corrected; 33x33 not guaranteed.
    let c_in = twod_rate(&mut rng, twod, 32, 32);
    let c_row = twod_row_failure_rate(&mut rng, twod);
    let c_out = twod_rate(&mut rng, twod, 33, 33);
    println!("  2D coding:     32x32 clusters corrected {c_in:5.1}%   row failures {c_row:5.1}%   33x33 clusters {c_out:5.1}%");
}

fn conventional_rate(
    rng: &mut StdRng,
    code: CodeKind,
    interleave: usize,
    h: usize,
    w: usize,
) -> f64 {
    let mut ok = 0;
    for _ in 0..TRIALS {
        let shape = ErrorShape::Cluster {
            row: rng.gen_range(0..ROWS - h),
            col: rng.gen_range(0..(64 + code.check_bits(64)) * interleave - w),
            height: h,
            width: w,
        };
        if conventional_covers(ROWS, code, 64, interleave, shape, rng) == CoverageOutcome::Corrected
        {
            ok += 1;
        }
    }
    ok as f64 / TRIALS as f64 * 100.0
}

fn conventional_row_failure_rate(rng: &mut StdRng, code: CodeKind, interleave: usize) -> f64 {
    let mut ok = 0;
    for _ in 0..TRIALS {
        let shape = ErrorShape::Row {
            row: rng.gen_range(0..ROWS),
        };
        if conventional_covers(ROWS, code, 64, interleave, shape, rng) == CoverageOutcome::Corrected
        {
            ok += 1;
        }
    }
    ok as f64 / TRIALS as f64 * 100.0
}

fn twod_rate(rng: &mut StdRng, config: TwoDConfig, h: usize, w: usize) -> f64 {
    let mut ok = 0;
    for _ in 0..TRIALS {
        let shape = ErrorShape::Cluster {
            row: rng.gen_range(0..ROWS - h),
            col: rng.gen_range(0..288 - w),
            height: h,
            width: w,
        };
        if twod_covers(config, shape, rng) == CoverageOutcome::Corrected {
            ok += 1;
        }
    }
    ok as f64 / TRIALS as f64 * 100.0
}

fn twod_row_failure_rate(rng: &mut StdRng, config: TwoDConfig) -> f64 {
    let mut ok = 0;
    for _ in 0..TRIALS {
        let shape = ErrorShape::Row {
            row: rng.gen_range(0..ROWS),
        };
        if twod_covers(config, shape, rng) == CoverageOutcome::Corrected {
            ok += 1;
        }
    }
    ok as f64 / TRIALS as f64 * 100.0
}
