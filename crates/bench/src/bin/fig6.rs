//! Figure 6: cache access breakdown per 100 cycles under full 2D
//! protection — L1 data caches (per core) and the shared L2, for both
//! CMPs, including the extra read-before-write traffic.

use bench::header;
use cachesim::{figure6, SystemConfig, DEFAULT_CYCLES};

fn main() {
    for (name, cfg) in [
        ("fat", SystemConfig::fat_cmp()),
        ("lean", SystemConfig::lean_cmp()),
    ] {
        let rows = figure6(cfg, DEFAULT_CYCLES, 42);

        header(&format!(
            "Figure 6: {name} baseline L1 D-cache accesses / 100 cycles (per core)"
        ));
        println!(
            "  {:<10} {:>10} {:>10} {:>8} {:>10} {:>12} {:>8}",
            "workload", "Read:Inst", "Read:Data", "Write", "Fill/Evict", "Extra-2D", "total"
        );
        for r in &rows {
            println!(
                "  {:<10} {:>10.1} {:>10.1} {:>8.1} {:>10.1} {:>12.1} {:>8.1}",
                r.workload,
                r.l1.read_inst,
                r.l1.read_data,
                r.l1.write,
                r.l1.fill_evict,
                r.l1.extra_2d,
                r.l1.total()
            );
        }

        header(&format!(
            "Figure 6: {name} baseline L2 accesses / 100 cycles (shared cache)"
        ));
        println!(
            "  {:<10} {:>10} {:>8} {:>10} {:>12} {:>8}",
            "workload", "Read:Data", "Write", "Fill/Evict", "Extra-2D", "total"
        );
        for r in &rows {
            println!(
                "  {:<10} {:>10.1} {:>8.1} {:>10.1} {:>12.1} {:>8.1}",
                r.workload,
                r.l2.read_data,
                r.l2.write,
                r.l2.fill_evict,
                r.l2.extra_2d,
                r.l2.total()
            );
        }
    }
}
