//! Detailed-simulator fault-campaign driver: trace-driven multi-core
//! execution with the 2D-protected backing store under the L2, seeded
//! fault injection, and NE/CE/DUE/SDC classification per fault domain.
//!
//! ```text
//! cargo run --release -p bench --bin sim -- --quick
//! cargo run --release -p bench --bin sim -- --rounds 12 --seed 7
//! ```
//!
//! Two artifacts land in `--out-dir` (default `target/sim`):
//!
//! * `sim_report.json` — the classification report
//!   ([`cachesim::SimCampaignOutcome`]): byte-identical across runs with
//!   the same seed and round count (the `sim-smoke` CI lane runs the
//!   quick campaign twice and `cmp`s the files);
//! * `BENCH_sim.json` — timing rows (cycles/ref, MSHR occupancy,
//!   correction-stall fraction; runner-dependent) plus `sim_rates.*`
//!   rows carrying the NE/CE/DUE/SDC counts, which `bench_gate.py`
//!   pins *exactly* against the committed baseline.
//!
//! The process exits nonzero on any SDC under 2D, any unaccounted
//! fault, or any `expect_ce_2d` scenario the 2D scheme failed to
//! correct.

use bench::bench_json::{self, BenchRow};
use cachesim::{run_sim_campaign, SimCampaignConfig, SimCampaignOutcome};
use std::path::PathBuf;

/// Default seed of the pinned CI campaign. Changing it invalidates the
/// committed `BENCH_sim.json` baseline and the recorded reports.
const DEFAULT_SEED: u64 = 0x5EED_51D3_CA4C_0001;

fn bench_rows_json(outcome: &SimCampaignOutcome) -> String {
    let mut rows = Vec::new();
    for report in &outcome.schemes {
        let label = report.scheme.label();
        let t = &report.sim;
        // Timing rows: wall-clock-free but load-dependent proxies; the
        // gate treats `sim.*` as runner-dependent (presence-enforced).
        rows.push(BenchRow {
            name: "sim".to_string(),
            op: format!("cycles_per_ref_{label}"),
            mean_ns: t.cycles_per_ref(),
            iters: t.references,
            allocs_per_op: None,
        });
        rows.push(BenchRow {
            name: "sim".to_string(),
            op: format!("mshr_occupancy_mean_{label}"),
            mean_ns: t.mshr_occupancy_mean(),
            iters: t.cycles,
            allocs_per_op: None,
        });
        rows.push(BenchRow {
            name: "sim".to_string(),
            op: format!("mshr_peak_{label}"),
            mean_ns: t.mshr_peak as f64,
            iters: t.cycles,
            allocs_per_op: None,
        });
        rows.push(BenchRow {
            name: "sim".to_string(),
            op: format!("correction_stall_frac_{label}"),
            mean_ns: t.correction_stall_fraction(),
            iters: t.correction_stall_cycles.max(1),
            allocs_per_op: None,
        });
        // Rate rows: deterministic classification counts, pinned
        // *exactly* by the gate (any drift is a semantic change that
        // demands a reviewed baseline refresh).
        let tally = &report.totals;
        for (op, count) in [
            ("ne", tally.ne),
            ("ce", tally.ce),
            ("due", tally.due),
            ("sdc", tally.sdc),
        ] {
            rows.push(BenchRow {
                name: "sim_rates".to_string(),
                op: format!("{op}_{label}"),
                mean_ns: count as f64,
                iters: tally.total(),
                allocs_per_op: None,
            });
        }
    }
    bench_json::render("quick", &rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rounds: Option<usize> = None;
    let mut seed = DEFAULT_SEED;
    let mut out_dir = PathBuf::from("target/sim");
    let mut it = args.iter();
    let take_value = |it: &mut std::slice::Iter<'_, String>, flag: &str| -> String {
        it.next()
            .filter(|v| !v.starts_with("--"))
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
            .clone()
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => rounds = None,
            "--rounds" => {
                let v = take_value(&mut it, "--rounds");
                rounds = Some(v.parse().unwrap_or_else(|e| {
                    eprintln!("--rounds: {e}");
                    std::process::exit(2);
                }));
            }
            "--seed" => {
                let v = take_value(&mut it, "--seed");
                // Decimal by default; hex only behind an explicit 0x
                // prefix.
                let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                seed = parsed.unwrap_or_else(|e| {
                    eprintln!("--seed (decimal, or hex with 0x prefix): {e}");
                    std::process::exit(2);
                });
            }
            "--out-dir" => out_dir = PathBuf::from(take_value(&mut it, "--out-dir")),
            "--help" | "-h" => {
                println!("usage: sim [--quick] [--rounds N] [--seed S] [--out-dir DIR]");
                println!();
                println!("  --quick    the pinned CI configuration (2 deck rounds; default)");
                println!("  --rounds   longer soak: N rounds through the scenario deck");
                println!("  --seed     campaign seed (hex or decimal; pinned default)");
                println!("  --out-dir  artifact directory (default target/sim)");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let mut cfg = SimCampaignConfig::quick(seed);
    if let Some(r) = rounds {
        cfg.rounds = r;
    }
    println!(
        "sim campaign: seed {seed:#x}, {} round(s) x 7 scenario(s) x 2 scheme(s), window {}",
        cfg.rounds, cfg.window,
    );
    let outcome = run_sim_campaign(cfg);
    for report in &outcome.schemes {
        let t = &report.totals;
        println!(
            "  {:>6}: overhead {:.4}, NE {} / CE {} / DUE {} / SDC {} / unaccounted {}",
            report.scheme.label(),
            report.overhead,
            t.ne,
            t.ce,
            t.due,
            t.sdc,
            t.unaccounted,
        );
        println!(
            "          {:.3} cycles/ref, MSHR mean {:.3} peak {}, correction stall {:.4} ({} cycles), {} writeback(s)",
            report.sim.cycles_per_ref(),
            report.sim.mshr_occupancy_mean(),
            report.sim.mshr_peak,
            report.sim.correction_stall_fraction(),
            report.sim.correction_stall_cycles,
            report.sim.l2_writebacks,
        );
    }
    let r = &outcome.reliability;
    println!(
        "  reliability: DUE retirements 2d {:.2} vs secded {:.2}; yield 2d {:.4} vs secded {:.4}",
        r.due_retirements_2d, r.due_retirements_secded, r.yield_2d, r.yield_secded,
    );

    std::fs::create_dir_all(&out_dir).expect("creating sim output directory");
    let report_path = out_dir.join("sim_report.json");
    std::fs::write(&report_path, outcome.to_json())
        .unwrap_or_else(|e| panic!("writing {}: {e}", report_path.display()));
    println!("wrote {}", report_path.display());
    let bench_path = out_dir.join("BENCH_sim.json");
    std::fs::write(&bench_path, bench_rows_json(&outcome))
        .unwrap_or_else(|e| panic!("writing {}: {e}", bench_path.display()));
    println!("wrote {}", bench_path.display());

    if !outcome.healthy() {
        eprintln!("sim campaign UNHEALTHY: SDC, unaccounted fault, or broken 2D expectation");
        std::process::exit(1);
    }
    println!("sim campaign healthy: every fault accounted, zero SDC under 2D");
}
