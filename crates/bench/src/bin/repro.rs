//! Unified experiment runner: regenerates any (or every) paper artifact
//! by name.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- all
//! cargo run --release -p bench --bin repro -- fig5 fig7
//! cargo run --release -p bench --bin repro -- table1 ablation
//! ```
//!
//! Each experiment is a sibling binary in the same target directory, so
//! `repro` requires the workspace binaries to be built (cargo does this
//! automatically when invoked through `cargo run`... for `repro` itself;
//! run `cargo build --release -p bench` once to build the siblings).

use std::process::Command;

const EXPERIMENTS: &[(&str, &str, &[&str])] = &[
    ("fig1", "code storage + energy overheads (Fig. 1b/1c)", &[]),
    ("fig2", "interleaving energy sweep (Fig. 2b/2c)", &[]),
    ("fig3", "coverage vs overhead, 256x256 array (Fig. 3)", &[]),
    ("fig5", "IPC loss, fat + lean CMPs (Fig. 5a/5b)", &[]),
    ("fig6", "cache access mix per 100 cycles (Fig. 6)", &[]),
    (
        "fig7",
        "area/latency/power vs conventional (Fig. 7a/7b)",
        &[],
    ),
    ("fig8", "yield + field reliability (Fig. 8a/8b)", &[]),
    (
        "table1",
        "simulated system parameters (Table 1)",
        &["--print-config"],
    ),
    ("ablation", "design-choice ablation sweeps", &[]),
    (
        "bench",
        "mean ns/op per codec, engine op, and service thread-count -> BENCH_*.json",
        &[],
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    let selected: Vec<&(&str, &str, &[&str])> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        let mut picked = Vec::new();
        for arg in &args {
            match EXPERIMENTS.iter().find(|(name, _, _)| name == arg) {
                Some(e) => picked.push(e),
                None => {
                    eprintln!("unknown experiment '{arg}'");
                    print_usage();
                    std::process::exit(2);
                }
            }
        }
        picked
    };
    let mut failures = 0;
    for (name, description, extra) in selected {
        println!("\n######## {name}: {description} ########");
        let bin = match *name {
            "table1" => "fig5",
            "bench" => "perf",
            other => other,
        };
        let mut path = std::env::current_exe().expect("own executable path");
        path.set_file_name(bin);
        match Command::new(&path).args(*extra).status() {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures += 1;
            }
            Err(e) => {
                eprintln!("failed to launch {} ({}): {e}", name, path.display());
                eprintln!("hint: build the siblings with `cargo build --release -p bench`");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

fn print_usage() {
    println!("usage: repro [all | <experiment>...]");
    println!("experiments:");
    for (name, description, _) in EXPERIMENTS {
        println!("  {name:<10} {description}");
    }
}
