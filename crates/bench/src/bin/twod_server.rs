//! Standalone `twod-server`: serves a 2D-protected banked cache over
//! TCP until killed.
//!
//! ```text
//! cargo run --release -p bench --bin twod_server -- --addr 127.0.0.1:7401
//! cargo run --release -p bench --bin twod_server -- --banks 8 --no-scrubber
//! ```
//!
//! Prints the bound address (useful with port `0`) and, every few
//! seconds, a one-line stats heartbeat. The protocol, backpressure, and
//! degraded-mode contracts are documented in the README's "Network
//! service" section.

use cachesim::net::{CacheServer, ServerConfig};
use std::sync::Arc;
use std::time::Duration;
use twod_cache::{CacheConfig, ConcurrentBankedCache, Scrubber, ScrubberConfig, TwoDScheme};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7401".to_string();
    let mut banks = 8usize;
    let mut sets = 64usize;
    let mut ways = 4usize;
    let mut scrubber_on = true;
    let mut heartbeat_secs = 5u64;
    let mut it = args.iter();
    let take_value = |it: &mut std::slice::Iter<'_, String>, flag: &str| -> String {
        it.next()
            .filter(|v| !v.starts_with("--"))
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
            .clone()
    };
    let parse_usize = |v: String, flag: &str| -> usize {
        v.parse().unwrap_or_else(|e| {
            eprintln!("{flag}: {e}");
            std::process::exit(2);
        })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = take_value(&mut it, "--addr"),
            "--banks" => banks = parse_usize(take_value(&mut it, "--banks"), "--banks"),
            "--sets" => sets = parse_usize(take_value(&mut it, "--sets"), "--sets"),
            "--ways" => ways = parse_usize(take_value(&mut it, "--ways"), "--ways"),
            "--no-scrubber" => scrubber_on = false,
            "--heartbeat-secs" => {
                heartbeat_secs = take_value(&mut it, "--heartbeat-secs")
                    .parse()
                    .unwrap_or_else(|e| {
                        eprintln!("--heartbeat-secs: {e}");
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                println!(
                    "usage: twod_server [--addr A] [--banks N] [--sets N] [--ways N] \
                     [--no-scrubber] [--heartbeat-secs N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let config = CacheConfig {
        sets,
        ways,
        data_scheme: TwoDScheme::l1_paper(),
        tag_scheme: TwoDScheme {
            data_bits: 50,
            ..TwoDScheme::l1_paper()
        },
    };
    let cache = Arc::new(ConcurrentBankedCache::new(config, banks));
    let scrubber = scrubber_on.then(|| {
        Arc::new(Scrubber::spawn(
            Arc::clone(&cache),
            ScrubberConfig::default(),
        ))
    });
    let server = CacheServer::spawn(
        Arc::clone(&cache),
        scrubber.clone(),
        &addr,
        ServerConfig::default(),
    )
    .unwrap_or_else(|e| {
        eprintln!("twod-server: bind {addr}: {e}");
        std::process::exit(1);
    });
    println!(
        "twod-server: listening on {} ({} bank(s), {}x{} per bank, scrubber {})",
        server.local_addr(),
        banks,
        sets,
        ways,
        if scrubber_on { "on" } else { "off" },
    );
    loop {
        std::thread::sleep(Duration::from_secs(heartbeat_secs.max(1)));
        let s = server.stats();
        let h = server.health();
        println!(
            "twod-server: {} req ({} busy, {} degraded, {} fault, {} bad), \
             {} conn accepted / {} reaped, {} bank(s) degraded",
            s.requests,
            s.busy_sheds,
            s.degraded_sheds,
            s.faults,
            s.bad_requests,
            s.connections_accepted,
            s.connections_reaped,
            h.degraded_banks(),
        );
    }
}
