//! Network load generator: drives a `twod-server` over loopback (or an
//! external `--addr`) with multi-connection Zipf traffic and emits
//! `BENCH_net.json` with throughput and p50/p99/p999 tail latency.
//!
//! ```text
//! cargo run --release -p bench --bin net_load -- --quick
//! cargo run --release -p bench --bin net_load -- --out-dir target/bench-gate
//! cargo run --release -p bench --bin net_load -- --addr 10.0.0.5:7401
//! ```
//!
//! Without `--addr` the binary spawns its own in-process server on
//! `127.0.0.1:0` — the traffic still crosses real loopback TCP sockets,
//! which is what the `net-smoke` CI lane runs. The process exits
//! nonzero on any wrong read (read-your-writes violation over the
//! wire) or if no requests complete — the lost-write/panic gate.

use bench::bench_json::{self, BenchRow};
use cachesim::net::{run_load, CacheServer, LoadConfig, LoadReport, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use twod_cache::{CacheConfig, ConcurrentBankedCache, Scrubber, ScrubberConfig, TwoDScheme};

/// Pinned default seed (same refresh policy as the campaign seed).
const DEFAULT_SEED: u64 = 0x5EED_0000_0000_7401;

fn bench_rows_json(mode: &str, r: &LoadReport) -> String {
    let rows: Vec<BenchRow> = [
        // Mean ns per request — the throughput row (1e9 / mean_ns =
        // requests/sec); tail rows carry the percentile latencies.
        ("ops", r.mean_ns, r.ops),
        ("p50", r.p50_ns as f64, r.ops),
        ("p99", r.p99_ns as f64, r.ops),
        ("p999", r.p999_ns as f64, r.ops),
    ]
    .into_iter()
    .map(|(op, mean_ns, iters)| BenchRow {
        name: "net".to_string(),
        op: op.to_string(),
        mean_ns,
        iters,
        allocs_per_op: None,
    })
    .collect();
    bench_json::render(mode, &rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed = DEFAULT_SEED;
    let mut addr: Option<String> = None;
    let mut out_dir = PathBuf::from("target/net");
    let mut banks = 8usize;
    let mut it = args.iter();
    let take_value = |it: &mut std::slice::Iter<'_, String>, flag: &str| -> String {
        it.next()
            .filter(|v| !v.starts_with("--"))
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
            .clone()
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                let v = take_value(&mut it, "--seed");
                let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                seed = parsed.unwrap_or_else(|e| {
                    eprintln!("--seed (decimal, or hex with 0x prefix): {e}");
                    std::process::exit(2);
                });
            }
            "--addr" => addr = Some(take_value(&mut it, "--addr")),
            "--out-dir" => out_dir = PathBuf::from(take_value(&mut it, "--out-dir")),
            "--banks" => {
                banks = take_value(&mut it, "--banks").parse().unwrap_or_else(|e| {
                    eprintln!("--banks: {e}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: net_load [--quick] [--seed S] [--addr A] [--out-dir DIR] [--banks N]"
                );
                println!();
                println!("  --quick    CI smoke sizing (small streams, seconds-long)");
                println!("  --addr     target an external server instead of spawning one");
                println!("  --out-dir  where BENCH_net.json lands (default target/net)");
                println!("  --banks    banks of the spawned server (ignored with --addr)");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let cfg = if quick {
        LoadConfig::quick(seed)
    } else {
        LoadConfig::full(seed)
    };

    // Spawn an in-process loopback server unless an external target was
    // given. The scrubber runs so HEALTH reflects a live system.
    let spawned: Option<CacheServer> = if addr.is_none() {
        let config = CacheConfig {
            sets: 64,
            ways: 4,
            data_scheme: TwoDScheme::l1_paper(),
            tag_scheme: TwoDScheme {
                data_bits: 50,
                ..TwoDScheme::l1_paper()
            },
        };
        let cache = Arc::new(ConcurrentBankedCache::new(config, banks));
        let scrubber = Arc::new(Scrubber::spawn(
            Arc::clone(&cache),
            ScrubberConfig::default(),
        ));
        Some(
            CacheServer::spawn(
                cache,
                Some(scrubber),
                "127.0.0.1:0",
                ServerConfig::default(),
            )
            .unwrap_or_else(|e| {
                eprintln!("net_load: spawn loopback server: {e}");
                std::process::exit(1);
            }),
        )
    } else {
        None
    };
    let target: SocketAddr = match (&spawned, &addr) {
        (Some(server), _) => server.local_addr(),
        (None, Some(a)) => a.parse().unwrap_or_else(|e| {
            eprintln!("--addr '{a}': {e}");
            std::process::exit(2);
        }),
        (None, None) => unreachable!("either spawned or --addr"),
    };

    println!(
        "net_load: {} connection(s) x {} ops, pipeline depth {}, {} key rank(s), seed {seed:#x} -> {target}",
        cfg.connections, cfg.ops_per_connection, cfg.pipeline_depth, cfg.key_ranks,
    );
    let report = run_load(target, &cfg).unwrap_or_else(|e| {
        eprintln!("net_load: {e}");
        std::process::exit(1);
    });
    println!(
        "  {} ops in {:.2} s -> {:.0} req/s ({:.0} ns/req mean)",
        report.ops,
        report.wall_ns as f64 / 1e9,
        report.throughput_ops_per_sec,
        report.mean_ns,
    );
    println!(
        "  latency p50 {} ns, p99 {} ns, p999 {} ns, max {} ns",
        report.p50_ns, report.p99_ns, report.p999_ns, report.max_ns,
    );
    println!(
        "  {} acked write(s), {} value(s), {} verified read(s), {} wrong read(s)",
        report.acked_writes, report.values, report.verified_reads, report.wrong_reads,
    );
    println!(
        "  sheds: {} busy, {} degraded; {} fault(s), {} bad request(s), \
         {} reconnect(s), {} transport error(s)",
        report.busy,
        report.degraded,
        report.faults,
        report.bad_requests,
        report.reconnects,
        report.transport_errors,
    );
    if let Some(server) = &spawned {
        let s = server.stats();
        println!(
            "  server: {} req, {} conn accepted, {} protocol error(s)",
            s.requests, s.connections_accepted, s.protocol_errors,
        );
    }

    std::fs::create_dir_all(&out_dir).expect("creating net output directory");
    let bench_path = out_dir.join("BENCH_net.json");
    let mode = if quick { "quick" } else { "full" };
    std::fs::write(&bench_path, bench_rows_json(mode, &report))
        .unwrap_or_else(|e| panic!("writing {}: {e}", bench_path.display()));
    println!("wrote {}", bench_path.display());

    if let Some(server) = spawned {
        server.shutdown();
    }

    if report.ops == 0 {
        eprintln!("net_load FAILED: no requests completed");
        std::process::exit(1);
    }
    if report.wrong_reads > 0 {
        eprintln!(
            "net_load FAILED: {} wrong read(s) — read-your-writes violated over the wire",
            report.wrong_reads,
        );
        std::process::exit(1);
    }
    println!(
        "net_load healthy: zero wrong reads over {} verified",
        report.verified_reads
    );
}
