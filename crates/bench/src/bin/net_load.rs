//! Network load generator: drives a `twod-server` over loopback (or an
//! external `--addr`) with multi-connection Zipf traffic and emits
//! `BENCH_net.json` with throughput and p50/p99/p999 tail latency.
//!
//! ```text
//! cargo run --release -p bench --bin net_load -- --quick
//! cargo run --release -p bench --bin net_load -- --out-dir target/bench-gate
//! cargo run --release -p bench --bin net_load -- --addr 10.0.0.5:7401
//! ```
//!
//! Without `--addr` the binary spawns its own in-process server on
//! `127.0.0.1:0` — the traffic still crosses real loopback TCP sockets,
//! which is what the `net-smoke` CI lane runs. The process exits
//! nonzero on any wrong read (read-your-writes violation over the
//! wire) or if no requests complete — the lost-write/panic gate.
//!
//! # Batched rows (`net_batch.*`)
//!
//! Alongside the legacy single-server `net.*` rows, the binary emits a
//! `net_batch` family:
//!
//! * `ops`/`p50`/`p99`/`p999` — a 2-shard loopback run through
//!   [`ShardedClient`](cachesim::net::ShardedClient)-backed
//!   `run_load_sharded`. **Caveat:** clients, both servers, and the
//!   harness share one CPU on CI loopback, so these are
//!   schedule-dependent smoke numbers (`runner_dependent` in the
//!   gate), not isolated-machine throughput.
//! * `locks_per_op` / `allocs_per_op` — *deterministic* amortization
//!   counters from an in-process harness that feeds pre-encoded
//!   pipeline-depth-16 Zipf(1.1) frame batches straight into
//!   [`CacheServer::execute_frames`] (no sockets, no kernel
//!   nondeterminism). The value rides in the `mean_ns` column (these
//!   rows are ratios, not latencies — same convention as
//!   `scrub.throughput_gbps`). Built with `--features count-allocs`,
//!   the `allocs_per_op` row also fills the `allocs_per_op` field,
//!   which the gate hard-pins at 0: the batched clean GET/SET serve
//!   path must never touch the allocator.

use bench::bench_json::{self, BenchRow};
use cachesim::net::{
    protocol, run_load, run_load_sharded, BatchArena, CacheServer, LoadConfig, LoadReport, Request,
    ServerConfig,
};
use cachesim::ZipfSampler;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use twod_cache::{CacheConfig, ConcurrentBankedCache, Scrubber, ScrubberConfig, TwoDScheme};

/// With the `count-allocs` feature this binary runs under the counting
/// allocator, so the `net_batch.allocs_per_op` row carries a real
/// measurement for the gate's zero-allocation pin.
#[cfg(feature = "count-allocs")]
#[global_allocator]
static ALLOC: bench::alloc_counter::CountingAlloc = bench::alloc_counter::CountingAlloc::new();

/// Pinned default seed (same refresh policy as the campaign seed).
const DEFAULT_SEED: u64 = 0x5EED_0000_0000_7401;

/// Deterministic amortization counters from the in-process batch
/// harness.
struct BatchMetrics {
    locks_per_op: f64,
    allocs_per_op: Option<f64>,
    ops: u64,
}

fn bench_rows_json(
    mode: &str,
    r: &LoadReport,
    sharded: &LoadReport,
    batch: &BatchMetrics,
) -> String {
    let mut rows: Vec<BenchRow> = [
        // Mean ns per request — the throughput row (1e9 / mean_ns =
        // requests/sec); tail rows carry the percentile latencies.
        ("ops", r.mean_ns, r.ops),
        ("p50", r.p50_ns as f64, r.ops),
        ("p99", r.p99_ns as f64, r.ops),
        ("p999", r.p999_ns as f64, r.ops),
    ]
    .into_iter()
    .map(|(op, mean_ns, iters)| BenchRow {
        name: "net".to_string(),
        op: op.to_string(),
        mean_ns,
        iters,
        allocs_per_op: None,
    })
    .collect();
    rows.extend(
        [
            ("ops", sharded.mean_ns, sharded.ops),
            ("p50", sharded.p50_ns as f64, sharded.ops),
            ("p99", sharded.p99_ns as f64, sharded.ops),
            ("p999", sharded.p999_ns as f64, sharded.ops),
        ]
        .into_iter()
        .map(|(op, mean_ns, iters)| BenchRow {
            name: "net_batch".to_string(),
            op: op.to_string(),
            mean_ns,
            iters,
            allocs_per_op: None,
        }),
    );
    // Ratio rows: value in the mean_ns column by bench-v1 convention.
    rows.push(BenchRow {
        name: "net_batch".to_string(),
        op: "locks_per_op".to_string(),
        mean_ns: batch.locks_per_op,
        iters: batch.ops,
        allocs_per_op: None,
    });
    rows.push(BenchRow {
        name: "net_batch".to_string(),
        op: "allocs_per_op".to_string(),
        mean_ns: batch.allocs_per_op.unwrap_or(0.0),
        iters: batch.ops,
        allocs_per_op: batch.allocs_per_op,
    });
    bench_json::render(mode, &rows)
}

/// Runs the deterministic in-process batch harness: pre-encoded
/// pipeline-depth-16 Zipf(1.1) clean GET/SET frame batches through
/// [`CacheServer::execute_frames`], measuring bank-lock acquisitions
/// per request (exact, via the cache's amortization ledger) and — under
/// `count-allocs` — heap allocations per request (min of 3 windows, so
/// a stray harness-thread allocation cannot mask a regression into the
/// steady state).
fn run_batch_harness(seed: u64) -> BatchMetrics {
    const DEPTH: usize = 16;
    const BATCHES: usize = 256;
    const WRITE_FRACTION: f64 = 0.1;
    // Keys draw from a Zipf(1.1) head that mostly fits the cache
    // (4 banks x 256 sets x 4 ways = 4096 lines for 8192 ranks): the
    // counters characterize lock amortization on the resident serve
    // path, not the miss-fill path (a miss legitimately takes the bank
    // lock to fill, which would swamp the signal).
    const KEY_RANKS: usize = 8192;
    let config = CacheConfig {
        sets: 256,
        ways: 4,
        data_scheme: TwoDScheme::l1_paper(),
        tag_scheme: TwoDScheme {
            data_bits: 50,
            ..TwoDScheme::l1_paper()
        },
    };
    let cache = Arc::new(ConcurrentBankedCache::new(config, 4));
    let server = CacheServer::spawn(
        Arc::clone(&cache),
        None,
        "127.0.0.1:0",
        ServerConfig {
            // The monitor thread must stay asleep during measurement
            // windows: its periodic poll is background noise the
            // deterministic counters exist to exclude.
            monitor_interval: Duration::from_secs(3600),
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("net_load: spawn batch-harness server: {e}");
        std::process::exit(1);
    });

    // Pre-encode every batch: frame construction allocates, the serve
    // path under measurement must not.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C_4A11);
    let sampler = ZipfSampler::new(KEY_RANKS, 1.1);
    let mut id = 1u32;
    let batches: Vec<Vec<u8>> = (0..BATCHES)
        .map(|_| {
            let mut buf = Vec::new();
            for _ in 0..DEPTH {
                let key = sampler.sample(&mut rng) as u64;
                let req = if rng.gen_bool(WRITE_FRACTION) {
                    Request::Set {
                        key,
                        value: rng.gen(),
                    }
                } else {
                    Request::Get { key }
                };
                protocol::encode_request(id, &req, &mut buf);
                id = id.wrapping_add(1);
            }
            buf
        })
        .collect();

    let mut arena = BatchArena::new();
    let mut out = Vec::new();
    let ops_per_window = (BATCHES * DEPTH) as u64;
    let run_window = |arena: &mut BatchArena, out: &mut Vec<u8>| {
        for frames in &batches {
            out.clear();
            server
                .execute_frames(frames, out, arena)
                .expect("pre-encoded frames decode");
        }
    };
    // Warmup: sizes the arena, the response buffer, and any first-touch
    // engine scratch, so the measured windows see the steady state.
    run_window(&mut arena, &mut out);

    let locks_before = cache.lock_acquisitions();
    run_window(&mut arena, &mut out);
    let locks_per_op = (cache.lock_acquisitions() - locks_before) as f64 / ops_per_window as f64;

    let allocs_per_op = if bench::alloc_counter::counting_feature_enabled() {
        let mut min_allocs = u64::MAX;
        for _ in 0..3 {
            let ((), allocs) = bench::alloc_counter::count(|| run_window(&mut arena, &mut out));
            min_allocs = min_allocs.min(allocs);
            if allocs == 0 {
                break;
            }
        }
        Some(min_allocs as f64 / ops_per_window as f64)
    } else {
        None
    };
    server.shutdown();
    BatchMetrics {
        locks_per_op,
        allocs_per_op,
        ops: ops_per_window,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed = DEFAULT_SEED;
    let mut addr: Option<String> = None;
    let mut out_dir = PathBuf::from("target/net");
    let mut banks = 8usize;
    let mut it = args.iter();
    let take_value = |it: &mut std::slice::Iter<'_, String>, flag: &str| -> String {
        it.next()
            .filter(|v| !v.starts_with("--"))
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
            .clone()
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                let v = take_value(&mut it, "--seed");
                let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                seed = parsed.unwrap_or_else(|e| {
                    eprintln!("--seed (decimal, or hex with 0x prefix): {e}");
                    std::process::exit(2);
                });
            }
            "--addr" => addr = Some(take_value(&mut it, "--addr")),
            "--out-dir" => out_dir = PathBuf::from(take_value(&mut it, "--out-dir")),
            "--banks" => {
                banks = take_value(&mut it, "--banks").parse().unwrap_or_else(|e| {
                    eprintln!("--banks: {e}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: net_load [--quick] [--seed S] [--addr A] [--out-dir DIR] [--banks N]"
                );
                println!();
                println!("  --quick    CI smoke sizing (small streams, seconds-long)");
                println!("  --addr     target an external server instead of spawning one");
                println!("  --out-dir  where BENCH_net.json lands (default target/net)");
                println!("  --banks    banks of the spawned server (ignored with --addr)");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let cfg = if quick {
        LoadConfig::quick(seed)
    } else {
        LoadConfig::full(seed)
    };

    // Spawn an in-process loopback server unless an external target was
    // given. The scrubber runs so HEALTH reflects a live system.
    let spawned: Option<CacheServer> = if addr.is_none() {
        let config = CacheConfig {
            sets: 64,
            ways: 4,
            data_scheme: TwoDScheme::l1_paper(),
            tag_scheme: TwoDScheme {
                data_bits: 50,
                ..TwoDScheme::l1_paper()
            },
        };
        let cache = Arc::new(ConcurrentBankedCache::new(config, banks));
        let scrubber = Arc::new(Scrubber::spawn(
            Arc::clone(&cache),
            ScrubberConfig::default(),
        ));
        Some(
            CacheServer::spawn(
                cache,
                Some(scrubber),
                "127.0.0.1:0",
                ServerConfig::default(),
            )
            .unwrap_or_else(|e| {
                eprintln!("net_load: spawn loopback server: {e}");
                std::process::exit(1);
            }),
        )
    } else {
        None
    };
    let target: SocketAddr = match (&spawned, &addr) {
        (Some(server), _) => server.local_addr(),
        (None, Some(a)) => a.parse().unwrap_or_else(|e| {
            eprintln!("--addr '{a}': {e}");
            std::process::exit(2);
        }),
        (None, None) => unreachable!("either spawned or --addr"),
    };

    println!(
        "net_load: {} connection(s) x {} ops, pipeline depth {}, {} key rank(s), seed {seed:#x} -> {target}",
        cfg.connections, cfg.ops_per_connection, cfg.pipeline_depth, cfg.key_ranks,
    );
    let report = run_load(target, &cfg).unwrap_or_else(|e| {
        eprintln!("net_load: {e}");
        std::process::exit(1);
    });
    println!(
        "  {} ops in {:.2} s -> {:.0} req/s ({:.0} ns/req mean)",
        report.ops,
        report.wall_ns as f64 / 1e9,
        report.throughput_ops_per_sec,
        report.mean_ns,
    );
    println!(
        "  latency p50 {} ns, p99 {} ns, p999 {} ns, max {} ns",
        report.p50_ns, report.p99_ns, report.p999_ns, report.max_ns,
    );
    println!(
        "  {} acked write(s), {} value(s), {} verified read(s), {} wrong read(s)",
        report.acked_writes, report.values, report.verified_reads, report.wrong_reads,
    );
    println!(
        "  sheds: {} busy, {} degraded; {} fault(s), {} bad request(s), \
         {} reconnect(s), {} transport error(s)",
        report.busy,
        report.degraded,
        report.faults,
        report.bad_requests,
        report.reconnects,
        report.transport_errors,
    );
    if let Some(server) = &spawned {
        let s = server.stats();
        println!(
            "  server: {} req, {} conn accepted, {} protocol error(s), {} batch(es)",
            s.requests, s.connections_accepted, s.protocol_errors, s.batches,
        );
    }
    if let Some(server) = spawned {
        server.shutdown();
    }

    // Phase 2: the batched/sharded rows. Two fresh loopback shards
    // (always in-process, even with --addr: these rows characterize the
    // sharded client, not the external target).
    let shard_servers: Vec<CacheServer> = (0..2)
        .map(|_| {
            let config = CacheConfig {
                sets: 64,
                ways: 4,
                data_scheme: TwoDScheme::l1_paper(),
                tag_scheme: TwoDScheme {
                    data_bits: 50,
                    ..TwoDScheme::l1_paper()
                },
            };
            let cache = Arc::new(ConcurrentBankedCache::new(config, banks));
            CacheServer::spawn(cache, None, "127.0.0.1:0", ServerConfig::default()).unwrap_or_else(
                |e| {
                    eprintln!("net_load: spawn shard server: {e}");
                    std::process::exit(1);
                },
            )
        })
        .collect();
    let shard_addrs: Vec<SocketAddr> = shard_servers.iter().map(|s| s.local_addr()).collect();
    println!(
        "net_load sharded: {} connection(s) x {} ops over {} shard(s), pipeline depth {}",
        cfg.connections,
        cfg.ops_per_connection,
        shard_addrs.len(),
        cfg.pipeline_depth,
    );
    let sharded = run_load_sharded(&shard_addrs, &cfg).unwrap_or_else(|e| {
        eprintln!("net_load sharded: {e}");
        std::process::exit(1);
    });
    println!(
        "  {} ops -> {:.0} req/s, p50 {} ns, p99 {} ns, p999 {} ns, {} wrong read(s)",
        sharded.ops,
        sharded.throughput_ops_per_sec,
        sharded.p50_ns,
        sharded.p99_ns,
        sharded.p999_ns,
        sharded.wrong_reads,
    );
    for server in shard_servers {
        server.shutdown();
    }

    // Phase 3: deterministic amortization counters (no sockets).
    let batch = run_batch_harness(seed);
    match batch.allocs_per_op {
        Some(a) => println!(
            "  batch harness: {:.4} bank lock(s)/op, {:.4} alloc(s)/op over {} ops",
            batch.locks_per_op, a, batch.ops,
        ),
        None => println!(
            "  batch harness: {:.4} bank lock(s)/op over {} ops \
             (allocs/op needs --features count-allocs)",
            batch.locks_per_op, batch.ops,
        ),
    }

    std::fs::create_dir_all(&out_dir).expect("creating net output directory");
    let bench_path = out_dir.join("BENCH_net.json");
    let mode = if quick { "quick" } else { "full" };
    std::fs::write(
        &bench_path,
        bench_rows_json(mode, &report, &sharded, &batch),
    )
    .unwrap_or_else(|e| panic!("writing {}: {e}", bench_path.display()));
    println!("wrote {}", bench_path.display());

    if report.ops == 0 || sharded.ops == 0 {
        eprintln!("net_load FAILED: no requests completed");
        std::process::exit(1);
    }
    if report.wrong_reads > 0 || sharded.wrong_reads > 0 {
        eprintln!(
            "net_load FAILED: {} wrong read(s) — read-your-writes violated over the wire",
            report.wrong_reads + sharded.wrong_reads,
        );
        std::process::exit(1);
    }
    if batch.locks_per_op >= 0.2 {
        eprintln!(
            "net_load FAILED: {:.4} bank lock(s)/op on the batched path (budget < 0.2)",
            batch.locks_per_op,
        );
        std::process::exit(1);
    }
    if let Some(a) = batch.allocs_per_op {
        if a > 0.0 {
            eprintln!(
                "net_load FAILED: {a:.4} alloc(s)/op on the clean batched serve path (budget = 0)",
            );
            std::process::exit(1);
        }
    }
    println!(
        "net_load healthy: zero wrong reads over {} verified ({} sharded ops)",
        report.verified_reads, sharded.ops,
    );
}
