//! Figure 7: area, coding latency, and dynamic power of 2D coding vs the
//! conventional 32-bit-coverage schemes, normalized to SECDED+Intv2, for
//! the 64kB L1 and 4MB L2 design points.

use bench::header;
use cachegeom::{CacheSpec, CostModel};
use twod_cache::analysis::{figure7, ComparedScheme};

fn main() {
    let model = CostModel::default();
    for (title, spec, set) in [
        (
            "Figure 7(a): 64kB L1 data cache (normalized to SECDED+Intv2)",
            CacheSpec::l1_64kb(),
            ComparedScheme::figure7_l1_set(),
        ),
        (
            "Figure 7(b): 4MB L2 cache (normalized to SECDED+Intv2)",
            CacheSpec::l2_4mb(),
            ComparedScheme::figure7_l2_set(),
        ),
    ] {
        header(title);
        println!(
            "  {:<28} {:>10} {:>14} {:>14}",
            "scheme", "code area", "coding latency", "dynamic power"
        );
        for r in figure7(&model, &spec, &set) {
            println!(
                "  {:<28} {:>9.0}% {:>13.0}% {:>13.0}%",
                r.label,
                r.code_area * 100.0,
                r.coding_latency * 100.0,
                r.dynamic_power * 100.0
            );
        }
    }
}
