//! Ablation sweeps over the 2D scheme's design parameters (DESIGN.md §7):
//!
//! * vertical interleave factor V — coverage height vs storage;
//! * horizontal code / interleave — detection width vs power;
//! * scrub interval — error-accumulation exposure.

use bench::header;
use ecc::CodeKind;
use memarray::coverage::{twod_covers, CoverageOutcome};
use memarray::scrub::{accumulation_defeat_probability, exposure_window, CheckPolicy};
use memarray::{ErrorShape, TwoDConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 128;
const TRIALS: usize = 8;

fn main() {
    let mut rng = StdRng::seed_from_u64(77);

    header("Ablation A: vertical interleave factor V (EDC8+Intv4 horizontal)");
    println!(
        "  {:<6} {:>16} {:>18} {:>22}",
        "V", "storage ovh", "VxV cluster", "(V+1)x(V+1) cluster"
    );
    for v in [8usize, 16, 32, 64] {
        let config = TwoDConfig {
            rows: ROWS,
            horizontal: CodeKind::Edc(8),
            data_bits: 64,
            interleave: 4,
            vertical_rows: v,
        };
        let overhead = 8.0 / 64.0 + v as f64 / ROWS as f64 * (1.0 + 8.0 / 64.0);
        let inside = cluster_rate(&mut rng, config, v.min(32), 32);
        let outside = cluster_rate(&mut rng, config, v + 1, 33);
        println!(
            "  {v:<6} {:>15.1}% {:>17.0}% {:>21.0}%",
            overhead * 100.0,
            inside,
            outside
        );
    }

    header("Ablation B: horizontal code choice (V = 32)");
    println!(
        "  {:<22} {:>12} {:>16} {:>18}",
        "horizontal", "check bits", "row burst detect", "inline correct"
    );
    for (code, interleave, data_bits) in [
        (CodeKind::Edc(8), 4usize, 64usize),
        (CodeKind::Edc(16), 2, 256),
        (CodeKind::Secded, 2, 64),
    ] {
        let check = code.check_bits(data_bits);
        let burst = code.burst_detectable(data_bits) * interleave;
        let inline = code.correctable() > 0;
        println!(
            "  {:<22} {check:>12} {burst:>14}bit {inline:>18}",
            format!("{code}+Intv{interleave}/{data_bits}b")
        );
    }

    header("Ablation C: scrub interval vs error accumulation");
    println!("  (per-word error rate 1e-4/unit; SECDED defeated by the 2nd arrival)");
    println!(
        "  {:<26} {:>14} {:>18}",
        "policy", "exposure", "defeat probability"
    );
    for policy in [
        CheckPolicy::OnAccess,
        CheckPolicy::PeriodicScrub { interval: 100 },
        CheckPolicy::PeriodicScrub { interval: 1_000 },
        CheckPolicy::PeriodicScrub { interval: 10_000 },
    ] {
        let window = exposure_window(policy, 10.0);
        let p = accumulation_defeat_probability(1e-4, window);
        let label = match policy {
            CheckPolicy::OnAccess => "on-access check".to_string(),
            CheckPolicy::PeriodicScrub { interval } => format!("scrub every {interval}"),
        };
        println!("  {label:<26} {window:>14.0} {p:>17.5}");
    }
}

fn cluster_rate(rng: &mut StdRng, config: TwoDConfig, h: usize, w: usize) -> f64 {
    let h = h.min(ROWS);
    let cols = (64 + CodeKind::Edc(8).check_bits(64)) * config.interleave;
    let w = w.min(cols);
    let mut ok = 0;
    for _ in 0..TRIALS {
        let shape = ErrorShape::Cluster {
            row: rng.gen_range(0..=ROWS - h),
            col: rng.gen_range(0..=cols - w),
            height: h,
            width: w,
        };
        if twod_covers(config, shape, rng) == CoverageOutcome::Corrected {
            ok += 1;
        }
    }
    ok as f64 / TRIALS as f64 * 100.0
}
