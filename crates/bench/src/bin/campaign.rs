//! Chaos-campaign driver: runs the seeded fault campaign against the
//! self-healing cache service and emits machine-readable reports.
//!
//! ```text
//! cargo run --release -p bench --bin campaign -- --quick
//! cargo run --release -p bench --bin campaign -- --budget-secs 900
//! cargo run --release -p bench --bin campaign -- --quick --seed 7 --out-dir target/c
//! ```
//!
//! Two artifacts land in `--out-dir` (default `target/campaign`):
//!
//! * `campaign_report.json` — the deterministic outcome
//!   ([`cachesim::CampaignOutcome`]): byte-identical across runs with
//!   the same seed and round count, so CI checks determinism by running
//!   the quick campaign twice and comparing the files;
//! * `BENCH_scrub.json` — the campaign's wall-clock figures (scrub
//!   throughput, mean time-to-repair, foreground p99 interference) in
//!   the bench-v1 row schema. This copy is a soak artifact for humans
//!   and dashboards; the *gated* `BENCH_scrub.json` baseline at the
//!   repo root is emitted by the `perf` binary, which includes these
//!   same campaign rows plus the scrub micro-benchmarks.
//!
//! The process exits nonzero if the campaign ends unhealthy (any lost
//! write, unrecoverable word, or uncorrectable event) — the soak lane's
//! actual gate.

use bench::bench_json::{self, BenchRow};
use cachesim::net::{run_net_chaos, run_shard_chaos, NetChaosConfig, ShardChaosConfig};
use cachesim::{run_campaign, CampaignConfig, CampaignReport};
use std::path::PathBuf;
use std::time::Duration;

/// Default seed of the pinned CI campaigns. Changing it invalidates
/// recorded campaign reports, so treat it like a baseline refresh.
const DEFAULT_SEED: u64 = 0x5EED_CA4C_ADE0_0001;

fn bench_rows_json(report: &CampaignReport) -> String {
    let t = report.timing;
    let rows: Vec<BenchRow> = [
        ("row_scan", t.scrub_row_scan_ns, t.scrub_clean_rows),
        ("campaign_mttr", t.mttr_mean_ns, t.mttr_samples),
        (
            "campaign_p99",
            t.foreground_p99_ns,
            report.outcome.total_reads + report.outcome.total_writes,
        ),
    ]
    .into_iter()
    .map(|(op, mean_ns, iters)| BenchRow {
        name: "scrub".to_string(),
        op: op.to_string(),
        mean_ns,
        iters,
        allocs_per_op: None,
    })
    .collect();
    bench_json::render("campaign", &rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut net = false;
    let mut budget_secs: Option<u64> = None;
    let mut seed = DEFAULT_SEED;
    let mut out_dir = PathBuf::from("target/campaign");
    let mut scrubber = true;
    let mut it = args.iter();
    let take_value = |it: &mut std::slice::Iter<'_, String>, flag: &str| -> String {
        it.next()
            .filter(|v| !v.starts_with("--"))
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
            .clone()
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--net" => net = true,
            "--budget-secs" => {
                let v = take_value(&mut it, "--budget-secs");
                budget_secs = Some(v.parse().unwrap_or_else(|e| {
                    eprintln!("--budget-secs: {e}");
                    std::process::exit(2);
                }));
            }
            "--seed" => {
                let v = take_value(&mut it, "--seed");
                // Decimal by default; hex only behind an explicit 0x
                // prefix — otherwise every digits-only decimal seed
                // would silently parse as hex.
                let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                seed = parsed.unwrap_or_else(|e| {
                    eprintln!("--seed (decimal, or hex with 0x prefix): {e}");
                    std::process::exit(2);
                });
            }
            "--out-dir" => out_dir = PathBuf::from(take_value(&mut it, "--out-dir")),
            "--no-scrubber" => scrubber = false,
            "--help" | "-h" => {
                println!(
                    "usage: campaign [--quick] [--net] [--budget-secs N] [--seed S] \
                     [--out-dir DIR] [--no-scrubber]"
                );
                println!();
                println!("  --quick        one deterministic round of the scenario deck");
                println!("  --net          add the network phase: a live TCP server under");
                println!("                 fault storm + quarantine, with connection kills");
                println!("                 and read-your-writes checks across reconnects");
                println!("  --budget-secs  soak: loop rounds until the wall budget is spent");
                println!("  --seed         campaign seed (hex or decimal; pinned default)");
                println!("  --out-dir      artifact directory (default target/campaign)");
                println!("  --no-scrubber  contrast run without the background scrubber");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    if quick && budget_secs.is_some() {
        eprintln!("--quick and --budget-secs are mutually exclusive");
        std::process::exit(2);
    }
    let mut cfg = match budget_secs {
        Some(secs) => CampaignConfig::soak(seed, Duration::from_secs(secs)),
        // Quick is the default: one deterministic round of the deck.
        None => CampaignConfig::quick(seed),
    };
    if !scrubber {
        cfg.scrubber = None;
        cfg.mttr_timeout = Duration::from_millis(20);
    }

    println!(
        "campaign: seed {seed:#x}, {} scenario(s)/round, {} worker(s), scrubber {}",
        cfg.scenarios.len(),
        cfg.threads,
        if scrubber { "on" } else { "off" },
    );
    let report = run_campaign(&cfg);
    let o = &report.outcome;
    let t = &report.timing;
    println!(
        "  {} round(s), {} ops ({} reads / {} writes, {} verified), {} injection(s) over {} cells",
        o.rounds,
        o.total_reads + o.total_writes,
        o.total_reads,
        o.total_writes,
        o.verified_reads,
        o.injections,
        o.cells_injected,
    );
    println!(
        "  lost writes: {}, unrecoverable words: {}, uncorrectable events: {}, final audit: {}",
        o.lost_writes, o.unrecoverable_words, o.uncorrectable_events, o.final_audit,
    );
    println!(
        "  {:.0} ops/sec, foreground mean {:.0} ns / p99 {:.0} ns / max {} ns",
        t.ops_per_sec, t.foreground_mean_ns, t.foreground_p99_ns, t.foreground_max_ns,
    );
    println!(
        "  MTTR mean {:.0} ns over {} sample(s) ({} timeout(s)), scrub {:.1} ns/row over {} rows",
        t.mttr_mean_ns, t.mttr_samples, t.mttr_timeouts, t.scrub_row_scan_ns, t.scrub_rows_scanned,
    );
    if let Some(r) = &report.reliability {
        println!(
            "  telemetry: {} event(s) over {:.1} device-hours -> {:.1} FIT/Mbit \
             (95% UCL {:.1}), MTTF {}",
            r.events,
            r.hours,
            r.fit_per_mbit,
            r.fit_upper_95 / r.mbits,
            match r.mttf_hours {
                Some(h) => format!("{h:.1} h"),
                None => "n/a (no events)".to_string(),
            },
        );
    }

    std::fs::create_dir_all(&out_dir).expect("creating campaign output directory");
    let report_path = out_dir.join("campaign_report.json");
    std::fs::write(&report_path, o.to_json())
        .unwrap_or_else(|e| panic!("writing {}: {e}", report_path.display()));
    println!("wrote {}", report_path.display());
    let bench_path = out_dir.join("BENCH_scrub.json");
    std::fs::write(&bench_path, bench_rows_json(&report))
        .unwrap_or_else(|e| panic!("writing {}: {e}", bench_path.display()));
    println!("wrote {}", bench_path.display());

    if !o.healthy() {
        eprintln!("campaign UNHEALTHY: see counters above");
        std::process::exit(1);
    }
    println!("campaign healthy: zero losses, zero unrecoverable words");

    if net {
        run_net_phase(seed, &out_dir);
    }
}

/// The network phase: a live loopback `twod-server` under fault storm
/// and administrative quarantine, hammered by clients that kill and
/// re-establish their connections mid-storm. Exits nonzero on any
/// wrong read, lost acknowledged write, failed final audit, or if
/// degradation was never entered/exited (the shed path went untested).
fn run_net_phase(seed: u64, out_dir: &std::path::Path) {
    let cfg = NetChaosConfig::quick(seed);
    println!(
        "net phase: {} client(s) x {} ops, kill every {}, {} injection(s), {} bank(s)",
        cfg.clients, cfg.ops_per_client, cfg.kill_every, cfg.storm_injections, cfg.banks,
    );
    let r = run_net_chaos(&cfg);
    println!(
        "  {} ops, {} acked write(s), {} verified read(s) mid-run, {} readback-checked",
        r.ops, r.acked_writes, r.verified_reads, r.readback_checked,
    );
    println!(
        "  sheds: {} busy, {} degraded; {} fault(s), {} gave up after retries",
        r.busy_sheds, r.degraded_sheds, r.faults, r.gave_up,
    );
    println!(
        "  {} reconnect(s) ({} with immediate readback), {} injection(s), \
         degraded observed {} / cleared {}, final audit {}",
        r.reconnects,
        r.reconnect_readbacks,
        r.injections,
        r.degraded_observed,
        r.degraded_cleared,
        r.final_audit,
    );
    println!(
        "  server: {} req, {} busy, {} degraded, {} protocol error(s), {} reaped",
        r.server_stats.requests,
        r.server_stats.busy_sheds,
        r.server_stats.degraded_sheds,
        r.server_stats.protocol_errors,
        r.server_stats.connections_reaped,
    );

    let report_path = out_dir.join("net_chaos_report.json");
    let json = format!(
        "{{\n  \"schema\": \"twod-repro/net-chaos-v1\",\n  \"seed\": {seed},\n  \
         \"ops\": {},\n  \"acked_writes\": {},\n  \"verified_reads\": {},\n  \
         \"wrong_reads\": {},\n  \"lost_acked_writes\": {},\n  \"readback_checked\": {},\n  \
         \"busy_sheds\": {},\n  \"degraded_sheds\": {},\n  \"faults\": {},\n  \
         \"gave_up\": {},\n  \"reconnects\": {},\n  \"injections\": {},\n  \
         \"degraded_observed\": {},\n  \"degraded_cleared\": {},\n  \"final_audit\": {}\n}}\n",
        r.ops,
        r.acked_writes,
        r.verified_reads,
        r.wrong_reads,
        r.lost_acked_writes,
        r.readback_checked,
        r.busy_sheds,
        r.degraded_sheds,
        r.faults,
        r.gave_up,
        r.reconnects,
        r.injections,
        r.degraded_observed,
        r.degraded_cleared,
        r.final_audit,
    );
    std::fs::write(&report_path, json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", report_path.display()));
    println!("wrote {}", report_path.display());

    let mut unhealthy = Vec::new();
    if r.wrong_reads > 0 {
        unhealthy.push(format!("{} wrong read(s)", r.wrong_reads));
    }
    if r.lost_acked_writes > 0 {
        unhealthy.push(format!(
            "{} lost acknowledged write(s)",
            r.lost_acked_writes
        ));
    }
    if !r.degraded_observed {
        unhealthy.push("degraded mode never observed over HEALTH".to_string());
    }
    if !r.degraded_cleared {
        unhealthy.push("degradation never cleared after the storm".to_string());
    }
    if !r.final_audit {
        unhealthy.push("final audit failed".to_string());
    }
    if !unhealthy.is_empty() {
        eprintln!("net phase UNHEALTHY: {}", unhealthy.join(", "));
        std::process::exit(1);
    }
    println!("net phase healthy: read-your-writes held across kills, storm, and quarantine");

    run_shard_phase(seed, out_dir);
}

/// The shard-kill phase: two loopback servers behind a sharded client
/// fleet; one server is shut down mid-storm and later restarted (same
/// cache, fresh port). Exits nonzero on any wrong read or lost acked
/// write while a shard is down, if the survivor served nothing during
/// the outage, or if the victim never came back.
fn run_shard_phase(seed: u64, out_dir: &std::path::Path) {
    let cfg = ShardChaosConfig::quick(seed);
    println!(
        "shard phase: 2 shards, {} client(s) x {} batch(es) of {}, victim down from {:.0}% to {:.0}% progress",
        cfg.clients,
        cfg.batches_per_client,
        cfg.batch_depth,
        cfg.kill_at_fraction * 100.0,
        cfg.restart_at_fraction * 100.0,
    );
    let r = run_shard_chaos(&cfg);
    println!(
        "  {} ops, {} acked write(s) ({} during outage), {} verified read(s), {} readback-checked",
        r.ops, r.acked_writes, r.survivor_acked_during_outage, r.verified_reads, r.readback_checked,
    );
    println!(
        "  {} shard-down slot(s), {} gave up, {} fault(s), {} lazy re-dial(s), \
         {} injection(s), victim restarted {}, final audit {}",
        r.shard_down_slots,
        r.gave_up,
        r.faults,
        r.reconnects,
        r.injections,
        r.victim_restarted,
        r.final_audit,
    );

    let report_path = out_dir.join("shard_chaos_report.json");
    let json = format!(
        "{{\n  \"schema\": \"twod-repro/shard-chaos-v1\",\n  \"seed\": {seed},\n  \
         \"ops\": {},\n  \"acked_writes\": {},\n  \"verified_reads\": {},\n  \
         \"wrong_reads\": {},\n  \"lost_acked_writes\": {},\n  \"readback_checked\": {},\n  \
         \"shard_down_slots\": {},\n  \"survivor_acked_during_outage\": {},\n  \
         \"gave_up\": {},\n  \"faults\": {},\n  \"reconnects\": {},\n  \"injections\": {},\n  \
         \"victim_restarted\": {},\n  \"final_audit\": {}\n}}\n",
        r.ops,
        r.acked_writes,
        r.verified_reads,
        r.wrong_reads,
        r.lost_acked_writes,
        r.readback_checked,
        r.shard_down_slots,
        r.survivor_acked_during_outage,
        r.gave_up,
        r.faults,
        r.reconnects,
        r.injections,
        r.victim_restarted,
        r.final_audit,
    );
    std::fs::write(&report_path, json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", report_path.display()));
    println!("wrote {}", report_path.display());

    let mut unhealthy = Vec::new();
    if r.wrong_reads > 0 {
        unhealthy.push(format!("{} wrong read(s)", r.wrong_reads));
    }
    if r.lost_acked_writes > 0 {
        unhealthy.push(format!(
            "{} lost acknowledged write(s)",
            r.lost_acked_writes
        ));
    }
    if r.survivor_acked_during_outage == 0 {
        unhealthy.push("survivor shard served no writes during the outage".to_string());
    }
    if !r.victim_restarted {
        unhealthy.push("victim shard never restarted".to_string());
    }
    if !r.final_audit {
        unhealthy.push("final audit failed".to_string());
    }
    if !unhealthy.is_empty() {
        eprintln!("shard phase UNHEALTHY: {}", unhealthy.join(", "));
        std::process::exit(1);
    }
    println!("shard phase healthy: the fleet kept serving through a shard kill and restart");
}
