//! Figure 8: (a) 16MB L2 yield vs number of failing cells under four
//! repair provisions; (b) probability that ECC-based hard-error
//! correction survives N years of soft errors, with and without 2D
//! coding.

use bench::header;
use reliability::{FieldModel, RepairScheme, YieldModel};

fn main() {
    header("Figure 8(a): yield of a 16MB L2 using ECC-based hard-error correction");
    let m = YieldModel::l2_16mb();
    let schemes = [
        RepairScheme::SpareRows(128),
        RepairScheme::EccOnly,
        RepairScheme::EccPlusSpares(16),
        RepairScheme::EccPlusSpares(32),
    ];
    print!("  {:<16}", "failing cells");
    for s in &schemes {
        print!(" {:>14}", s.label());
    }
    println!();
    for cells in (0..=4000u64).step_by(400) {
        print!("  {cells:<16}");
        for s in &schemes {
            print!(" {:>13.1}%", m.yield_probability(cells, *s) * 100.0);
        }
        println!();
    }

    header("Figure 8(b): successful correction over time (10 x 16MB caches, 1000 FIT/Mb)");
    let hers = FieldModel::figure8b_hers();
    print!("  {:<10} {:>12}", "years", "With 2D");
    for her in hers {
        print!(" {:>18}", format!("No-2D HER={:.4}%", her * 100.0));
    }
    println!();
    for years in 0..=5 {
        let y = years as f64;
        print!(
            "  {years:<10} {:>11.1}%",
            FieldModel::paper_system(hers[0]).success_with_2d(y) * 100.0
        );
        for her in hers {
            let s = FieldModel::paper_system(her).success_without_2d(y);
            print!(" {:>17.1}%", s * 100.0);
        }
        println!();
    }
}
