//! Perf-trajectory emitter: measures mean ns/op for every codec, for
//! the 2D engine's array operations, for the protected-cache hit/miss
//! paths, for the concurrent sharded cache service under multi-threaded
//! traffic, and for the self-healing scrub paths (incremental slices
//! plus chaos-campaign MTTR/interference figures), and writes the
//! results as `BENCH_codecs.json`, `BENCH_engine.json`,
//! `BENCH_cache.json`, `BENCH_service.json`, and `BENCH_scrub.json`.
//!
//! These artifacts seed the performance baseline that later optimization
//! PRs are measured against; CI uploads them on every push and
//! `scripts/bench_gate.py` fails the build when a measurement regresses
//! past the documented tolerance.
//!
//! ```text
//! cargo run --release -p bench --bin perf               # full run, ./BENCH_*.json
//! cargo run --release -p bench --bin perf -- --quick    # CI smoke (bounded iterations)
//! cargo run --release -p bench --bin perf -- --out-dir target/bench
//! cargo run --release -p bench --bin perf -- --filter oecned   # subset, print-only
//! ```
//!
//! Codec measurements cover three paths per codec: `encode` (check-bit
//! generation), `decode_clean` (the every-access syndrome check), and
//! `decode_dirty` (the syndrome-plus-correction path with `max(t, 1)`
//! bit flips injected — for BCH codes this exercises Berlekamp–Massey
//! and the Chien search).

use bench::{alloc_counter, bench_json};
use cachesim::{
    generate_ops, run_campaign, run_traffic, AccessPattern, CampaignConfig, Op, TrafficConfig,
};
use ecc::{Bch, Bits, Code, CodeKind, Edc, Secded};
use memarray::{ErrorShape, TwoDArray, TwoDConfig};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;
use twod_cache::{CacheConfig, ConcurrentBankedCache, ProtectedCache, LINE_BYTES};

/// With the `count-allocs` feature the perf binary runs under the
/// counting allocator, so every row additionally reports allocs/op —
/// that is how the committed BENCH_cache.json pins the hot paths at
/// 0 allocs/op.
#[cfg(feature = "count-allocs")]
#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc::new();

/// One measured operation.
struct Sample {
    name: &'static str,
    op: &'static str,
    mean_ns: f64,
    iters: u64,
    /// Mean heap allocations per iteration; present only when built with
    /// `count-allocs`.
    allocs_per_op: Option<f64>,
}

/// Measurement budget. Quick mode keeps CI smoke runs to well under a
/// second per operation while still producing valid (noisier) numbers.
struct Budget {
    /// Warmup stops at whichever of these two limits hits first.
    warmup_iters: u64,
    warmup_ns: u128,
    /// Statistical floor: measure at least this many iterations even if
    /// the time budget is already spent.
    min_iters: u64,
    target_ns: u128,
}

impl Budget {
    fn full() -> Self {
        Budget {
            warmup_iters: 1_000,
            warmup_ns: 50_000_000,
            min_iters: 64,
            target_ns: 200_000_000,
        }
    }

    fn quick() -> Self {
        Budget {
            warmup_iters: 10,
            warmup_ns: 1_000_000,
            min_iters: 10,
            target_ns: 2_000_000,
        }
    }
}

/// Shared measurement driver for the codec and engine sections: owns the
/// budget, applies the `--filter` substring to `name.op` keys, and
/// accumulates samples.
struct Runner {
    budget: Budget,
    filter: Option<String>,
    samples: Vec<Sample>,
}

impl Runner {
    fn new(budget: Budget, filter: Option<String>) -> Self {
        Runner {
            budget,
            filter,
            samples: Vec::new(),
        }
    }

    /// Times `routine` under the budget and records the sample, unless
    /// the `name.op` key does not match the active filter.
    fn bench<O, F: FnMut() -> O>(&mut self, name: &'static str, op: &'static str, mut routine: F) {
        if let Some(f) = &self.filter {
            let key = format!("{name}.{op}");
            if !key.contains(f.as_str()) {
                return;
            }
        }
        let budget = &self.budget;
        let warm_started = Instant::now();
        for _ in 0..budget.warmup_iters {
            black_box(routine());
            if warm_started.elapsed().as_nanos() >= budget.warmup_ns {
                break;
            }
        }
        // Geometrically growing chunks, re-checking the wall-clock budget
        // between chunks: cheap operations accumulate enough iterations
        // to be stable while slow ones (recovery marches) overshoot the
        // budget by at most one chunk, not a fixed iteration count.
        let mut iters: u64 = 0;
        let mut chunk: u64 = 1;
        let allocs_before = alloc_counter::allocations();
        let started = Instant::now();
        loop {
            for _ in 0..chunk {
                black_box(routine());
            }
            iters += chunk;
            if started.elapsed().as_nanos() >= budget.target_ns && iters >= budget.min_iters {
                break;
            }
            chunk = (chunk * 2).min(4_096);
        }
        let elapsed = started.elapsed().as_nanos();
        let allocs = alloc_counter::allocations() - allocs_before;
        self.samples.push(Sample {
            name,
            op,
            mean_ns: elapsed as f64 / iters as f64,
            iters,
            allocs_per_op: alloc_counter::counting_feature_enabled()
                .then(|| allocs as f64 / iters as f64),
        });
    }

    /// Drains the samples accumulated since the last call.
    fn take_samples(&mut self) -> Vec<Sample> {
        std::mem::take(&mut self.samples)
    }
}

/// The per-codec benchmark set over 64-bit words.
fn codec_samples(runner: &mut Runner) -> Vec<Sample> {
    let data = Bits::from_u64(0x0123_4567_89AB_CDEF, 64);
    let codecs: Vec<(&'static str, Box<dyn Code>)> = vec![
        ("edc8", Box::new(Edc::new(64, 8))),
        ("edc16", Box::new(Edc::new(64, 16))),
        ("secded", Box::new(Secded::new(64))),
        ("dected", Box::new(Bch::new(64, 2))),
        ("qecped", Box::new(Bch::new(64, 4))),
        ("oecned", Box::new(Bch::new(64, 8))),
    ];
    for (name, code) in &codecs {
        runner.bench(name, "encode", || code.encode(black_box(&data)));
        let check = code.encode(&data);
        runner.bench(name, "decode_clean", || {
            code.decode(black_box(&data), black_box(&check))
        });
        // Dirty decode: max(t, 1) spread flips force the full syndrome /
        // correction path (Berlekamp–Massey + Chien for the BCH family,
        // detection for EDC, single-bit correction for SECDED). Measured
        // through `decode_into` with a warmed scratch — the zero-alloc
        // API the engine repair path uses.
        let flips = code.correctable().max(1);
        let mut noisy = data.clone();
        for f in 0..flips {
            noisy.flip((f * 64) / flips + 1);
        }
        let mut out = Bits::zeros(code.data_bits());
        let mut scratch = ecc::DecodeScratch::default();
        code.decode_into(&noisy, &check, &mut out, &mut scratch);
        runner.bench(name, "decode_dirty", || {
            code.decode_into(black_box(&noisy), black_box(&check), &mut out, &mut scratch)
        });
    }
    runner.take_samples()
}

fn paper_config(rows: usize) -> TwoDConfig {
    TwoDConfig {
        rows,
        horizontal: CodeKind::Edc(8),
        data_bits: 64,
        interleave: 4,
        vertical_rows: 32,
    }
}

/// The 2D-array engine benchmark set over the paper's 256-row bank.
fn engine_samples(runner: &mut Runner) -> Vec<Sample> {
    // Write path: read-before-write + vertical parity update.
    let mut bank = TwoDArray::new(paper_config(256));
    let word = Bits::from_u64(0x1234_5678_9ABC_DEF0, 64);
    let mut i = 0usize;
    runner.bench("twod_array", "write_word", || {
        bank.write_word(i % 256, i % 4, black_box(&word));
        i = i.wrapping_add(1);
    });

    // Clean read path: horizontal detection only.
    let mut i = 0usize;
    runner.bench("twod_array", "read_word_clean", || {
        let r = bank.read_word(i % 256, i % 4).unwrap();
        i = i.wrapping_add(1);
        r
    });

    // Recovery march over a 16x16 cluster (setup excluded per pass, so
    // this measures inject + recover; injection is a tiny fraction).
    runner.bench("twod_array", "recover_cluster_16x16", || {
        bank.inject(ErrorShape::Cluster {
            row: 1,
            col: 0,
            height: 16,
            width: 16,
        });
        bank.recover().unwrap()
    });

    runner.take_samples()
}

/// The protected-cache benchmark set: steady-state clean hits through
/// the full stack (tag lookup, LRU, data access) — the paths the
/// scratch-buffer / u64 fast lanes made allocation-free. All accesses
/// are warmed so every measured op is a pure hit.
fn cache_samples(runner: &mut Runner) -> Vec<Sample> {
    const LINES: u64 = 64;
    let mut cache = ProtectedCache::new(CacheConfig::l1_64kb());
    for i in 0..LINES {
        cache.write(i * LINE_BYTES as u64, i).unwrap();
    }
    let mut i = 0u64;
    runner.bench("cache", "read_hit", || {
        let v = cache.read((i % LINES) * LINE_BYTES as u64).unwrap();
        i = i.wrapping_add(1);
        v
    });
    let mut i = 0u64;
    runner.bench("cache", "write_hit", || {
        cache.write((i % LINES) * LINE_BYTES as u64, i).unwrap();
        i = i.wrapping_add(1);
    });
    // Silent write hit: the stored word already equals the new data, so
    // the row write and parity update are suppressed (Kishani et al.).
    for i in 0..LINES {
        cache.write(i * LINE_BYTES as u64, 0x0D15_EA5E).unwrap();
    }
    let mut i = 0u64;
    runner.bench("cache", "write_hit_silent", || {
        cache
            .write((i % LINES) * LINE_BYTES as u64, 0x0D15_EA5E)
            .unwrap();
        i = i.wrapping_add(1);
    });
    // Miss + line fill churn: three tags cycling through one 2-way set,
    // so every access misses and refills a full line.
    let sets = cache.config().sets as u64;
    let mut i = 0u64;
    runner.bench("cache", "read_miss_fill", || {
        let v = cache.read((i % 3) * sets * LINE_BYTES as u64).unwrap();
        i = i.wrapping_add(1);
        v
    });
    runner.take_samples()
}

/// Lock-free sequential sharded reference: the same address-interleaved
/// math as the banked caches over plain `Vec<ProtectedCache>`. This is
/// the honest "sequential path" baseline for the lock-per-bank service:
/// `service.conc_ops_1t / service.seq_ops` is the pure synchronization
/// overhead a single-threaded caller pays.
struct SequentialSharded {
    banks: Vec<ProtectedCache>,
}

impl SequentialSharded {
    fn new(config: CacheConfig, banks: usize) -> Self {
        SequentialSharded {
            banks: (0..banks).map(|_| ProtectedCache::new(config)).collect(),
        }
    }

    fn replay(&mut self, ops: &[Op]) {
        let lb = LINE_BYTES as u64;
        let n = self.banks.len() as u64;
        for op in ops {
            let addr = match *op {
                Op::Read(a) | Op::Write(a, _) => a,
            };
            let line = addr / lb;
            let bank = (line % n) as usize;
            let local = (line / n) * lb + addr % lb;
            match *op {
                Op::Read(_) => {
                    black_box(self.banks[bank].read(local).unwrap());
                }
                Op::Write(_, v) => self.banks[bank].write(local, v).unwrap(),
            }
        }
    }
}

/// The service-layer benchmark: throughput of the concurrent sharded
/// cache under seeded Zipf traffic at 1/2/4/8 worker threads, plus the
/// lock-free sequential reference. All entries are mean wall-clock ns
/// per operation (aggregate: `elapsed / total_ops`), so multi-thread
/// scaling is `conc_ops_1t / conc_ops_Nt` and single-thread lock
/// overhead is `conc_ops_1t / seq_ops`.
fn service_samples(quick: bool, filter: &Option<String>) -> Vec<Sample> {
    const BANKS: usize = 8;
    let total_ops: u64 = if quick { 16_000 } else { 160_000 };
    let traffic = |threads: usize| TrafficConfig {
        threads,
        ops_per_thread: total_ops / threads as u64,
        write_fraction: 0.3,
        lines: 4_096,
        pattern: AccessPattern::Zipf(1.0),
        seed: 0x5EED_5EED,
        // Both paths do identical per-op work; correctness is covered by
        // the stress suites, not the throughput bench.
        verify: false,
    };
    let matches = |op: &str| {
        filter
            .as_ref()
            .is_none_or(|f| format!("service.{op}").contains(f.as_str()))
    };
    let mut samples = Vec::new();

    if matches("seq_ops") {
        let mut seq = SequentialSharded::new(CacheConfig::l1_64kb(), BANKS);
        let ops = generate_ops(&traffic(1), 0);
        seq.replay(&ops); // warmup: fill tags/lines
        let started = Instant::now();
        seq.replay(&ops);
        samples.push(Sample {
            name: "service",
            op: "seq_ops",
            mean_ns: started.elapsed().as_nanos() as f64 / ops.len() as f64,
            iters: ops.len() as u64,
            allocs_per_op: None,
        });
    }

    for (threads, op) in [
        (1usize, "conc_ops_1t"),
        (2, "conc_ops_2t"),
        (4, "conc_ops_4t"),
        (8, "conc_ops_8t"),
    ] {
        if !matches(op) {
            continue;
        }
        let cache = ConcurrentBankedCache::new(CacheConfig::l1_64kb(), BANKS);
        let cfg = traffic(threads);
        let _warm = run_traffic(&cache, &cfg);
        let report = run_traffic(&cache, &cfg);
        samples.push(Sample {
            name: "service",
            op,
            mean_ns: report.mean_ns_per_op(),
            iters: report.total_ops,
            allocs_per_op: None,
        });
    }

    // The seqlock-contention figure: a deliberately small bank count
    // under a skewed read-heavy Zipf mix, so threads pile onto the same
    // few banks and the optimistic clean-read fast path is what keeps
    // them out of each other's way. The all-mutex baseline collapses
    // here (every reader serializes on the hot bank's lock); the
    // seqlock path keeps clean resident reads lock-free.
    const ZIPF_BANKS: usize = 2;
    let zipf_traffic = |threads: usize| TrafficConfig {
        threads,
        ops_per_thread: total_ops / threads as u64,
        write_fraction: 0.1,
        lines: 1_024,
        pattern: AccessPattern::Zipf(1.1),
        seed: 0x5EED_21F0,
        verify: false,
    };
    for (threads, op) in [
        (1usize, "conc_ops_1t_zipf"),
        (2, "conc_ops_2t_zipf"),
        (4, "conc_ops_4t_zipf"),
        (8, "conc_ops_8t_zipf"),
    ] {
        if !matches(op) {
            continue;
        }
        let cache = ConcurrentBankedCache::new(CacheConfig::l1_64kb(), ZIPF_BANKS);
        let cfg = zipf_traffic(threads);
        let _warm = run_traffic(&cache, &cfg);
        let hits_before = cache.optimistic_hits();
        let report = run_traffic(&cache, &cfg);
        let opt_fraction = (cache.optimistic_hits() - hits_before) as f64 / report.total_ops as f64;
        println!(
            "  {op}: optimistic fast-path fraction {:.1}%",
            opt_fraction * 100.0
        );
        samples.push(Sample {
            name: "service",
            op,
            mean_ns: report.mean_ns_per_op(),
            iters: report.total_ops,
            allocs_per_op: None,
        });
    }

    // Derived figures for humans; the gate consumes only the raw rows.
    let find = |op: &str| samples.iter().find(|s| s.op == op).map(|s| s.mean_ns);
    if let (Some(one), Some(four)) = (find("conc_ops_1t"), find("conc_ops_4t")) {
        println!("  service scaling at 4 threads: {:.2}x", one / four);
    }
    if let (Some(seq), Some(one)) = (find("seq_ops"), find("conc_ops_1t")) {
        println!(
            "  single-thread lock overhead vs sequential path: {:+.1}%",
            (one / seq - 1.0) * 100.0
        );
    }
    if let (Some(one), Some(eight)) = (find("conc_ops_1t_zipf"), find("conc_ops_8t_zipf")) {
        println!(
            "  hot-bank zipf scaling at 8 threads ({ZIPF_BANKS} banks): {:.2}x",
            one / eight
        );
    }
    samples
}

/// The self-healing benchmark set: incremental-scrub micro paths on the
/// paper's 256-row bank plus figures extracted from one seeded chaos
/// campaign (background scrubber active, the full scenario deck).
///
/// * `slice_clean` / `full_pass_clean` — detection-side scrub cost on a
///   clean bank (per 32-row slice, per whole-bank pass);
/// * `repair_cluster_16x16` — scrub-detected 16x16 cluster repair;
/// * `scrub_throughput_gbps` — GB/s of physical storage swept by the
///   clean 32-row slice (derived from `slice_clean`; the value lands in
///   the `mean_ns` column but is a rate, *higher* is better — gated as
///   runner-dependent/informational);
/// * `row_scan` — mean ns the background scrubber spends per row
///   scanned during the campaign (inverse scrub throughput);
/// * `campaign_mttr` — mean injection-to-repair latency during the
///   campaign;
/// * `campaign_p99` — p99 foreground operation latency under
///   traffic + faults + background scrubbing (the interference figure).
///
/// Campaign rows carry an `allocs_per_op` figure under `count-allocs`
/// like every other row, but it is a *whole-campaign* total divided by
/// that row's iteration count (the campaign interleaves traffic, faults,
/// and scrubbing in one process, so per-row attribution is not
/// possible): informational, not a hard zero gate.
fn scrub_samples(runner: &mut Runner, quick: bool) -> Vec<Sample> {
    let mut bank = TwoDArray::new(paper_config(256));
    let word = Bits::from_u64(0x5EED_5C12_B000_0001, 64);
    for r in 0..256 {
        for w in 0..4 {
            bank.write_word(r, w, &word);
        }
    }
    runner.bench("scrub", "slice_clean", || bank.scrub_step(32).unwrap());
    runner.bench("scrub", "full_pass_clean", || bank.scrub().unwrap());
    runner.bench("scrub", "repair_cluster_16x16", || {
        bank.inject(ErrorShape::Cluster {
            row: 3,
            col: 8,
            height: 16,
            width: 16,
        });
        bank.scrub().unwrap()
    });
    let mut samples = runner.take_samples();

    // Filter predicate for the derived rows below, matched against each
    // row key like everywhere else.
    let matches = |op: &str| {
        runner
            .filter
            .as_ref()
            .is_none_or(|f| format!("scrub.{op}").contains(f.as_str()))
    };

    // Derived throughput row: GB/s of physical storage the clean slice
    // sweeps (bytes scanned / measured slice time; bytes/ns ≡ GB/s).
    // The rate lands in the `mean_ns` column — bench_gate treats the row
    // as runner-dependent, so the value is informational and only its
    // presence is enforced.
    if matches("scrub_throughput_gbps") {
        if let Some(slice) = samples
            .iter()
            .find(|s| s.name == "scrub" && s.op == "slice_clean")
        {
            let slice_bytes = (32 * bank.cols()).div_ceil(8) as f64;
            samples.push(Sample {
                name: "scrub",
                op: "scrub_throughput_gbps",
                mean_ns: slice_bytes / slice.mean_ns,
                iters: slice.iters,
                allocs_per_op: None,
            });
        }
    }

    // Campaign-derived figures. One run feeds all three rows.
    if matches("row_scan") || matches("campaign_mttr") || matches("campaign_p99") {
        let mut cfg = CampaignConfig::quick(0x5C12_B5EE_D000_0001);
        // Three rounds of the deck: ~36 MTTR samples instead of 12, so
        // the campaign_mttr row's mean is stable enough to gate.
        cfg.rounds = 3;
        if quick {
            cfg.ops_per_phase = 1_500;
        }
        let allocs_before = alloc_counter::allocations();
        let report = run_campaign(&cfg);
        let campaign_allocs = alloc_counter::allocations() - allocs_before;
        assert!(
            report.outcome.healthy(),
            "perf campaign must end healthy: {:?}",
            report.outcome
        );
        // Whole-campaign allocation total, amortized over each row's own
        // iteration count (see the function docs): nonzero by design,
        // tracked so a regression in the campaign's allocation behaviour
        // shows up in the committed baselines.
        let campaign_allocs_per = |iters: u64| {
            alloc_counter::counting_feature_enabled()
                .then(|| campaign_allocs as f64 / iters.max(1) as f64)
        };
        let t = report.timing;
        if matches("row_scan") {
            samples.push(Sample {
                name: "scrub",
                op: "row_scan",
                mean_ns: t.scrub_row_scan_ns,
                iters: t.scrub_clean_rows,
                allocs_per_op: campaign_allocs_per(t.scrub_clean_rows),
            });
        }
        if matches("campaign_mttr") {
            samples.push(Sample {
                name: "scrub",
                op: "campaign_mttr",
                mean_ns: t.mttr_mean_ns,
                iters: t.mttr_samples,
                allocs_per_op: campaign_allocs_per(t.mttr_samples),
            });
        }
        if matches("campaign_p99") {
            let ops = report.outcome.total_reads + report.outcome.total_writes;
            samples.push(Sample {
                name: "scrub",
                op: "campaign_p99",
                mean_ns: t.foreground_p99_ns,
                iters: ops,
                allocs_per_op: campaign_allocs_per(ops),
            });
        }
    }
    samples
}

fn emit(path: &Path, mode: &str, samples: &[Sample], print_only: bool) {
    if print_only {
        println!("{} (print-only, --filter active)", path.display());
    } else {
        let rows: Vec<bench_json::BenchRow> = samples
            .iter()
            .map(|r| bench_json::BenchRow {
                name: r.name.to_string(),
                op: r.op.to_string(),
                mean_ns: r.mean_ns,
                iters: r.iters,
                allocs_per_op: r.allocs_per_op,
            })
            .collect();
        std::fs::write(path, bench_json::render(mode, &rows))
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("wrote {} ({} results)", path.display(), samples.len());
    }
    for r in samples {
        match r.allocs_per_op {
            Some(a) => println!(
                "  {:<12} {:<22} {:>12.1} ns/op {:>8.3} allocs/op",
                r.name, r.op, r.mean_ns, a
            ),
            None => println!("  {:<12} {:<22} {:>12.1} ns/op", r.name, r.op, r.mean_ns),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let mut out_dir = PathBuf::from(".");
    let mut filter: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out-dir" => {
                let dir = it
                    .next()
                    .filter(|v| !v.starts_with("--"))
                    .unwrap_or_else(|| {
                        eprintln!("--out-dir needs a path");
                        std::process::exit(2);
                    });
                out_dir = PathBuf::from(dir);
            }
            "--filter" => {
                let f = it
                    .next()
                    .filter(|v| !v.starts_with("--"))
                    .unwrap_or_else(|| {
                        eprintln!("--filter needs a substring");
                        std::process::exit(2);
                    });
                filter = Some(f.clone());
            }
            "--help" | "-h" => {
                println!("usage: perf [--quick] [--out-dir DIR] [--filter SUBSTR]");
                println!();
                println!("  --filter matches against `name.op` keys (e.g. 'oecned',");
                println!("  'encode', 'twod_array.recover', 'cache.read_hit',");
                println!("  'cache.write_hit', 'cache.write_hit_silent',");
                println!("  'cache.read_miss_fill', 'scrub.slice_clean',");
                println!("  'scrub.campaign_mttr'). Filtered runs print the results");
                println!("  without writing BENCH_*.json, so a subset run can never");
                println!("  clobber a committed full baseline.");
                println!();
                println!("  Built with `--features count-allocs`, every row also");
                println!("  reports allocs/op (how BENCH_cache.json pins the clean");
                println!("  hit paths at 0 allocs/op).");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    std::fs::create_dir_all(&out_dir).expect("creating output directory");
    let (budget, mode) = if quick {
        (Budget::quick(), "quick")
    } else {
        (Budget::full(), "full")
    };
    let print_only = filter.is_some();
    let mut runner = Runner::new(budget, filter);
    let codec = codec_samples(&mut runner);
    emit(&out_dir.join("BENCH_codecs.json"), mode, &codec, print_only);
    let engine = engine_samples(&mut runner);
    emit(
        &out_dir.join("BENCH_engine.json"),
        mode,
        &engine,
        print_only,
    );
    let cache = cache_samples(&mut runner);
    emit(&out_dir.join("BENCH_cache.json"), mode, &cache, print_only);
    let service = service_samples(quick, &runner.filter);
    emit(
        &out_dir.join("BENCH_service.json"),
        mode,
        &service,
        print_only,
    );
    let scrub = scrub_samples(&mut runner, quick);
    emit(&out_dir.join("BENCH_scrub.json"), mode, &scrub, print_only);
}
