//! Figure 2(b)/(c): normalized read energy vs physical bit-interleaving
//! degree for the 64kB L1 and 4MB L2 caches under the four Cacti
//! objective functions.

use bench::header;
use cachegeom::{interleave_sweep, CostModel, Objective};

fn main() {
    let model = CostModel::default();
    let degrees = [1usize, 2, 4, 8, 16];

    for (title, words, cw) in [
        (
            "Figure 2(b): 64kB cache (2-way, 2 ports, 1 bank), (72,64) words",
            8192usize,
            72usize,
        ),
        (
            "Figure 2(c): 4MB cache (16-way, 1 port, 8 banks), (266,256) words",
            16384,
            266,
        ),
    ] {
        header(title);
        print!("  {:<26}", "objective \\ interleave");
        for d in degrees {
            print!(" {d:>2}:1    ");
        }
        println!();
        for objective in Objective::all() {
            let pts = interleave_sweep(&model, words, cw, &degrees, objective);
            print!("  {:<26}", objective.label());
            for p in &pts {
                print!(" {:<8.2}", p.normalized_energy);
            }
            println!();
        }
    }
}
