//! Figure 5: IPC loss of 2D-protected caches on the fat and lean CMPs
//! across the six workloads, for the four protection configurations
//! (L1-only, L1+port-stealing, L2-only, L1+steal+L2).
//!
//! Pass `--print-config` to dump the Table 1 system parameters instead.

use bench::header;
use cachesim::{figure5, figure5_average, SystemConfig, DEFAULT_CYCLES};

fn main() {
    if std::env::args().any(|a| a == "--print-config") {
        print_table1();
        return;
    }
    for (title, cfg) in [
        (
            "Figure 5(a): fat baseline (% IPC loss)",
            SystemConfig::fat_cmp(),
        ),
        (
            "Figure 5(b): lean baseline (% IPC loss)",
            SystemConfig::lean_cmp(),
        ),
    ] {
        header(title);
        println!(
            "  {:<10} {:>8} {:>12} {:>8} {:>14}",
            "workload", "L1", "L1+steal", "L2", "L1+steal+L2"
        );
        let rows = figure5(cfg, DEFAULT_CYCLES, 42);
        for r in &rows {
            println!(
                "  {:<10} {:>7.2}% {:>11.2}% {:>7.2}% {:>13.2}%",
                r.workload, r.l1_only, r.l1_steal, r.l2_only, r.full
            );
        }
        let avg = figure5_average(&rows);
        println!(
            "  {:<10} {:>7.2}% {:>11.2}% {:>7.2}% {:>13.2}%",
            avg.workload, avg.l1_only, avg.l1_steal, avg.l2_only, avg.full
        );
    }
}

fn print_table1() {
    header("Table 1: simulated systems");
    for (name, c) in [
        ("Fat CMP", SystemConfig::fat_cmp()),
        ("Lean CMP", SystemConfig::lean_cmp()),
    ] {
        println!("  {name}:");
        println!("    cores                {}", c.cores);
        println!("    threads/core         {}", c.threads_per_core);
        println!("    issue width          {}", c.issue_width);
        println!("    L1D ports            {}", c.l1d_ports);
        println!("    store queue          {}", c.store_queue);
        println!("    L1 hit               {} cycles", c.l1_hit_cycles);
        println!("    L2 hit (incl. xbar)  {} cycles", c.l2_hit_cycles);
        println!("    L2 banks             {}", c.l2_banks);
        println!("    memory               {} cycles", c.memory_cycles);
    }
}
