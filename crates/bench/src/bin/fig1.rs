//! Figure 1(b)/(c): extra storage and extra read energy of conventional
//! per-word codes (EDC8, SECDED, DECTED, QECPED, OECNED) for 64-bit and
//! 256-bit words.

use bench::{bar_row, header};
use cachegeom::{energy_overhead, storage_overhead, CacheSpec, CostModel, Objective};
use ecc::CodeKind;

fn main() {
    let model = CostModel::default();

    header("Figure 1(b): extra memory storage (% of data bits)");
    for (label, word) in [("64b word", 64usize), ("256b word", 256)] {
        println!("{label}:");
        for code in CodeKind::paper_set() {
            bar_row(
                &code.to_string(),
                storage_overhead(code, word) * 100.0,
                100.0,
            );
        }
    }

    header("Figure 1(c): extra energy per read (% of unprotected read)");
    for (label, spec) in [
        ("64b word / 64kB array", CacheSpec::l1_64kb()),
        ("256b word / 4MB array", CacheSpec::l2_4mb()),
    ] {
        println!("{label}:");
        for code in CodeKind::paper_set() {
            let e = energy_overhead(&model, &spec, code, Objective::Balanced) * 100.0;
            bar_row(&code.to_string(), e, 250.0);
        }
    }
}
