//! Statistical characterization of behaviour *beyond* each code's
//! guarantee: miscorrection rates for error weights above the design
//! distance. These are not correctness requirements — they quantify the
//! failure modes a designer weighs when choosing codes (the trade the
//! paper's Section 2 discusses).

use ecc::{Bch, Bits, Code, Decoded, Secded};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws `weight` distinct codeword positions and applies the flips.
fn random_pattern<R: Rng>(rng: &mut R, codeword: usize, weight: usize) -> Vec<usize> {
    let mut positions = Vec::with_capacity(weight);
    while positions.len() < weight {
        let p = rng.gen_range(0..codeword);
        if !positions.contains(&p) {
            positions.push(p);
        }
    }
    positions
}

fn characterize(code: &dyn Code, weight: usize, trials: usize, seed: u64) -> (f64, f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut corrected, mut detected, mut silent) = (0usize, 0usize, 0usize);
    for _ in 0..trials {
        let data = Bits::from_u64(rng.gen(), 64);
        let check = code.encode(&data);
        let mut d = data.clone();
        let mut c = check.clone();
        for p in random_pattern(&mut rng, code.codeword_bits(), weight) {
            if p < 64 {
                d.flip(p);
            } else {
                c.flip(p - 64);
            }
        }
        match code.decode(&d, &c) {
            Decoded::Clean => silent += 1,
            Decoded::Corrected { data: fixed, .. } => {
                if fixed == data {
                    corrected += 1;
                } else {
                    silent += 1; // miscorrection
                }
            }
            Decoded::Detected => detected += 1,
        }
    }
    let t = trials as f64;
    (corrected as f64 / t, detected as f64 / t, silent as f64 / t)
}

#[test]
fn secded_triple_errors_mostly_miscorrect() {
    // A known property of SECDED: weight-3 patterns have odd syndromes
    // and usually alias to a (wrong) single-bit correction. The test pins
    // the magnitude so regressions in the decoder are visible.
    let code = Secded::new(64);
    let (_, detected, silent) = characterize(&code, 3, 400, 1);
    assert!(
        silent > 0.5,
        "triple errors should usually miscorrect: silent={silent}"
    );
    // A minority land on unused syndromes and are detected.
    assert!(detected > 0.0 && detected < 0.5, "detected={detected}");
}

#[test]
fn dected_beyond_capability_rarely_silent() {
    // 4 errors against t=2: Berlekamp-Massey usually yields a locator of
    // degree > t or inconsistent roots -> detected. Some patterns
    // miscorrect; the extended parity kills all odd-weight aliasing, so
    // the silent rate stays a minority.
    let code = Bch::new(64, 2);
    let (corrected, detected, silent) = characterize(&code, 4, 300, 2);
    assert_eq!(corrected, 0.0, "4 errors can never be truly corrected");
    assert!(
        detected > 0.5,
        "most weight-4 patterns detected: {detected}"
    );
    assert!(silent < 0.5, "silent rate {silent}");
}

#[test]
fn odd_weights_never_silent_under_extended_parity() {
    // The extended parity bit makes every odd-weight pattern visible:
    // weight-5 against DECTED (t=2) must never decode Clean, and any
    // "correction" it proposes has even weight, so the total flip count
    // differs from the truth — but crucially the *clean* outcome is
    // impossible.
    let code = Bch::new(64, 2);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..200 {
        let data = Bits::from_u64(rng.gen(), 64);
        let check = code.encode(&data);
        let mut d = data.clone();
        let mut c = check.clone();
        for p in random_pattern(&mut rng, code.codeword_bits(), 5) {
            if p < 64 {
                d.flip(p);
            } else {
                c.flip(p - 64);
            }
        }
        assert_ne!(code.decode(&d, &c), Decoded::Clean);
    }
}

#[test]
fn stronger_codes_push_detection_higher() {
    // At a fixed overload (t+2 errors), stronger codes leave less silent
    // corruption — the quantitative argument for paying for OECNED.
    let (_, det2, _) = characterize(&Bch::new(64, 2), 4, 200, 4);
    let (_, det8, _) = characterize(&Bch::new(64, 8), 10, 200, 4);
    assert!(
        det8 >= det2 * 0.8,
        "OECNED overload detection {det8} should be in the class of DECTED's {det2}"
    );
}
