//! Equivalence property tests for the table-driven ECC fast paths.
//!
//! Every codec precomputes its parity/syndrome tables at construction and
//! keeps the original bit-serial implementation as an executable
//! reference (`encode_reference`, `syndromes_reference`). These tests
//! pin the two implementations together bit-for-bit across random data
//! words, random check-word corruption, and injected error patterns up
//! to `t + 1` flips, and assert the `Decoded` outcomes the shared decode
//! pipeline must produce for each error weight.

use ecc::{Bch, Bits, Code, Decoded, Edc, Secded};
use proptest::collection::vec;
use proptest::prelude::*;

fn bits_strategy(len: usize) -> impl Strategy<Value = Bits> {
    vec(any::<u64>(), len.div_ceil(64)).prop_map(move |limbs| Bits::from_limbs(&limbs, len))
}

/// Distinct codeword positions (data + check space) of size `count`.
fn distinct_positions(total: usize, count: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::sample::subsequence((0..total).collect::<Vec<_>>(), count)
}

fn apply_errors(code: &dyn Code, data: &Bits, check: &Bits, positions: &[usize]) -> (Bits, Bits) {
    let mut d = data.clone();
    let mut c = check.clone();
    for &p in positions {
        if p < code.data_bits() {
            d.flip(p);
        } else {
            c.flip(p - code.data_bits());
        }
    }
    (d, c)
}

/// The outcome the decode pipeline must produce for `positions` injected
/// into a fresh codeword of a `t`-correcting code: clean for no errors,
/// exact correction up to `t`, detection at `t + 1`.
fn assert_decode_outcome(code: &dyn Code, data: &Bits, check: &Bits, positions: &[usize]) {
    let (d, c) = apply_errors(code, data, check, positions);
    let outcome = code.decode(&d, &c);
    assert_eq!(
        code.check_clean(&d, &c),
        outcome.is_clean(),
        "check_clean disagrees with decode"
    );
    let t = code.correctable();
    if positions.is_empty() {
        assert_eq!(outcome, Decoded::Clean);
    } else if positions.len() <= t {
        match outcome {
            Decoded::Corrected {
                data: fixed,
                flipped,
            } => {
                assert_eq!(&fixed, data);
                assert_eq!(flipped, positions.to_vec());
            }
            other => panic!("expected correction, got {other:?}"),
        }
    } else if positions.len() == t + 1 {
        assert_eq!(outcome, Decoded::Detected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- EDC: interleaved parity -------------------------------------

    #[test]
    fn edc_encode_matches_reference(
        data64 in bits_strategy(64),
        data256 in bits_strategy(256),
        data48 in bits_strategy(48),
    ) {
        for (edc, data) in [
            (Edc::new(64, 8), &data64),
            (Edc::new(64, 16), &data64),
            (Edc::new(256, 16), &data256),
            (Edc::new(48, 8), &data48),
        ] {
            prop_assert_eq!(edc.encode(data), edc.encode_reference(data), "{}", edc.name());
        }
    }

    #[test]
    fn edc_clean_check_matches_reference(
        data in bits_strategy(64),
        check in bits_strategy(8),
    ) {
        // Against arbitrary (possibly corrupt) stored check words the
        // limb-mask syndrome must agree with the bit-serial re-encode.
        let edc = Edc::new(64, 8);
        let reference_clean = edc.encode_reference(&data) == check;
        prop_assert_eq!(edc.check_clean(&data, &check), reference_clean);
        let expected = if reference_clean { Decoded::Clean } else { Decoded::Detected };
        prop_assert_eq!(edc.decode(&data, &check), expected);
    }

    #[test]
    fn edc_decode_outcomes(
        data in bits_strategy(64),
        flips in 0usize..=1,
        seed in distinct_positions(72, 1),
    ) {
        let edc = Edc::new(64, 8);
        let check = edc.encode(&data);
        let positions = &seed[..flips.min(seed.len())];
        assert_decode_outcome(&edc, &data, &check, positions);
    }

    // ---- SECDED ------------------------------------------------------

    #[test]
    fn secded_encode_matches_reference(
        data64 in bits_strategy(64),
        data256 in bits_strategy(256),
        data48 in bits_strategy(48),
    ) {
        for (code, data) in [
            (Secded::new(64), &data64),
            (Secded::new(256), &data256),
            (Secded::new(48), &data48),
        ] {
            prop_assert_eq!(code.encode(data), code.encode_reference(data), "{}", code.name());
        }
    }

    #[test]
    fn secded_clean_check_matches_reference(
        data in bits_strategy(64),
        check in bits_strategy(8),
    ) {
        let code = Secded::new(64);
        let reference_clean = code.encode_reference(&data) == check;
        prop_assert_eq!(code.check_clean(&data, &check), reference_clean);
        prop_assert_eq!(code.decode(&data, &check).is_clean(), reference_clean);
    }

    #[test]
    fn secded_decode_outcomes(
        data in bits_strategy(64),
        flips in 0usize..=2,
        seed in distinct_positions(72, 2),
    ) {
        let code = Secded::new(64);
        let check = code.encode(&data);
        let positions = &seed[..flips.min(seed.len())];
        assert_decode_outcome(&code, &data, &check, positions);
    }

    // ---- BCH family (DECTED / QECPED / OECNED) -----------------------

    #[test]
    fn bch_encode_matches_reference_64(data in bits_strategy(64)) {
        for t in [2usize, 4, 8] {
            let code = Bch::new(64, t);
            prop_assert_eq!(code.encode(&data), code.encode_reference(&data), "t={}", t);
        }
    }

    #[test]
    fn bch_encode_matches_reference_256(data in bits_strategy(256)) {
        for t in [2usize, 4, 8] {
            let code = Bch::new(256, t);
            prop_assert_eq!(code.encode(&data), code.encode_reference(&data), "t={}", t);
        }
    }

    #[test]
    fn bch_syndromes_match_reference(
        data in bits_strategy(64),
        check in bits_strategy(15),
    ) {
        // Arbitrary corrupt stored pairs: the flattened alpha-power table
        // must reproduce the per-bit exponent arithmetic exactly.
        let code = Bch::new(64, 2);
        prop_assert_eq!(
            code.syndromes(&data, &check),
            code.syndromes_reference(&data, &check)
        );
    }

    #[test]
    fn bch_syndromes_match_reference_oecned(
        data in bits_strategy(64),
        check in bits_strategy(57),
    ) {
        let code = Bch::new(64, 8);
        prop_assert_eq!(
            code.syndromes(&data, &check),
            code.syndromes_reference(&data, &check)
        );
    }

    #[test]
    fn dected_decode_outcomes(
        data in bits_strategy(64),
        flips in 0usize..=3,
        seed in distinct_positions(79, 3),
    ) {
        let code = Bch::new(64, 2);
        let check = code.encode(&data);
        let positions = &seed[..flips.min(seed.len())];
        assert_decode_outcome(&code, &data, &check, positions);
    }

    #[test]
    fn qecped_decode_outcomes(
        data in bits_strategy(64),
        flips in 0usize..=5,
        seed in distinct_positions(93, 5),
    ) {
        let code = Bch::new(64, 4);
        let check = code.encode(&data);
        let positions = &seed[..flips.min(seed.len())];
        assert_decode_outcome(&code, &data, &check, positions);
    }

    #[test]
    fn oecned_decode_outcomes(
        data in bits_strategy(64),
        flips in 0usize..=9,
        seed in distinct_positions(121, 9),
    ) {
        let code = Bch::new(64, 8);
        let check = code.encode(&data);
        let positions = &seed[..flips.min(seed.len())];
        assert_decode_outcome(&code, &data, &check, positions);
    }

    // ---- Parity matrix consistency -----------------------------------

    #[test]
    fn parity_matrix_reproduces_encode(data in bits_strategy(64)) {
        // The Code::parity_matrix contract (encode is linear) is what the
        // memarray engine's row-level clean masks are built on.
        for code in [
            Box::new(Edc::new(64, 8)) as Box<dyn Code>,
            Box::new(Secded::new(64)),
            Box::new(Bch::new(64, 2)),
            Box::new(Bch::new(64, 8)),
        ] {
            let matrix = code.parity_matrix();
            let mut acc = Bits::zeros(code.check_bits());
            for i in data.iter_ones() {
                acc.xor_assign(&matrix[i]);
            }
            prop_assert_eq!(acc, code.encode(&data), "{}", code.name());
        }
    }
}
