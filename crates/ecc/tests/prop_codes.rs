//! Property-based tests for the codec guarantees: every code must honor
//! its advertised correction/detection capability on arbitrary data and
//! arbitrary error patterns.

use ecc::{Bch, Bits, Code, Decoded, Edc, Secded};
use proptest::collection::vec;
use proptest::prelude::*;

fn bits_strategy(len: usize) -> impl Strategy<Value = Bits> {
    vec(any::<u64>(), len.div_ceil(64)).prop_map(move |limbs| Bits::from_limbs(&limbs, len))
}

/// Distinct codeword positions (data + check space) of size `count`.
fn distinct_positions(total: usize, count: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::sample::subsequence((0..total).collect::<Vec<_>>(), count)
}

fn apply_errors(code: &dyn Code, data: &Bits, check: &Bits, positions: &[usize]) -> (Bits, Bits) {
    let mut d = data.clone();
    let mut c = check.clone();
    for &p in positions {
        if p < code.data_bits() {
            d.flip(p);
        } else {
            c.flip(p - code.data_bits());
        }
    }
    (d, c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn secded_corrects_any_single_error(
        data in bits_strategy(64),
        pos in 0usize..72,
    ) {
        let code = Secded::new(64);
        let check = code.encode(&data);
        let (d, c) = apply_errors(&code, &data, &check, &[pos]);
        match code.decode(&d, &c) {
            Decoded::Corrected { data: fixed, flipped } => {
                prop_assert_eq!(fixed, data);
                prop_assert_eq!(flipped, vec![pos]);
            }
            other => prop_assert!(false, "expected correction, got {:?}", other),
        }
    }

    #[test]
    fn secded_detects_any_double_error(
        data in bits_strategy(64),
        positions in distinct_positions(72, 2),
    ) {
        prop_assume!(positions.len() == 2);
        let code = Secded::new(64);
        let check = code.encode(&data);
        let (d, c) = apply_errors(&code, &data, &check, &positions);
        prop_assert_eq!(code.decode(&d, &c), Decoded::Detected);
    }

    #[test]
    fn edc_detects_any_burst(
        data in bits_strategy(64),
        start in 0usize..64,
        len in 1usize..=8,
    ) {
        let edc = Edc::new(64, 8);
        let check = edc.encode(&data);
        let mut noisy = data.clone();
        let end = (start + len).min(64);
        for i in start..end {
            noisy.flip(i);
        }
        prop_assert_eq!(edc.decode(&noisy, &check), Decoded::Detected);
    }

    #[test]
    fn dected_corrects_any_two_errors(
        data in bits_strategy(64),
        positions in distinct_positions(79, 2),
    ) {
        prop_assume!(positions.len() == 2);
        let code = Bch::new(64, 2);
        let check = code.encode(&data);
        let (d, c) = apply_errors(&code, &data, &check, &positions);
        match code.decode(&d, &c) {
            Decoded::Corrected { data: fixed, flipped } => {
                prop_assert_eq!(fixed, data);
                prop_assert_eq!(flipped, positions);
            }
            other => prop_assert!(false, "expected correction, got {:?}", other),
        }
    }

    #[test]
    fn dected_detects_any_three_errors(
        data in bits_strategy(64),
        positions in distinct_positions(79, 3),
    ) {
        prop_assume!(positions.len() == 3);
        let code = Bch::new(64, 2);
        let check = code.encode(&data);
        let (d, c) = apply_errors(&code, &data, &check, &positions);
        prop_assert_eq!(code.decode(&d, &c), Decoded::Detected);
    }

    #[test]
    fn qecped_corrects_any_four_errors(
        data in bits_strategy(64),
        positions in distinct_positions(93, 4),
    ) {
        prop_assume!(positions.len() == 4);
        let code = Bch::new(64, 4);
        let check = code.encode(&data);
        let (d, c) = apply_errors(&code, &data, &check, &positions);
        match code.decode(&d, &c) {
            Decoded::Corrected { data: fixed, .. } => prop_assert_eq!(fixed, data),
            other => prop_assert!(false, "expected correction, got {:?}", other),
        }
    }

    #[test]
    fn qecped_detects_any_five_errors(
        data in bits_strategy(64),
        positions in distinct_positions(93, 5),
    ) {
        prop_assume!(positions.len() == 5);
        let code = Bch::new(64, 4);
        let check = code.encode(&data);
        let (d, c) = apply_errors(&code, &data, &check, &positions);
        prop_assert_eq!(code.decode(&d, &c), Decoded::Detected);
    }

    #[test]
    fn oecned_corrects_any_eight_errors(
        data in bits_strategy(64),
        positions in distinct_positions(121, 8),
    ) {
        prop_assume!(positions.len() == 8);
        let code = Bch::new(64, 8);
        let check = code.encode(&data);
        let (d, c) = apply_errors(&code, &data, &check, &positions);
        match code.decode(&d, &c) {
            Decoded::Corrected { data: fixed, .. } => prop_assert_eq!(fixed, data),
            other => prop_assert!(false, "expected correction, got {:?}", other),
        }
    }

    #[test]
    fn oecned_detects_any_nine_errors(
        data in bits_strategy(64),
        positions in distinct_positions(121, 9),
    ) {
        prop_assume!(positions.len() == 9);
        let code = Bch::new(64, 8);
        let check = code.encode(&data);
        let (d, c) = apply_errors(&code, &data, &check, &positions);
        prop_assert_eq!(code.decode(&d, &c), Decoded::Detected);
    }

    #[test]
    fn wide_word_dected_roundtrip(
        data in bits_strategy(256),
        positions in distinct_positions(275, 2),
    ) {
        prop_assume!(positions.len() == 2);
        let code = Bch::new(256, 2);
        let check = code.encode(&data);
        let (d, c) = apply_errors(&code, &data, &check, &positions);
        match code.decode(&d, &c) {
            Decoded::Corrected { data: fixed, .. } => prop_assert_eq!(fixed, data),
            other => prop_assert!(false, "expected correction, got {:?}", other),
        }
    }

    #[test]
    fn encode_is_deterministic(data in bits_strategy(64)) {
        for code in [
            Box::new(Secded::new(64)) as Box<dyn Code>,
            Box::new(Edc::new(64, 8)),
            Box::new(Bch::new(64, 2)),
        ] {
            let a = code.encode(&data);
            let b = code.encode(&data);
            prop_assert_eq!(a, b);
        }
    }
}
