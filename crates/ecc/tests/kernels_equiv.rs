//! Equivalence property tests for the unrolled limb kernels and the
//! scratch-based decode path.
//!
//! `ecc::kernels` processes the hot XOR-fold / masked-parity loops
//! u64x4-style (four independent accumulators per iteration). These
//! tests pin every kernel bit-for-bit against the obvious
//! one-limb-at-a-time reference across random limb slices of every tail
//! shape (lengths 0..14 cover all `chunks_exact(4)` remainders), pin the
//! `Bits`-level routing at odd bit widths (tail limbs partially used),
//! and pin `Code::decode_into` — the zero-allocation scratch decode the
//! engine repair path and the benches use — against `Code::decode`
//! outcome-for-outcome across random error patterns, including scratch
//! reuse across consecutive decodes.

use ecc::{kernels, Bch, Bits, Code, DecodeScratch, Decoded, DecodedInPlace, Edc, Secded};
use proptest::collection::vec;
use proptest::prelude::*;

/// Equal-length random limb slice pairs covering all unroll tails
/// (sample max-width vectors and truncate to a shared random length).
fn limb_pair() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    (0usize..14, vec(any::<u64>(), 14), vec(any::<u64>(), 14))
        .prop_map(|(n, a, b)| (a[..n].to_vec(), b[..n].to_vec()))
}

/// Random `Bits` of the given bit length (tail limb masked by the type).
fn bits_strategy(len: usize) -> impl Strategy<Value = Bits> {
    vec(any::<u64>(), len.div_ceil(64)).prop_map(move |limbs| Bits::from_limbs(&limbs, len))
}

/// Equal-width random `Bits` pairs at odd widths: exercises partially
/// used tail limbs (`from_limbs` truncates the raw limbs to the width
/// and masks the tail).
fn bits_pair() -> impl Strategy<Value = (Bits, Bits)> {
    (1usize..260, vec(any::<u64>(), 5), vec(any::<u64>(), 5))
        .prop_map(|(w, ra, rb)| (Bits::from_limbs(&ra, w), Bits::from_limbs(&rb, w)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xor_fold_matches_reference(pair in limb_pair()) {
        let (a, _) = pair;
        let expect = a.iter().fold(0u64, |acc, &l| acc ^ l);
        prop_assert_eq!(kernels::xor_fold(&a), expect);
    }

    #[test]
    fn xor_fold_masked_matches_reference(pair in limb_pair()) {
        let (a, b) = pair;
        let expect = a.iter().zip(&b).fold(0u64, |acc, (&x, &y)| acc ^ (x & y));
        prop_assert_eq!(kernels::xor_fold_masked(&a, &b), expect);
        prop_assert_eq!(
            kernels::masked_parity(&a, &b),
            expect.count_ones() & 1 == 1
        );
    }

    #[test]
    fn xor_accumulate_matches_reference(pair in limb_pair()) {
        let (a, b) = pair;
        let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
        let mut dst = a.clone();
        kernels::xor_accumulate(&mut dst, &b);
        prop_assert_eq!(dst, expect);
    }

    #[test]
    fn predicates_match_reference(pair in limb_pair()) {
        let (a, b) = pair;
        prop_assert_eq!(kernels::any_nonzero(&a), a.iter().any(|&l| l != 0));
        prop_assert_eq!(
            kernels::any_intersection(&a, &b),
            a.iter().zip(&b).any(|(&x, &y)| x & y != 0)
        );
        let expect: usize = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (x ^ y).count_ones() as usize)
            .sum();
        prop_assert_eq!(kernels::xor_popcount(&a, &b), expect);
    }

    /// `Bits`-level routing at odd widths: the per-bit reference walks
    /// every position, so a kernel that mishandled a partially used
    /// tail limb (masked or not) would diverge here.
    #[test]
    fn bits_masked_parity_matches_per_bit(pair in bits_pair()) {
        let (a, b) = pair;
        let expect = (0..a.len()).filter(|&i| a.get(i) && b.get(i)).count() % 2 == 1;
        prop_assert_eq!(a.masked_parity(&b), expect);
        let ones: usize = (0..a.len()).filter(|&i| a.get(i)).count();
        prop_assert_eq!(a.parity(), ones % 2 == 1);
        prop_assert_eq!(a.is_zero(), ones == 0);
        let distance = (0..a.len()).filter(|&i| a.get(i) != b.get(i)).count();
        prop_assert_eq!(a.xor(&b).count_ones(), distance);
    }
}

/// Every horizontal code the paper compares, over 64-bit words.
fn codecs() -> Vec<Box<dyn Code>> {
    vec![
        Box::new(Edc::new(64, 8)),
        Box::new(Secded::new(64)),
        Box::new(Bch::new(64, 2)),
        Box::new(Bch::new(64, 4)),
        Box::new(Bch::new(64, 8)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `decode_into` with a reused scratch must agree with `decode`
    /// outcome-for-outcome, bit-for-bit, for every codec and error
    /// weight from clean through just-past-correctable. The scratch and
    /// output buffer are shared across all decodes of one case, pinning
    /// the reuse contract (a stale syndrome or locator surviving into
    /// the next call would diverge here).
    #[test]
    fn decode_into_matches_decode(
        data in bits_strategy(64),
        seed in any::<u64>(),
    ) {
        for code in codecs() {
            let check = code.encode(&data);
            let mut out = Bits::zeros(code.data_bits());
            let mut scratch = DecodeScratch::default();
            let total = code.codeword_bits();
            for weight in 0..=code.correctable() + 1 {
                // Deterministic distinct positions from the seed.
                let mut d = data.clone();
                let mut c = check.clone();
                let mut pos = Vec::new();
                let mut s = seed;
                while pos.len() < weight {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let p = (s >> 33) as usize % total;
                    if !pos.contains(&p) {
                        pos.push(p);
                        if p < code.data_bits() {
                            d.flip(p);
                        } else {
                            c.flip(p - code.data_bits());
                        }
                    }
                }
                let reference = code.decode(&d, &c);
                let in_place = code.decode_into(&d, &c, &mut out, &mut scratch);
                match (&reference, in_place) {
                    (Decoded::Clean, DecodedInPlace::Clean)
                    | (Decoded::Detected, DecodedInPlace::Detected) => {}
                    (
                        Decoded::Corrected { data: fixed, flipped },
                        DecodedInPlace::Corrected,
                    ) => {
                        prop_assert_eq!(&out, fixed, "{} corrected word", code.name());
                        prop_assert_eq!(
                            &scratch.flipped, flipped,
                            "{} flipped positions", code.name()
                        );
                    }
                    (r, i) => panic!(
                        "{}: decode {r:?} vs decode_into {i:?} at weight {weight}",
                        code.name()
                    ),
                }
            }
        }
    }
}
