//! Single-error-correct, double-error-detect (SECDED) extended Hamming
//! codes for arbitrary data widths.
//!
//! The construction is the classic extended Hamming code: `m` syndrome bits
//! placed (logically) at power-of-two positions of the Hamming numbering,
//! plus one overall parity bit. For the paper's word sizes this yields the
//! familiar geometries:
//!
//! | data bits | check bits | codeword |
//! |-----------|------------|----------|
//! | 64        | 8          | (72,64)  |
//! | 256       | 10         | (266,256)|
//! | 48        | 8          | (56,48)  |
//!
//! Decoding distinguishes three cases from the (syndrome, overall-parity)
//! pair: clean, single-bit error (corrected in-line), and double-bit error
//! (detected, uncorrectable).

use crate::code::{validate_widths, Code, Decoded};
use crate::Bits;

/// An extended Hamming SECDED code over `k` data bits.
///
/// # Examples
///
/// ```
/// use ecc::{Code, Decoded, Secded, Bits};
///
/// let code = Secded::new(64);
/// assert_eq!(code.check_bits(), 8); // (72,64)
///
/// let data = Bits::from_u64(42, 64);
/// let check = code.encode(&data);
/// let mut two = data.clone();
/// two.flip(0);
/// two.flip(1);
/// assert_eq!(code.decode(&two, &check), Decoded::Detected);
/// ```
#[derive(Clone, Debug)]
pub struct Secded {
    data_bits: usize,
    /// Number of Hamming syndrome bits (excludes the overall parity bit).
    m: usize,
    /// `hamming_pos[i]` = Hamming-numbering position (1-based) of data bit `i`.
    hamming_pos: Vec<u32>,
    /// Inverse map: Hamming position -> data bit index (or check index).
    pos_to_bit: Vec<PosKind>,
    /// Precomputed syndrome masks, flattened `[limb * m + c]`: the bits of
    /// data limb `limb` that feed syndrome bit `c` (i.e. whose Hamming
    /// position has bit `c` set). Encoding and syndrome extraction reduce
    /// to one AND + popcount per (limb, syndrome-bit) pair.
    limb_masks: Vec<u64>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PosKind {
    /// Position unused (beyond the codeword).
    Unused,
    /// Hamming parity bit `i` (power-of-two position).
    Check(usize),
    /// Data bit `i`.
    Data(usize),
}

impl Secded {
    /// Creates a SECDED code for `data_bits`-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `data_bits == 0`.
    pub fn new(data_bits: usize) -> Self {
        assert!(data_bits > 0, "SECDED needs a non-empty data word");
        // Smallest m with 2^m - 1 - m >= data_bits.
        let mut m = 2usize;
        while (1usize << m) - 1 - m < data_bits {
            m += 1;
        }
        let max_pos = data_bits + m; // highest used Hamming position
        let mut hamming_pos = Vec::with_capacity(data_bits);
        let mut pos_to_bit = vec![PosKind::Unused; max_pos + 1];
        let mut next = 1u32;
        let mut data_idx = 0usize;
        while data_idx < data_bits {
            if (next & (next - 1)) == 0 {
                // power of two -> parity position
                let check_idx = next.trailing_zeros() as usize;
                pos_to_bit[next as usize] = PosKind::Check(check_idx);
            } else {
                pos_to_bit[next as usize] = PosKind::Data(data_idx);
                hamming_pos.push(next);
                data_idx += 1;
            }
            next += 1;
        }
        // Any parity positions beyond the last data bit are impossible by
        // construction of m (all m parity positions are <= max_pos).
        let limbs = data_bits.div_ceil(64);
        let mut limb_masks = vec![0u64; limbs * m];
        for (i, &pos) in hamming_pos.iter().enumerate() {
            for c in 0..m {
                if pos & (1 << c) != 0 {
                    limb_masks[(i / 64) * m + c] |= 1u64 << (i % 64);
                }
            }
        }
        Secded {
            data_bits,
            m,
            hamming_pos,
            pos_to_bit,
            limb_masks,
        }
    }

    /// Number of Hamming syndrome bits (check bits minus the overall
    /// parity bit).
    pub fn syndrome_bits(&self) -> usize {
        self.m
    }

    /// Hamming syndrome of the data word alone, via the precomputed limb
    /// masks (one AND + popcount per mask instead of a per-set-bit loop).
    #[inline]
    fn data_syndrome(&self, data: &Bits) -> u32 {
        let mut syndrome = 0u32;
        for (l, &limb) in data.as_limbs().iter().enumerate() {
            let base = l * self.m;
            for (c, &mask) in self.limb_masks[base..base + self.m].iter().enumerate() {
                syndrome ^= ((limb & mask).count_ones() & 1) << c;
            }
        }
        syndrome
    }

    /// Computes the `m`-bit Hamming syndrome plus overall parity of a
    /// stored pair. A zero return means clean.
    #[inline]
    fn raw_syndrome(&self, data: &Bits, check: &Bits) -> (u32, bool) {
        // The stored check's contribution to syndrome bit `c` is its bit
        // `c`, so the whole check word folds in as one masked XOR.
        let check_mask = (1u64 << self.m) - 1;
        let syndrome = self.data_syndrome(data) ^ (check.to_u64() & check_mask) as u32;
        let overall = data.parity() ^ check.parity();
        (syndrome, overall)
    }

    /// Reference bit-serial encoder: XOR of `hamming_pos` over the set
    /// data bits, one at a time. Retained (and exercised by the
    /// equivalence property tests) as the executable specification the
    /// table-driven path must match bit-for-bit.
    pub fn encode_reference(&self, data: &Bits) -> Bits {
        assert_eq!(data.len(), self.data_bits, "data width mismatch");
        let mut syndrome = 0u32;
        for i in data.iter_ones() {
            syndrome ^= self.hamming_pos[i];
        }
        self.check_from_syndrome(data, syndrome)
    }

    /// Assembles the stored check word from a recomputed data syndrome.
    fn check_from_syndrome(&self, data: &Bits, syndrome: u32) -> Bits {
        let mut check = Bits::zeros(self.m + 1);
        for c in 0..self.m {
            if syndrome & (1 << c) != 0 {
                check.set(c, true);
            }
        }
        // Overall parity makes the whole codeword even-parity.
        let overall = data.parity() ^ check.parity();
        check.set(self.m, overall);
        check
    }

    /// Weight (number of covered codeword positions) of each syndrome bit's
    /// XOR tree, used by the logic-cost model.
    pub fn syndrome_tree_weights(&self) -> Vec<usize> {
        let mut weights = vec![0usize; self.m + 1];
        for &pos in &self.hamming_pos {
            for (c, w) in weights.iter_mut().enumerate().take(self.m) {
                if pos & (1 << c) != 0 {
                    *w += 1;
                }
            }
        }
        // each syndrome bit also XORs its stored check bit
        for w in weights.iter_mut().take(self.m) {
            *w += 1;
        }
        // overall parity covers the entire codeword
        weights[self.m] = self.codeword_bits();
        weights
    }
}

impl Code for Secded {
    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn check_bits(&self) -> usize {
        self.m + 1
    }

    fn encode(&self, data: &Bits) -> Bits {
        assert_eq!(data.len(), self.data_bits, "data width mismatch");
        let syndrome = self.data_syndrome(data);
        self.check_from_syndrome(data, syndrome)
    }

    fn check_clean(&self, data: &Bits, check: &Bits) -> bool {
        validate_widths(self, data, check);
        let (syndrome, overall) = self.raw_syndrome(data, check);
        syndrome == 0 && !overall
    }

    fn decode(&self, data: &Bits, check: &Bits) -> Decoded {
        validate_widths(self, data, check);
        let (syndrome, overall) = self.raw_syndrome(data, check);
        match (syndrome, overall) {
            (0, false) => Decoded::Clean,
            (0, true) => {
                // Error in the overall parity bit itself.
                Decoded::Corrected {
                    data: data.clone(),
                    flipped: vec![self.data_bits + self.m],
                }
            }
            (s, true) => {
                // Single-bit error at Hamming position s.
                let pos = s as usize;
                if pos >= self.pos_to_bit.len() {
                    // Syndrome points outside the codeword: multi-bit error.
                    return Decoded::Detected;
                }
                match self.pos_to_bit[pos] {
                    PosKind::Data(i) => {
                        let mut fixed = data.clone();
                        fixed.flip(i);
                        Decoded::Corrected {
                            data: fixed,
                            flipped: vec![i],
                        }
                    }
                    PosKind::Check(c) => Decoded::Corrected {
                        data: data.clone(),
                        flipped: vec![self.data_bits + c],
                    },
                    PosKind::Unused => Decoded::Detected,
                }
            }
            (_, false) => Decoded::Detected, // even number of flips >= 2
        }
    }

    fn correctable(&self) -> usize {
        1
    }

    fn detectable(&self) -> usize {
        2
    }

    fn name(&self) -> String {
        format!("SECDED({},{})", self.codeword_bits(), self.data_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        assert_eq!(Secded::new(64).check_bits(), 8);
        assert_eq!(Secded::new(256).check_bits(), 10);
        assert_eq!(Secded::new(48).check_bits(), 7);
        assert_eq!(Secded::new(64).name(), "SECDED(72,64)");
        assert_eq!(Secded::new(256).name(), "SECDED(266,256)");
    }

    #[test]
    fn clean_roundtrip() {
        let code = Secded::new(64);
        let data = Bits::from_u64(0x0123_4567_89AB_CDEF, 64);
        let check = code.encode(&data);
        assert_eq!(code.decode(&data, &check), Decoded::Clean);
    }

    #[test]
    fn corrects_every_single_data_bit() {
        let code = Secded::new(64);
        let data = Bits::from_u64(0xD00D_8BAD_F00D_CAFE, 64);
        let check = code.encode(&data);
        for i in 0..64 {
            let mut noisy = data.clone();
            noisy.flip(i);
            match code.decode(&noisy, &check) {
                Decoded::Corrected {
                    data: fixed,
                    flipped,
                } => {
                    assert_eq!(fixed, data, "bit {i}");
                    assert_eq!(flipped, vec![i]);
                }
                other => panic!("bit {i}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrects_every_single_check_bit() {
        let code = Secded::new(64);
        let data = Bits::from_u64(77, 64);
        let check = code.encode(&data);
        for c in 0..code.check_bits() {
            let mut noisy_check = check.clone();
            noisy_check.flip(c);
            match code.decode(&data, &noisy_check) {
                Decoded::Corrected {
                    data: fixed,
                    flipped,
                } => {
                    assert_eq!(fixed, data, "check bit {c}");
                    assert_eq!(flipped, vec![64 + c]);
                }
                other => panic!("check bit {c}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn detects_all_adjacent_double_errors() {
        let code = Secded::new(64);
        let data = Bits::from_u64(0xAAAA_AAAA_5555_5555, 64);
        let check = code.encode(&data);
        for i in 0..63 {
            let mut noisy = data.clone();
            noisy.flip(i);
            noisy.flip(i + 1);
            assert_eq!(
                code.decode(&noisy, &check),
                Decoded::Detected,
                "double error at {i},{}",
                i + 1
            );
        }
    }

    #[test]
    fn detects_data_plus_check_double() {
        let code = Secded::new(64);
        let data = Bits::zeros(64);
        let check = code.encode(&data);
        let mut noisy = data.clone();
        noisy.flip(10);
        let mut noisy_check = check.clone();
        noisy_check.flip(0);
        assert_eq!(code.decode(&noisy, &noisy_check), Decoded::Detected);
    }

    #[test]
    fn wide_word_roundtrip() {
        let code = Secded::new(256);
        let data = Bits::from_positions(256, &[0, 100, 200, 255]);
        let check = code.encode(&data);
        assert_eq!(code.decode(&data, &check), Decoded::Clean);
        let mut noisy = data.clone();
        noisy.flip(200);
        match code.decode(&noisy, &check) {
            Decoded::Corrected { data: fixed, .. } => assert_eq!(fixed, data),
            other => panic!("expected correction, got {other:?}"),
        }
    }

    #[test]
    fn syndrome_tree_weights_sane() {
        let code = Secded::new(64);
        let w = code.syndrome_tree_weights();
        assert_eq!(w.len(), 8);
        // Overall parity covers the full 72-bit codeword.
        assert_eq!(w[7], 72);
        // Low syndrome bits cover roughly half the used positions; the top
        // bit of a shortened code covers only the positions above 64, so it
        // may be as small as 8 (7 data positions + its stored check bit).
        for (c, &wi) in w[..7].iter().enumerate() {
            assert!(
                (8..72).contains(&wi),
                "syndrome bit {c} weight {wi} implausible"
            );
        }
        assert!(w[0] > 16, "low syndrome bits should cover many positions");
    }
}
