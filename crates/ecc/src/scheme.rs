//! Named protection-scheme registry tying the paper's scheme labels
//! (EDC8, SECDED, DECTED, QECPED, OECNED) to concrete codecs, and the
//! composite "scheme + physical interleaving" configurations compared in
//! Figures 1, 3, and 7.

use crate::logic::{LogicCost, LogicModel};
use crate::{Bch, Code, Edc, Secded};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// The per-word code families evaluated in the paper.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CodeKind {
    /// `n`-way interleaved parity, detection only (`EDCn`).
    Edc(usize),
    /// Single-error-correct / double-error-detect extended Hamming.
    Secded,
    /// Double-error-correct / triple-error-detect BCH (t = 2).
    Dected,
    /// Quad-error-correct / penta-error-detect BCH (t = 4).
    Qecped,
    /// Octa-error-correct / nona-error-detect BCH (t = 8).
    Oecned,
}

/// Process-wide registry of shared codec instances, keyed by
/// `(CodeKind, data_bits)`. Entries are held weakly so codecs free their
/// precomputed tables once every array using them is dropped.
type CodecRegistry = Mutex<HashMap<(CodeKind, usize), Weak<dyn Code + Send + Sync>>>;

fn codec_registry() -> &'static CodecRegistry {
    static REGISTRY: OnceLock<CodecRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Cumulative count of actual codec constructions performed by
/// [`CodeKind::build_shared`] (cache misses). Tests assert against deltas
/// of this counter to prove table sets are built once and shared.
static SHARED_CODEC_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Total codec table sets constructed so far through the shared registry.
///
/// Monotonically increasing; take a snapshot before an operation and
/// compare after to count how many fresh table sets it caused.
pub fn shared_codec_builds() -> u64 {
    SHARED_CODEC_BUILDS.load(Ordering::SeqCst)
}

impl CodeKind {
    /// Instantiates the codec for a given data-word width.
    pub fn build(self, data_bits: usize) -> Box<dyn Code + Send + Sync> {
        match self {
            CodeKind::Edc(n) => Box::new(Edc::new(data_bits, n)),
            CodeKind::Secded => Box::new(Secded::new(data_bits)),
            CodeKind::Dected => Box::new(Bch::new(data_bits, 2)),
            CodeKind::Qecped => Box::new(Bch::new(data_bits, 4)),
            CodeKind::Oecned => Box::new(Bch::new(data_bits, 8)),
        }
    }

    /// Returns the process-wide shared codec instance for this kind and
    /// width, constructing it (and its precomputed parity/syndrome
    /// tables) only on first use. Every bank, array, and cache level
    /// asking for the same `(kind, data_bits)` pair receives clones of
    /// one `Arc`, so the table memory exists once regardless of how many
    /// banks the configuration is instantiated across.
    pub fn build_shared(self, data_bits: usize) -> Arc<dyn Code + Send + Sync> {
        let mut registry = codec_registry().lock().expect("codec registry poisoned");
        if let Some(existing) = registry.get(&(self, data_bits)).and_then(Weak::upgrade) {
            return existing;
        }
        let fresh: Arc<dyn Code + Send + Sync> = Arc::from(self.build(data_bits));
        SHARED_CODEC_BUILDS.fetch_add(1, Ordering::SeqCst);
        registry.insert((self, data_bits), Arc::downgrade(&fresh));
        fresh
    }

    /// Number of check bits the codec stores for `data_bits`-bit words.
    pub fn check_bits(self, data_bits: usize) -> usize {
        self.build(data_bits).check_bits()
    }

    /// Gate-level cost of the checker for `data_bits`-bit words.
    pub fn logic_cost(self, data_bits: usize) -> LogicCost {
        match self {
            CodeKind::Edc(n) => Edc::new(data_bits, n).logic_cost(),
            CodeKind::Secded => Secded::new(data_bits).logic_cost(),
            CodeKind::Dected => Bch::new(data_bits, 2).logic_cost(),
            CodeKind::Qecped => Bch::new(data_bits, 4).logic_cost(),
            CodeKind::Oecned => Bch::new(data_bits, 8).logic_cost(),
        }
    }

    /// Guaranteed random-error correction capability per word.
    pub fn correctable(self) -> usize {
        match self {
            CodeKind::Edc(_) => 0,
            CodeKind::Secded => 1,
            CodeKind::Dected => 2,
            CodeKind::Qecped => 4,
            CodeKind::Oecned => 8,
        }
    }

    /// Length of a contiguous in-word burst that is at least detected.
    pub fn burst_detectable(self, _data_bits: usize) -> usize {
        match self {
            CodeKind::Edc(n) => n,
            // t-correcting BCH detects t+1; SECDED detects 2.
            _ => self.correctable() + 1,
        }
    }

    /// Length of a contiguous in-word burst that is corrected.
    pub fn burst_correctable(self) -> usize {
        self.correctable()
    }

    /// The five labels used throughout the paper's figures.
    pub fn paper_set() -> [CodeKind; 5] {
        [
            CodeKind::Edc(8),
            CodeKind::Secded,
            CodeKind::Dected,
            CodeKind::Qecped,
            CodeKind::Oecned,
        ]
    }
}

impl fmt::Display for CodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeKind::Edc(n) => write!(f, "EDC{n}"),
            CodeKind::Secded => write!(f, "SECDED"),
            CodeKind::Dected => write!(f, "DECTED"),
            CodeKind::Qecped => write!(f, "QECPED"),
            CodeKind::Oecned => write!(f, "OECNED"),
        }
    }
}

/// A per-word code combined with a physical bit-interleaving degree —
/// the unit of comparison in Figures 1, 3, and 7 (e.g. `DECTED+Intv16`).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InterleavedScheme {
    /// The per-word code.
    pub code: CodeKind,
    /// Physical bit-interleaving degree (1 = none).
    pub interleave: usize,
}

impl InterleavedScheme {
    /// Creates a scheme descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `interleave == 0`.
    pub fn new(code: CodeKind, interleave: usize) -> Self {
        assert!(interleave >= 1, "interleave degree must be >= 1");
        InterleavedScheme { code, interleave }
    }

    /// The physically contiguous error width (bits along a row) that the
    /// scheme corrects: per-word burst correction times interleave degree.
    pub fn row_burst_correctable(&self) -> usize {
        self.code.burst_correctable() * self.interleave
    }

    /// The physically contiguous error width that the scheme detects.
    pub fn row_burst_detectable(&self, data_bits: usize) -> usize {
        self.code.burst_detectable(data_bits) * self.interleave
    }

    /// Storage overhead relative to data bits.
    pub fn storage_overhead(&self, data_bits: usize) -> f64 {
        self.code.check_bits(data_bits) as f64 / data_bits as f64
    }

    /// The conventional configurations that reach 32-bit row coverage,
    /// as compared in Figure 7.
    pub fn conventional_32bit_set() -> [InterleavedScheme; 3] {
        [
            InterleavedScheme::new(CodeKind::Dected, 16),
            InterleavedScheme::new(CodeKind::Qecped, 8),
            InterleavedScheme::new(CodeKind::Oecned, 4),
        ]
    }

    /// The baseline both Figure 7 panels normalize to.
    pub fn figure7_baseline() -> InterleavedScheme {
        InterleavedScheme::new(CodeKind::Secded, 2)
    }
}

impl fmt::Display for InterleavedScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+Intv{}", self.code, self.interleave)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-and-impl witness for the gated serde derives: the
    /// feature-matrix CI job runs the suite with `--features serde`, so
    /// a rotted `cfg_attr` site fails there instead of never building.
    #[cfg(feature = "serde")]
    #[test]
    fn serde_derives_produce_impls() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<CodeKind>();
        assert_serde::<InterleavedScheme>();
    }

    #[test]
    fn check_bits_match_figure1() {
        // Figure 1(b): extra storage for 64b and 256b words.
        let k64: Vec<usize> = CodeKind::paper_set()
            .iter()
            .map(|c| c.check_bits(64))
            .collect();
        assert_eq!(k64, vec![8, 8, 15, 29, 57]);
        let k256: Vec<usize> = CodeKind::paper_set()
            .iter()
            .map(|c| c.check_bits(256))
            .collect();
        assert_eq!(k256, vec![8, 10, 19, 37, 73]);
    }

    #[test]
    fn figure3_overheads() {
        // Figure 3 captions: SECDED+Intv4 12.5%, OECNED+Intv4 89.1%,
        // (2D horizontal EDC8 is also 12.5%; +32 parity rows -> 25%).
        let secded = InterleavedScheme::new(CodeKind::Secded, 4);
        assert!((secded.storage_overhead(64) - 0.125).abs() < 1e-9);
        let oecned = InterleavedScheme::new(CodeKind::Oecned, 4);
        assert!((oecned.storage_overhead(64) - 0.8906).abs() < 1e-3);
    }

    #[test]
    fn conventional_32bit_coverage() {
        for s in InterleavedScheme::conventional_32bit_set() {
            assert_eq!(s.row_burst_correctable(), 32, "{s}");
        }
        // 2D horizontal EDC8+Intv4 detects 32-bit row bursts.
        let h = InterleavedScheme::new(CodeKind::Edc(8), 4);
        assert_eq!(h.row_burst_detectable(64), 32);
        // EDC16+Intv2 also detects 32-bit bursts (L2 config).
        let h2 = InterleavedScheme::new(CodeKind::Edc(16), 2);
        assert_eq!(h2.row_burst_detectable(256), 32);
    }

    #[test]
    fn display_labels() {
        assert_eq!(CodeKind::Edc(8).to_string(), "EDC8");
        assert_eq!(
            InterleavedScheme::new(CodeKind::Dected, 16).to_string(),
            "DECTED+Intv16"
        );
    }

    #[test]
    fn build_shared_reuses_one_instance() {
        // One test covers the whole registry lifecycle: the build
        // counter is process-global, so splitting these assertions
        // across parallel #[test] fns would race.
        let first = CodeKind::Dected.build_shared(48);
        let second = CodeKind::Dected.build_shared(48);
        assert!(
            Arc::ptr_eq(&first, &second),
            "same (kind, width) must share one codec"
        );
        // A different width is a different codec.
        let other = CodeKind::Dected.build_shared(32);
        assert!(!Arc::ptr_eq(&first, &other));
        // Counter deltas: widths 44/45 with EDC4 are unique to this test,
        // and other tests in this binary never call build_shared, so the
        // deltas below are exact even under parallel test execution.
        let before = shared_codec_builds();
        let a = CodeKind::Edc(4).build_shared(44);
        let a2 = CodeKind::Edc(4).build_shared(44);
        assert_eq!(
            shared_codec_builds(),
            before + 1,
            "second request must not rebuild the tables"
        );
        assert!(Arc::ptr_eq(&a, &a2));
        drop(a);
        drop(a2);
        // The weak entry is dead; the next request constructs afresh.
        let _b = CodeKind::Edc(4).build_shared(44);
        assert_eq!(shared_codec_builds(), before + 2);
    }

    #[test]
    fn builds_working_codecs() {
        use crate::{Bits, Decoded};
        for kind in CodeKind::paper_set() {
            let code = kind.build(64);
            let data = Bits::from_u64(0x5A5A_5A5A_5A5A_5A5A, 64);
            let check = code.encode(&data);
            assert_eq!(code.decode(&data, &check), Decoded::Clean, "{kind}");
        }
    }
}
