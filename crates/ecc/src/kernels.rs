//! Unrolled limb kernels for the hot XOR-fold / masked-parity loops.
//!
//! Every syndrome check, clean-mask probe, and vertical-parity fold in
//! the workspace bottoms out in one of a handful of limb-slice loops:
//! XOR-fold a slice, XOR-fold the AND of two slices, XOR one slice into
//! another, or ask whether any limb (or any pairwise AND) is nonzero.
//! These loops are embarrassingly wide — no carries, no cross-limb
//! dependencies — so this module processes them u64x4-style: four
//! independent accumulators per iteration via `chunks_exact(4)`, which
//! the compiler turns into SIMD lanes (SSE2/AVX2 on x86-64, NEON on
//! aarch64) without any target-feature gating or new dependencies.
//!
//! All kernels are allocation-free and total: slices of unequal length
//! are a caller bug and panic via the zip length debug assertions in the
//! callers ([`crate::Bits`] asserts bit-length equality before calling
//! in). Tail limbs (slice length not divisible by 4) go through a plain
//! remainder loop, so odd widths cost at most three scalar operations.
//!
//! Correctness is pinned by in-module tests against the obvious
//! one-limb-at-a-time reference and, at the workspace level, by the
//! proptest equivalence suites (`kernels_equiv.rs`,
//! `batch_clean_equiv.rs`).

/// XOR-fold of a limb slice: `a[0] ^ a[1] ^ ... ^ a[n-1]` (0 when empty).
///
/// The popcount parity of the result is the whole-vector parity, because
/// XOR preserves per-bit-position parity across limbs.
#[inline]
pub fn xor_fold(a: &[u64]) -> u64 {
    let mut chunks = a.chunks_exact(4);
    let (mut x0, mut x1, mut x2, mut x3) = (0u64, 0u64, 0u64, 0u64);
    for c in &mut chunks {
        x0 ^= c[0];
        x1 ^= c[1];
        x2 ^= c[2];
        x3 ^= c[3];
    }
    let mut acc = x0 ^ x1 ^ x2 ^ x3;
    for &l in chunks.remainder() {
        acc ^= l;
    }
    acc
}

/// XOR-fold of the pairwise AND of two limb slices:
/// `(a[0] & b[0]) ^ (a[1] & b[1]) ^ ...` over `min(a.len(), b.len())`
/// limbs. The popcount parity of the result is the masked parity — the
/// hot primitive behind matrix-row syndrome checks and clean-mask
/// probes.
#[inline]
pub fn xor_fold_masked(a: &[u64], b: &[u64]) -> u64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    let (mut x0, mut x1, mut x2, mut x3) = (0u64, 0u64, 0u64, 0u64);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        x0 ^= ca[0] & cb[0];
        x1 ^= ca[1] & cb[1];
        x2 ^= ca[2] & cb[2];
        x3 ^= ca[3] & cb[3];
    }
    let mut acc = x0 ^ x1 ^ x2 ^ x3;
    for (&la, &lb) in ac.remainder().iter().zip(bc.remainder()) {
        acc ^= la & lb;
    }
    acc
}

/// Parity of the AND of two limb slices: `true` when the intersection
/// has an odd number of set bits. One fused fold plus a single popcount.
#[inline]
pub fn masked_parity(a: &[u64], b: &[u64]) -> bool {
    xor_fold_masked(a, b).count_ones() & 1 == 1
}

/// XORs `src` into `dst` limb-wise over `min` length — the
/// vertical-parity fold. Processed in groups of four so the store/load
/// pairs vectorize.
#[inline]
pub fn xor_accumulate(dst: &mut [u64], src: &[u64]) {
    let n = dst.len().min(src.len());
    let (dst, src) = (&mut dst[..n], &src[..n]);
    let mut dc = dst.chunks_exact_mut(4);
    let mut sc = src.chunks_exact(4);
    for (cd, cs) in (&mut dc).zip(&mut sc) {
        cd[0] ^= cs[0];
        cd[1] ^= cs[1];
        cd[2] ^= cs[2];
        cd[3] ^= cs[3];
    }
    for (d, &s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d ^= s;
    }
}

/// Popcount of the pairwise XOR of two limb slices over
/// `min(a.len(), b.len())` limbs — the Hamming distance between two
/// equal-width bit rows. Used by the repair paths to count bit flips
/// without materializing the difference vector.
#[inline]
pub fn xor_popcount(a: &[u64], b: &[u64]) -> usize {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    let (mut x0, mut x1, mut x2, mut x3) = (0usize, 0usize, 0usize, 0usize);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        x0 += (ca[0] ^ cb[0]).count_ones() as usize;
        x1 += (ca[1] ^ cb[1]).count_ones() as usize;
        x2 += (ca[2] ^ cb[2]).count_ones() as usize;
        x3 += (ca[3] ^ cb[3]).count_ones() as usize;
    }
    let mut acc = x0 + x1 + x2 + x3;
    for (&la, &lb) in ac.remainder().iter().zip(bc.remainder()) {
        acc += (la ^ lb).count_ones() as usize;
    }
    acc
}

/// Whether any limb is nonzero. OR-folds in groups of four; short
/// slices (the common row width is 5 limbs) stay branch-cheap.
#[inline]
pub fn any_nonzero(a: &[u64]) -> bool {
    let mut chunks = a.chunks_exact(4);
    let mut acc = 0u64;
    for c in &mut chunks {
        acc |= c[0] | c[1] | c[2] | c[3];
    }
    for &l in chunks.remainder() {
        acc |= l;
    }
    acc != 0
}

/// Whether the pairwise AND of two limb slices has any bit set.
#[inline]
pub fn any_intersection(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    let mut acc = 0u64;
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        acc |= (ca[0] & cb[0]) | (ca[1] & cb[1]) | (ca[2] & cb[2]) | (ca[3] & cb[3]);
    }
    for (&la, &lb) in ac.remainder().iter().zip(bc.remainder()) {
        acc |= la & lb;
    }
    acc != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random limbs (splitmix64) so the tests cover
    /// dense bit patterns without a RNG dependency in this crate.
    fn limbs(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    // Every length from 0 through a few unroll periods, so all tail
    // shapes (0..=3 remainder limbs) are exercised.
    const LENS: std::ops::RangeInclusive<usize> = 0..=13;

    #[test]
    fn xor_fold_matches_reference() {
        for n in LENS {
            let a = limbs(1, n);
            let expect = a.iter().fold(0u64, |acc, &l| acc ^ l);
            assert_eq!(xor_fold(&a), expect, "n={n}");
        }
    }

    #[test]
    fn xor_fold_masked_matches_reference() {
        for n in LENS {
            let a = limbs(2, n);
            let b = limbs(3, n);
            let expect = a.iter().zip(&b).fold(0u64, |acc, (&x, &y)| acc ^ (x & y));
            assert_eq!(xor_fold_masked(&a, &b), expect, "n={n}");
            assert_eq!(masked_parity(&a, &b), expect.count_ones() & 1 == 1, "n={n}");
        }
    }

    #[test]
    fn xor_accumulate_matches_reference() {
        for n in LENS {
            let mut dst = limbs(4, n);
            let src = limbs(5, n);
            let expect: Vec<u64> = dst.iter().zip(&src).map(|(&d, &s)| d ^ s).collect();
            xor_accumulate(&mut dst, &src);
            assert_eq!(dst, expect, "n={n}");
        }
    }

    #[test]
    fn xor_popcount_matches_reference() {
        for n in LENS {
            let a = limbs(10, n);
            let b = limbs(11, n);
            let expect: usize = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| (x ^ y).count_ones() as usize)
                .sum();
            assert_eq!(xor_popcount(&a, &b), expect, "n={n}");
            assert_eq!(xor_popcount(&a, &a), 0, "n={n} self");
        }
    }

    #[test]
    fn any_nonzero_matches_reference() {
        for n in LENS {
            let mut a = vec![0u64; n];
            assert!(!any_nonzero(&a), "n={n} zeros");
            if n > 0 {
                a[n - 1] = 1 << 63;
                assert!(any_nonzero(&a), "n={n} last limb");
                a[n - 1] = 0;
                a[0] = 1;
                assert!(any_nonzero(&a), "n={n} first limb");
            }
        }
    }

    #[test]
    fn any_intersection_matches_reference() {
        for n in LENS {
            let a = limbs(6, n);
            let b = limbs(7, n);
            let expect = a.iter().zip(&b).any(|(&x, &y)| x & y != 0);
            assert_eq!(any_intersection(&a, &b), expect, "n={n}");
            assert!(!any_intersection(&a, &vec![0u64; n]), "n={n} vs zeros");
        }
    }

    #[test]
    fn shorter_operand_bounds_the_fold() {
        // Mixed lengths fold over the common prefix only — the contract
        // span-limited callers (clean-mask spans) rely on.
        let a = limbs(8, 9);
        let b = limbs(9, 5);
        let expect = a[..5]
            .iter()
            .zip(&b)
            .fold(0u64, |acc, (&x, &y)| acc ^ (x & y));
        assert_eq!(xor_fold_masked(&a, &b), expect);
        assert_eq!(xor_fold_masked(&b, &a), expect);
    }
}
