//! Binary BCH codes with an extended (overall) parity bit, used to model
//! the paper's conventional multi-bit ECC baselines:
//!
//! | name    | corrects | detects | 64-bit word | 256-bit word |
//! |---------|----------|---------|-------------|--------------|
//! | DECTED  | 2        | 3       | (79,64)     | (275,256)    |
//! | QECPED  | 4        | 5       | (93,64)     | (293,256)    |
//! | OECNED  | 8        | 9       | (121,64)    | (329,256)    |
//!
//! The codes are shortened primitive BCH codes over GF(2^m) with designed
//! distance `2t + 1`, extended by one overall parity bit to raise the
//! minimum distance to `2t + 2` (so `t`-bit errors are corrected and
//! `(t+1)`-bit errors are detected). Encoding is systematic polynomial
//! division; decoding computes the `2t` power-sum syndromes, runs
//! Berlekamp–Massey to find the error-locator polynomial, and locates
//! errors by Chien search.

use crate::code::{validate_widths, Code, DecodeScratch, Decoded, DecodedInPlace};
use crate::gf::Gf2m;
use crate::Bits;

/// A shortened, extended binary BCH code correcting up to `t` errors.
///
/// # Examples
///
/// ```
/// use ecc::{Bch, Code, Decoded, Bits};
///
/// // DECTED over 64-bit words: (79,64).
/// let code = Bch::new(64, 2);
/// assert_eq!(code.check_bits(), 15);
///
/// let data = Bits::from_u64(0xFACE_CAFE_BEEF_F00D, 64);
/// let check = code.encode(&data);
/// let mut noisy = data.clone();
/// noisy.flip(3);
/// noisy.flip(40);
/// match code.decode(&noisy, &check) {
///     Decoded::Corrected { data: fixed, .. } => assert_eq!(fixed, data),
///     other => panic!("expected correction, got {other:?}"),
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Bch {
    data_bits: usize,
    t: usize,
    field: Gf2m,
    /// Generator polynomial as a bit vector, low-degree coefficient first.
    generator: Bits,
    /// Degree of the generator polynomial = BCH parity bits.
    gen_degree: usize,
    /// Parity matrix rows packed as `u128`: `parity_rows[i]` is the BCH
    /// remainder of `x^(gen_degree + i) mod g(x)`, i.e. the check-bit
    /// contribution of data bit `i`. Encoding is an XOR-accumulate of
    /// these rows over the set data bits (`gen_degree <= 72` for every
    /// supported geometry, so one `u128` always suffices).
    parity_rows: Vec<u128>,
    /// Flattened per-position syndrome contributions:
    /// `syn_table[pos * 2t + j] = alpha^(pos * (j+1))`, for every codeword
    /// position `pos` in `0..gen_degree + data_bits`. Syndrome computation
    /// is a table-row XOR per set bit instead of exponent arithmetic.
    syn_table: Vec<u32>,
    /// Chien-search table: `chien[pos] = alpha^(-pos)`.
    chien: Vec<u32>,
}

impl Bch {
    /// Creates a `t`-error-correcting extended BCH code over
    /// `data_bits`-bit words, choosing the smallest field GF(2^m) whose
    /// shortened code fits.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`, `data_bits == 0`, or no supported field fits.
    pub fn new(data_bits: usize, t: usize) -> Self {
        assert!(t >= 1, "BCH needs t >= 1");
        assert!(data_bits > 0, "BCH needs a non-empty data word");
        // Find the smallest m such that k + (parity bits) <= 2^m - 1.
        for m in 3..=13u32 {
            let field = Gf2m::new(m);
            let generator = Self::generator_poly(&field, t);
            let gen_degree = generator.len() - 1;
            let n = (1usize << m) - 1;
            if data_bits + gen_degree <= n {
                assert!(
                    gen_degree < 128,
                    "generator degree {gen_degree} exceeds the u128 parity-row packing"
                );
                // Parity matrix: row i = x^(gen_degree + i) mod g(x),
                // computed incrementally (shift, conditional XOR of g).
                let mut g_mask = 0u128;
                for j in generator.iter_ones() {
                    g_mask |= 1u128 << j;
                }
                let top = 1u128 << gen_degree;
                // x^gen_degree mod g = g minus its leading term (GF(2)).
                let mut row = g_mask ^ top;
                let mut parity_rows = Vec::with_capacity(data_bits);
                for _ in 0..data_bits {
                    parity_rows.push(row);
                    row <<= 1;
                    if row & top != 0 {
                        row ^= g_mask;
                    }
                }
                // Syndrome contributions for every codeword position.
                let n_used = gen_degree + data_bits;
                let mut syn_table = Vec::with_capacity(n_used * 2 * t);
                let mut chien = Vec::with_capacity(n_used);
                for pos in 0..n_used {
                    for j in 1..=(2 * t) {
                        syn_table.push(field.alpha_pow((pos * j) as i64));
                    }
                    chien.push(field.alpha_pow(-(pos as i64)));
                }
                return Bch {
                    data_bits,
                    t,
                    field,
                    generator,
                    gen_degree,
                    parity_rows,
                    syn_table,
                    chien,
                };
            }
        }
        panic!("no supported GF(2^m) fits data_bits={data_bits}, t={t}");
    }

    /// The correction capability `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// The underlying field degree m.
    pub fn field_degree(&self) -> u32 {
        self.field.degree()
    }

    /// Number of BCH parity bits (excluding the extended parity bit).
    pub fn bch_parity_bits(&self) -> usize {
        self.gen_degree
    }

    /// Computes g(x) = lcm of minimal polynomials of alpha^1..alpha^{2t},
    /// returned low-degree-first with a trailing 1 for the leading term.
    fn generator_poly(field: &Gf2m, t: usize) -> Bits {
        let order = field.order() as usize;
        // Collect cyclotomic cosets covering exponents 1..=2t.
        let mut covered = vec![false; order + 1];
        // g as coefficient vector over GF(2) (each coeff 0/1), start with g=1.
        let mut g: Vec<u8> = vec![1];
        for e in 1..=(2 * t) {
            let e = e % order;
            if e == 0 || covered[e] {
                continue;
            }
            // Cyclotomic coset of e: {e, 2e, 4e, ...} mod order.
            let mut coset = Vec::new();
            let mut c = e;
            loop {
                covered[c] = true;
                coset.push(c);
                c = (c * 2) % order;
                if c == e {
                    break;
                }
            }
            // Minimal polynomial = prod (x - alpha^c) over the coset,
            // computed over GF(2^m); coefficients end up in GF(2).
            let mut min_poly: Vec<u32> = vec![1];
            for &c in &coset {
                let root = field.alpha_pow(c as i64);
                // multiply min_poly by (x + root)
                let mut next = vec![0u32; min_poly.len() + 1];
                for (i, &co) in min_poly.iter().enumerate() {
                    next[i + 1] ^= co; // x * co
                    next[i] ^= field.mul(co, root);
                }
                min_poly = next;
            }
            // Every coefficient must be 0 or 1 in GF(2).
            let min_gf2: Vec<u8> = min_poly
                .iter()
                .map(|&c| {
                    debug_assert!(c <= 1, "minimal polynomial coefficient not in GF(2)");
                    c as u8
                })
                .collect();
            // g *= min_poly over GF(2).
            let mut next = vec![0u8; g.len() + min_gf2.len() - 1];
            for (i, &a) in g.iter().enumerate() {
                if a == 1 {
                    for (j, &b) in min_gf2.iter().enumerate() {
                        next[i + j] ^= b;
                    }
                }
            }
            g = next;
        }
        let mut bits = Bits::zeros(g.len());
        for (i, &c) in g.iter().enumerate() {
            if c == 1 {
                bits.set(i, true);
            }
        }
        bits
    }

    /// Reference bit-serial computation of the BCH parity of `data` as
    /// the remainder of `x^deg(g) * d(x) mod g(x)` (LFSR long division).
    /// Retained as the executable specification the precomputed
    /// parity-matrix path must match bit-for-bit; exercised by the
    /// equivalence property tests.
    fn bch_remainder(&self, data: &Bits) -> Bits {
        // Work in a register of gen_degree bits (LFSR division).
        let mut rem = Bits::zeros(self.gen_degree);
        // Process data bits from the highest polynomial degree down. We map
        // data bit i to codeword coefficient (gen_degree + i); feeding
        // MSB-first performs standard long division.
        for i in (0..self.data_bits).rev() {
            let feedback = data.get(i) ^ rem.get(self.gen_degree - 1);
            // Shift rem left by one.
            for j in (1..self.gen_degree).rev() {
                let lower = rem.get(j - 1) ^ (feedback && self.generator.get(j));
                rem.set(j, lower);
            }
            rem.set(0, feedback && self.generator.get(0));
        }
        rem
    }

    /// Power-sum syndromes S_1..S_2t of the stored codeword, computed by
    /// XOR-accumulating precomputed `alpha^(pos*(j+1))` table rows over
    /// the set bits — no exponent arithmetic on the hot path.
    ///
    /// Codeword coefficient layout: positions `0..gen_degree` hold the BCH
    /// parity (check bits), positions `gen_degree..gen_degree+k` hold data.
    /// `check` may be the full stored check word; bits at or above
    /// `gen_degree` (the extended parity bit) are ignored.
    pub fn syndromes(&self, data: &Bits, check: &Bits) -> Vec<u32> {
        let width = 2 * self.t;
        let mut s = vec![0u32; width];
        for i in data.iter_ones() {
            let row = &self.syn_table[(self.gen_degree + i) * width..][..width];
            for (sj, &r) in s.iter_mut().zip(row) {
                *sj ^= r;
            }
        }
        for i in check.iter_ones() {
            if i < self.gen_degree {
                let row = &self.syn_table[i * width..][..width];
                for (sj, &r) in s.iter_mut().zip(row) {
                    *sj ^= r;
                }
            }
        }
        s
    }

    /// Reference bit-serial syndrome computation using per-bit exponent
    /// arithmetic (`alpha_pow(pos * j)`). Retained as the executable
    /// specification [`Bch::syndromes`] must match element-for-element;
    /// exercised by the equivalence property tests.
    pub fn syndromes_reference(&self, data: &Bits, check: &Bits) -> Vec<u32> {
        let mut s = vec![0u32; 2 * self.t];
        let add_position = |pos: usize, s: &mut Vec<u32>| {
            for (j, sj) in s.iter_mut().enumerate() {
                let e = (pos as i64) * ((j + 1) as i64);
                *sj ^= self.field.alpha_pow(e);
            }
        };
        for i in data.iter_ones() {
            add_position(self.gen_degree + i, &mut s);
        }
        for i in check.iter_ones() {
            if i < self.gen_degree {
                add_position(i, &mut s);
            }
        }
        s
    }

    /// Reference bit-serial encoder (LFSR polynomial division). Retained
    /// as the executable specification [`Code::encode`] must match
    /// bit-for-bit; exercised by the equivalence property tests.
    pub fn encode_reference(&self, data: &Bits) -> Bits {
        assert_eq!(data.len(), self.data_bits, "data width mismatch");
        let rem = self.bch_remainder(data);
        let overall = data.parity() ^ rem.parity();
        let mut check = Bits::zeros(self.check_bits());
        check.write_slice(0, &rem);
        check.set(self.gen_degree, overall);
        check
    }

    /// BCH remainder plus extended parity packed in a `u128`: bits
    /// `0..gen_degree` are the remainder, bit `gen_degree` the overall
    /// parity bit. This is the table-driven encode core.
    #[inline]
    fn encode_packed(&self, data: &Bits) -> u128 {
        let mut acc = 0u128;
        for i in data.iter_ones() {
            acc ^= self.parity_rows[i];
        }
        let rem_parity = acc.count_ones() & 1 == 1;
        let overall = data.parity() ^ rem_parity;
        acc | (u128::from(overall) << self.gen_degree)
    }

    /// [`Bch::syndromes`] into a reused buffer: `s` is resized to `2t`
    /// and overwritten, allocating only if its capacity is short.
    fn syndromes_into(&self, data: &Bits, check: &Bits, s: &mut Vec<u32>) {
        let width = 2 * self.t;
        s.clear();
        s.resize(width, 0);
        for i in data.iter_ones() {
            let row = &self.syn_table[(self.gen_degree + i) * width..][..width];
            for (sj, &r) in s.iter_mut().zip(row) {
                *sj ^= r;
            }
        }
        for i in check.iter_ones() {
            if i < self.gen_degree {
                let row = &self.syn_table[i * width..][..width];
                for (sj, &r) in s.iter_mut().zip(row) {
                    *sj ^= r;
                }
            }
        }
    }

    /// Berlekamp–Massey over reused polynomial buffers: leaves the
    /// error-locator polynomial sigma (low-degree first, sigma[0] == 1,
    /// trailing zeros trimmed) in `sigma`. `prev` and `tpoly` are
    /// working storage with no meaning afterwards. Allocation-free once
    /// the buffers have grown to `t + 1` coefficients.
    fn berlekamp_massey_into(
        &self,
        s: &[u32],
        sigma: &mut Vec<u32>,
        prev: &mut Vec<u32>,
        tpoly: &mut Vec<u32>,
    ) {
        let f = &self.field;
        sigma.clear();
        sigma.push(1);
        let b = prev;
        b.clear();
        b.push(1);
        let mut l = 0usize;
        let mut m = 1usize;
        let mut bb = 1u32;
        for n in 0..s.len() {
            // discrepancy
            let mut d = s[n];
            for i in 1..=l {
                if i < sigma.len() {
                    d ^= f.mul(sigma[i], s[n - i]);
                }
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= n {
                tpoly.clear();
                tpoly.extend_from_slice(sigma);
                let coef = f.div(d, bb);
                // sigma = sigma - coef * x^m * b
                let needed = m + b.len();
                if sigma.len() < needed {
                    sigma.resize(needed, 0);
                }
                for (i, &bi) in b.iter().enumerate() {
                    sigma[i + m] ^= f.mul(coef, bi);
                }
                l = n + 1 - l;
                std::mem::swap(b, tpoly);
                bb = d;
                m = 1;
            } else {
                let coef = f.div(d, bb);
                let needed = m + b.len();
                if sigma.len() < needed {
                    sigma.resize(needed, 0);
                }
                for (i, &bi) in b.iter().enumerate() {
                    sigma[i + m] ^= f.mul(coef, bi);
                }
                m += 1;
            }
        }
        // Trim trailing zeros.
        while sigma.len() > 1 && *sigma.last().unwrap() == 0 {
            sigma.pop();
        }
    }

    /// Chien search restricted to the shortened codeword length, into a
    /// reused buffer. Returns `true` when the locator factors cleanly
    /// (`positions` then holds exactly `deg(sigma)` error positions).
    fn chien_search_into(&self, sigma: &[u32], positions: &mut Vec<usize>) -> bool {
        positions.clear();
        let degree = sigma.len() - 1;
        if degree == 0 {
            return true;
        }
        let n_used = self.gen_degree + self.data_bits;
        for pos in 0..n_used {
            // error locator root test: sigma(alpha^{-pos}) == 0, with the
            // precomputed Chien table supplying alpha^{-pos}.
            let x = self.chien[pos];
            if self.field.eval_poly(sigma, x) == 0 {
                positions.push(pos);
                if positions.len() == degree {
                    break;
                }
            }
        }
        positions.len() == degree
    }
}

impl Code for Bch {
    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn check_bits(&self) -> usize {
        self.gen_degree + 1 // BCH parity + extended overall parity
    }

    fn encode(&self, data: &Bits) -> Bits {
        assert_eq!(data.len(), self.data_bits, "data width mismatch");
        let packed = self.encode_packed(data);
        Bits::from_limbs(&[packed as u64, (packed >> 64) as u64], self.check_bits())
    }

    fn check_clean(&self, data: &Bits, check: &Bits) -> bool {
        validate_widths(self, data, check);
        // Re-encoding via the parity matrix and comparing limbs is far
        // cheaper than computing 2t power syndromes.
        let packed = self.encode_packed(data);
        let limbs = check.as_limbs();
        limbs[0] == packed as u64 && (limbs.len() < 2 || limbs[1] == (packed >> 64) as u64)
    }

    fn decode(&self, data: &Bits, check: &Bits) -> Decoded {
        // One implementation of the decode pipeline: the allocating API
        // is a thin shell over the scratch-based [`Bch::decode_into`].
        let mut scratch = DecodeScratch::default();
        let mut out = data.clone();
        match self.decode_into(data, check, &mut out, &mut scratch) {
            DecodedInPlace::Clean => Decoded::Clean,
            DecodedInPlace::Corrected => Decoded::Corrected {
                data: out,
                flipped: std::mem::take(&mut scratch.flipped),
            },
            DecodedInPlace::Detected => Decoded::Detected,
        }
    }

    fn decode_into(
        &self,
        data: &Bits,
        check: &Bits,
        out: &mut Bits,
        scratch: &mut DecodeScratch,
    ) -> DecodedInPlace {
        validate_widths(self, data, check);
        // Fast path: a clean word re-encodes to its stored check, which
        // is much cheaper to test than computing 2t power syndromes.
        if self.check_clean(data, check) {
            return DecodedInPlace::Clean;
        }
        // The stored check word's parity folds the BCH-part parity and the
        // extended bit together, so the overall syndrome needs no slicing.
        let overall_syndrome = data.parity() ^ check.parity();
        let DecodeScratch {
            flipped,
            syndromes,
            sigma,
            prev,
            tpoly,
            positions,
        } = scratch;
        self.syndromes_into(data, check, syndromes);
        let all_zero = syndromes.iter().all(|&x| x == 0);
        if all_zero {
            if !overall_syndrome {
                return DecodedInPlace::Clean;
            }
            // Only the extended parity bit itself is flipped.
            out.copy_from(data);
            flipped.clear();
            flipped.push(self.data_bits + self.gen_degree);
            return DecodedInPlace::Corrected;
        }
        self.berlekamp_massey_into(syndromes, sigma, prev, tpoly);
        let nu = sigma.len() - 1;
        if nu > self.t {
            return DecodedInPlace::Detected;
        }
        if !self.chien_search_into(sigma, positions) {
            return DecodedInPlace::Detected;
        }
        // Extended parity consistency: the number of in-codeword flips plus
        // a possible extended-bit flip must match the overall parity.
        let pattern_parity = positions.len() % 2 == 1;
        let extended_bit_flipped = pattern_parity != overall_syndrome;
        // The pattern + extended bit exceeds t total flips only when
        // nu == t; in that case the error weight is t+1: detect.
        if extended_bit_flipped && nu == self.t {
            return DecodedInPlace::Detected;
        }
        // Apply the correction.
        out.copy_from(data);
        flipped.clear();
        for &pos in positions.iter() {
            if pos >= self.gen_degree {
                let data_idx = pos - self.gen_degree;
                out.flip(data_idx);
                flipped.push(data_idx);
            } else {
                flipped.push(self.data_bits + pos);
            }
        }
        if extended_bit_flipped {
            flipped.push(self.data_bits + self.gen_degree);
        }
        flipped.sort_unstable();
        DecodedInPlace::Corrected
    }

    fn correctable(&self) -> usize {
        self.t
    }

    fn detectable(&self) -> usize {
        self.t + 1
    }

    fn name(&self) -> String {
        let label = match self.t {
            2 => "DECTED".to_string(),
            4 => "QECPED".to_string(),
            8 => "OECNED".to_string(),
            t => format!("BCH-t{t}"),
        };
        format!("{label}({},{})", self.codeword_bits(), self.data_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        // The check-bit counts the paper derives from Hamming distance:
        // DECTED 15, QECPED 29, OECNED 57 for 64-bit words (m=7).
        assert_eq!(Bch::new(64, 2).check_bits(), 15);
        assert_eq!(Bch::new(64, 4).check_bits(), 29);
        assert_eq!(Bch::new(64, 8).check_bits(), 57);
        assert_eq!(Bch::new(64, 8).name(), "OECNED(121,64)");
        // 256-bit words use m=9: 19, 37, 73.
        assert_eq!(Bch::new(256, 2).check_bits(), 19);
        assert_eq!(Bch::new(256, 4).check_bits(), 37);
        assert_eq!(Bch::new(256, 8).check_bits(), 73);
    }

    #[test]
    fn clean_roundtrip() {
        for t in [2usize, 4, 8] {
            let code = Bch::new(64, t);
            let data = Bits::from_u64(0x0123_4567_89AB_CDEF, 64);
            let check = code.encode(&data);
            assert_eq!(code.decode(&data, &check), Decoded::Clean, "t={t}");
        }
    }

    #[test]
    fn corrects_t_spread_errors() {
        let code = Bch::new(64, 2);
        let data = Bits::from_u64(0xDEAD_BEEF_1234_5678, 64);
        let check = code.encode(&data);
        let mut noisy = data.clone();
        noisy.flip(0);
        noisy.flip(63);
        match code.decode(&noisy, &check) {
            Decoded::Corrected {
                data: fixed,
                flipped,
            } => {
                assert_eq!(fixed, data);
                assert_eq!(flipped, vec![0, 63]);
            }
            other => panic!("expected correction, got {other:?}"),
        }
    }

    #[test]
    fn corrects_errors_in_check_bits() {
        let code = Bch::new(64, 2);
        let data = Bits::from_u64(7, 64);
        let mut check = code.encode(&data);
        check.flip(0);
        check.flip(5);
        match code.decode(&data, &check) {
            Decoded::Corrected {
                data: fixed,
                flipped,
            } => {
                assert_eq!(fixed, data);
                assert_eq!(flipped, vec![64, 69]);
            }
            other => panic!("expected correction, got {other:?}"),
        }
    }

    #[test]
    fn corrects_mixed_data_and_check() {
        let code = Bch::new(64, 4);
        let data = Bits::from_u64(u64::MAX, 64);
        let check = code.encode(&data);
        let mut noisy = data.clone();
        noisy.flip(10);
        noisy.flip(20);
        noisy.flip(30);
        let mut noisy_check = check.clone();
        noisy_check.flip(2);
        match code.decode(&noisy, &noisy_check) {
            Decoded::Corrected { data: fixed, .. } => assert_eq!(fixed, data),
            other => panic!("expected correction, got {other:?}"),
        }
    }

    #[test]
    fn detects_t_plus_one_burst() {
        for t in [2usize, 4] {
            let code = Bch::new(64, t);
            let data = Bits::from_u64(0x1357_9BDF_2468_ACE0, 64);
            let check = code.encode(&data);
            let mut noisy = data.clone();
            for i in 0..=t {
                noisy.flip(i);
            }
            let outcome = code.decode(&noisy, &check);
            assert_eq!(outcome, Decoded::Detected, "t={t}");
        }
    }

    #[test]
    fn extended_parity_bit_error_corrected() {
        let code = Bch::new(64, 2);
        let data = Bits::from_u64(99, 64);
        let mut check = code.encode(&data);
        let ext = code.check_bits() - 1;
        check.flip(ext);
        match code.decode(&data, &check) {
            Decoded::Corrected {
                data: fixed,
                flipped,
            } => {
                assert_eq!(fixed, data);
                assert_eq!(flipped, vec![64 + ext]);
            }
            other => panic!("expected correction, got {other:?}"),
        }
    }

    #[test]
    fn oecned_corrects_eight_errors() {
        let code = Bch::new(64, 8);
        let data = Bits::from_u64(0xFEDC_BA98_7654_3210, 64);
        let check = code.encode(&data);
        let mut noisy = data.clone();
        for &i in &[1, 9, 17, 25, 33, 41, 49, 57] {
            noisy.flip(i);
        }
        match code.decode(&noisy, &check) {
            Decoded::Corrected { data: fixed, .. } => assert_eq!(fixed, data),
            other => panic!("expected correction, got {other:?}"),
        }
    }

    #[test]
    fn wide_word_roundtrip() {
        let code = Bch::new(256, 2);
        let data = Bits::from_positions(256, &[0, 128, 255]);
        let check = code.encode(&data);
        let mut noisy = data.clone();
        noisy.flip(200);
        noisy.flip(201);
        match code.decode(&noisy, &check) {
            Decoded::Corrected { data: fixed, .. } => assert_eq!(fixed, data),
            other => panic!("expected correction, got {other:?}"),
        }
    }

    #[test]
    fn generator_divides_encoded_words() {
        // Any valid codeword polynomial evaluates to zero at alpha^1..2t.
        let code = Bch::new(64, 2);
        let data = Bits::from_u64(0xABCD_EF01_2345_6789, 64);
        let check = code.encode(&data);
        let bch_check = check.slice(0, code.bch_parity_bits());
        let s = code.syndromes(&data, &bch_check);
        assert!(s.iter().all(|&x| x == 0));
    }
}
