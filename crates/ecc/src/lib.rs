//! # ecc — memory-protection codes for embedded SRAM
//!
//! Error-coding substrate for the reproduction of *"Multi-bit Error
//! Tolerant Caches Using Two-Dimensional Error Coding"* (Kim, Hardavellas,
//! Mai, Falsafi, Hoe — MICRO-40, 2007).
//!
//! The crate provides the per-word codes the paper compares:
//!
//! * [`Edc`] — `n`-way interleaved parity (`EDC8`, `EDC16`, `EDC32`),
//!   the light-weight detection code used horizontally (and, across rows,
//!   vertically) by the 2D scheme;
//! * [`Secded`] — extended Hamming SECDED, the conventional baseline and
//!   the 2D scheme's yield-mode horizontal code;
//! * [`Bch`] — `t`-error-correcting extended BCH codes modelling the
//!   conventional multi-bit comparators DECTED (t=2), QECPED (t=4), and
//!   OECNED (t=8);
//!
//! plus the gate-level latency/energy model ([`logic`]) the paper uses to
//! cost the coding circuits, and a scheme registry ([`CodeKind`]) naming the
//! exact configurations that appear in the figures.
//!
//! ## Quick example
//!
//! ```
//! use ecc::{Bits, Code, Decoded, Secded};
//!
//! let secded = Secded::new(64);                 // (72,64)
//! let word = Bits::from_u64(0xC0FFEE, 64);
//! let check = secded.encode(&word);
//!
//! let mut upset = word.clone();
//! upset.flip(13);                               // a single-event upset
//! let fixed = secded.decode(&upset, &check);
//! assert!(matches!(fixed, Decoded::Corrected { .. }));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bch;
mod bits;
mod code;
mod edc;
pub mod gf;
pub mod kernels;
pub mod logic;
mod sbd;
mod scheme;
mod secded;

pub use bch::Bch;
pub use bits::{Bits, IterOnes};
pub use code::{Code, DecodeScratch, Decoded, DecodedInPlace};
pub use edc::Edc;
pub use sbd::SecdedSbd;
pub use scheme::{shared_codec_builds, CodeKind, InterleavedScheme};
pub use secded::Secded;
