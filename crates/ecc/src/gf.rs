//! Arithmetic over the binary extension fields GF(2^m) used by the BCH
//! codecs, implemented with log/antilog tables.

/// A binary extension field GF(2^m), 2 <= m <= 13.
///
/// Elements are represented as `u32` polynomial bit patterns in
/// `0..2^m`. Multiplication and inversion use log/antilog tables built
/// from a primitive polynomial, so all operations are O(1).
///
/// # Examples
///
/// ```
/// use ecc::gf::Gf2m;
///
/// let f = Gf2m::new(7);
/// let a = f.alpha_pow(5);
/// let b = f.alpha_pow(9);
/// assert_eq!(f.mul(a, b), f.alpha_pow(14));
/// assert_eq!(f.mul(a, f.inv(a)), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Gf2m {
    m: u32,
    /// exp[i] = alpha^i for i in 0..2*(2^m - 1) (doubled to avoid a mod).
    exp: Vec<u32>,
    /// log[x] = discrete log of x (log[0] unused).
    log: Vec<u32>,
}

/// Primitive polynomials (without the leading x^m term encoded implicitly)
/// for GF(2^m), m = 2..=14. Entry `m - 2` is the full polynomial bit
/// pattern including the x^m term.
const PRIMITIVE_POLYS: [u32; 12] = [
    0b111,            // m=2:  x^2+x+1
    0b1011,           // m=3:  x^3+x+1
    0b10011,          // m=4:  x^4+x+1
    0b100101,         // m=5:  x^5+x^2+1
    0b1000011,        // m=6:  x^6+x+1
    0b10001001,       // m=7:  x^7+x^3+1
    0b100011101,      // m=8:  x^8+x^4+x^3+x^2+1
    0b1000010001,     // m=9:  x^9+x^4+1
    0b10000001001,    // m=10: x^10+x^3+1
    0b100000000101,   // m=11: x^11+x^2+1
    0b1000001010011,  // m=12: x^12+x^6+x^4+x+1
    0b10000000011011, // m=13: x^13+x^4+x^3+x+1
];

impl Gf2m {
    /// Constructs GF(2^m) from the standard primitive polynomial table.
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside `2..=13`.
    pub fn new(m: u32) -> Self {
        assert!((2..=13).contains(&m), "unsupported field degree {m}");
        Self::with_poly(m, PRIMITIVE_POLYS[(m - 2) as usize])
    }

    /// Constructs GF(2^m) from an explicit primitive polynomial (bit
    /// pattern including the `x^m` term).
    ///
    /// # Panics
    ///
    /// Panics if the polynomial does not generate the full multiplicative
    /// group (i.e. is not primitive).
    pub fn with_poly(m: u32, poly: u32) -> Self {
        let order = (1u32 << m) - 1;
        let size = 1usize << m;
        let mut exp = vec![0u32; 2 * order as usize];
        let mut log = vec![0u32; size];
        let mut x = 1u32;
        for i in 0..order {
            exp[i as usize] = x;
            assert!(
                x != 1 || i == 0,
                "polynomial {poly:#b} is not primitive for m={m}"
            );
            log[x as usize] = i;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= poly;
            }
        }
        assert_eq!(x, 1, "polynomial {poly:#b} is not primitive for m={m}");
        for i in 0..order {
            exp[(order + i) as usize] = exp[i as usize];
        }
        Gf2m { m, exp, log }
    }

    /// Field degree `m`.
    pub fn degree(&self) -> u32 {
        self.m
    }

    /// Multiplicative group order `2^m - 1`.
    pub fn order(&self) -> u32 {
        (1 << self.m) - 1
    }

    /// `alpha^e` for any exponent (reduced mod the group order).
    pub fn alpha_pow(&self, e: i64) -> u32 {
        let order = self.order() as i64;
        let e = e.rem_euclid(order) as usize;
        self.exp[e]
    }

    /// Discrete log of a nonzero element.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0`.
    pub fn log(&self, x: u32) -> u32 {
        assert!(x != 0, "log of zero");
        self.log[x as usize]
    }

    /// Field addition (XOR).
    pub fn add(&self, a: u32, b: u32) -> u32 {
        a ^ b
    }

    /// Field multiplication.
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[(self.log[a as usize] + self.log[b as usize]) as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0`.
    pub fn inv(&self, x: u32) -> u32 {
        assert!(x != 0, "inverse of zero");
        let order = self.order();
        self.exp[(order - self.log[x as usize]) as usize]
    }

    /// Division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn div(&self, a: u32, b: u32) -> u32 {
        if a == 0 {
            0
        } else {
            self.mul(a, self.inv(b))
        }
    }

    /// Exponentiation `x^e` for arbitrary `e`.
    pub fn pow(&self, x: u32, e: i64) -> u32 {
        if x == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let order = self.order() as i64;
        let l = self.log[x as usize] as i64;
        self.alpha_pow(l * e % order)
    }

    /// Evaluates a polynomial (coefficients low-order first) at `x`.
    pub fn eval_poly(&self, coeffs: &[u32], x: u32) -> u32 {
        let mut acc = 0u32;
        for &c in coeffs.iter().rev() {
            acc = self.add(self.mul(acc, x), c);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_gf8() {
        let f = Gf2m::new(3);
        for a in 0..8u32 {
            for b in 0..8u32 {
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for c in 0..8u32 {
                    assert_eq!(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c));
                    assert_eq!(
                        f.mul(a, f.add(b, c)),
                        f.add(f.mul(a, b), f.mul(a, c)),
                        "distributivity failed a={a} b={b} c={c}"
                    );
                }
            }
        }
    }

    #[test]
    fn inverses_gf128() {
        let f = Gf2m::new(7);
        for x in 1..128u32 {
            assert_eq!(f.mul(x, f.inv(x)), 1, "x={x}");
        }
    }

    #[test]
    fn alpha_generates_group() {
        for m in 2..=13 {
            let f = Gf2m::new(m);
            let mut seen = std::collections::HashSet::new();
            for e in 0..f.order() {
                seen.insert(f.alpha_pow(e as i64));
            }
            assert_eq!(seen.len(), f.order() as usize, "m={m}");
        }
    }

    #[test]
    fn pow_and_log_consistent() {
        let f = Gf2m::new(9);
        let x = f.alpha_pow(100);
        assert_eq!(f.log(x), 100);
        assert_eq!(f.pow(x, 3), f.alpha_pow(300));
        assert_eq!(f.pow(x, 0), 1);
        assert_eq!(f.pow(0, 5), 0);
    }

    #[test]
    fn eval_poly_horner() {
        let f = Gf2m::new(4);
        // p(x) = 1 + x  evaluated at alpha: 1 ^ alpha
        let p = vec![1, 1];
        let a = f.alpha_pow(1);
        assert_eq!(f.eval_poly(&p, a), 1 ^ a);
        // constant polynomial
        assert_eq!(f.eval_poly(&[7], a), 7);
        // empty polynomial is zero
        assert_eq!(f.eval_poly(&[], a), 0);
    }

    #[test]
    fn negative_exponents() {
        let f = Gf2m::new(5);
        let x = f.alpha_pow(-1);
        assert_eq!(f.mul(x, f.alpha_pow(1)), 1);
    }
}
