//! Gate-level cost model for the encode/check logic of each code.
//!
//! The paper estimates coding latency as "the depth of syndrome generation
//! and comparison circuit that consists of an XOR tree and an OR tree",
//! assuming one dedicated XOR tree per check bit so all check bits of a
//! word are computed in parallel. We reproduce that model: every syndrome
//! bit is an XOR tree over the codeword positions it covers, followed by an
//! OR tree across syndrome bits for the error-detect signal. Dynamic coding
//! energy is proportional to the total number of 2-input XOR evaluations.

use crate::{Bch, Code, Edc, Secded, SecdedSbd};

/// Latency (gate levels) and energy (gate count) of a code's checker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogicCost {
    /// Depth of the deepest per-check-bit XOR tree, in 2-input gate levels.
    pub xor_depth: u32,
    /// Depth of the OR tree that reduces syndrome bits to an error flag.
    pub or_depth: u32,
    /// Total number of 2-input XOR gates evaluated per checked word
    /// (proxy for dynamic coding energy).
    pub xor_gates: u64,
    /// Number of stored check bits (extra column reads per access).
    pub check_bits: u32,
}

impl LogicCost {
    /// Total detection-path latency in gate levels.
    pub fn total_depth(&self) -> u32 {
        self.xor_depth + self.or_depth
    }
}

fn tree_depth(fan_in: usize) -> u32 {
    if fan_in <= 1 {
        0
    } else {
        (fan_in as f64).log2().ceil() as u32
    }
}

fn cost_from_weights(weights: &[usize], check_bits: usize) -> LogicCost {
    let xor_depth = weights.iter().copied().map(tree_depth).max().unwrap_or(0);
    let xor_gates: u64 = weights.iter().map(|&w| w.saturating_sub(1) as u64).sum();
    LogicCost {
        xor_depth,
        or_depth: tree_depth(weights.len()),
        xor_gates,
        check_bits: check_bits as u32,
    }
}

/// Cost model source for a code's syndrome-generation matrix.
pub trait LogicModel {
    /// Per-syndrome-bit XOR-tree fan-ins (codeword positions covered,
    /// including the stored check bit).
    fn syndrome_weights(&self) -> Vec<usize>;

    /// Gate-level cost summary.
    fn logic_cost(&self) -> LogicCost {
        let w = self.syndrome_weights();
        let check_bits = self.check_bits_for_cost();
        cost_from_weights(&w, check_bits)
    }

    /// Stored check bits (for the energy model's extra-column term).
    fn check_bits_for_cost(&self) -> usize;
}

impl LogicModel for Edc {
    fn syndrome_weights(&self) -> Vec<usize> {
        let k = self.data_bits();
        let n = self.groups();
        // Group i covers the data bits congruent to i mod n, plus its
        // stored check bit.
        (0..n)
            .map(|i| {
                let members = if i < k { (k - i - 1) / n + 1 } else { 0 };
                members + 1
            })
            .collect()
    }

    fn check_bits_for_cost(&self) -> usize {
        self.check_bits()
    }
}

impl LogicModel for Secded {
    fn syndrome_weights(&self) -> Vec<usize> {
        self.syndrome_tree_weights()
    }

    fn check_bits_for_cost(&self) -> usize {
        self.check_bits()
    }
}

impl LogicModel for SecdedSbd {
    fn syndrome_weights(&self) -> Vec<usize> {
        // Without exposing the matrix, approximate each syndrome bit as
        // covering half the codeword plus its stored check bit — the
        // Hsiao-style balanced-column assumption.
        let n = self.codeword_bits();
        vec![n / 2 + 1; self.check_bits()]
    }

    fn check_bits_for_cost(&self) -> usize {
        self.check_bits()
    }
}

impl LogicModel for Bch {
    fn syndrome_weights(&self) -> Vec<usize> {
        // Hardware computes 2t syndromes of m bits each; each syndrome bit
        // is an XOR over roughly half the codeword positions. We model each
        // of the 2t*m syndrome bits as covering n/2 positions, plus the
        // extended parity tree covering the whole codeword.
        let n = self.codeword_bits();
        let m = self.field_degree() as usize;
        let syndrome_bit_count = 2 * self.t() * m;
        let mut w = vec![n / 2; syndrome_bit_count];
        w.push(n); // extended overall parity tree
        w
    }

    fn check_bits_for_cost(&self) -> usize {
        self.check_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edc8_latency_matches_byte_parity_class() {
        // EDC8 over 64 bits: each tree has 9 inputs -> depth 4; byte parity
        // has 8-input trees -> depth 3..4. Same latency class as the paper
        // claims.
        let edc = Edc::new(64, 8);
        let cost = edc.logic_cost();
        assert_eq!(cost.xor_depth, 4);
        assert_eq!(cost.or_depth, 3);
        assert_eq!(cost.check_bits, 8);
    }

    #[test]
    fn secded_deeper_than_edc() {
        let edc = Edc::new(64, 8).logic_cost();
        let sec = Secded::new(64).logic_cost();
        assert!(sec.xor_depth > edc.xor_depth);
        assert!(sec.xor_gates > edc.xor_gates);
    }

    #[test]
    fn stronger_bch_costs_more() {
        let dected = Bch::new(64, 2).logic_cost();
        let qecped = Bch::new(64, 4).logic_cost();
        let oecned = Bch::new(64, 8).logic_cost();
        assert!(dected.xor_gates < qecped.xor_gates);
        assert!(qecped.xor_gates < oecned.xor_gates);
        assert!(dected.check_bits < qecped.check_bits);
        assert!(qecped.check_bits < oecned.check_bits);
        assert!(oecned.total_depth() >= dected.total_depth());
    }

    #[test]
    fn tree_depth_edges() {
        assert_eq!(tree_depth(0), 0);
        assert_eq!(tree_depth(1), 0);
        assert_eq!(tree_depth(2), 1);
        assert_eq!(tree_depth(3), 2);
        assert_eq!(tree_depth(9), 4);
    }

    #[test]
    fn sbd_cost_between_secded_and_dected() {
        let secded = Secded::new(64).logic_cost();
        let sbd = SecdedSbd::new(64, 8).logic_cost();
        let dected = Bch::new(64, 2).logic_cost();
        assert!(sbd.check_bits >= secded.check_bits);
        assert!(sbd.xor_gates < dected.xor_gates);
    }

    #[test]
    fn edc_weights_count_every_bit_once() {
        let edc = Edc::new(64, 8);
        let w = edc.syndrome_weights();
        // 64 data bits + 8 stored check bits all feed exactly one tree.
        assert_eq!(w.iter().sum::<usize>(), 64 + 8);
        // Uneven word widths split correctly too.
        let edc = Edc::new(48, 16);
        let w = edc.syndrome_weights();
        assert_eq!(w.iter().sum::<usize>(), 48 + 16);
    }
}
