//! A compact, dynamically sized bit vector used for data words, check
//! words, and whole memory rows throughout the workspace.
//!
//! Memory-protection codes operate on words from 8 bits (tag fragments) to
//! 256 bits (L2 words) and on rows of thousands of bits, so a fixed-width
//! integer is not enough. [`Bits`] stores bits in little-endian order within
//! `u64` limbs: bit `i` lives in limb `i / 64` at position `i % 64`.

use std::fmt;

/// A fixed-length sequence of bits with cheap XOR, popcount, and slicing.
///
/// # Examples
///
/// ```
/// use ecc::Bits;
///
/// let mut w = Bits::zeros(72);
/// w.set(3, true);
/// w.set(71, true);
/// assert_eq!(w.count_ones(), 2);
/// assert!(w.get(3));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    limbs: Vec<u64>,
    len: usize,
}

impl Bits {
    /// Creates an all-zero bit vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        Bits {
            limbs: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one bit vector of length `len`.
    pub fn ones(len: usize) -> Self {
        let mut b = Bits {
            limbs: vec![!0u64; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    /// Builds a bit vector from a `u64`, truncated or zero-extended to `len`.
    pub fn from_u64(value: u64, len: usize) -> Self {
        let mut b = Bits::zeros(len);
        if !b.limbs.is_empty() {
            b.limbs[0] = value;
        }
        b.mask_tail();
        b
    }

    /// Builds a bit vector from a little-endian limb slice, truncated or
    /// zero-extended to `len`.
    pub fn from_limbs(limbs: &[u64], len: usize) -> Self {
        let mut v = limbs.to_vec();
        v.resize(len.div_ceil(64), 0);
        let mut b = Bits { limbs: v, len };
        b.mask_tail();
        b
    }

    /// Builds a bit vector of length `len` with ones at `positions`.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of bounds.
    pub fn from_positions(len: usize, positions: &[usize]) -> Self {
        let mut b = Bits::zeros(len);
        for &p in positions {
            b.set(p, true);
        }
        b
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.limbs[i / 64] |= mask;
        } else {
            self.limbs[i / 64] &= !mask;
        }
    }

    /// Inverts bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.limbs[i / 64] ^= 1u64 << (i % 64);
    }

    /// XORs `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_assign(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "length mismatch in xor");
        for (a, b) in self.limbs.iter_mut().zip(&other.limbs) {
            *a ^= *b;
        }
    }

    /// Returns `self ^ other` without mutating either operand.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor(&self, other: &Bits) -> Bits {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Whether every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Overall (even) parity of the vector: `true` when an odd number of
    /// bits are set.
    pub fn parity(&self) -> bool {
        self.count_ones() % 2 == 1
    }

    /// Iterator over the indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            bits: self,
            limb_idx: 0,
            current: self.limbs.first().copied().unwrap_or(0),
        }
    }

    /// Copies `count` bits starting at `start` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, count: usize) -> Bits {
        assert!(start + count <= self.len, "slice out of range");
        let mut out = Bits::zeros(count);
        for i in 0..count {
            if self.get(start + i) {
                out.set(i, true);
            }
        }
        out
    }

    /// Overwrites `count` bits starting at `start` from `src`.
    ///
    /// # Panics
    ///
    /// Panics if the ranges are out of bounds.
    pub fn write_slice(&mut self, start: usize, src: &Bits) {
        assert!(start + src.len() <= self.len, "write_slice out of range");
        for i in 0..src.len() {
            self.set(start + i, src.get(i));
        }
    }

    /// Concatenates `self` followed by `other`.
    pub fn concat(&self, other: &Bits) -> Bits {
        let mut out = Bits::zeros(self.len + other.len);
        out.write_slice(0, self);
        out.write_slice(self.len, other);
        out
    }

    /// Interprets the low 64 bits as a `u64` (higher bits ignored).
    pub fn to_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Access to the raw limbs (little-endian).
    pub fn as_limbs(&self) -> &[u64] {
        &self.limbs
    }

    fn mask_tail(&mut self) {
        let used = self.len % 64;
        if used != 0 {
            if let Some(last) = self.limbs.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
        if self.len == 0 {
            self.limbs.clear();
        }
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits[{}; ones=", self.len)?;
        let ones: Vec<usize> = self.iter_ones().collect();
        write!(f, "{ones:?}]")
    }
}

impl fmt::Binary for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.len).rev() {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(self, f)
    }
}

/// Iterator over set-bit indices produced by [`Bits::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    bits: &'a Bits,
    limb_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.limb_idx * 64 + tz);
            }
            self.limb_idx += 1;
            if self.limb_idx >= self.bits.limbs.len() {
                return None;
            }
            self.current = self.bits.limbs[self.limb_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let b = Bits::zeros(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 0);
        assert!(b.is_zero());
        assert!(!b.is_empty());
    }

    #[test]
    fn empty_is_empty() {
        let b = Bits::zeros(0);
        assert!(b.is_empty());
        assert!(b.is_zero());
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn set_get_flip() {
        let mut b = Bits::zeros(100);
        b.set(0, true);
        b.set(63, true);
        b.set(64, true);
        b.set(99, true);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(99));
        assert_eq!(b.count_ones(), 4);
        b.flip(63);
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 3);
        b.set(0, false);
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn ones_masks_tail() {
        let b = Bits::ones(70);
        assert_eq!(b.count_ones(), 70);
        assert_eq!(b.as_limbs().len(), 2);
        assert_eq!(b.as_limbs()[1], (1u64 << 6) - 1);
    }

    #[test]
    fn from_u64_truncates() {
        let b = Bits::from_u64(0xFF, 4);
        assert_eq!(b.count_ones(), 4);
        assert_eq!(b.to_u64(), 0xF);
    }

    #[test]
    fn xor_roundtrip() {
        let a = Bits::from_u64(0b1010, 8);
        let b = Bits::from_u64(0b0110, 8);
        let c = a.xor(&b);
        assert_eq!(c.to_u64(), 0b1100);
        assert_eq!(c.xor(&b).to_u64(), 0b1010);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_length_mismatch_panics() {
        let mut a = Bits::zeros(8);
        a.xor_assign(&Bits::zeros(9));
    }

    #[test]
    fn iter_ones_order() {
        let b = Bits::from_positions(200, &[5, 64, 70, 199]);
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![5, 64, 70, 199]);
    }

    #[test]
    fn parity_matches_popcount() {
        let b = Bits::from_positions(64, &[1, 2, 3]);
        assert!(b.parity());
        let b = Bits::from_positions(64, &[1, 2, 3, 4]);
        assert!(!b.parity());
    }

    #[test]
    fn slice_and_write_slice() {
        let b = Bits::from_positions(32, &[0, 8, 9, 31]);
        let s = b.slice(8, 8);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        let mut c = Bits::zeros(32);
        c.write_slice(8, &s);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![8, 9]);
    }

    #[test]
    fn concat_preserves_order() {
        let a = Bits::from_positions(3, &[0]);
        let b = Bits::from_positions(3, &[2]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 6);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![0, 5]);
    }

    #[test]
    fn binary_format_msb_first() {
        let b = Bits::from_u64(0b101, 4);
        assert_eq!(format!("{b:b}"), "0101");
    }

    #[test]
    fn debug_nonempty() {
        let b = Bits::zeros(4);
        assert!(!format!("{b:?}").is_empty());
    }
}
