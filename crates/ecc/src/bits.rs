//! A compact, dynamically sized bit vector used for data words, check
//! words, and whole memory rows throughout the workspace.
//!
//! Memory-protection codes operate on words from 8 bits (tag fragments) to
//! 256 bits (L2 words) and on rows of thousands of bits, so a fixed-width
//! integer is not enough. [`Bits`] stores bits in little-endian order within
//! `u64` limbs: bit `i` lives in limb `i / 64` at position `i % 64`.

use crate::kernels;
use std::fmt;

/// A fixed-length sequence of bits with cheap XOR, popcount, and slicing.
///
/// # Examples
///
/// ```
/// use ecc::Bits;
///
/// let mut w = Bits::zeros(72);
/// w.set(3, true);
/// w.set(71, true);
/// assert_eq!(w.count_ones(), 2);
/// assert!(w.get(3));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    limbs: Vec<u64>,
    len: usize,
}

impl Default for Bits {
    /// The empty (zero-length) bit vector. Useful as a placeholder in
    /// reusable scratch structures that are sized lazily on first use;
    /// allocation-free.
    fn default() -> Self {
        Bits {
            limbs: Vec::new(),
            len: 0,
        }
    }
}

impl Bits {
    /// Creates an all-zero bit vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        Bits {
            limbs: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one bit vector of length `len`.
    pub fn ones(len: usize) -> Self {
        let mut b = Bits {
            limbs: vec![!0u64; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    /// Builds a bit vector from a `u64`, truncated or zero-extended to `len`.
    pub fn from_u64(value: u64, len: usize) -> Self {
        let mut b = Bits::zeros(len);
        if !b.limbs.is_empty() {
            b.limbs[0] = value;
        }
        b.mask_tail();
        b
    }

    /// Builds a bit vector from a little-endian limb slice, truncated or
    /// zero-extended to `len`.
    pub fn from_limbs(limbs: &[u64], len: usize) -> Self {
        let mut v = limbs.to_vec();
        v.resize(len.div_ceil(64), 0);
        let mut b = Bits { limbs: v, len };
        b.mask_tail();
        b
    }

    /// Builds a bit vector of length `len` with ones at `positions`.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of bounds.
    pub fn from_positions(len: usize, positions: &[usize]) -> Self {
        let mut b = Bits::zeros(len);
        for &p in positions {
            b.set(p, true);
        }
        b
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.limbs[i / 64] |= mask;
        } else {
            self.limbs[i / 64] &= !mask;
        }
    }

    /// Inverts bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.limbs[i / 64] ^= 1u64 << (i % 64);
    }

    /// XORs `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn xor_assign(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "length mismatch in xor");
        kernels::xor_accumulate(&mut self.limbs, &other.limbs);
    }

    /// ANDs `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn and_assign(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "length mismatch in and");
        for (a, b) in self.limbs.iter_mut().zip(&other.limbs) {
            *a &= *b;
        }
    }

    /// Returns `self & other` without mutating either operand.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and(&self, other: &Bits) -> Bits {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// ORs `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn or_assign(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "length mismatch in or");
        for (a, b) in self.limbs.iter_mut().zip(&other.limbs) {
            *a |= *b;
        }
    }

    /// Clears every bit in place without reallocating (scratch-buffer
    /// reuse for hot loops).
    #[inline]
    pub fn clear(&mut self) {
        for l in &mut self.limbs {
            *l = 0;
        }
    }

    /// Overwrites `self` with `other` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn copy_from(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "length mismatch in copy_from");
        self.limbs.copy_from_slice(&other.limbs);
    }

    /// Overwrites `self` from a little-endian limb slice without
    /// reallocating. The slice must supply exactly the limbs this vector
    /// stores; tail bits beyond `len` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `limbs.len()` differs from the internal limb count.
    #[inline]
    pub fn copy_from_limbs(&mut self, limbs: &[u64]) {
        assert_eq!(limbs.len(), self.limbs.len(), "limb count mismatch");
        self.limbs.copy_from_slice(limbs);
        self.mask_tail();
    }

    /// Overwrites limb `i` (little-endian) in place; bits beyond `len`
    /// in the final limb are masked off automatically. The write-side
    /// primitive behind limb-at-a-time extraction into reusable buffers.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the limb count.
    #[inline]
    pub fn set_limb(&mut self, i: usize, value: u64) {
        assert!(i < self.limbs.len(), "limb index {i} out of range");
        self.limbs[i] = value;
        if i + 1 == self.limbs.len() {
            self.mask_tail();
        }
    }

    /// Parity of `self & mask` without allocating: `true` when an odd
    /// number of bits are set in the intersection. This is the hot
    /// primitive behind matrix-row syndrome checks; it runs on the
    /// unrolled [`kernels::masked_parity`] fold.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn masked_parity(&self, mask: &Bits) -> bool {
        assert_eq!(self.len, mask.len, "length mismatch in masked_parity");
        kernels::masked_parity(&self.limbs, &mask.limbs)
    }

    /// Whether `self & mask` has any bit set, without allocating.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn intersects(&self, mask: &Bits) -> bool {
        assert_eq!(self.len, mask.len, "length mismatch in intersects");
        kernels::any_intersection(&self.limbs, &mask.limbs)
    }

    /// Returns `self ^ other` without mutating either operand.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor(&self, other: &Bits) -> Bits {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Whether every bit is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        !kernels::any_nonzero(&self.limbs)
    }

    /// Overall (even) parity of the vector: `true` when an odd number of
    /// bits are set. Computed limb-wise on the unrolled
    /// [`kernels::xor_fold`]: one XOR fold and a single popcount, never
    /// a per-bit loop.
    #[inline]
    pub fn parity(&self) -> bool {
        kernels::xor_fold(&self.limbs).count_ones() & 1 == 1
    }

    /// Iterator over the indices of set bits, in increasing order.
    #[inline]
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            bits: self,
            limb_idx: 0,
            current: self.limbs.first().copied().unwrap_or(0),
        }
    }

    /// Copies `count` bits starting at `start` into a new vector.
    ///
    /// Works limb-at-a-time: each output limb is assembled from at most
    /// two input limbs via shifts, regardless of alignment.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, count: usize) -> Bits {
        assert!(start + count <= self.len, "slice out of range");
        let mut out = Bits::zeros(count);
        let shift = start % 64;
        let base = start / 64;
        for (o, dst) in out.limbs.iter_mut().enumerate() {
            let lo = self.limbs.get(base + o).copied().unwrap_or(0);
            *dst = if shift == 0 {
                lo
            } else {
                let hi = self.limbs.get(base + o + 1).copied().unwrap_or(0);
                (lo >> shift) | (hi << (64 - shift))
            };
        }
        out.mask_tail();
        out
    }

    /// Overwrites `count` bits starting at `start` from `src`.
    ///
    /// Works limb-at-a-time: each source limb is merged into at most two
    /// destination limbs via shifts and masks, regardless of alignment.
    ///
    /// # Panics
    ///
    /// Panics if the ranges are out of bounds.
    pub fn write_slice(&mut self, start: usize, src: &Bits) {
        assert!(start + src.len() <= self.len, "write_slice out of range");
        let shift = start % 64;
        let base = start / 64;
        let mut remaining = src.len();
        for (s, &limb) in src.limbs.iter().enumerate() {
            // Number of valid bits in this source limb.
            let valid = remaining.min(64);
            remaining -= valid;
            let vmask = if valid == 64 {
                !0u64
            } else {
                (1u64 << valid) - 1
            };
            let limb = limb & vmask;
            // Low part: the portion of the source limb that fits in
            // destination limb `base + s` (high bits shift out naturally).
            let dst = &mut self.limbs[base + s];
            *dst = (*dst & !(vmask << shift)) | (limb << shift);
            // High part spills into the next destination limb.
            if shift != 0 && valid + shift > 64 {
                let hi_mask = (1u64 << (valid + shift - 64)) - 1;
                let dst = &mut self.limbs[base + s + 1];
                *dst = (*dst & !hi_mask) | (limb >> (64 - shift));
            }
        }
    }

    /// Concatenates `self` followed by `other`.
    pub fn concat(&self, other: &Bits) -> Bits {
        let mut out = Bits::zeros(self.len + other.len);
        out.write_slice(0, self);
        out.write_slice(self.len, other);
        out
    }

    /// Interprets the low 64 bits as a `u64` (higher bits ignored).
    pub fn to_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Access to the raw limbs (little-endian).
    pub fn as_limbs(&self) -> &[u64] {
        &self.limbs
    }

    fn mask_tail(&mut self) {
        let used = self.len % 64;
        if used != 0 {
            if let Some(last) = self.limbs.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
        if self.len == 0 {
            self.limbs.clear();
        }
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits[{}; ones=", self.len)?;
        let ones: Vec<usize> = self.iter_ones().collect();
        write!(f, "{ones:?}]")
    }
}

impl fmt::Binary for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.len).rev() {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(self, f)
    }
}

/// Iterator over set-bit indices produced by [`Bits::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    bits: &'a Bits,
    limb_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.limb_idx * 64 + tz);
            }
            self.limb_idx += 1;
            if self.limb_idx >= self.bits.limbs.len() {
                return None;
            }
            self.current = self.bits.limbs[self.limb_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let b = Bits::zeros(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 0);
        assert!(b.is_zero());
        assert!(!b.is_empty());
    }

    #[test]
    fn empty_is_empty() {
        let b = Bits::zeros(0);
        assert!(b.is_empty());
        assert!(b.is_zero());
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn set_get_flip() {
        let mut b = Bits::zeros(100);
        b.set(0, true);
        b.set(63, true);
        b.set(64, true);
        b.set(99, true);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(99));
        assert_eq!(b.count_ones(), 4);
        b.flip(63);
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 3);
        b.set(0, false);
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn ones_masks_tail() {
        let b = Bits::ones(70);
        assert_eq!(b.count_ones(), 70);
        assert_eq!(b.as_limbs().len(), 2);
        assert_eq!(b.as_limbs()[1], (1u64 << 6) - 1);
    }

    #[test]
    fn from_u64_truncates() {
        let b = Bits::from_u64(0xFF, 4);
        assert_eq!(b.count_ones(), 4);
        assert_eq!(b.to_u64(), 0xF);
    }

    #[test]
    fn xor_roundtrip() {
        let a = Bits::from_u64(0b1010, 8);
        let b = Bits::from_u64(0b0110, 8);
        let c = a.xor(&b);
        assert_eq!(c.to_u64(), 0b1100);
        assert_eq!(c.xor(&b).to_u64(), 0b1010);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_length_mismatch_panics() {
        let mut a = Bits::zeros(8);
        a.xor_assign(&Bits::zeros(9));
    }

    #[test]
    fn iter_ones_order() {
        let b = Bits::from_positions(200, &[5, 64, 70, 199]);
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![5, 64, 70, 199]);
    }

    #[test]
    fn parity_matches_popcount() {
        let b = Bits::from_positions(64, &[1, 2, 3]);
        assert!(b.parity());
        let b = Bits::from_positions(64, &[1, 2, 3, 4]);
        assert!(!b.parity());
    }

    #[test]
    fn slice_and_write_slice() {
        let b = Bits::from_positions(32, &[0, 8, 9, 31]);
        let s = b.slice(8, 8);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        let mut c = Bits::zeros(32);
        c.write_slice(8, &s);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![8, 9]);
    }

    #[test]
    fn concat_preserves_order() {
        let a = Bits::from_positions(3, &[0]);
        let b = Bits::from_positions(3, &[2]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 6);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![0, 5]);
    }

    #[test]
    fn slice_across_limb_boundary() {
        // Slice windows straddling the 64-bit limb boundary at unaligned
        // offsets must match the per-bit definition exactly.
        let b = Bits::from_positions(200, &[0, 5, 60, 63, 64, 65, 100, 127, 128, 199]);
        for &(start, count) in &[
            (0usize, 200usize),
            (1, 130),
            (60, 10),
            (63, 2),
            (59, 70),
            (127, 3),
            (130, 70),
            (199, 1),
            (37, 0),
        ] {
            let s = b.slice(start, count);
            assert_eq!(s.len(), count);
            for i in 0..count {
                assert_eq!(
                    s.get(i),
                    b.get(start + i),
                    "start={start} count={count} i={i}"
                );
            }
        }
    }

    #[test]
    fn write_slice_across_limb_boundary() {
        // Writes at unaligned offsets must only touch the target window.
        let src = Bits::from_positions(70, &[0, 1, 63, 64, 69]);
        for &start in &[0usize, 1, 37, 58, 63, 64, 65, 120] {
            let mut dst = Bits::ones(200);
            dst.write_slice(start, &src);
            for i in 0..200 {
                let expected = if (start..start + 70).contains(&i) {
                    src.get(i - start)
                } else {
                    true
                };
                assert_eq!(dst.get(i), expected, "start={start} bit {i}");
            }
        }
    }

    #[test]
    fn write_slice_zero_width_is_noop() {
        let mut dst = Bits::from_positions(10, &[3]);
        dst.write_slice(7, &Bits::zeros(0));
        assert_eq!(dst.iter_ones().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn xor_assign_unaligned_lengths() {
        // Non-64-aligned vectors: the tail limb carries fewer than 64 bits
        // and must XOR without disturbing anything past `len`.
        for len in [1usize, 63, 65, 127, 130] {
            let a = Bits::from_positions(len, &[0, len - 1]);
            let mut b = Bits::ones(len);
            b.xor_assign(&a);
            assert_eq!(b.count_ones(), len - a.count_ones());
            assert!(!b.get(0));
            assert!(!b.get(len - 1));
        }
    }

    #[test]
    fn and_or_assign() {
        let a = Bits::from_positions(130, &[0, 64, 129]);
        let b = Bits::from_positions(130, &[64, 100, 129]);
        let mut c = a.clone();
        c.and_assign(&b);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![64, 129]);
        assert_eq!(a.and(&b), c);
        let mut d = a.clone();
        d.or_assign(&b);
        assert_eq!(d.iter_ones().collect::<Vec<_>>(), vec![0, 64, 100, 129]);
    }

    #[test]
    fn masked_parity_and_intersects() {
        let a = Bits::from_positions(130, &[1, 2, 64, 129]);
        let all = Bits::ones(130);
        assert!(!a.masked_parity(&all)); // 4 ones -> even
        let m = Bits::from_positions(130, &[1, 64, 129]);
        assert!(a.masked_parity(&m)); // 3-way intersection -> odd
        assert!(a.intersects(&m));
        assert!(!a.intersects(&Bits::from_positions(130, &[3, 70])));
    }

    #[test]
    fn set_limb_masks_tail() {
        let mut b = Bits::zeros(70);
        b.set_limb(0, !0);
        b.set_limb(1, !0);
        assert_eq!(b.count_ones(), 70, "tail bits masked");
        assert_eq!(b.as_limbs()[1], (1u64 << 6) - 1);
    }

    #[test]
    fn clear_and_copy_from() {
        let mut a = Bits::ones(70);
        a.clear();
        assert!(a.is_zero());
        let b = Bits::from_positions(70, &[69]);
        a.copy_from(&b);
        assert_eq!(a, b);
        a.copy_from_limbs(&[!0u64, !0u64]);
        assert_eq!(a.count_ones(), 70, "tail bits masked");
    }

    #[test]
    fn parity_limbwise_matches_popcount_parity() {
        for len in [1usize, 64, 65, 127, 128, 200] {
            let mut b = Bits::zeros(len);
            let mut expect = false;
            for i in (0..len).step_by(7) {
                b.set(i, true);
                expect = !expect;
            }
            assert_eq!(b.parity(), expect, "len={len}");
            assert_eq!(b.parity(), b.count_ones() % 2 == 1, "len={len}");
        }
    }

    #[test]
    fn binary_format_msb_first() {
        let b = Bits::from_u64(0b101, 4);
        assert_eq!(format!("{b:b}"), "0101");
    }

    #[test]
    fn debug_nonempty() {
        let b = Bits::zeros(4);
        assert!(!format!("{b:?}").is_empty());
    }
}
