//! SECDED-SBD: single-error-correct, double-error-detect,
//! single-**byte**-error-detect codes.
//!
//! The paper notes that "SECDED ECC can be extended to increase its
//! multi-bit detection coverage similar to that of interleaved EDC with
//! very low overhead (e.g., SECDED-SBD (single-byte error detection))".
//! This module provides such a code: beyond SECDED behaviour, *any* error
//! pattern confined to one aligned data byte is guaranteed to be detected
//! and never miscorrected.
//!
//! The parity-check matrix is built by a deterministic greedy search:
//! every data column is chosen so that every non-empty XOR combination of
//! columns within the same byte (the syndromes byte-confined errors can
//! produce) is distinct from zero, from every already-used column, and
//! from every other byte-combination syndrome. Single-bit errors then
//! decode uniquely, while byte-confined multi-bit errors land on
//! syndromes that match no column — flagged uncorrectable. The
//! construction verifies its own invariants and grows the check-bit count
//! until they hold.

use crate::code::{validate_widths, Code, Decoded};
use crate::Bits;
use std::collections::{HashMap, HashSet};

/// A SECDED code with guaranteed detection of any error confined to one
/// aligned `byte_width`-bit data byte.
///
/// # Examples
///
/// ```
/// use ecc::{Code, Decoded, SecdedSbd, Bits};
///
/// let code = SecdedSbd::new(64, 8);
/// let data = Bits::from_u64(0x0123_4567_89AB_CDEF, 64);
/// let check = code.encode(&data);
///
/// // Wipe out an entire byte: detected, never miscorrected.
/// let mut noisy = data.clone();
/// for i in 16..24 {
///     noisy.flip(i);
/// }
/// assert_eq!(code.decode(&noisy, &check), Decoded::Detected);
/// ```
#[derive(Clone, Debug)]
pub struct SecdedSbd {
    data_bits: usize,
    byte_width: usize,
    check_bits: usize,
    /// Column (syndrome pattern) of each data bit.
    columns: Vec<u32>,
    /// Syndrome -> codeword position for single-bit correction.
    decode_map: HashMap<u32, usize>,
}

impl SecdedSbd {
    /// Builds a SECDED-SBD code over `data_bits`-bit words with aligned
    /// `byte_width`-bit bytes.
    ///
    /// # Panics
    ///
    /// Panics if `data_bits` is not a multiple of `byte_width`, either is
    /// zero, or no parity-check matrix of at most 16 check bits exists
    /// (never the case for the practical geometries).
    pub fn new(data_bits: usize, byte_width: usize) -> Self {
        assert!(data_bits > 0 && byte_width > 0, "empty geometry");
        assert!(
            data_bits.is_multiple_of(byte_width),
            "data bits must split into whole bytes"
        );
        // Start from the SECDED-equivalent check count and grow until the
        // greedy construction succeeds.
        let mut r = 4;
        while (1usize << (r - 1)) < data_bits + r {
            r += 1;
        }
        loop {
            assert!(r <= 16, "no SBD matrix found with <= 16 check bits");
            if let Some(code) = Self::try_build(data_bits, byte_width, r) {
                return code;
            }
            r += 1;
        }
    }

    /// Greedy matrix construction for a given check-bit count.
    ///
    /// Invariants enforced (sufficient for SEC-DED-SBD):
    /// 1. all single columns (data + check units) are distinct and
    ///    odd-weight (single-bit correct, double-bit detect);
    /// 2. no multi-bit combination *within one byte* is zero (byte errors
    ///    never vanish);
    /// 3. no multi-bit byte combination equals any single column, past or
    ///    future (byte errors never alias to a single-bit correction).
    ///
    /// Multi-bit combinations of different bytes may collide with each
    /// other — both decode as "detected", which is harmless.
    fn try_build(data_bits: usize, byte_width: usize, r: usize) -> Option<SecdedSbd> {
        let universe = 1u32 << r;
        // Check-bit columns are unit vectors (systematic form).
        let mut used_columns: HashSet<u32> = (0..r).map(|i| 1u32 << i).collect();
        // Multi-bit byte combinations frozen so far: future single
        // columns must avoid them (invariant 3 for earlier bytes).
        let mut frozen_combos: HashSet<u32> = HashSet::new();
        let mut columns = Vec::with_capacity(data_bits);
        let bytes = data_bits / byte_width;
        for _byte in 0..bytes {
            // All XOR combinations of the columns chosen so far in this
            // byte (starting with the empty combination).
            let mut combos: Vec<u32> = vec![0];
            for _bit in 0..byte_width {
                let mut chosen = None;
                'candidate: for cand in 3..universe {
                    // Odd weight preserves double-error detection.
                    if (cand.count_ones() % 2) == 0 {
                        continue;
                    }
                    if used_columns.contains(&cand) || frozen_combos.contains(&cand) {
                        continue;
                    }
                    // The candidate must not equal an existing multi-bit
                    // combination of its own byte (it would alias).
                    if combos.contains(&cand) {
                        continue;
                    }
                    // Every multi-bit combination this candidate creates
                    // within the byte must be nonzero and distinct from
                    // every single column (invariants 2 and 3).
                    for &base in &combos {
                        if base == 0 {
                            continue; // the candidate alone: checked above
                        }
                        let syn = base ^ cand;
                        if syn == 0 || used_columns.contains(&syn) {
                            continue 'candidate;
                        }
                    }
                    chosen = Some(cand);
                    break;
                }
                let cand = chosen?;
                let new_combos: Vec<u32> = combos.iter().map(|&b| b ^ cand).collect();
                combos.extend(new_combos);
                used_columns.insert(cand);
                columns.push(cand);
            }
            // Freeze this byte's multi-bit combinations: later single
            // columns must not alias to them. (They must also avoid the
            // columns already chosen — enforced during selection.)
            for &c in &combos {
                if c != 0 && c.count_ones() >= 1 && !columns.contains(&c) {
                    frozen_combos.insert(c);
                }
            }
        }
        // Final verification of the SBD property against the *complete*
        // column set (defence in depth — the greedy checks should already
        // guarantee it): every multi-bit byte pattern's syndrome must be
        // nonzero and distinct from every single column.
        for byte in 0..bytes {
            let byte_cols = &columns[byte * byte_width..(byte + 1) * byte_width];
            for mask in 1u32..(1 << byte_width) {
                if mask.count_ones() < 2 {
                    continue;
                }
                let mut syn = 0u32;
                for (bit, &col) in byte_cols.iter().enumerate() {
                    if mask & (1 << bit) != 0 {
                        syn ^= col;
                    }
                }
                if syn == 0 || used_columns.contains(&syn) {
                    return None;
                }
            }
        }
        let mut decode_map = HashMap::new();
        for (i, &c) in columns.iter().enumerate() {
            decode_map.insert(c, i);
        }
        for bit in 0..r {
            decode_map.insert(1u32 << bit, data_bits + bit);
        }
        Some(SecdedSbd {
            data_bits,
            byte_width,
            check_bits: r,
            columns,
            decode_map,
        })
    }

    /// The aligned byte width the detection guarantee covers.
    pub fn byte_width(&self) -> usize {
        self.byte_width
    }

    fn syndrome(&self, data: &Bits, check: &Bits) -> u32 {
        let mut syn = 0u32;
        for i in data.iter_ones() {
            syn ^= self.columns[i];
        }
        for i in check.iter_ones() {
            syn ^= 1u32 << i;
        }
        syn
    }
}

impl Code for SecdedSbd {
    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn check_bits(&self) -> usize {
        self.check_bits
    }

    fn encode(&self, data: &Bits) -> Bits {
        assert_eq!(data.len(), self.data_bits, "data width mismatch");
        let mut syn = 0u32;
        for i in data.iter_ones() {
            syn ^= self.columns[i];
        }
        let mut check = Bits::zeros(self.check_bits);
        for bit in 0..self.check_bits {
            if syn & (1 << bit) != 0 {
                check.set(bit, true);
            }
        }
        check
    }

    fn check_clean(&self, data: &Bits, check: &Bits) -> bool {
        validate_widths(self, data, check);
        self.syndrome(data, check) == 0
    }

    fn decode(&self, data: &Bits, check: &Bits) -> Decoded {
        validate_widths(self, data, check);
        let syn = self.syndrome(data, check);
        if syn == 0 {
            return Decoded::Clean;
        }
        // Even-weight syndromes can only arise from multi-bit errors
        // (all columns are odd-weight): detect.
        if syn.count_ones().is_multiple_of(2) {
            return Decoded::Detected;
        }
        match self.decode_map.get(&syn) {
            Some(&pos) if pos < self.data_bits => {
                let mut fixed = data.clone();
                fixed.flip(pos);
                Decoded::Corrected {
                    data: fixed,
                    flipped: vec![pos],
                }
            }
            Some(&pos) => Decoded::Corrected {
                data: data.clone(),
                flipped: vec![pos],
            },
            None => Decoded::Detected,
        }
    }

    fn correctable(&self) -> usize {
        1
    }

    fn detectable(&self) -> usize {
        2
    }

    fn burst_detectable(&self) -> usize {
        self.byte_width
    }

    fn name(&self) -> String {
        format!(
            "SECDED-SBD({},{})/b{}",
            self.codeword_bits(),
            self.data_bits,
            self.byte_width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_succeeds_for_paper_geometries() {
        let c64 = SecdedSbd::new(64, 8);
        assert!(c64.check_bits() <= 10, "check bits {}", c64.check_bits());
        let c32 = SecdedSbd::new(32, 4);
        assert!(c32.check_bits() <= 9);
    }

    #[test]
    fn clean_roundtrip() {
        let code = SecdedSbd::new(64, 8);
        let data = Bits::from_u64(0xDEAD_BEEF_F00D_CAFE, 64);
        let check = code.encode(&data);
        assert_eq!(code.decode(&data, &check), Decoded::Clean);
    }

    #[test]
    fn corrects_every_single_bit() {
        let code = SecdedSbd::new(64, 8);
        let data = Bits::from_u64(0x1357_9BDF_0246_8ACE, 64);
        let check = code.encode(&data);
        for i in 0..64 {
            let mut noisy = data.clone();
            noisy.flip(i);
            match code.decode(&noisy, &check) {
                Decoded::Corrected {
                    data: fixed,
                    flipped,
                } => {
                    assert_eq!(fixed, data, "bit {i}");
                    assert_eq!(flipped, vec![i]);
                }
                other => panic!("bit {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn detects_every_byte_confined_pattern() {
        // The SBD guarantee, checked exhaustively: all 2^8 - 1 nonzero
        // patterns in every byte either decode as the correct single-bit
        // fix or are detected — never miscorrected.
        let code = SecdedSbd::new(64, 8);
        let data = Bits::from_u64(0xA5A5_5A5A_C3C3_3C3C, 64);
        let check = code.encode(&data);
        for byte in 0..8 {
            for pattern in 1u32..256 {
                let mut noisy = data.clone();
                for bit in 0..8 {
                    if pattern & (1 << bit) != 0 {
                        noisy.flip(byte * 8 + bit);
                    }
                }
                match code.decode(&noisy, &check) {
                    Decoded::Clean => panic!("byte {byte} pattern {pattern:#x} undetected"),
                    Decoded::Corrected { data: fixed, .. } => {
                        assert_eq!(fixed, data, "byte {byte} pattern {pattern:#x} miscorrected");
                        assert_eq!(pattern.count_ones(), 1, "multi-bit pattern 'corrected'");
                    }
                    Decoded::Detected => {
                        assert!(pattern.count_ones() >= 2, "single bit not corrected");
                    }
                }
            }
        }
    }

    #[test]
    fn detects_double_errors_across_bytes() {
        let code = SecdedSbd::new(64, 8);
        let data = Bits::from_u64(7, 64);
        let check = code.encode(&data);
        // Double errors have even-weight syndromes: always detected.
        for (a, b) in [(0usize, 9), (3, 40), (17, 63)] {
            let mut noisy = data.clone();
            noisy.flip(a);
            noisy.flip(b);
            assert_eq!(code.decode(&noisy, &check), Decoded::Detected, "{a},{b}");
        }
    }

    #[test]
    fn check_bit_errors_corrected() {
        let code = SecdedSbd::new(64, 8);
        let data = Bits::from_u64(99, 64);
        let check = code.encode(&data);
        for c in 0..code.check_bits() {
            let mut noisy = check.clone();
            noisy.flip(c);
            match code.decode(&data, &noisy) {
                Decoded::Corrected { flipped, .. } => assert_eq!(flipped, vec![64 + c]),
                other => panic!("check bit {c}: {other:?}"),
            }
        }
    }

    #[test]
    fn name_and_burst() {
        let code = SecdedSbd::new(64, 8);
        assert!(code.name().starts_with("SECDED-SBD"));
        assert_eq!(code.burst_detectable(), 8);
    }

    #[test]
    #[should_panic(expected = "whole bytes")]
    fn misaligned_bytes_panic() {
        let _ = SecdedSbd::new(60, 8);
    }
}
