//! Interleaved-parity error *detection* codes (`EDCn`).
//!
//! `EDCn` stores `n` check bits per word; check bit `i` is the parity of
//! every `n`-th data bit starting at `i`:
//!
//! ```text
//! parity_bit[i] = data[i] ^ data[i + n] ^ data[i + 2n] ^ ...
//! ```
//!
//! Because a contiguous burst of at most `n` bit flips touches each parity
//! group at most once, every such burst flips at least one group's parity
//! and is therefore detected. The paper uses `EDC8` as the horizontal code
//! of its timing-critical L1 configuration (same latency class as byte
//! parity) and `EDC16` for 256-bit L2 words; the *vertical* `EDC32` code is
//! the same construction applied across rows (see the `memarray` crate).

use crate::code::{validate_widths, Code, Decoded};
use crate::Bits;

/// `n`-way interleaved parity over a `k`-bit data word.
///
/// Detection-only: [`Code::decode`] never returns [`Decoded::Corrected`].
///
/// # Examples
///
/// ```
/// use ecc::{Code, Decoded, Edc, Bits};
///
/// let edc8 = Edc::new(64, 8);
/// let data = Bits::from_u64(0x0123_4567_89AB_CDEF, 64);
/// let check = edc8.encode(&data);
/// assert_eq!(check.len(), 8);
///
/// // Any burst of <= 8 contiguous flips is detected.
/// let mut noisy = data.clone();
/// for i in 20..28 {
///     noisy.flip(i);
/// }
/// assert_eq!(edc8.decode(&noisy, &check), Decoded::Detected);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edc {
    data_bits: usize,
    groups: usize,
    /// Precomputed parity-group masks, flattened `[limb * groups + g]`:
    /// the bits of data limb `limb` that belong to parity group `g`.
    /// Encoding reduces to one AND + popcount per (limb, group) pair.
    limb_masks: Vec<u64>,
}

impl Edc {
    /// Creates an `EDCn` code with `groups = n` parity groups over
    /// `data_bits`-bit words. Group membership masks are precomputed here
    /// so the per-access encode path is limb-parallel.
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0` or `data_bits == 0`.
    pub fn new(data_bits: usize, groups: usize) -> Self {
        assert!(groups > 0, "EDC needs at least one parity group");
        assert!(data_bits > 0, "EDC needs a non-empty data word");
        let limbs = data_bits.div_ceil(64);
        let mut limb_masks = vec![0u64; limbs * groups];
        for i in 0..data_bits {
            limb_masks[(i / 64) * groups + i % groups] |= 1u64 << (i % 64);
        }
        Edc {
            data_bits,
            groups,
            limb_masks,
        }
    }

    /// The interleaving depth `n` (number of parity groups).
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Recomputes the syndrome (stored check XOR recomputed check).
    pub fn syndrome(&self, data: &Bits, check: &Bits) -> Bits {
        self.encode(data).xor(check)
    }

    /// Parity-group membership of data bit `i`.
    pub fn group_of(&self, bit: usize) -> usize {
        bit % self.groups
    }

    /// Check bits as a packed `u64`, computed with the precomputed limb
    /// masks. Only available when the code has at most 64 groups (always
    /// true for the paper's EDC8/EDC16/EDC32 geometries).
    #[inline]
    fn encode_word(&self, data: &Bits) -> Option<u64> {
        if self.groups > 64 {
            return None;
        }
        let mut acc = 0u64;
        for (l, &limb) in data.as_limbs().iter().enumerate() {
            let base = l * self.groups;
            for (g, &mask) in self.limb_masks[base..base + self.groups].iter().enumerate() {
                acc ^= (((limb & mask).count_ones() as u64) & 1) << g;
            }
        }
        Some(acc)
    }

    /// Reference bit-serial encoder: one pass over the set bits, flipping
    /// the owning group's parity per bit. Retained (and exercised by the
    /// equivalence property tests) as the executable specification the
    /// table-driven path must match bit-for-bit.
    pub fn encode_reference(&self, data: &Bits) -> Bits {
        assert_eq!(data.len(), self.data_bits, "data width mismatch");
        let mut check = Bits::zeros(self.groups);
        for i in data.iter_ones() {
            check.flip(i % self.groups);
        }
        check
    }
}

impl Code for Edc {
    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn check_bits(&self) -> usize {
        self.groups
    }

    fn encode(&self, data: &Bits) -> Bits {
        assert_eq!(data.len(), self.data_bits, "data width mismatch");
        match self.encode_word(data) {
            Some(acc) => Bits::from_u64(acc, self.groups),
            None => self.encode_reference(data),
        }
    }

    fn decode(&self, data: &Bits, check: &Bits) -> Decoded {
        validate_widths(self, data, check);
        if self.check_clean(data, check) {
            Decoded::Clean
        } else {
            Decoded::Detected
        }
    }

    fn check_clean(&self, data: &Bits, check: &Bits) -> bool {
        validate_widths(self, data, check);
        match self.encode_word(data) {
            Some(acc) => acc == check.to_u64(),
            None => self.encode_reference(data) == *check,
        }
    }

    fn correctable(&self) -> usize {
        0
    }

    fn detectable(&self) -> usize {
        // A single flip always flips exactly one parity group; two random
        // flips in the same group cancel, so only 1 random error is
        // *guaranteed* detected. Burst detection is much stronger.
        1
    }

    fn burst_detectable(&self) -> usize {
        self.groups
    }

    fn name(&self) -> String {
        format!(
            "EDC{}({},{})",
            self.groups,
            self.codeword_bits(),
            self.data_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        let edc = Edc::new(64, 8);
        let data = Bits::from_u64(0xFEED_FACE_CAFE_F00D, 64);
        let check = edc.encode(&data);
        assert_eq!(edc.decode(&data, &check), Decoded::Clean);
    }

    #[test]
    fn edc8_matches_paper_formula() {
        // parity_bit[i] = xor(data[i], data[i+8], data[i+16], ...)
        let edc = Edc::new(64, 8);
        let data = Bits::from_positions(64, &[0, 8, 16, 3, 11]);
        let check = edc.encode(&data);
        // group 0 has 3 members -> parity 1; group 3 has 2 -> parity 0.
        assert!(check.get(0));
        assert!(!check.get(3));
        assert_eq!(check.count_ones(), 1);
    }

    #[test]
    fn detects_all_bursts_up_to_n() {
        let edc = Edc::new(64, 8);
        let data = Bits::from_u64(0xAAAA_5555_FFFF_0000, 64);
        let check = edc.encode(&data);
        for start in 0..64 {
            for len in 1..=8 {
                if start + len > 64 {
                    continue;
                }
                let mut noisy = data.clone();
                for i in start..start + len {
                    noisy.flip(i);
                }
                assert_eq!(
                    edc.decode(&noisy, &check),
                    Decoded::Detected,
                    "burst start={start} len={len} missed"
                );
            }
        }
    }

    #[test]
    fn misses_aligned_double_flip() {
        // Two flips n apart land in the same parity group and cancel —
        // this is the documented coverage limit of interleaved parity.
        let edc = Edc::new(64, 8);
        let data = Bits::zeros(64);
        let check = edc.encode(&data);
        let mut noisy = data.clone();
        noisy.flip(4);
        noisy.flip(12);
        assert_eq!(edc.decode(&noisy, &check), Decoded::Clean);
    }

    #[test]
    fn detects_check_bit_corruption() {
        let edc = Edc::new(64, 8);
        let data = Bits::from_u64(1, 64);
        let mut check = edc.encode(&data);
        check.flip(5);
        assert_eq!(edc.decode(&data, &check), Decoded::Detected);
    }

    #[test]
    fn name_and_overhead() {
        let edc = Edc::new(64, 8);
        assert_eq!(edc.name(), "EDC8(72,64)");
        assert!((edc.storage_overhead() - 0.125).abs() < 1e-12);
        assert_eq!(edc.burst_detectable(), 8);
        assert_eq!(edc.correctable(), 0);
    }

    #[test]
    fn non_multiple_group_width() {
        // 48-bit tag word with EDC8 still works (groups wrap correctly).
        let edc = Edc::new(48, 8);
        let data = Bits::from_positions(48, &[47]);
        let check = edc.encode(&data);
        assert!(check.get(47 % 8));
        assert_eq!(edc.decode(&data, &check), Decoded::Clean);
    }

    #[test]
    #[should_panic(expected = "at least one parity group")]
    fn zero_groups_panics() {
        let _ = Edc::new(64, 0);
    }
}
