//! The common interface implemented by every memory-protection code in this
//! crate, together with the decode outcome type shared by all of them.

use crate::Bits;

/// Result of checking a stored `(data, check)` pair against a code.
///
/// Positions in [`Decoded::Corrected`] index the *codeword*: positions
/// `0..data_bits` are data bits and positions `data_bits..` are check bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decoded {
    /// No error detected.
    Clean,
    /// Errors were located and corrected.
    Corrected {
        /// The corrected data word (check bits are re-derivable).
        data: Bits,
        /// Codeword positions that were flipped to correct the word.
        flipped: Vec<usize>,
    },
    /// An error was detected that the code cannot correct.
    Detected,
}

impl Decoded {
    /// Whether the outcome is [`Decoded::Clean`].
    pub fn is_clean(&self) -> bool {
        matches!(self, Decoded::Clean)
    }

    /// Whether the outcome is [`Decoded::Detected`] (uncorrectable).
    pub fn is_detected_uncorrectable(&self) -> bool {
        matches!(self, Decoded::Detected)
    }

    /// The usable data word after decoding: the original on
    /// [`Decoded::Clean`], the corrected word on [`Decoded::Corrected`],
    /// and `None` when the error is uncorrectable.
    pub fn data<'a>(&'a self, original: &'a Bits) -> Option<&'a Bits> {
        match self {
            Decoded::Clean => Some(original),
            Decoded::Corrected { data, .. } => Some(data),
            Decoded::Detected => None,
        }
    }
}

/// Reusable working storage for [`Code::decode_into`].
///
/// A scratch starts empty and grows to the high-water mark of the
/// decodes it serves; after the first few corrections every buffer
/// holds enough capacity and subsequent decodes allocate nothing. One
/// scratch per decoding site (engine recovery path, bench loop,
/// thread-local) is the intended pattern — a scratch is not `Sync` and
/// must not be shared across concurrent decodes.
#[derive(Clone, Debug, Default)]
pub struct DecodeScratch {
    /// Codeword positions flipped by the last
    /// [`DecodedInPlace::Corrected`] outcome, sorted ascending. Same
    /// indexing as [`Decoded::Corrected`]: `0..data_bits` are data
    /// bits, `data_bits..` are check bits.
    pub flipped: Vec<usize>,
    /// Power-sum syndromes (BCH).
    pub(crate) syndromes: Vec<u32>,
    /// Error-locator polynomial sigma (BCH Berlekamp–Massey).
    pub(crate) sigma: Vec<u32>,
    /// Previous locator candidate (BCH Berlekamp–Massey).
    pub(crate) prev: Vec<u32>,
    /// Copy buffer for the locator update (BCH Berlekamp–Massey).
    pub(crate) tpoly: Vec<u32>,
    /// Chien-search roots (BCH).
    pub(crate) positions: Vec<usize>,
}

/// Result of an in-place decode ([`Code::decode_into`]): the same three
/// outcomes as [`Decoded`], with the corrected word delivered through
/// the caller's buffers instead of fresh allocations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodedInPlace {
    /// No error detected; the stored data word is already correct
    /// (`out` is untouched).
    Clean,
    /// Errors were located and corrected: `out` holds the corrected
    /// data word and `scratch.flipped` the flipped codeword positions.
    Corrected,
    /// An error was detected that the code cannot correct (`out` holds
    /// unspecified contents).
    Detected,
}

impl DecodedInPlace {
    /// Whether the outcome is [`DecodedInPlace::Clean`].
    pub fn is_clean(&self) -> bool {
        matches!(self, DecodedInPlace::Clean)
    }
}

/// A systematic block code over a fixed-width data word.
///
/// Implementations are *systematic*: the stored codeword is the data word
/// followed by [`Code::check_bits`] check bits produced by [`Code::encode`].
///
/// # Examples
///
/// ```
/// use ecc::{Code, Decoded, Secded, Bits};
///
/// let code = Secded::new(64);
/// let data = Bits::from_u64(0xDEAD_BEEF_0123_4567, 64);
/// let check = code.encode(&data);
///
/// // Flip one data bit: SECDED corrects it.
/// let mut noisy = data.clone();
/// noisy.flip(17);
/// match code.decode(&noisy, &check) {
///     Decoded::Corrected { data: fixed, flipped } => {
///         assert_eq!(fixed, data);
///         assert_eq!(flipped, vec![17]);
///     }
///     other => panic!("expected correction, got {other:?}"),
/// }
/// ```
pub trait Code {
    /// Width of the data word this instance protects.
    fn data_bits(&self) -> usize;

    /// Number of stored check bits.
    fn check_bits(&self) -> usize;

    /// Computes the check bits for `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.data_bits()`.
    fn encode(&self, data: &Bits) -> Bits;

    /// Checks a stored pair and attempts correction.
    ///
    /// # Panics
    ///
    /// Panics if `data` or `check` have the wrong width.
    fn decode(&self, data: &Bits, check: &Bits) -> Decoded;

    /// Whether the stored pair is clean, i.e. [`Code::decode`] would
    /// return [`Decoded::Clean`]. Hot paths call this on every access;
    /// implementations override it with an allocation-free syndrome
    /// check.
    ///
    /// # Panics
    ///
    /// Panics if `data` or `check` have the wrong width.
    fn check_clean(&self, data: &Bits, check: &Bits) -> bool {
        self.decode(data, check).is_clean()
    }

    /// Decodes a stored pair into caller-owned buffers: on
    /// [`DecodedInPlace::Corrected`], `out` receives the corrected data
    /// word and `scratch.flipped` the flipped codeword positions.
    ///
    /// This is the zero-allocation counterpart of [`Code::decode`] for
    /// hot repair loops: with a warmed `scratch`, implementations that
    /// override it (the BCH family) allocate nothing per call. The
    /// default implementation delegates to [`Code::decode`] and copies,
    /// so it is correct for every code but only allocation-free on the
    /// clean and detected outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `data`, `check`, or `out` have the wrong width
    /// (`out.len() != self.data_bits()`).
    fn decode_into(
        &self,
        data: &Bits,
        check: &Bits,
        out: &mut Bits,
        scratch: &mut DecodeScratch,
    ) -> DecodedInPlace {
        match self.decode(data, check) {
            Decoded::Clean => DecodedInPlace::Clean,
            Decoded::Corrected {
                data: fixed,
                flipped,
            } => {
                out.copy_from(&fixed);
                scratch.flipped.clear();
                scratch.flipped.extend_from_slice(&flipped);
                DecodedInPlace::Corrected
            }
            Decoded::Detected => DecodedInPlace::Detected,
        }
    }

    /// The code's parity matrix in systematic form: entry `i` is the
    /// check word of the `i`-th data unit vector, so for any word
    /// `encode(d) = XOR of parity_matrix()[i] over the set bits of d`.
    ///
    /// Every code in this crate is linear over GF(2), which makes this
    /// matrix exact; the default implementation derives it by encoding
    /// unit vectors and is intended for construction-time precomputation
    /// (e.g. row-level clean masks in `memarray`), not for hot loops.
    fn parity_matrix(&self) -> Vec<Bits> {
        let k = self.data_bits();
        let mut rows = Vec::with_capacity(k);
        let mut unit = Bits::zeros(k);
        for i in 0..k {
            unit.set(i, true);
            rows.push(self.encode(&unit));
            unit.set(i, false);
        }
        rows
    }

    /// Maximum number of random bit errors the code is guaranteed to
    /// correct (0 for detection-only codes).
    fn correctable(&self) -> usize;

    /// Maximum number of random bit errors the code is guaranteed to
    /// detect (without miscorrection).
    fn detectable(&self) -> usize;

    /// Length of a contiguous error burst within the codeword that the code
    /// is guaranteed to at least detect.
    fn burst_detectable(&self) -> usize {
        self.detectable()
    }

    /// Human-readable name, e.g. `"SECDED(72,64)"`.
    fn name(&self) -> String;

    /// Total codeword width.
    fn codeword_bits(&self) -> usize {
        self.data_bits() + self.check_bits()
    }

    /// Storage overhead: check bits relative to data bits.
    fn storage_overhead(&self) -> f64 {
        self.check_bits() as f64 / self.data_bits() as f64
    }
}

/// Checks dimensions shared by all `decode` implementations.
pub(crate) fn validate_widths(code: &dyn Code, data: &Bits, check: &Bits) {
    assert_eq!(
        data.len(),
        code.data_bits(),
        "data width {} does not match code {}",
        data.len(),
        code.name()
    );
    assert_eq!(
        check.len(),
        code.check_bits(),
        "check width {} does not match code {}",
        check.len(),
        code.name()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoded_accessors() {
        let original = Bits::from_u64(5, 8);
        assert!(Decoded::Clean.is_clean());
        assert!(Decoded::Detected.is_detected_uncorrectable());
        assert_eq!(Decoded::Clean.data(&original), Some(&original));
        assert_eq!(Decoded::Detected.data(&original), None);
        let fixed = Bits::from_u64(7, 8);
        let d = Decoded::Corrected {
            data: fixed.clone(),
            flipped: vec![1],
        };
        assert_eq!(d.data(&original), Some(&fixed));
    }
}
