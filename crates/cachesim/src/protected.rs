//! The protected backing store behind the detailed L2 — the tentpole of
//! the "wake the simulator" milestone.
//!
//! [`ProtectedStore`] puts a real [`memarray::TwoDArray`] (or a
//! SECDED-per-line comparator at equal storage overhead) underneath the
//! banked L2 of [`crate::detailed::DetailedSim`]: every L2 fill read and
//! writeback touches an actual coded bank, and the correction or
//! recovery latency the array reports becomes extra bank occupancy —
//! which is how correction work back-pressures MSHRs and ports.
//!
//! The store doubles as an end-to-end *outcome oracle*. It keeps a
//! deterministic model of what every word slot should contain and
//! classifies every injected fault event into exactly one of the
//! NE/CE/DUE/SDC buckets used by the MultiECC/REGB evaluation idiom:
//!
//! * **NE** — no effect: the fault never became architecturally visible
//!   (zero observable flips, e.g. a stuck-at matching the stored value);
//! * **CE** — corrected error: every touched word decoded back to the
//!   modelled value via in-line correction or 2D recovery;
//! * **DUE** — detected uncorrectable error: the scheme reported data
//!   loss (for the SECDED-per-line comparator this includes outcomes
//!   only the 2D machinery could have repaired);
//! * **SDC** — silent data corruption: a word read back "clean" or
//!   "corrected" but its payload disagrees with the model.
//!
//! Fault *domains* follow the footprint of the injected shape: a
//! single-row upset is a **row** fault, a multi-row cluster within the
//! vertical interleave `V` is a **stripe** fault, and damage spanning
//! more than `V` rows (two hits in one stripe) is a **bank** fault.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use ecc::Bits;
use memarray::{BankScheme, ErrorShape, ReadKind, TwoDArray};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reliability::montecarlo::{projected_retirements, MeasuredRates};
use reliability::YieldModel;
use twod_cache::TwoDScheme;

use crate::replication::ReplicationCache;
use crate::{DetailedSim, ProtectionPolicy, SystemConfig, WorkloadProfile};

/// Data rows per store bank. 544 is chosen so the 2D L2 preset lands at
/// *exactly* the SECDED-per-line storage overhead:
/// `16/256 + 32/544 * (1 + 16/256) = 0.125 = 8/64` — the equal-overhead
/// comparison point the paper's Table 2 argues from.
pub const STORE_ROWS: usize = 544;

/// Banks per store (independent fault + recovery domains).
pub const STORE_BANKS: usize = 4;

/// Which protection scheme backs the store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreScheme {
    /// The paper's 2D L2 preset: EDC16 per 256-bit word horizontally,
    /// 32 interleaved vertical parity rows for correction.
    TwoD,
    /// SECDED-per-line comparator at equal storage overhead (8 check
    /// bits per 64-bit word). The underlying array still carries
    /// vertical machinery, but any outcome that *needed* it is counted
    /// as DUE: a per-line code alone could only have detected it.
    SecdedPerLine,
}

impl StoreScheme {
    /// Short machine-readable label used in reports and bench rows.
    pub fn label(&self) -> &'static str {
        match self {
            StoreScheme::TwoD => "2d",
            StoreScheme::SecdedPerLine => "secded",
        }
    }

    /// The core-crate scheme preset this store instantiates.
    pub fn preset(&self) -> TwoDScheme {
        match self {
            StoreScheme::TwoD => TwoDScheme::l2_paper(),
            StoreScheme::SecdedPerLine => TwoDScheme::yield_mode(),
        }
    }

    /// Storage overhead accounted to the scheme at [`STORE_ROWS`].
    ///
    /// For the SECDED comparator only the horizontal code is charged —
    /// the vertical rows are adapter machinery, not part of the design
    /// being modelled.
    pub fn accounted_overhead(&self) -> f64 {
        match self {
            StoreScheme::TwoD => self.preset().storage_overhead(STORE_ROWS),
            StoreScheme::SecdedPerLine => 8.0 / 64.0,
        }
    }
}

/// Where an injected fault landed, by footprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDomain {
    /// Confined to one data row.
    Row,
    /// Spans several rows but at most the vertical interleave `V`.
    Stripe,
    /// Spans more than `V` rows (or hits one stripe twice).
    Bank,
}

impl FaultDomain {
    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultDomain::Row => "row",
            FaultDomain::Stripe => "stripe",
            FaultDomain::Bank => "bank",
        }
    }
}

/// Terminal classification of one fault event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// No architecturally visible effect.
    Ne,
    /// Corrected error.
    Ce,
    /// Detected uncorrectable error.
    Due,
    /// Silent data corruption.
    Sdc,
}

impl FaultOutcome {
    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultOutcome::Ne => "NE",
            FaultOutcome::Ce => "CE",
            FaultOutcome::Due => "DUE",
            FaultOutcome::Sdc => "SDC",
        }
    }
}

/// Raw evidence accumulated between `begin_event` and `take_evidence`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventEvidence {
    /// Words fixed by in-line (horizontal) correction.
    pub corrected: u64,
    /// Words that required 2D vertical recovery.
    pub recovered: u64,
    /// Reads or scrubs that reported unrecoverable loss.
    pub uncorrectable: u64,
    /// Words whose decoded payload disagreed with the model.
    pub mismatch: u64,
}

impl EventEvidence {
    /// Whether any mechanism fired at all.
    pub fn any(&self) -> bool {
        self.corrected + self.recovered + self.uncorrectable + self.mismatch > 0
    }
}

/// Classifies one fault event; `None` means the fault is unaccounted
/// (observable flips were injected but no mechanism ever saw them —
/// a model bug, not a benign outcome, and the sim binary treats it as
/// fatal).
pub fn classify(scheme: StoreScheme, flips: usize, ev: &EventEvidence) -> Option<FaultOutcome> {
    if ev.mismatch > 0 {
        return Some(FaultOutcome::Sdc);
    }
    if ev.uncorrectable > 0 {
        return Some(FaultOutcome::Due);
    }
    if scheme == StoreScheme::SecdedPerLine && ev.recovered > 0 {
        // The comparator's per-line code detected but could not have
        // corrected this; only the (disallowed) vertical machinery did.
        return Some(FaultOutcome::Due);
    }
    if ev.corrected + ev.recovered > 0 {
        return Some(FaultOutcome::Ce);
    }
    if flips == 0 {
        return Some(FaultOutcome::Ne);
    }
    None
}

/// Operation counters of one store (monotonic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// L2 fill reads served.
    pub fill_reads: u64,
    /// L2 writebacks absorbed.
    pub writebacks: u64,
    /// Total correction/recovery cycles charged to the banks.
    pub penalty_cycles: u64,
    /// Writebacks the replication buffer could not coalesce.
    pub spilled_writes: u64,
}

/// A coded backing store for the detailed L2 model: real banks, a
/// deterministic content model, and per-event evidence collection.
///
/// The store is deliberately RNG-free: slot contents derive from the
/// line address and a write epoch, so a fault-free run is bit-identical
/// to an unprotected run of the same simulator (the equivalence the
/// test suite pins).
#[derive(Debug)]
pub struct ProtectedStore {
    kind: StoreScheme,
    scheme: Arc<BankScheme>,
    banks: Vec<TwoDArray>,
    /// Per bank: slot index -> expected word payload. `BTreeMap` keeps
    /// readback and rebuild order deterministic.
    model: Vec<BTreeMap<u32, Bits>>,
    write_epoch: u64,
    replication: ReplicationCache,
    stats: StoreStats,
    evidence: EventEvidence,
    words_per_row: usize,
    data_bits: usize,
}

impl ProtectedStore {
    /// Builds a store with [`STORE_BANKS`] banks of [`STORE_ROWS`] rows
    /// sharing one [`BankScheme`].
    pub fn new(kind: StoreScheme) -> Self {
        let config = kind.preset().bank_config(STORE_ROWS);
        let scheme = Arc::new(BankScheme::new(config));
        let banks: Vec<TwoDArray> = (0..STORE_BANKS)
            .map(|_| TwoDArray::from_scheme(Arc::clone(&scheme)))
            .collect();
        let words_per_row = banks[0].words_per_row();
        let data_bits = banks[0].layout().data_bits();
        ProtectedStore {
            kind,
            scheme,
            banks,
            model: (0..STORE_BANKS).map(|_| BTreeMap::new()).collect(),
            write_epoch: 0,
            replication: ReplicationCache::new(64),
            stats: StoreStats::default(),
            evidence: EventEvidence::default(),
            words_per_row,
            data_bits,
        }
    }

    /// Which scheme backs this store.
    pub fn kind(&self) -> StoreScheme {
        self.kind
    }

    /// Operation counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Vertical interleave `V` of the backing scheme.
    pub fn vertical_rows(&self) -> usize {
        self.scheme.vertical_rows()
    }

    /// Physical column of `bit` of word `word` (for shaping injections).
    pub fn data_col(&self, word: usize, bit: usize) -> usize {
        self.banks[0].layout().data_col(word, bit)
    }

    /// Maps a line address to its (bank, row, word) slot.
    fn slot_of(&self, line: u64) -> (usize, usize, usize) {
        let bank = (line % STORE_BANKS as u64) as usize;
        let slots = (STORE_ROWS * self.words_per_row) as u64;
        let s = (line / STORE_BANKS as u64) % slots;
        (
            bank,
            (s as usize) / self.words_per_row,
            (s as usize) % self.words_per_row,
        )
    }

    /// Deterministic slot payload for `line` at write `epoch`
    /// (splitmix64 expansion — no RNG state involved).
    fn slot_value(&self, line: u64, epoch: u64) -> Bits {
        let mut limbs = vec![0u64; self.data_bits.div_ceil(64)];
        let mut x = line
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(epoch.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        for limb in limbs.iter_mut() {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *limb = z ^ (z >> 31);
        }
        Bits::from_limbs(&limbs, self.data_bits)
    }

    /// Records read evidence for one decoded word.
    fn note_read(&mut self, kind: ReadKind, data: &Bits, expected: Option<&Bits>) {
        match kind {
            ReadKind::Clean => {}
            ReadKind::CorrectedInline => self.evidence.corrected += 1,
            ReadKind::Recovered => self.evidence.recovered += 1,
        }
        let matches = match expected {
            Some(e) => data == e,
            None => data.is_zero(),
        };
        if !matches {
            self.evidence.mismatch += 1;
        }
    }

    /// Serves an L2 fill read of `line`; returns the correction-latency
    /// penalty in array-access cycles (0 on the clean fast path).
    pub fn fill_read(&mut self, line: u64) -> u64 {
        self.stats.fill_reads += 1;
        let (bank, row, word) = self.slot_of(line);
        let key = (row * self.words_per_row + word) as u32;
        match self.banks[bank].read_word_timed(row, word) {
            Ok((outcome, cycles)) => {
                let expected = self.model[bank].get(&key).cloned();
                self.note_read(outcome.kind(), outcome.data(), expected.as_ref());
                self.stats.penalty_cycles += cycles;
                cycles
            }
            Err(_) => {
                self.evidence.uncorrectable += 1;
                let cycles = STORE_ROWS as u64;
                self.stats.penalty_cycles += cycles;
                cycles
            }
        }
    }

    /// Absorbs an L2 writeback of `line`; returns the correction-latency
    /// penalty the read-before-write incurred.
    pub fn writeback(&mut self, line: u64) -> u64 {
        self.stats.writebacks += 1;
        if self.replication.record_write(line) {
            self.stats.spilled_writes += 1;
        }
        self.write_epoch += 1;
        let (bank, row, word) = self.slot_of(line);
        let key = (row * self.words_per_row + word) as u32;
        let value = self.slot_value(line, self.write_epoch);
        let cycles = self.banks[bank].write_word_timed(row, word, &value);
        // The RBW read verifies the old word, so any latent damage it
        // found is correction evidence (recovery if it cost more than
        // the in-line fix).
        if cycles == memarray::INLINE_CORRECT_CYCLES {
            self.evidence.corrected += 1;
        } else if cycles > 0 {
            self.evidence.recovered += 1;
        }
        self.model[bank].insert(key, value);
        self.stats.penalty_cycles += cycles;
        cycles
    }

    /// Starts a fault event: clears the evidence window.
    pub fn begin_event(&mut self) {
        self.evidence = EventEvidence::default();
    }

    /// Ends a fault event, returning the accumulated evidence.
    pub fn take_evidence(&mut self) -> EventEvidence {
        std::mem::take(&mut self.evidence)
    }

    /// Injects a transient fault into `bank`; returns observable flips.
    pub fn inject(&mut self, bank: usize, shape: ErrorShape) -> usize {
        self.banks[bank].inject(shape).flip_count()
    }

    /// Injects a stuck-at fault into `bank`; returns observable flips.
    pub fn inject_hard(&mut self, bank: usize, shape: ErrorShape, stuck: bool) -> usize {
        self.banks[bank].inject_hard(shape, stuck).flip_count()
    }

    /// Sweeps `bank` after a fault event: reads back *every* word slot
    /// against the model (so damage outside the working set cannot hide)
    /// and finishes with a scrub pass.
    pub fn resolve_bank(&mut self, bank: usize) {
        for row in 0..STORE_ROWS {
            for word in 0..self.words_per_row {
                let key = (row * self.words_per_row + word) as u32;
                match self.banks[bank].read_word_timed(row, word) {
                    Ok((outcome, cycles)) => {
                        let expected = self.model[bank].get(&key).cloned();
                        self.note_read(outcome.kind(), outcome.data(), expected.as_ref());
                        self.stats.penalty_cycles += cycles;
                    }
                    Err(_) => self.evidence.uncorrectable += 1,
                }
            }
        }
        match self.banks[bank].scrub() {
            Ok(_) => {}
            Err(_) => self.evidence.uncorrectable += 1,
        }
    }

    /// Replaces `bank` with a fresh array (clearing stuck faults) and
    /// replays the modelled contents — the "retire and remap" step
    /// between fault events.
    pub fn rebuild_bank(&mut self, bank: usize) {
        let mut fresh = TwoDArray::from_scheme(Arc::clone(&self.scheme));
        for (&key, value) in &self.model[bank] {
            let row = key as usize / self.words_per_row;
            let word = key as usize % self.words_per_row;
            fresh.write_word(row, word, value);
        }
        self.banks[bank] = fresh;
    }
}

/// One entry of the injection deck.
#[derive(Clone, Copy, Debug)]
struct Scenario {
    name: &'static str,
    domain: FaultDomain,
    /// The 2D scheme is expected to fully correct this shape.
    expect_ce_2d: bool,
}

const DECK: [Scenario; 7] = [
    Scenario {
        name: "single_bit",
        domain: FaultDomain::Row,
        expect_ce_2d: true,
    },
    Scenario {
        name: "word_double",
        domain: FaultDomain::Row,
        expect_ce_2d: true,
    },
    Scenario {
        name: "word_triple",
        domain: FaultDomain::Row,
        expect_ce_2d: true,
    },
    Scenario {
        name: "cluster_8x8",
        domain: FaultDomain::Stripe,
        expect_ce_2d: true,
    },
    Scenario {
        name: "row_wipe",
        domain: FaultDomain::Row,
        expect_ce_2d: true,
    },
    Scenario {
        name: "stripe_collision",
        domain: FaultDomain::Bank,
        expect_ce_2d: false,
    },
    Scenario {
        name: "stuck_benign",
        domain: FaultDomain::Row,
        expect_ce_2d: false,
    },
];

/// Injects scenario `idx` of the deck into `bank`; returns flips.
fn inject_scenario(store: &mut ProtectedStore, idx: usize, bank: usize, round: usize) -> usize {
    let base = 3 + round * 7; // keep clear of stripe-aligned corners
    let v = store.vertical_rows();
    match idx {
        0 => store.inject(
            bank,
            ErrorShape::Single {
                row: base + 11,
                col: store.data_col(0, 3),
            },
        ),
        1 => {
            let row = base + 23;
            store.inject(
                bank,
                ErrorShape::Single {
                    row,
                    col: store.data_col(0, 10),
                },
            ) + store.inject(
                bank,
                ErrorShape::Single {
                    row,
                    col: store.data_col(0, 11),
                },
            )
        }
        2 => {
            let row = base + 37;
            (20..23)
                .map(|bit| {
                    store.inject(
                        bank,
                        ErrorShape::Single {
                            row,
                            col: store.data_col(0, bit),
                        },
                    )
                })
                .sum()
        }
        3 => store.inject(
            bank,
            ErrorShape::Cluster {
                row: base + 50,
                col: store.data_col(0, 0),
                height: 8,
                width: 8,
            },
        ),
        4 => store.inject(bank, ErrorShape::Row { row: base + 100 }),
        5 => {
            // Two hits in the same column of the same stripe: the
            // vertical syndrome cancels, so 2D recovery must *detect*
            // but cannot correct — the designed-in DUE case.
            let row = base + 130;
            let col = store.data_col(0, 5);
            store.inject(bank, ErrorShape::Single { row, col })
                + store.inject(bank, ErrorShape::Single { row: row + v, col })
        }
        6 => store.inject_hard(
            bank,
            ErrorShape::Single {
                row: base + 200,
                col: store.data_col(0, 40),
            },
            false,
        ),
        _ => unreachable!("deck has {} scenarios", DECK.len()),
    }
}

/// Per-outcome tally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutcomeTally {
    /// No-effect events.
    pub ne: u64,
    /// Corrected events.
    pub ce: u64,
    /// Detected-uncorrectable events.
    pub due: u64,
    /// Silent-corruption events.
    pub sdc: u64,
    /// Events no mechanism accounted for (fatal).
    pub unaccounted: u64,
}

impl OutcomeTally {
    fn record(&mut self, outcome: Option<FaultOutcome>) {
        match outcome {
            Some(FaultOutcome::Ne) => self.ne += 1,
            Some(FaultOutcome::Ce) => self.ce += 1,
            Some(FaultOutcome::Due) => self.due += 1,
            Some(FaultOutcome::Sdc) => self.sdc += 1,
            None => self.unaccounted += 1,
        }
    }

    /// Total events tallied.
    pub fn total(&self) -> u64 {
        self.ne + self.ce + self.due + self.sdc + self.unaccounted
    }

    /// Measured rates for reliability ingestion.
    pub fn rates(&self) -> MeasuredRates {
        MeasuredRates {
            faults: self.total(),
            ne: self.ne,
            ce: self.ce,
            due: self.due,
            sdc: self.sdc,
        }
    }
}

/// Results of one scheme's fault campaign.
#[derive(Clone, Debug)]
pub struct SchemeReport {
    /// Which scheme ran.
    pub scheme: StoreScheme,
    /// Storage overhead accounted to the scheme.
    pub overhead: f64,
    /// Aggregate outcome tally.
    pub totals: OutcomeTally,
    /// Tallies keyed by scenario name (deck order).
    pub per_scenario: Vec<(&'static str, OutcomeTally)>,
    /// Tallies keyed by fault domain (row, stripe, bank).
    pub per_domain: Vec<(&'static str, OutcomeTally)>,
    /// `expect_ce_2d` scenarios that did not come back CE (2D only).
    pub broken_expectations: u64,
    /// Final simulator statistics (timing side).
    pub sim: crate::detailed::DetailedStats,
    /// Final store counters.
    pub store: StoreStats,
}

/// Reliability projections fed from the measured rates.
#[derive(Clone, Copy, Debug)]
pub struct ReliabilityProjection {
    /// Expected DUE block retirements over the projection horizon.
    pub due_retirements_2d: f64,
    /// Same, for the SECDED comparator.
    pub due_retirements_secded: f64,
    /// Projected yield with 2D after retiring that many spare rows.
    pub yield_2d: f64,
    /// Projected yield with SECDED after its retirements.
    pub yield_secded: f64,
}

/// Campaign configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimCampaignConfig {
    /// RNG seed (workload streams + reliability projection only; the
    /// store and deck are RNG-free).
    pub seed: u64,
    /// Rounds through the scenario deck per scheme.
    pub rounds: usize,
    /// Cycles simulated between campaign phases.
    pub window: u64,
}

impl SimCampaignConfig {
    /// The pinned CI configuration (also the committed baseline).
    pub fn quick(seed: u64) -> Self {
        SimCampaignConfig {
            seed,
            rounds: 2,
            window: 300,
        }
    }
}

/// Full campaign outcome: one report per scheme plus the reliability
/// roll-up.
#[derive(Clone, Debug)]
pub struct SimCampaignOutcome {
    /// Echo of the configuration.
    pub config: SimCampaignConfig,
    /// Per-scheme reports, `[TwoD, SecdedPerLine]`.
    pub schemes: Vec<SchemeReport>,
    /// Reliability projection from the measured rates.
    pub reliability: ReliabilityProjection,
}

impl SimCampaignOutcome {
    /// Whether the campaign is healthy: every fault accounted, zero SDC
    /// under 2D, and every `expect_ce_2d` scenario corrected by 2D.
    pub fn healthy(&self) -> bool {
        self.schemes.iter().all(|s| {
            let accounted = s.totals.unaccounted == 0;
            let no_2d_escape = match s.scheme {
                StoreScheme::TwoD => s.totals.sdc == 0 && s.broken_expectations == 0,
                StoreScheme::SecdedPerLine => true,
            };
            accounted && no_2d_escape
        })
    }

    /// Renders the classification report as stable-field-order JSON
    /// (hand-written so equal seeds produce byte-identical bytes).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"twod-repro/sim-campaign-v1\",\n");
        let _ = writeln!(
            s,
            "  \"config\": {{ \"seed\": {}, \"rounds\": {}, \"window\": {} }},",
            self.config.seed, self.config.rounds, self.config.window
        );
        s.push_str("  \"schemes\": [\n");
        for (i, r) in self.schemes.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"scheme\": \"{}\",", r.scheme.label());
            let _ = writeln!(s, "      \"storage_overhead\": {:.6},", r.overhead);
            let _ = writeln!(s, "      \"totals\": {},", tally_json(&r.totals));
            s.push_str("      \"per_scenario\": {\n");
            for (j, (name, t)) in r.per_scenario.iter().enumerate() {
                let comma = if j + 1 < r.per_scenario.len() {
                    ","
                } else {
                    ""
                };
                let _ = writeln!(s, "        \"{}\": {}{}", name, tally_json(t), comma);
            }
            s.push_str("      },\n");
            s.push_str("      \"per_domain\": {\n");
            for (j, (name, t)) in r.per_domain.iter().enumerate() {
                let comma = if j + 1 < r.per_domain.len() { "," } else { "" };
                let _ = writeln!(s, "        \"{}\": {}{}", name, tally_json(t), comma);
            }
            s.push_str("      },\n");
            let _ = writeln!(
                s,
                "      \"broken_expectations\": {},",
                r.broken_expectations
            );
            let _ = writeln!(
                s,
                "      \"timing\": {{ \"cycles\": {}, \"references\": {}, \"cycles_per_ref\": {:.6}, \"mshr_occupancy_mean\": {:.6}, \"mshr_peak\": {}, \"correction_stall_cycles\": {}, \"correction_stall_frac\": {:.6}, \"l2_writebacks\": {} }},",
                r.sim.cycles,
                r.sim.references,
                r.sim.cycles_per_ref(),
                r.sim.mshr_occupancy_mean(),
                r.sim.mshr_peak,
                r.sim.correction_stall_cycles,
                r.sim.correction_stall_fraction(),
                r.sim.l2_writebacks
            );
            let _ = writeln!(
                s,
                "      \"store\": {{ \"fill_reads\": {}, \"writebacks\": {}, \"penalty_cycles\": {}, \"spilled_writes\": {} }}",
                r.store.fill_reads, r.store.writebacks, r.store.penalty_cycles, r.store.spilled_writes
            );
            let comma = if i + 1 < self.schemes.len() { "," } else { "" };
            let _ = writeln!(s, "    }}{}", comma);
        }
        s.push_str("  ],\n");
        let _ = writeln!(
            s,
            "  \"reliability\": {{ \"due_retirements_2d\": {:.6}, \"due_retirements_secded\": {:.6}, \"yield_2d\": {:.6}, \"yield_secded\": {:.6} }},",
            self.reliability.due_retirements_2d,
            self.reliability.due_retirements_secded,
            self.reliability.yield_2d,
            self.reliability.yield_secded
        );
        let _ = writeln!(s, "  \"healthy\": {}", self.healthy());
        s.push_str("}\n");
        s
    }
}

fn tally_json(t: &OutcomeTally) -> String {
    format!(
        "{{ \"ne\": {}, \"ce\": {}, \"due\": {}, \"sdc\": {}, \"unaccounted\": {} }}",
        t.ne, t.ce, t.due, t.sdc, t.unaccounted
    )
}

/// Runs the full two-scheme fault campaign: trace-driven multi-core
/// execution with the protected store under the L2, deterministic
/// seeded injection of the scenario deck, NE/CE/DUE/SDC classification
/// per fault domain, and a reliability roll-up.
pub fn run_sim_campaign(cfg: SimCampaignConfig) -> SimCampaignOutcome {
    let mut schemes = Vec::new();
    for kind in [StoreScheme::TwoD, StoreScheme::SecdedPerLine] {
        let mut sim = DetailedSim::new(
            SystemConfig::fat_cmp(),
            ProtectionPolicy::full(),
            WorkloadProfile::oltp(),
            cfg.seed,
        )
        .with_store(ProtectedStore::new(kind));
        let mut totals = OutcomeTally::default();
        let mut per_scenario: Vec<(&'static str, OutcomeTally)> = DECK
            .iter()
            .map(|sc| (sc.name, OutcomeTally::default()))
            .collect();
        let mut per_domain: Vec<(&'static str, OutcomeTally)> = vec![
            ("row", OutcomeTally::default()),
            ("stripe", OutcomeTally::default()),
            ("bank", OutcomeTally::default()),
        ];
        let mut broken = 0u64;
        for round in 0..cfg.rounds {
            for (idx, scenario) in DECK.iter().enumerate() {
                sim.run_window(cfg.window);
                let store = sim.store_mut().expect("store attached");
                store.begin_event();
                let bank = (round * DECK.len() + idx) % STORE_BANKS;
                let flips = inject_scenario(store, idx, bank, round);
                sim.run_window(cfg.window);
                let store = sim.store_mut().expect("store attached");
                store.resolve_bank(bank);
                let ev = store.take_evidence();
                let outcome = classify(kind, flips, &ev);
                totals.record(outcome);
                per_scenario[idx].1.record(outcome);
                let d = match scenario.domain {
                    FaultDomain::Row => 0,
                    FaultDomain::Stripe => 1,
                    FaultDomain::Bank => 2,
                };
                per_domain[d].1.record(outcome);
                if kind == StoreScheme::TwoD
                    && scenario.expect_ce_2d
                    && outcome != Some(FaultOutcome::Ce)
                {
                    broken += 1;
                }
                sim.store_mut().expect("store attached").rebuild_bank(bank);
            }
        }
        let store_stats = sim.store().expect("store attached").stats();
        schemes.push(SchemeReport {
            scheme: kind,
            overhead: kind.accounted_overhead(),
            totals,
            per_scenario,
            per_domain,
            broken_expectations: broken,
            sim: sim.stats(),
            store: store_stats,
        });
    }

    // Reliability roll-up: project the measured DUE fractions onto a
    // field population and fold retirements into the yield model.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_51D3);
    let expected_events = 64.0;
    let trials = 2_000;
    let rates_2d = schemes[0].totals.rates();
    let rates_secded = schemes[1].totals.rates();
    let due_2d = projected_retirements(&rates_2d, expected_events, trials, &mut rng);
    let due_secded = projected_retirements(&rates_secded, expected_events, trials, &mut rng);
    let ym = YieldModel::l2_16mb();
    let reliability = ReliabilityProjection {
        due_retirements_2d: due_2d,
        due_retirements_secded: due_secded,
        yield_2d: ym.yield_after_retirement(40, 64, due_2d.ceil() as u64),
        yield_secded: ym.yield_after_retirement(40, 64, due_secded.ceil() as u64),
    };

    SimCampaignOutcome {
        config: cfg,
        schemes,
        reliability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_roundtrips_writebacks() {
        let mut store = ProtectedStore::new(StoreScheme::TwoD);
        store.begin_event();
        for line in 0..64u64 {
            assert_eq!(store.writeback(line), 0, "clean RBW costs nothing");
        }
        for line in 0..64u64 {
            assert_eq!(store.fill_read(line), 0, "clean reads cost nothing");
        }
        let ev = store.take_evidence();
        assert_eq!(
            ev,
            EventEvidence::default(),
            "clean traffic leaves no evidence"
        );
    }

    #[test]
    fn equal_storage_overhead() {
        let d = StoreScheme::TwoD.accounted_overhead();
        let s = StoreScheme::SecdedPerLine.accounted_overhead();
        assert!(
            (d - s).abs() < 1e-12,
            "overheads must match exactly: 2d={d}, secded={s}"
        );
    }

    #[test]
    fn single_bit_is_corrected_everywhere() {
        for kind in [StoreScheme::TwoD, StoreScheme::SecdedPerLine] {
            let mut store = ProtectedStore::new(kind);
            store.begin_event();
            let flips = inject_scenario(&mut store, 0, 0, 0);
            assert_eq!(flips, 1);
            store.resolve_bank(0);
            let ev = store.take_evidence();
            assert_eq!(
                classify(kind, flips, &ev),
                Some(FaultOutcome::Ce),
                "{kind:?} must correct a single bit: {ev:?}"
            );
        }
    }

    #[test]
    fn stripe_collision_is_due_not_silent_under_2d() {
        let mut store = ProtectedStore::new(StoreScheme::TwoD);
        store.begin_event();
        let flips = inject_scenario(&mut store, 5, 0, 0);
        assert_eq!(flips, 2);
        store.resolve_bank(0);
        let ev = store.take_evidence();
        assert_eq!(
            classify(StoreScheme::TwoD, flips, &ev),
            Some(FaultOutcome::Due),
            "colliding stripe hits must be detected-uncorrectable: {ev:?}"
        );
    }

    #[test]
    fn rebuild_clears_damage() {
        let mut store = ProtectedStore::new(StoreScheme::TwoD);
        store.begin_event();
        for line in 0..32u64 {
            store.writeback(line);
        }
        inject_scenario(&mut store, 5, 0, 0);
        store.resolve_bank(0);
        store.rebuild_bank(0);
        store.begin_event();
        for line in 0..32u64 {
            store.fill_read(line);
        }
        store.resolve_bank(0);
        let ev = store.take_evidence();
        assert_eq!(ev, EventEvidence::default(), "rebuild must restore health");
    }

    #[test]
    fn quick_campaign_is_healthy_and_deterministic() {
        let a = run_sim_campaign(SimCampaignConfig::quick(7));
        let b = run_sim_campaign(SimCampaignConfig::quick(7));
        assert!(a.healthy(), "quick campaign unhealthy:\n{}", a.to_json());
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "equal seeds must be byte-identical"
        );
    }
}
