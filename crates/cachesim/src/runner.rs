//! High-level experiment drivers: the Figure 5 IPC-loss matrix and the
//! Figure 6 access-mix panels.

use crate::{
    ipc_loss_percent, run_sim, AccessMix, ProtectionPolicy, SimStats, SystemConfig, WorkloadProfile,
};

/// Default measurement window (cycles); the paper samples 50k-cycle
/// windows after warming.
pub const DEFAULT_CYCLES: u64 = 50_000;

/// IPC losses of one workload under the four Figure 5 configurations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig5Row {
    /// Workload name.
    pub workload: &'static str,
    /// L1 D-cache protection only.
    pub l1_only: f64,
    /// L1 D-cache protection with port stealing.
    pub l1_steal: f64,
    /// L2 protection only.
    pub l2_only: f64,
    /// L1 (with stealing) + L2 protection.
    pub full: f64,
}

/// Runs the Figure 5 sweep for one system.
pub fn figure5(config: SystemConfig, cycles: u64, seed: u64) -> Vec<Fig5Row> {
    WorkloadProfile::paper_set()
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let s = seed + i as u64 * 1000;
            let base = run_sim(config, ProtectionPolicy::baseline(), w, cycles, s);
            let mut losses = [0.0f64; 4];
            for (j, policy) in ProtectionPolicy::figure5_set().iter().enumerate() {
                let stats = run_sim(config, *policy, w, cycles, s);
                losses[j] = ipc_loss_percent(&base, &stats);
            }
            Fig5Row {
                workload: w.name,
                l1_only: losses[0],
                l1_steal: losses[1],
                l2_only: losses[2],
                full: losses[3],
            }
        })
        .collect()
}

/// Column-wise averages of a Figure 5 sweep (the "Average" cluster).
pub fn figure5_average(rows: &[Fig5Row]) -> Fig5Row {
    let n = rows.len().max(1) as f64;
    Fig5Row {
        workload: "Average",
        l1_only: rows.iter().map(|r| r.l1_only).sum::<f64>() / n,
        l1_steal: rows.iter().map(|r| r.l1_steal).sum::<f64>() / n,
        l2_only: rows.iter().map(|r| r.l2_only).sum::<f64>() / n,
        full: rows.iter().map(|r| r.full).sum::<f64>() / n,
    }
}

/// One workload's Figure 6 data: L1 and L2 access mixes per 100 cycles
/// under full 2D protection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig6Row {
    /// Workload name.
    pub workload: &'static str,
    /// L1 D-cache accesses per 100 cycles per core.
    pub l1: AccessMix,
    /// Shared-L2 accesses per 100 cycles.
    pub l2: AccessMix,
}

/// Runs the Figure 6 access-mix measurement for one system.
pub fn figure6(config: SystemConfig, cycles: u64, seed: u64) -> Vec<Fig6Row> {
    WorkloadProfile::paper_set()
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let s = seed + i as u64 * 1000;
            let stats: SimStats = run_sim(config, ProtectionPolicy::full(), w, cycles, s);
            Fig6Row {
                workload: w.name,
                l1: stats.l1_mix_per_100_cycles(config.cores),
                l2: stats.l2_mix_per_100_cycles(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CYCLES: u64 = 20_000;

    #[test]
    fn figure5_has_six_workloads() {
        let rows = figure5(SystemConfig::fat_cmp(), CYCLES, 1);
        assert_eq!(rows.len(), 6);
        let names: Vec<&str> = rows.iter().map(|r| r.workload).collect();
        assert_eq!(
            names,
            vec!["OLTP", "DSS", "Web", "Moldyn", "Ocean", "Sparse"]
        );
    }

    #[test]
    fn fat_average_loss_modest() {
        // Paper: 2.9% average for the full config on the fat CMP. Accept
        // the same ballpark (well under 10%).
        let rows = figure5(SystemConfig::fat_cmp(), CYCLES, 2);
        let avg = figure5_average(&rows);
        assert!(avg.full > 0.0, "full protection should cost something");
        assert!(avg.full < 10.0, "avg full loss {avg:?} too high");
    }

    #[test]
    fn lean_average_loss_below_fat() {
        // Paper: lean 1.8% vs fat 2.9% for full protection.
        let fat = figure5_average(&figure5(SystemConfig::fat_cmp(), CYCLES, 3));
        let lean = figure5_average(&figure5(SystemConfig::lean_cmp(), CYCLES, 3));
        assert!(
            lean.l1_steal <= fat.l1_steal + 1.0,
            "lean L1 loss should not exceed fat by much: {lean:?} vs {fat:?}"
        );
    }

    #[test]
    fn stealing_no_worse_than_not() {
        let rows = figure5(SystemConfig::fat_cmp(), CYCLES, 4);
        let avg = figure5_average(&rows);
        assert!(
            avg.l1_steal <= avg.l1_only + 0.5,
            "stealing should help on average: {avg:?}"
        );
    }

    #[test]
    fn figure6_mixes_have_extra_reads() {
        let rows = figure6(SystemConfig::fat_cmp(), CYCLES, 5);
        for r in &rows {
            assert!(r.l1.total() > 0.0);
            assert!(r.l1.extra_2d > 0.0, "{}: no extra reads", r.workload);
            assert!(r.l2.extra_2d >= 0.0);
            // The paper reports ~20% extra accesses from 2D coding.
            let frac = r.l1.extra_2d / r.l1.total();
            assert!(frac < 0.5, "{}: extra fraction {frac}", r.workload);
        }
    }
}
