//! Simulation statistics: committed instructions, cycles, and the cache
//! access mixes that Figure 6 reports per 100 cycles.

/// Categories of cache accesses, matching the Figure 6 legend.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AccessMix {
    /// Instruction-fetch reads (L1 panels only).
    pub read_inst: f64,
    /// Data reads (loads / fill reads from L1 misses).
    pub read_data: f64,
    /// Writes (stores / writebacks).
    pub write: f64,
    /// Fills and evictions (refills from the next level, dirty evictions).
    pub fill_evict: f64,
    /// Extra reads added by 2D coding (read-before-write).
    pub extra_2d: f64,
}

impl AccessMix {
    /// Sum of all categories.
    pub fn total(&self) -> f64 {
        self.read_inst + self.read_data + self.write + self.fill_evict + self.extra_2d
    }

    /// Scales every category by `factor` (e.g. to per-100-cycle units).
    pub fn scaled(&self, factor: f64) -> AccessMix {
        AccessMix {
            read_inst: self.read_inst * factor,
            read_data: self.read_data * factor,
            write: self.write * factor,
            fill_evict: self.fill_evict * factor,
            extra_2d: self.extra_2d * factor,
        }
    }
}

/// Raw counters accumulated over a simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Total user instructions committed (all cores/threads).
    pub instructions: u64,
    /// L1D accesses by category (absolute counts, summed over cores).
    pub l1_read_inst: u64,
    /// L1D data-read accesses.
    pub l1_read_data: u64,
    /// L1D write accesses (store drains + fill writes).
    pub l1_write: u64,
    /// L1 fill/evict accesses.
    pub l1_fill_evict: u64,
    /// L1 extra 2D reads issued.
    pub l1_extra_2d: u64,
    /// Cycles where an extra 2D read was deferred by port stealing.
    pub l1_steals: u64,
    /// L2 data reads (fills for L1 misses).
    pub l2_read_data: u64,
    /// L2 writes (writebacks / dirty evictions).
    pub l2_write: u64,
    /// L2 fill/evict traffic (memory refills, L2 evictions).
    pub l2_fill_evict: u64,
    /// L2 extra 2D reads.
    pub l2_extra_2d: u64,
    /// Total L1 port-conflict stall cycles (all cores).
    pub l1_port_stalls: u64,
    /// Total L2 bank queueing cycles observed by requests.
    pub l2_bank_wait: u64,
    /// Total cycles misses waited for a free MSHR.
    pub mshr_wait: u64,
}

impl SimStats {
    /// Aggregate IPC across the whole system.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L1 access mix per 100 cycles *per core* (Fig. 6(a)/(b) units).
    pub fn l1_mix_per_100_cycles(&self, cores: usize) -> AccessMix {
        let norm = 100.0 / (self.cycles.max(1) as f64) / cores as f64;
        AccessMix {
            read_inst: self.l1_read_inst as f64,
            read_data: self.l1_read_data as f64,
            write: self.l1_write as f64,
            fill_evict: self.l1_fill_evict as f64,
            extra_2d: self.l1_extra_2d as f64,
        }
        .scaled(norm)
    }

    /// L2 access mix per 100 cycles for the shared cache (Fig. 6(c)/(d)).
    pub fn l2_mix_per_100_cycles(&self) -> AccessMix {
        let norm = 100.0 / (self.cycles.max(1) as f64);
        AccessMix {
            read_inst: 0.0,
            read_data: self.l2_read_data as f64,
            write: self.l2_write as f64,
            fill_evict: self.l2_fill_evict as f64,
            extra_2d: self.l2_extra_2d as f64,
        }
        .scaled(norm)
    }
}

/// Relative performance loss of a protected run vs its baseline.
pub fn ipc_loss_percent(baseline: &SimStats, protected: &SimStats) -> f64 {
    let base = baseline.ipc();
    if base == 0.0 {
        0.0
    } else {
        ((base - protected.ipc()) / base * 100.0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_loss() {
        let base = SimStats {
            cycles: 1000,
            instructions: 2000,
            ..Default::default()
        };
        let prot = SimStats {
            cycles: 1000,
            instructions: 1940,
            ..Default::default()
        };
        assert!((base.ipc() - 2.0).abs() < 1e-12);
        assert!((ipc_loss_percent(&base, &prot) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn loss_clamped_at_zero() {
        let base = SimStats {
            cycles: 100,
            instructions: 100,
            ..Default::default()
        };
        let better = SimStats {
            cycles: 100,
            instructions: 110,
            ..Default::default()
        };
        assert_eq!(ipc_loss_percent(&base, &better), 0.0);
    }

    #[test]
    fn mixes_scale_to_per_100_cycles() {
        let stats = SimStats {
            cycles: 1000,
            l1_read_data: 4000, // 4 cores -> 100 per 100 cycles per core
            l2_write: 50,
            ..Default::default()
        };
        let l1 = stats.l1_mix_per_100_cycles(4);
        assert!((l1.read_data - 100.0).abs() < 1e-9);
        let l2 = stats.l2_mix_per_100_cycles();
        assert!((l2.write - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mix_total_sums_categories() {
        let mix = AccessMix {
            read_inst: 1.0,
            read_data: 2.0,
            write: 3.0,
            fill_evict: 4.0,
            extra_2d: 5.0,
        };
        assert!((mix.total() - 15.0).abs() < 1e-12);
    }
}
