//! System configurations: the paper's two CMP design points (Table 1) and
//! the 2D-protection policy knobs swept in Figure 5.

/// Which CMP design point to simulate (Table 1).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// Four 4-wide out-of-order cores, 2-port L1D, 16MB shared L2.
    Fat,
    /// Eight 2-wide in-order 4-thread cores, 1-port L1D, 4MB shared L2.
    Lean,
}

/// Full system configuration.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemConfig {
    /// Which design point.
    pub kind: CmpKind,
    /// Number of cores.
    pub cores: usize,
    /// Hardware threads per core (1 = single-threaded).
    pub threads_per_core: usize,
    /// Maximum instructions committed per core per cycle.
    pub issue_width: usize,
    /// L1 data cache ports.
    pub l1d_ports: usize,
    /// Store queue entries per core.
    pub store_queue: usize,
    /// L1 hit latency in cycles.
    pub l1_hit_cycles: u64,
    /// L2 hit latency in cycles (including crossbar).
    pub l2_hit_cycles: u64,
    /// Number of L2 banks.
    pub l2_banks: usize,
    /// Cycles one L2 bank is busy per access (64B line transfer).
    pub l2_bank_occupancy: u64,
    /// Main-memory latency in cycles.
    pub memory_cycles: u64,
    /// Outstanding-miss registers (MSHRs) shared per system.
    pub mshrs: usize,
    /// Circuit-level atomic read-write support: the old-data read and the
    /// new-data write share one array access (the paper cites quad-core
    /// Opteron-style atomic read-write as a further mitigation), so
    /// read-before-write costs a single port slot.
    pub atomic_rbw: bool,
    /// Effective miss-overlap factor: how many outstanding misses the
    /// core architecture hides (OoO window / SMT threads).
    pub miss_overlap: f64,
}

impl SystemConfig {
    /// The paper's fat CMP: 4 OoO cores at 4GHz, 4-wide, 2-port L1D,
    /// 16MB L2 (16-cycle hit + 1-cycle crossbar), 60ns memory.
    pub fn fat_cmp() -> Self {
        SystemConfig {
            kind: CmpKind::Fat,
            cores: 4,
            threads_per_core: 1,
            issue_width: 4,
            l1d_ports: 2,
            store_queue: 64,
            l1_hit_cycles: 2,
            l2_hit_cycles: 17,
            l2_banks: 8,
            l2_bank_occupancy: 2,
            memory_cycles: 240,
            mshrs: 64,
            atomic_rbw: false,
            miss_overlap: 4.0,
        }
    }

    /// The paper's lean CMP: 8 in-order 4-thread cores, 2-wide, 1-port
    /// L1D, 4MB L2 (12-cycle hit + 1-cycle crossbar).
    pub fn lean_cmp() -> Self {
        SystemConfig {
            kind: CmpKind::Lean,
            cores: 8,
            threads_per_core: 4,
            issue_width: 2,
            l1d_ports: 1,
            store_queue: 64,
            l1_hit_cycles: 2,
            l2_hit_cycles: 13,
            l2_banks: 8,
            l2_bank_occupancy: 2,
            memory_cycles: 240,
            mshrs: 64,
            atomic_rbw: false,
            miss_overlap: 4.0,
        }
    }
}

/// Which caches carry 2D protection and whether the L1 read-before-write
/// reads are scheduled into idle port cycles (port stealing).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ProtectionPolicy {
    /// L1 data caches issue read-before-write on every store/fill.
    pub protect_l1: bool,
    /// Defer the L1 extra reads into idle port slots.
    pub port_stealing: bool,
    /// L2 banks issue read-before-write on every write-type access.
    pub protect_l2: bool,
}

impl ProtectionPolicy {
    /// No protection (baseline).
    pub fn baseline() -> Self {
        ProtectionPolicy::default()
    }

    /// L1-only protection, no port stealing (Fig. 5 first bar).
    pub fn l1_only() -> Self {
        ProtectionPolicy {
            protect_l1: true,
            port_stealing: false,
            protect_l2: false,
        }
    }

    /// L1-only protection with port stealing (Fig. 5 second bar).
    pub fn l1_steal() -> Self {
        ProtectionPolicy {
            protect_l1: true,
            port_stealing: true,
            protect_l2: false,
        }
    }

    /// L2-only protection (Fig. 5 third bar).
    pub fn l2_only() -> Self {
        ProtectionPolicy {
            protect_l1: false,
            port_stealing: false,
            protect_l2: true,
        }
    }

    /// Full protection with port stealing (Fig. 5 fourth bar).
    pub fn full() -> Self {
        ProtectionPolicy {
            protect_l1: true,
            port_stealing: true,
            protect_l2: true,
        }
    }

    /// The four protected configurations of Figure 5, in bar order.
    pub fn figure5_set() -> [ProtectionPolicy; 4] {
        [
            Self::l1_only(),
            Self::l1_steal(),
            Self::l2_only(),
            Self::full(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        let fat = SystemConfig::fat_cmp();
        assert_eq!(fat.cores, 4);
        assert_eq!(fat.issue_width, 4);
        assert_eq!(fat.l1d_ports, 2);
        assert_eq!(fat.store_queue, 64);
        let lean = SystemConfig::lean_cmp();
        assert_eq!(lean.cores, 8);
        assert_eq!(lean.threads_per_core, 4);
        assert_eq!(lean.l1d_ports, 1);
        assert!(lean.l2_hit_cycles < fat.l2_hit_cycles);
        assert_eq!(fat.mshrs, 64);
        assert_eq!(lean.mshrs, 64);
    }

    #[test]
    fn policy_presets() {
        assert_eq!(
            ProtectionPolicy::baseline(),
            ProtectionPolicy {
                protect_l1: false,
                port_stealing: false,
                protect_l2: false
            }
        );
        let set = ProtectionPolicy::figure5_set();
        assert!(set[0].protect_l1 && !set[0].port_stealing);
        assert!(set[1].port_stealing);
        assert!(set[2].protect_l2 && !set[2].protect_l1);
        assert!(set[3].protect_l1 && set[3].protect_l2 && set[3].port_stealing);
    }
}
