//! Network-facing cache service tier: a length-prefixed binary
//! protocol (GET/SET/HEALTH/SCRUB-STATS) over `std::net` TCP, served by
//! [`CacheServer`] with thread-per-connection acceptors, and consumed
//! by [`NetClient`] / the load generator and chaos drivers.
//!
//! This is the fourth architectural layer: sockets → admission → banks.
//! The engine underneath
//! ([`ConcurrentBankedCache`](twod_cache::ConcurrentBankedCache))
//! already survives multi-bit
//! faults; this layer extends the failure domain to the network —
//! malformed frames, slow or vanished clients, and requests arriving
//! while a bank is mid-recovery — without ever panicking on network
//! input or stalling healthy traffic.
//!
//! # Wire format
//!
//! Every frame is `u32 LE length` followed by `length` payload bytes
//! (`length` ∈ \[1, [`MAX_FRAME_BYTES`](protocol::MAX_FRAME_BYTES)\]).
//! Request payloads are `opcode: u8, id: u32 LE, body…`; response
//! payloads are `status: u8, id: u32 LE, body…` with the request's id
//! echoed back. Bodies are fixed-layout little-endian integers — see
//! [`protocol`] for the exact layouts and the
//! [`route_key`](protocol::route_key) key→address mapping (injective,
//! so distinct keys can never alias one cache word).
//!
//! # Robustness contract
//!
//! * **Backpressure, not buffering:** each bank admits at most
//!   [`ServerConfig::max_inflight_per_bank`] concurrent requests;
//!   beyond that the server answers `BUSY` with a retry-after hint
//!   immediately. Memory stays bounded under any offered load.
//! * **Degraded mode, not hangs:** a bank observed to be correcting or
//!   recovering (scrubber activity, slow inline ops, uncorrectable
//!   faults, or administrative quarantine) sheds its requests with
//!   `DEGRADED` + retry-after while every other bank serves at full
//!   throughput.
//! * **Deadlines everywhere:** per-connection read/write socket
//!   timeouts bound every blocking call; connections idle past
//!   [`ServerConfig::idle_timeout`] are reaped; a half-sent frame can
//!   stall its own connection for at most one read deadline.
//! * **Typed errors, no panics:** everything reachable from network
//!   input returns [`ServerError`]/[`ProtocolError`]
//!   (see the unwrap audit below).
//!
//! # Unwrap audit (satellite: typed errors on network-reachable paths)
//!
//! The ~154 non-test `unwrap()` sites in the workspace were audited for
//! reachability from network input. The frame decode, request dispatch,
//! admission, and cache-execution paths in this module are entirely
//! `unwrap`-free by construction. The paths a request *can* reach
//! outside this module — `ConcurrentBankedCache::{read,write,bank_of,
//! bank_observed_errors}` and `Scrubber::{stats,reliability}` — use
//! poison-recovering lock acquisition (`unwrap_or_else(|p|
//! p.into_inner())`), not `unwrap()`. The remaining `unwrap()` sites
//! live in construction/config code (scheme registry, bin arg parsing)
//! and test/bench harnesses, none of which execute per-request; the
//! scrubber control-lock sites that could poison-panic on a crashed
//! worker were hardened as part of this change.

//! # Batched execution and sharding
//!
//! The serve path is batch-native: pipelined frames (and
//! `GET_MULTI`/`SET_MULTI` items) drain greedily into a per-connection
//! [`BatchArena`], execute bank-grouped under amortized locks, and
//! answer in one buffered write — see [`server`]. Horizontally, the
//! [`ShardedClient`] rendezvous-hashes keys across N independent
//! servers, splits logical batches into per-shard pipelines, and keeps
//! serving the survivors when a shard dies — see [`sharded`].

pub mod chaos;
pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod sharded;

pub use chaos::{
    run_net_chaos, run_shard_chaos, NetChaosConfig, NetChaosReport, ShardChaosConfig,
    ShardChaosReport,
};
pub use client::{ClientConfig, NetClient};
pub use loadgen::{run_load, run_load_sharded, LoadConfig, LoadReport};
pub use protocol::{
    BankHealth, FrameRead, HealthReport, ItemOutcome, ProtocolError, Request, RequestFrame,
    Response, ResponseKind, ScrubSnapshot, ServerError,
};
pub use server::{BatchArena, CacheServer, ServerConfig, ServerStats};
pub use sharded::{rendezvous_shard, ShardOutcome, ShardedClient};
