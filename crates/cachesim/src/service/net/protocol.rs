//! Wire codec of the `twod-server` protocol: a length-prefixed binary
//! framing with typed, panic-free decoding.
//!
//! # Frame layout
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! +----------------+--------------------------------------+
//! | u32 LE: length | payload (`length` bytes)             |
//! +----------------+--------------------------------------+
//! payload:
//!   u8      opcode (request) / status (response)
//!   u32 LE  request id (echoed verbatim in the response)
//!   ...     body, fixed layout per opcode/status (below)
//! ```
//!
//! Request bodies: `GET` carries a `u64 LE` key; `SET` a `u64 LE` key
//! followed by a `u64 LE` value; `HEALTH` and `SCRUB_STATS` are empty.
//! Response bodies: `OK` to a `GET` carries the `u64 LE` value; `OK` to
//! a `SET` is empty; `BUSY` and `DEGRADED` carry a `u32 LE`
//! retry-after hint in milliseconds; `FAULT` and `BAD_REQUEST` are
//! empty; `OK` to `HEALTH`/`SCRUB_STATS` carries the serialized
//! [`HealthReport`] / [`ScrubSnapshot`].
//!
//! Keys are capped at [`MAX_KEY`] (51 bits): the server maps keys to
//! aligned 64-bit word addresses through an invertible mixer
//! ([`route_key`]), and injectivity — two distinct keys can never alias
//! one cache word — only holds on the 51-bit domain. A larger key is a
//! `BAD_REQUEST`, not a silent truncation.
//!
//! # Robustness contract
//!
//! Decoding never panics and never reads out of bounds on any input:
//! truncated, oversized, trailing-garbage, unknown-opcode, and
//! unknown-status payloads all come back as typed [`ProtocolError`]s
//! (property-tested in `tests/net_protocol.rs`). Frames longer than
//! [`MAX_FRAME_BYTES`] are rejected from the length prefix alone, so a
//! hostile length can never cause an allocation burst.

use std::fmt;
use std::io::{self, Read, Write};
use twod_cache::ScrubberStats;

/// Hard ceiling on one frame's payload length. Large enough for a
/// [`HealthReport`] over [`MAX_HEALTH_BANKS`] banks, small enough that a
/// hostile length prefix cannot make the server allocate unboundedly.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Largest key the protocol accepts (51 bits — see [`route_key`] for
/// why the domain is bounded by the engine's 48-bit stored tag width).
pub const MAX_KEY: u64 = (1 << 51) - 1;

/// Most banks a [`HealthReport`] will serialize (fits [`MAX_FRAME_BYTES`]
/// with generous slack).
pub const MAX_HEALTH_BANKS: usize = 1024;

/// Request opcodes on the wire.
pub mod opcode {
    /// `GET key` — read one value.
    pub const GET: u8 = 0x01;
    /// `SET key value` — store one value.
    pub const SET: u8 = 0x02;
    /// `HEALTH` — per-bank health introspection.
    pub const HEALTH: u8 = 0x03;
    /// `SCRUB_STATS` — scrubber counters + reliability telemetry.
    pub const SCRUB_STATS: u8 = 0x04;
}

/// Response status bytes on the wire.
pub mod status {
    /// Success (body layout depends on the request answered).
    pub const OK: u8 = 0x00;
    /// Admission bound hit — shed with a retry-after hint.
    pub const BUSY: u8 = 0x01;
    /// Target bank degraded/quarantined — shed with a retry-after hint.
    pub const DEGRADED: u8 = 0x02;
    /// Uncorrectable damage on the addressed word.
    pub const FAULT: u8 = 0x03;
    /// Structurally decodable but invalid request (e.g. oversized key).
    pub const BAD_REQUEST: u8 = 0x04;
}

/// A decoded client request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Read the value stored under `key` (missing keys read as `0`, the
    /// cache's fill value).
    Get {
        /// The 51-bit key (see [`MAX_KEY`]).
        key: u64,
    },
    /// Store `value` under `key`.
    Set {
        /// The 51-bit key (see [`MAX_KEY`]).
        key: u64,
        /// The 64-bit value to store.
        value: u64,
    },
    /// Per-bank health introspection (degraded/quarantined flags,
    /// admission pressure, observed error counts).
    Health,
    /// Background-scrubber counters and live reliability telemetry.
    ScrubStats,
}

/// A decoded server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `GET` succeeded with this value.
    Value(u64),
    /// `SET` was committed (acknowledged write: it must survive any
    /// fault the scheme covers, and any disconnect).
    Ok,
    /// The target bank's admission queue is full; retry after the hint.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The target bank is degraded (mid-recovery or quarantined); the
    /// request was shed, not queued. Healthy banks keep serving.
    Degraded {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The operation hit uncorrectable damage — the protection was
    /// defeated for this word.
    Fault,
    /// The request was structurally valid but semantically rejected
    /// (e.g. key above [`MAX_KEY`]).
    BadRequest,
    /// `HEALTH` snapshot.
    Health(HealthReport),
    /// `SCRUB_STATS` snapshot.
    ScrubStats(ScrubSnapshot),
}

impl Response {
    /// The wire status byte this response is carried under (see
    /// [`status`]).
    pub fn status_byte(&self) -> u8 {
        match self {
            Response::Value(_) | Response::Ok | Response::Health(_) | Response::ScrubStats(_) => {
                status::OK
            }
            Response::Busy { .. } => status::BUSY,
            Response::Degraded { .. } => status::DEGRADED,
            Response::Fault => status::FAULT,
            Response::BadRequest => status::BAD_REQUEST,
        }
    }
}

/// One bank's health as carried in a [`HealthReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BankHealth {
    /// Whether the bank is currently shedding requests (inside its
    /// degraded window following observed error activity).
    pub degraded: bool,
    /// Whether the bank is administratively quarantined.
    pub quarantined: bool,
    /// Requests currently admitted and executing against the bank.
    pub inflight: u32,
    /// The admission bound (`inflight` saturating here means BUSY).
    pub admission_limit: u32,
    /// Error events the bank has observed since construction
    /// (monotonic; inline corrections + recoveries + scrub finds).
    pub observed_errors: u64,
    /// Requests shed by this bank (BUSY + DEGRADED responses).
    pub shed: u64,
    /// Milliseconds until the degraded window expires (`0` when the
    /// bank is healthy; quarantine reports the configured hint).
    pub retry_after_ms: u32,
}

/// The `HEALTH` response payload: per-bank state plus optional scrubber
/// aggregates, enough for a load generator or chaos campaign to assert
/// that degradation was entered and exited.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HealthReport {
    /// Per-bank health, indexed by bank.
    pub banks: Vec<BankHealth>,
    /// Background scrubber counters, when a scrubber is attached.
    pub scrubber: Option<ScrubberStats>,
}

impl HealthReport {
    /// Banks currently shedding (degraded or quarantined).
    pub fn degraded_banks(&self) -> usize {
        self.banks
            .iter()
            .filter(|b| b.degraded || b.quarantined)
            .count()
    }
}

/// The `SCRUB_STATS` response payload: scrubber counters plus the live
/// FIT estimate, all zero/absent when no scrubber is attached.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ScrubSnapshot {
    /// Whether a background scrubber is attached to the server.
    pub attached: bool,
    /// Scrubber work counters (zeroed when detached).
    pub stats: ScrubberStats,
    /// Error events behind the FIT estimate.
    pub events: u64,
    /// Device-hours of exposure behind the FIT estimate.
    pub device_hours: f64,
    /// Maximum-likelihood FIT per megabit (0.0 when unavailable).
    pub fit_per_mbit: f64,
}

/// Errors produced by decoding a frame payload. Every variant is a
/// clean rejection of hostile or damaged input — never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload ended before the fixed layout was complete.
    Truncated {
        /// Bytes the layout needed.
        need: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The length prefix exceeded [`MAX_FRAME_BYTES`].
    Oversized {
        /// The offending declared length.
        len: usize,
    },
    /// A zero-length payload (no opcode byte).
    Empty,
    /// Unknown request opcode.
    UnknownOpcode(u8),
    /// Unknown response status byte.
    UnknownStatus(u8),
    /// The payload carried more bytes than its layout defines —
    /// rejected so a framing desync is caught at the first message.
    TrailingBytes {
        /// Unconsumed byte count.
        extra: usize,
    },
    /// A health report declared more banks than [`MAX_HEALTH_BANKS`].
    TooManyBanks {
        /// The declared count.
        banks: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated { need, got } => {
                write!(f, "truncated frame: layout needs {need} bytes, got {got}")
            }
            ProtocolError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes > max {MAX_FRAME_BYTES}")
            }
            ProtocolError::Empty => write!(f, "empty frame payload"),
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown request opcode {op:#04x}"),
            ProtocolError::UnknownStatus(st) => write!(f, "unknown response status {st:#04x}"),
            ProtocolError::TrailingBytes { extra } => {
                write!(
                    f,
                    "frame carries {extra} trailing byte(s) beyond its layout"
                )
            }
            ProtocolError::TooManyBanks { banks } => {
                write!(
                    f,
                    "health report declares {banks} banks > max {MAX_HEALTH_BANKS}"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Errors of the network tier. A malformed frame or a dead socket
/// surfaces as one of these — never as a panic — so one hostile or
/// unlucky connection can only ever take down itself.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure (reset, refused, broken pipe, ...).
    Io(io::Error),
    /// The peer sent bytes that do not decode as a frame.
    Protocol(ProtocolError),
    /// The peer closed the connection (EOF at a frame boundary is a
    /// clean close; mid-frame it is reported as `Io`).
    Closed,
    /// A read or write missed its deadline.
    DeadlineExpired,
    /// The response id did not match the request id it answers — a
    /// pipelining desync (client-side check).
    IdMismatch {
        /// Id the client expected.
        expected: u32,
        /// Id the frame carried.
        got: u32,
    },
    /// The server answered with a non-success status where the caller
    /// required success; carries the wire status byte (see [`status`]).
    Rejected(u8),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "socket error: {e}"),
            ServerError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServerError::Closed => write!(f, "connection closed by peer"),
            ServerError::DeadlineExpired => write!(f, "connection deadline expired"),
            ServerError::IdMismatch { expected, got } => {
                write!(f, "response id {got} does not answer request id {expected}")
            }
            ServerError::Rejected(st) => {
                write!(f, "request rejected by server (status {st:#04x})")
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ServerError::DeadlineExpired,
            io::ErrorKind::UnexpectedEof => ServerError::Closed,
            _ => ServerError::Io(e),
        }
    }
}

impl From<ProtocolError> for ServerError {
    fn from(e: ProtocolError) -> Self {
        ServerError::Protocol(e)
    }
}

/// Maps a key to the aligned 64-bit word address the cache serves it
/// from, through an invertible 51-bit mixer — the hashed key→bank
/// routing: consecutive keys scatter across banks instead of marching
/// through one line at a time, yet no two keys ever share a word.
///
/// Each step is a bijection on the 51-bit domain (odd multipliers are
/// invertible mod 2^51; `x ^= x >> k` is triangular), so the
/// composition is injective and the final `<< 3` maps it onto disjoint
/// aligned words.
///
/// Why 51 bits: addresses stay below 2^54, so line numbers stay below
/// 2^48 — the width of the engine's stored tag field. A wider key
/// domain would let two keys collide in a *truncated* tag and silently
/// alias each other's lines, breaking read-your-writes.
pub fn route_key(key: u64) -> u64 {
    const M51: u64 = (1 << 51) - 1;
    debug_assert!(key <= MAX_KEY, "caller must validate the key first");
    let mut x = key & M51;
    x ^= x >> 26;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9) & M51;
    x ^= x >> 24;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB) & M51;
    x ^= x >> 27;
    x << 3
}

/// Little-endian cursor over a frame payload: all reads bounds-checked,
/// all failures typed.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).ok_or(ProtocolError::Truncated {
            need: usize::MAX,
            got: self.buf.len(),
        })?;
        if end > self.buf.len() {
            return Err(ProtocolError::Truncated {
                need: end,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// The layout is complete: any unconsumed bytes are a framing error.
    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            Err(ProtocolError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            })
        } else {
            Ok(())
        }
    }
}

/// Appends one encoded request frame (length prefix included) to `buf`.
pub fn encode_request(id: u32, req: &Request, buf: &mut Vec<u8>) {
    let start = begin_frame(buf);
    match *req {
        Request::Get { key } => {
            buf.push(opcode::GET);
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(&key.to_le_bytes());
        }
        Request::Set { key, value } => {
            buf.push(opcode::SET);
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(&key.to_le_bytes());
            buf.extend_from_slice(&value.to_le_bytes());
        }
        Request::Health => {
            buf.push(opcode::HEALTH);
            buf.extend_from_slice(&id.to_le_bytes());
        }
        Request::ScrubStats => {
            buf.push(opcode::SCRUB_STATS);
            buf.extend_from_slice(&id.to_le_bytes());
        }
    }
    end_frame(buf, start);
}

/// Decodes one request payload (the bytes after the length prefix).
pub fn decode_request(payload: &[u8]) -> Result<(u32, Request), ProtocolError> {
    if payload.is_empty() {
        return Err(ProtocolError::Empty);
    }
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    let id = c.u32()?;
    let req = match op {
        opcode::GET => Request::Get { key: c.u64()? },
        opcode::SET => Request::Set {
            key: c.u64()?,
            value: c.u64()?,
        },
        opcode::HEALTH => Request::Health,
        opcode::SCRUB_STATS => Request::ScrubStats,
        other => return Err(ProtocolError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok((id, req))
}

/// Appends one encoded response frame (length prefix included) to `buf`.
pub fn encode_response(id: u32, resp: &Response, buf: &mut Vec<u8>) {
    let start = begin_frame(buf);
    let push_head = |buf: &mut Vec<u8>, st: u8| {
        buf.push(st);
        buf.extend_from_slice(&id.to_le_bytes());
    };
    match resp {
        Response::Value(v) => {
            push_head(buf, status::OK);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Response::Ok => push_head(buf, status::OK),
        Response::Busy { retry_after_ms } => {
            push_head(buf, status::BUSY);
            buf.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
        Response::Degraded { retry_after_ms } => {
            push_head(buf, status::DEGRADED);
            buf.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
        Response::Fault => push_head(buf, status::FAULT),
        Response::BadRequest => push_head(buf, status::BAD_REQUEST),
        Response::Health(report) => {
            push_head(buf, status::OK);
            encode_health(report, buf);
        }
        Response::ScrubStats(snap) => {
            push_head(buf, status::OK);
            encode_scrub(snap, buf);
        }
    }
    end_frame(buf, start);
}

/// The response layouts a `GET`/`SET` answer can take, used by
/// [`decode_response`] to disambiguate `OK` bodies (the status byte
/// alone does not say whether an `OK` carries a value).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseKind {
    /// Answer to `GET`: `OK` carries a `u64` value.
    Get,
    /// Answer to `SET`: `OK` is empty.
    Set,
    /// Answer to `HEALTH`: `OK` carries a [`HealthReport`].
    Health,
    /// Answer to `SCRUB_STATS`: `OK` carries a [`ScrubSnapshot`].
    ScrubStats,
}

impl ResponseKind {
    /// The response kind that answers `req`.
    pub fn of(req: &Request) -> Self {
        match req {
            Request::Get { .. } => ResponseKind::Get,
            Request::Set { .. } => ResponseKind::Set,
            Request::Health => ResponseKind::Health,
            Request::ScrubStats => ResponseKind::ScrubStats,
        }
    }
}

/// Decodes one response payload (the bytes after the length prefix).
/// `kind` selects the `OK` body layout — the caller knows which request
/// this frame answers (responses arrive in request order).
pub fn decode_response(
    payload: &[u8],
    kind: ResponseKind,
) -> Result<(u32, Response), ProtocolError> {
    if payload.is_empty() {
        return Err(ProtocolError::Empty);
    }
    let mut c = Cursor::new(payload);
    let st = c.u8()?;
    let id = c.u32()?;
    let resp = match st {
        status::OK => match kind {
            ResponseKind::Get => Response::Value(c.u64()?),
            ResponseKind::Set => Response::Ok,
            ResponseKind::Health => Response::Health(decode_health(&mut c)?),
            ResponseKind::ScrubStats => Response::ScrubStats(decode_scrub(&mut c)?),
        },
        status::BUSY => Response::Busy {
            retry_after_ms: c.u32()?,
        },
        status::DEGRADED => Response::Degraded {
            retry_after_ms: c.u32()?,
        },
        status::FAULT => Response::Fault,
        status::BAD_REQUEST => Response::BadRequest,
        other => return Err(ProtocolError::UnknownStatus(other)),
    };
    c.finish()?;
    Ok((id, resp))
}

fn encode_health(report: &HealthReport, buf: &mut Vec<u8>) {
    let banks = report.banks.len().min(MAX_HEALTH_BANKS);
    buf.extend_from_slice(&(banks as u32).to_le_bytes());
    for b in report.banks.iter().take(banks) {
        buf.push(u8::from(b.degraded) | (u8::from(b.quarantined) << 1));
        buf.extend_from_slice(&b.inflight.to_le_bytes());
        buf.extend_from_slice(&b.admission_limit.to_le_bytes());
        buf.extend_from_slice(&b.observed_errors.to_le_bytes());
        buf.extend_from_slice(&b.shed.to_le_bytes());
        buf.extend_from_slice(&b.retry_after_ms.to_le_bytes());
    }
    match &report.scrubber {
        Some(s) => {
            buf.push(1);
            encode_scrubber_stats(s, buf);
        }
        None => buf.push(0),
    }
}

fn decode_health(c: &mut Cursor<'_>) -> Result<HealthReport, ProtocolError> {
    let banks = c.u32()? as usize;
    if banks > MAX_HEALTH_BANKS {
        return Err(ProtocolError::TooManyBanks { banks });
    }
    let mut report = HealthReport {
        banks: Vec::with_capacity(banks),
        scrubber: None,
    };
    for _ in 0..banks {
        let flags = c.u8()?;
        report.banks.push(BankHealth {
            degraded: flags & 1 != 0,
            quarantined: flags & 2 != 0,
            inflight: c.u32()?,
            admission_limit: c.u32()?,
            observed_errors: c.u64()?,
            shed: c.u64()?,
            retry_after_ms: c.u32()?,
        });
    }
    if c.u8()? != 0 {
        report.scrubber = Some(decode_scrubber_stats(c)?);
    }
    Ok(report)
}

fn encode_scrubber_stats(s: &ScrubberStats, buf: &mut Vec<u8>) {
    for v in [
        s.slices,
        s.rows_scanned,
        s.errors_found,
        s.repairs,
        s.full_passes,
        s.uncorrectable,
        s.busy_ns,
        s.clean_rows_scanned,
        s.clean_busy_ns,
        s.clean_bytes_scanned,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn decode_scrubber_stats(c: &mut Cursor<'_>) -> Result<ScrubberStats, ProtocolError> {
    Ok(ScrubberStats {
        slices: c.u64()?,
        rows_scanned: c.u64()?,
        errors_found: c.u64()?,
        repairs: c.u64()?,
        full_passes: c.u64()?,
        uncorrectable: c.u64()?,
        busy_ns: c.u64()?,
        clean_rows_scanned: c.u64()?,
        clean_busy_ns: c.u64()?,
        clean_bytes_scanned: c.u64()?,
    })
}

fn encode_scrub(snap: &ScrubSnapshot, buf: &mut Vec<u8>) {
    buf.push(u8::from(snap.attached));
    encode_scrubber_stats(&snap.stats, buf);
    buf.extend_from_slice(&snap.events.to_le_bytes());
    buf.extend_from_slice(&snap.device_hours.to_bits().to_le_bytes());
    buf.extend_from_slice(&snap.fit_per_mbit.to_bits().to_le_bytes());
}

fn decode_scrub(c: &mut Cursor<'_>) -> Result<ScrubSnapshot, ProtocolError> {
    Ok(ScrubSnapshot {
        attached: c.u8()? != 0,
        stats: decode_scrubber_stats(c)?,
        events: c.u64()?,
        device_hours: c.f64()?,
        fit_per_mbit: c.f64()?,
    })
}

/// Reserves the length prefix; returns the patch position.
fn begin_frame(buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    buf.extend_from_slice(&[0u8; 4]);
    start
}

/// Patches the length prefix with the payload size.
fn end_frame(buf: &mut [u8], start: usize) {
    let len = (buf.len() - start - 4) as u32;
    buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

/// Outcome of one [`read_frame`] attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete frame payload was read.
    Frame,
    /// Clean EOF at a frame boundary: the peer closed politely.
    Eof,
    /// The read deadline passed with *no* bytes of a new frame — the
    /// connection is merely idle. Callers decide whether to keep
    /// waiting or to reap.
    Idle,
}

/// Reads one length-prefixed frame payload into `payload` (cleared
/// first).
///
/// Timeout semantics: a timeout *before any byte of this frame* is
/// reported as [`FrameRead::Idle`] — the connection is quiet, not
/// broken. A timeout once the length prefix has started arriving is a
/// hard [`ServerError::DeadlineExpired`]: `read_exact` may already have
/// consumed part of the frame, so resynchronization is impossible and
/// the connection must close — a half-sent frame can stall a
/// connection for at most one read deadline, never wedge it.
///
/// # Errors
///
/// [`ServerError::Protocol`] on an oversized or empty declared length,
/// [`ServerError::Io`]/[`ServerError::DeadlineExpired`] on transport
/// failures, [`ServerError::Closed`] mapped from EOF inside a frame.
pub fn read_frame<R: Read>(r: &mut R, payload: &mut Vec<u8>) -> Result<FrameRead, ServerError> {
    let mut len_buf = [0u8; 4];
    // First byte separately: EOF here is a clean close, and a timeout
    // here is "idle" rather than a deadline violation.
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(FrameRead::Eof),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            return Ok(FrameRead::Idle)
        }
        Err(e) => return Err(e.into()),
    }
    read_exact_mapped(r, &mut len_buf[1..])?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Oversized { len }.into());
    }
    if len == 0 {
        return Err(ProtocolError::Empty.into());
    }
    payload.clear();
    payload.resize(len, 0);
    read_exact_mapped(r, payload)?;
    Ok(FrameRead::Frame)
}

/// `read_exact` with EOF-inside-frame mapped to [`ServerError::Closed`].
fn read_exact_mapped<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), ServerError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(ServerError::Closed),
        Err(e) => Err(e.into()),
    }
}

/// Writes pre-encoded frame bytes, mapping transport failures.
pub fn write_all<W: Write>(w: &mut W, bytes: &[u8]) -> Result<(), ServerError> {
    w.write_all(bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let cases = [
            Request::Get { key: 0 },
            Request::Get { key: MAX_KEY },
            Request::Set {
                key: 12345,
                value: u64::MAX,
            },
            Request::Health,
            Request::ScrubStats,
        ];
        for (i, req) in cases.iter().enumerate() {
            let mut buf = Vec::new();
            encode_request(i as u32, req, &mut buf);
            let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            assert_eq!(len + 4, buf.len());
            let (id, back) = decode_request(&buf[4..]).unwrap();
            assert_eq!(id, i as u32);
            assert_eq!(back, *req);
        }
    }

    #[test]
    fn response_round_trips() {
        let health = Response::Health(HealthReport {
            banks: vec![
                BankHealth {
                    degraded: true,
                    inflight: 3,
                    admission_limit: 64,
                    observed_errors: 17,
                    shed: 2,
                    retry_after_ms: 40,
                    ..BankHealth::default()
                },
                BankHealth::default(),
            ],
            scrubber: Some(ScrubberStats {
                slices: 9,
                repairs: 1,
                ..ScrubberStats::default()
            }),
        });
        let cases = [
            (Response::Value(7), ResponseKind::Get),
            (Response::Ok, ResponseKind::Set),
            (Response::Busy { retry_after_ms: 5 }, ResponseKind::Get),
            (Response::Degraded { retry_after_ms: 9 }, ResponseKind::Set),
            (Response::Fault, ResponseKind::Get),
            (Response::BadRequest, ResponseKind::Set),
            (health, ResponseKind::Health),
            (
                Response::ScrubStats(ScrubSnapshot {
                    attached: true,
                    events: 3,
                    device_hours: 1.5,
                    fit_per_mbit: 0.25,
                    ..ScrubSnapshot::default()
                }),
                ResponseKind::ScrubStats,
            ),
        ];
        for (i, (resp, kind)) in cases.iter().enumerate() {
            let mut buf = Vec::new();
            encode_response(i as u32, resp, &mut buf);
            let (id, back) = decode_response(&buf[4..], *kind).unwrap();
            assert_eq!(id, i as u32);
            assert_eq!(back, *resp);
        }
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let mut buf = Vec::new();
        encode_request(1, &Request::Set { key: 1, value: 2 }, &mut buf);
        let payload = &buf[4..];
        for cut in 0..payload.len() {
            match decode_request(&payload[..cut]) {
                Err(_) => {}
                Ok(v) => panic!("truncated to {cut} bytes decoded as {v:?}"),
            }
        }
        assert_eq!(decode_request(&[]), Err(ProtocolError::Empty));
        assert!(matches!(
            decode_request(&[0xFF, 0, 0, 0, 0]),
            Err(ProtocolError::UnknownOpcode(0xFF))
        ));
        // Trailing garbage beyond the layout is rejected.
        let mut long = payload.to_vec();
        long.push(0xAA);
        assert!(matches!(
            decode_request(&long),
            Err(ProtocolError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn read_frame_rejects_oversized_lengths_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let mut payload = Vec::new();
        match read_frame(&mut &bytes[..], &mut payload) {
            Err(ServerError::Protocol(ProtocolError::Oversized { len })) => {
                assert_eq!(len, u32::MAX as usize);
            }
            other => panic!("expected oversized rejection, got {other:?}"),
        }
        assert!(payload.capacity() < MAX_FRAME_BYTES);
    }

    #[test]
    fn route_key_is_injective_on_samples_and_spreads_banks() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for key in 0..10_000u64 {
            let addr = route_key(key);
            assert_eq!(addr % 8, 0, "aligned");
            assert!(seen.insert(addr), "collision at key {key}");
        }
        // Consecutive keys land on different lines most of the time —
        // the routing actually scatters.
        let same_line = (0..999u64)
            .filter(|&k| route_key(k) / 64 == route_key(k + 1) / 64)
            .count();
        assert!(same_line < 100, "{same_line} consecutive-key line hits");
    }
}
