//! Wire codec of the `twod-server` protocol: a length-prefixed binary
//! framing with typed, panic-free decoding.
//!
//! # Frame layout
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! +----------------+--------------------------------------+
//! | u32 LE: length | payload (`length` bytes)             |
//! +----------------+--------------------------------------+
//! payload:
//!   u8      opcode (request) / status (response)
//!   u32 LE  request id (echoed verbatim in the response)
//!   ...     body, fixed layout per opcode/status (below)
//! ```
//!
//! Request bodies: `GET` carries a `u64 LE` key; `SET` a `u64 LE` key
//! followed by a `u64 LE` value; `HEALTH` and `SCRUB_STATS` are empty.
//! Response bodies: `OK` to a `GET` carries the `u64 LE` value; `OK` to
//! a `SET` is empty; `BUSY` and `DEGRADED` carry a `u32 LE`
//! retry-after hint in milliseconds; `FAULT` and `BAD_REQUEST` are
//! empty; `OK` to `HEALTH`/`SCRUB_STATS` carries the serialized
//! [`HealthReport`] / [`ScrubSnapshot`].
//!
//! # Batched (multi-item) frames
//!
//! `GET_MULTI` and `SET_MULTI` carry many keyed operations in one
//! frame, which is what lets the server amortize decode, bank locks,
//! and the response write across a whole batch:
//!
//! ```text
//! GET_MULTI:  u8 op, u32 LE id, u16 LE count, count x u64 LE key
//! SET_MULTI:  u8 op, u32 LE id, u16 LE count, count x (u64 key, u64 value)
//! response:   u8 OK, u32 LE id, u16 LE count, count x (u8 status, u64 LE payload)
//! ```
//!
//! Item counts are bounded by [`MAX_MULTI_ITEMS`] so the largest legal
//! multi frame (and its response) stays within [`MAX_FRAME_BYTES`];
//! overflow is the typed [`ProtocolError::TooManyItems`], never a
//! truncation. Each response item carries its own status byte (the same
//! [`status`] codes single responses use) plus a `u64` payload — the
//! value for an `OK` get item, the retry-after hint (milliseconds) for
//! `BUSY`/`DEGRADED` items, `0` otherwise — so one frame can mix served
//! and shed items without reordering. See [`ItemOutcome`].
//!
//! Keys are capped at [`MAX_KEY`] (51 bits): the server maps keys to
//! aligned 64-bit word addresses through an invertible mixer
//! ([`route_key`]), and injectivity — two distinct keys can never alias
//! one cache word — only holds on the 51-bit domain. A larger key is a
//! `BAD_REQUEST`, not a silent truncation.
//!
//! # Robustness contract
//!
//! Decoding never panics and never reads out of bounds on any input:
//! truncated, oversized, trailing-garbage, unknown-opcode, and
//! unknown-status payloads all come back as typed [`ProtocolError`]s
//! (property-tested in `tests/net_protocol.rs`). Frames longer than
//! [`MAX_FRAME_BYTES`] are rejected from the length prefix alone, so a
//! hostile length can never cause an allocation burst.

use std::fmt;
use std::io::{self, Read, Write};
use twod_cache::ScrubberStats;

/// Hard ceiling on one frame's payload length. Large enough for a
/// [`HealthReport`] over [`MAX_HEALTH_BANKS`] banks, small enough that a
/// hostile length prefix cannot make the server allocate unboundedly.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Largest key the protocol accepts (51 bits — see [`route_key`] for
/// why the domain is bounded by the engine's 48-bit stored tag width).
pub const MAX_KEY: u64 = (1 << 51) - 1;

/// Most banks a [`HealthReport`] will serialize (fits [`MAX_FRAME_BYTES`]
/// with generous slack).
pub const MAX_HEALTH_BANKS: usize = 1024;

/// Most items one `GET_MULTI`/`SET_MULTI` frame may carry. Sized so the
/// largest legal frame stays under [`MAX_FRAME_BYTES`]: a `SET_MULTI`
/// payload is `7 + 16 * count` bytes (64 007 at the cap) and the multi
/// response is `7 + 9 * count` (36 007), both with room to spare.
pub const MAX_MULTI_ITEMS: usize = 4000;

/// Request opcodes on the wire.
pub mod opcode {
    /// `GET key` — read one value.
    pub const GET: u8 = 0x01;
    /// `SET key value` — store one value.
    pub const SET: u8 = 0x02;
    /// `HEALTH` — per-bank health introspection.
    pub const HEALTH: u8 = 0x03;
    /// `SCRUB_STATS` — scrubber counters + reliability telemetry.
    pub const SCRUB_STATS: u8 = 0x04;
    /// `GET_MULTI count keys...` — read many values in one frame.
    pub const GET_MULTI: u8 = 0x05;
    /// `SET_MULTI count (key,value)...` — store many pairs in one frame.
    pub const SET_MULTI: u8 = 0x06;
}

/// Response status bytes on the wire.
pub mod status {
    /// Success (body layout depends on the request answered).
    pub const OK: u8 = 0x00;
    /// Admission bound hit — shed with a retry-after hint.
    pub const BUSY: u8 = 0x01;
    /// Target bank degraded/quarantined — shed with a retry-after hint.
    pub const DEGRADED: u8 = 0x02;
    /// Uncorrectable damage on the addressed word.
    pub const FAULT: u8 = 0x03;
    /// Structurally decodable but invalid request (e.g. oversized key).
    pub const BAD_REQUEST: u8 = 0x04;
}

/// A decoded client request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Read the value stored under `key` (missing keys read as `0`, the
    /// cache's fill value).
    Get {
        /// The 51-bit key (see [`MAX_KEY`]).
        key: u64,
    },
    /// Store `value` under `key`.
    Set {
        /// The 51-bit key (see [`MAX_KEY`]).
        key: u64,
        /// The 64-bit value to store.
        value: u64,
    },
    /// Per-bank health introspection (degraded/quarantined flags,
    /// admission pressure, observed error counts).
    Health,
    /// Background-scrubber counters and live reliability telemetry.
    ScrubStats,
}

/// A decoded server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `GET` succeeded with this value.
    Value(u64),
    /// `SET` was committed (acknowledged write: it must survive any
    /// fault the scheme covers, and any disconnect).
    Ok,
    /// The target bank's admission queue is full; retry after the hint.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The target bank is degraded (mid-recovery or quarantined); the
    /// request was shed, not queued. Healthy banks keep serving.
    Degraded {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The operation hit uncorrectable damage — the protection was
    /// defeated for this word.
    Fault,
    /// The request was structurally valid but semantically rejected
    /// (e.g. key above [`MAX_KEY`]).
    BadRequest,
    /// `HEALTH` snapshot.
    Health(HealthReport),
    /// `SCRUB_STATS` snapshot.
    ScrubStats(ScrubSnapshot),
}

impl Response {
    /// The wire status byte this response is carried under (see
    /// [`status`]).
    pub fn status_byte(&self) -> u8 {
        match self {
            Response::Value(_) | Response::Ok | Response::Health(_) | Response::ScrubStats(_) => {
                status::OK
            }
            Response::Busy { .. } => status::BUSY,
            Response::Degraded { .. } => status::DEGRADED,
            Response::Fault => status::FAULT,
            Response::BadRequest => status::BAD_REQUEST,
        }
    }
}

/// One bank's health as carried in a [`HealthReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BankHealth {
    /// Whether the bank is currently shedding requests (inside its
    /// degraded window following observed error activity).
    pub degraded: bool,
    /// Whether the bank is administratively quarantined.
    pub quarantined: bool,
    /// Requests currently admitted and executing against the bank.
    pub inflight: u32,
    /// The admission bound (`inflight` saturating here means BUSY).
    pub admission_limit: u32,
    /// Error events the bank has observed since construction
    /// (monotonic; inline corrections + recoveries + scrub finds).
    pub observed_errors: u64,
    /// Requests shed by this bank (BUSY + DEGRADED responses).
    pub shed: u64,
    /// Milliseconds until the degraded window expires (`0` when the
    /// bank is healthy; quarantine reports the configured hint).
    pub retry_after_ms: u32,
}

impl BankHealth {
    /// Admission occupancy: `inflight` as a fraction of the admission
    /// limit (`0.0` when the limit is zero). `1.0` means the next
    /// request sheds BUSY.
    pub fn occupancy(&self) -> f64 {
        if self.admission_limit == 0 {
            0.0
        } else {
            f64::from(self.inflight) / f64::from(self.admission_limit)
        }
    }
}

/// The `HEALTH` response payload: per-bank state plus optional scrubber
/// aggregates, enough for a load generator or chaos campaign to assert
/// that degradation was entered and exited.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HealthReport {
    /// Per-bank health, indexed by bank.
    pub banks: Vec<BankHealth>,
    /// Background scrubber counters, when a scrubber is attached.
    pub scrubber: Option<ScrubberStats>,
    /// The scrubber's clean-scan throughput in GB/s of storage swept
    /// (`0.0` when no scrubber is attached or nothing was scanned yet).
    /// Carried explicitly so a load balancer can weigh shards without
    /// re-deriving rates from raw counters.
    pub clean_scan_gbps: f64,
}

impl HealthReport {
    /// Banks currently shedding (degraded or quarantined).
    pub fn degraded_banks(&self) -> usize {
        self.banks
            .iter()
            .filter(|b| b.degraded || b.quarantined)
            .count()
    }

    /// Mean admission occupancy across banks (see
    /// [`BankHealth::occupancy`]); `0.0` for an empty report. A cheap
    /// single-number load signal for shard weighing.
    pub fn admission_occupancy(&self) -> f64 {
        if self.banks.is_empty() {
            return 0.0;
        }
        self.banks.iter().map(BankHealth::occupancy).sum::<f64>() / self.banks.len() as f64
    }
}

/// The `SCRUB_STATS` response payload: scrubber counters plus the live
/// FIT estimate, all zero/absent when no scrubber is attached.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ScrubSnapshot {
    /// Whether a background scrubber is attached to the server.
    pub attached: bool,
    /// Scrubber work counters (zeroed when detached).
    pub stats: ScrubberStats,
    /// Error events behind the FIT estimate.
    pub events: u64,
    /// Device-hours of exposure behind the FIT estimate.
    pub device_hours: f64,
    /// Maximum-likelihood FIT per megabit (0.0 when unavailable).
    pub fit_per_mbit: f64,
}

/// Errors produced by decoding a frame payload. Every variant is a
/// clean rejection of hostile or damaged input — never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload ended before the fixed layout was complete.
    Truncated {
        /// Bytes the layout needed.
        need: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The length prefix exceeded [`MAX_FRAME_BYTES`].
    Oversized {
        /// The offending declared length.
        len: usize,
    },
    /// A zero-length payload (no opcode byte).
    Empty,
    /// Unknown request opcode.
    UnknownOpcode(u8),
    /// Unknown response status byte.
    UnknownStatus(u8),
    /// The payload carried more bytes than its layout defines —
    /// rejected so a framing desync is caught at the first message.
    TrailingBytes {
        /// Unconsumed byte count.
        extra: usize,
    },
    /// A health report declared more banks than [`MAX_HEALTH_BANKS`].
    TooManyBanks {
        /// The declared count.
        banks: usize,
    },
    /// A multi frame declared (or an encoder was asked for) more items
    /// than [`MAX_MULTI_ITEMS`].
    TooManyItems {
        /// The declared/requested item count.
        items: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated { need, got } => {
                write!(f, "truncated frame: layout needs {need} bytes, got {got}")
            }
            ProtocolError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes > max {MAX_FRAME_BYTES}")
            }
            ProtocolError::Empty => write!(f, "empty frame payload"),
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown request opcode {op:#04x}"),
            ProtocolError::UnknownStatus(st) => write!(f, "unknown response status {st:#04x}"),
            ProtocolError::TrailingBytes { extra } => {
                write!(
                    f,
                    "frame carries {extra} trailing byte(s) beyond its layout"
                )
            }
            ProtocolError::TooManyBanks { banks } => {
                write!(
                    f,
                    "health report declares {banks} banks > max {MAX_HEALTH_BANKS}"
                )
            }
            ProtocolError::TooManyItems { items } => {
                write!(
                    f,
                    "multi frame declares {items} items > max {MAX_MULTI_ITEMS}"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Errors of the network tier. A malformed frame or a dead socket
/// surfaces as one of these — never as a panic — so one hostile or
/// unlucky connection can only ever take down itself.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure (reset, refused, broken pipe, ...).
    Io(io::Error),
    /// The peer sent bytes that do not decode as a frame.
    Protocol(ProtocolError),
    /// The peer closed the connection (EOF at a frame boundary is a
    /// clean close; mid-frame it is reported as `Io`).
    Closed,
    /// A read or write missed its deadline.
    DeadlineExpired,
    /// The response id did not match the request id it answers — a
    /// pipelining desync (client-side check).
    IdMismatch {
        /// Id the client expected.
        expected: u32,
        /// Id the frame carried.
        got: u32,
    },
    /// The server answered with a non-success status where the caller
    /// required success; carries the wire status byte (see [`status`]).
    Rejected(u8),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "socket error: {e}"),
            ServerError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServerError::Closed => write!(f, "connection closed by peer"),
            ServerError::DeadlineExpired => write!(f, "connection deadline expired"),
            ServerError::IdMismatch { expected, got } => {
                write!(f, "response id {got} does not answer request id {expected}")
            }
            ServerError::Rejected(st) => {
                write!(f, "request rejected by server (status {st:#04x})")
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ServerError::DeadlineExpired,
            io::ErrorKind::UnexpectedEof => ServerError::Closed,
            _ => ServerError::Io(e),
        }
    }
}

impl From<ProtocolError> for ServerError {
    fn from(e: ProtocolError) -> Self {
        ServerError::Protocol(e)
    }
}

/// Maps a key to the aligned 64-bit word address the cache serves it
/// from, through an invertible 51-bit mixer — the hashed key→bank
/// routing: consecutive keys scatter across banks instead of marching
/// through one line at a time, yet no two keys ever share a word.
///
/// Each step is a bijection on the 51-bit domain (odd multipliers are
/// invertible mod 2^51; `x ^= x >> k` is triangular), so the
/// composition is injective and the final `<< 3` maps it onto disjoint
/// aligned words.
///
/// Why 51 bits: addresses stay below 2^54, so line numbers stay below
/// 2^48 — the width of the engine's stored tag field. A wider key
/// domain would let two keys collide in a *truncated* tag and silently
/// alias each other's lines, breaking read-your-writes.
pub fn route_key(key: u64) -> u64 {
    const M51: u64 = (1 << 51) - 1;
    debug_assert!(key <= MAX_KEY, "caller must validate the key first");
    let mut x = key & M51;
    x ^= x >> 26;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9) & M51;
    x ^= x >> 24;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB) & M51;
    x ^= x >> 27;
    x << 3
}

/// Little-endian cursor over a frame payload: all reads bounds-checked,
/// all failures typed.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).ok_or(ProtocolError::Truncated {
            need: usize::MAX,
            got: self.buf.len(),
        })?;
        if end > self.buf.len() {
            return Err(ProtocolError::Truncated {
                need: end,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// The layout is complete: any unconsumed bytes are a framing error.
    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            Err(ProtocolError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            })
        } else {
            Ok(())
        }
    }
}

/// Appends one encoded request frame (length prefix included) to `buf`.
pub fn encode_request(id: u32, req: &Request, buf: &mut Vec<u8>) {
    let start = begin_frame(buf);
    match *req {
        Request::Get { key } => {
            buf.push(opcode::GET);
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(&key.to_le_bytes());
        }
        Request::Set { key, value } => {
            buf.push(opcode::SET);
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(&key.to_le_bytes());
            buf.extend_from_slice(&value.to_le_bytes());
        }
        Request::Health => {
            buf.push(opcode::HEALTH);
            buf.extend_from_slice(&id.to_le_bytes());
        }
        Request::ScrubStats => {
            buf.push(opcode::SCRUB_STATS);
            buf.extend_from_slice(&id.to_le_bytes());
        }
    }
    end_frame(buf, start);
}

/// Decodes one request payload (the bytes after the length prefix).
///
/// Single-op frames only: `GET_MULTI`/`SET_MULTI` payloads are rejected
/// as [`ProtocolError::UnknownOpcode`] here — batch-aware callers (the
/// server's drain path, multi-capable clients) use
/// [`decode_request_frame`], which decodes every opcode without
/// allocating.
pub fn decode_request(payload: &[u8]) -> Result<(u32, Request), ProtocolError> {
    if payload.is_empty() {
        return Err(ProtocolError::Empty);
    }
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    let id = c.u32()?;
    let req = match op {
        opcode::GET => Request::Get { key: c.u64()? },
        opcode::SET => Request::Set {
            key: c.u64()?,
            value: c.u64()?,
        },
        opcode::HEALTH => Request::Health,
        opcode::SCRUB_STATS => Request::ScrubStats,
        other => return Err(ProtocolError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok((id, req))
}

/// One decoded request frame, multi opcodes included. The multi
/// variants borrow the payload: item iteration is a bounds-prevalidated
/// walk over the raw bytes, so decoding a 4000-item frame allocates
/// nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestFrame<'a> {
    /// A single-op frame (`GET`/`SET`/`HEALTH`/`SCRUB_STATS`).
    Single(Request),
    /// A `GET_MULTI` frame: iterate the keys.
    GetMulti(MultiKeys<'a>),
    /// A `SET_MULTI` frame: iterate the `(key, value)` pairs.
    SetMulti(MultiPairs<'a>),
}

/// Iterator over a `GET_MULTI` frame's keys (borrowed from the
/// payload; length validated before construction, so iteration is
/// infallible).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultiKeys<'a> {
    buf: &'a [u8],
}

impl Iterator for MultiKeys<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let (head, rest) = self.buf.split_first_chunk::<8>()?;
        self.buf = rest;
        Some(u64::from_le_bytes(*head))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.buf.len() / 8;
        (n, Some(n))
    }
}

impl ExactSizeIterator for MultiKeys<'_> {}

/// Iterator over a `SET_MULTI` frame's `(key, value)` pairs (borrowed
/// from the payload; length validated before construction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultiPairs<'a> {
    buf: &'a [u8],
}

impl Iterator for MultiPairs<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        let (head, rest) = self.buf.split_first_chunk::<16>()?;
        self.buf = rest;
        let key = u64::from_le_bytes(head[..8].try_into().expect("8-byte chunk"));
        let value = u64::from_le_bytes(head[8..].try_into().expect("8-byte chunk"));
        Some((key, value))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.buf.len() / 16;
        (n, Some(n))
    }
}

impl ExactSizeIterator for MultiPairs<'_> {}

/// Decodes one request payload of *any* opcode, single or multi,
/// without allocating. Multi item counts beyond [`MAX_MULTI_ITEMS`] are
/// the typed [`ProtocolError::TooManyItems`]; short or long item arrays
/// are `Truncated`/`TrailingBytes`, exactly like the fixed layouts.
pub fn decode_request_frame(payload: &[u8]) -> Result<(u32, RequestFrame<'_>), ProtocolError> {
    if payload.is_empty() {
        return Err(ProtocolError::Empty);
    }
    let op = payload[0];
    if op != opcode::GET_MULTI && op != opcode::SET_MULTI {
        let (id, req) = decode_request(payload)?;
        return Ok((id, RequestFrame::Single(req)));
    }
    let mut c = Cursor::new(payload);
    let _ = c.u8()?;
    let id = c.u32()?;
    let count = u16::from_le_bytes(c.take(2)?.try_into().expect("2-byte take")) as usize;
    if count > MAX_MULTI_ITEMS {
        return Err(ProtocolError::TooManyItems { items: count });
    }
    let item_bytes = if op == opcode::GET_MULTI { 8 } else { 16 };
    let body = c.take(count * item_bytes)?;
    c.finish()?;
    let frame = if op == opcode::GET_MULTI {
        RequestFrame::GetMulti(MultiKeys { buf: body })
    } else {
        RequestFrame::SetMulti(MultiPairs { buf: body })
    };
    Ok((id, frame))
}

/// Appends one encoded `GET_MULTI` request frame to `buf`.
///
/// # Errors
///
/// [`ProtocolError::TooManyItems`] when `keys` exceeds
/// [`MAX_MULTI_ITEMS`] — the caller splits, the encoder never does.
pub fn encode_get_multi(id: u32, keys: &[u64], buf: &mut Vec<u8>) -> Result<(), ProtocolError> {
    if keys.len() > MAX_MULTI_ITEMS {
        return Err(ProtocolError::TooManyItems { items: keys.len() });
    }
    let start = begin_frame(buf);
    buf.push(opcode::GET_MULTI);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&(keys.len() as u16).to_le_bytes());
    for key in keys {
        buf.extend_from_slice(&key.to_le_bytes());
    }
    end_frame(buf, start);
    Ok(())
}

/// Appends one encoded `SET_MULTI` request frame to `buf`.
///
/// # Errors
///
/// [`ProtocolError::TooManyItems`] when `items` exceeds
/// [`MAX_MULTI_ITEMS`].
pub fn encode_set_multi(
    id: u32,
    items: &[(u64, u64)],
    buf: &mut Vec<u8>,
) -> Result<(), ProtocolError> {
    if items.len() > MAX_MULTI_ITEMS {
        return Err(ProtocolError::TooManyItems { items: items.len() });
    }
    let start = begin_frame(buf);
    buf.push(opcode::SET_MULTI);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&(items.len() as u16).to_le_bytes());
    for (key, value) in items {
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(&value.to_le_bytes());
    }
    end_frame(buf, start);
    Ok(())
}

/// Per-item outcome inside a multi response: the same vocabulary as
/// [`Response`], minus the introspection payloads, plus the explicit
/// get-value variant. One multi frame can mix served and shed items —
/// shedding is per bank, and a batch can span banks in different
/// states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemOutcome {
    /// Get item served with this value.
    Value(u64),
    /// Set item committed (acknowledged write).
    Ok,
    /// Item shed on admission pressure; retry after the hint.
    Busy {
        /// Suggested backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// Item shed because the owning bank is degraded/quarantined.
    Degraded {
        /// Suggested backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The item hit uncorrectable damage.
    Fault,
    /// The item was rejected (e.g. key above [`MAX_KEY`]).
    BadRequest,
}

/// Appends one encoded multi response frame (`count` items pushed
/// through the returned builder) to `buf`. The frame is finalized — and
/// its length prefix patched — by [`MultiResponseFrame::finish`].
pub fn begin_multi_response(id: u32, count: usize, buf: &mut Vec<u8>) -> MultiResponseFrame<'_> {
    debug_assert!(count <= MAX_MULTI_ITEMS, "count bounded by request decode");
    let start = begin_frame(buf);
    buf.push(status::OK);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&(count as u16).to_le_bytes());
    MultiResponseFrame {
        buf,
        start,
        declared: count,
        written: 0,
    }
}

/// In-progress multi response frame from [`begin_multi_response`]:
/// push exactly the declared number of items, then [`Self::finish`].
#[derive(Debug)]
pub struct MultiResponseFrame<'a> {
    buf: &'a mut Vec<u8>,
    start: usize,
    declared: usize,
    written: usize,
}

impl MultiResponseFrame<'_> {
    /// Appends one item outcome (status byte + `u64` payload).
    ///
    /// # Panics
    ///
    /// Panics when pushed past the declared count — that is a server
    /// logic bug, not a network condition.
    pub fn push(&mut self, item: ItemOutcome) {
        assert!(self.written < self.declared, "multi response overfilled");
        let (st, payload) = match item {
            ItemOutcome::Value(v) => (status::OK, v),
            ItemOutcome::Ok => (status::OK, 0),
            ItemOutcome::Busy { retry_after_ms } => (status::BUSY, u64::from(retry_after_ms)),
            ItemOutcome::Degraded { retry_after_ms } => {
                (status::DEGRADED, u64::from(retry_after_ms))
            }
            ItemOutcome::Fault => (status::FAULT, 0),
            ItemOutcome::BadRequest => (status::BAD_REQUEST, 0),
        };
        self.buf.push(st);
        self.buf.extend_from_slice(&payload.to_le_bytes());
        self.written += 1;
    }

    /// Patches the length prefix, completing the frame.
    ///
    /// # Panics
    ///
    /// Panics when fewer items than declared were pushed.
    pub fn finish(self) {
        assert_eq!(self.written, self.declared, "multi response underfilled");
        end_frame(self.buf, self.start);
    }
}

/// Decodes one multi response payload into `out` (cleared first),
/// returning the echoed request id. `get` selects whether `OK` items
/// decode as [`ItemOutcome::Value`] (answers to `GET_MULTI`) or
/// [`ItemOutcome::Ok`] (answers to `SET_MULTI`) — the caller knows
/// which request this frame answers.
pub fn decode_multi_response(
    payload: &[u8],
    get: bool,
    out: &mut Vec<ItemOutcome>,
) -> Result<u32, ProtocolError> {
    out.clear();
    if payload.is_empty() {
        return Err(ProtocolError::Empty);
    }
    let mut c = Cursor::new(payload);
    let st = c.u8()?;
    if st != status::OK {
        return Err(ProtocolError::UnknownStatus(st));
    }
    let id = c.u32()?;
    let count = u16::from_le_bytes(c.take(2)?.try_into().expect("2-byte take")) as usize;
    if count > MAX_MULTI_ITEMS {
        return Err(ProtocolError::TooManyItems { items: count });
    }
    out.reserve(count);
    for _ in 0..count {
        let st = c.u8()?;
        let payload = c.u64()?;
        out.push(match st {
            status::OK => {
                if get {
                    ItemOutcome::Value(payload)
                } else {
                    ItemOutcome::Ok
                }
            }
            status::BUSY => ItemOutcome::Busy {
                retry_after_ms: payload as u32,
            },
            status::DEGRADED => ItemOutcome::Degraded {
                retry_after_ms: payload as u32,
            },
            status::FAULT => ItemOutcome::Fault,
            status::BAD_REQUEST => ItemOutcome::BadRequest,
            other => return Err(ProtocolError::UnknownStatus(other)),
        });
    }
    c.finish()?;
    Ok(id)
}

/// Appends one encoded response frame (length prefix included) to `buf`.
pub fn encode_response(id: u32, resp: &Response, buf: &mut Vec<u8>) {
    let start = begin_frame(buf);
    let push_head = |buf: &mut Vec<u8>, st: u8| {
        buf.push(st);
        buf.extend_from_slice(&id.to_le_bytes());
    };
    match resp {
        Response::Value(v) => {
            push_head(buf, status::OK);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Response::Ok => push_head(buf, status::OK),
        Response::Busy { retry_after_ms } => {
            push_head(buf, status::BUSY);
            buf.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
        Response::Degraded { retry_after_ms } => {
            push_head(buf, status::DEGRADED);
            buf.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
        Response::Fault => push_head(buf, status::FAULT),
        Response::BadRequest => push_head(buf, status::BAD_REQUEST),
        Response::Health(report) => {
            push_head(buf, status::OK);
            encode_health(report, buf);
        }
        Response::ScrubStats(snap) => {
            push_head(buf, status::OK);
            encode_scrub(snap, buf);
        }
    }
    end_frame(buf, start);
}

/// The response layouts a `GET`/`SET` answer can take, used by
/// [`decode_response`] to disambiguate `OK` bodies (the status byte
/// alone does not say whether an `OK` carries a value).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseKind {
    /// Answer to `GET`: `OK` carries a `u64` value.
    Get,
    /// Answer to `SET`: `OK` is empty.
    Set,
    /// Answer to `HEALTH`: `OK` carries a [`HealthReport`].
    Health,
    /// Answer to `SCRUB_STATS`: `OK` carries a [`ScrubSnapshot`].
    ScrubStats,
}

impl ResponseKind {
    /// The response kind that answers `req`.
    pub fn of(req: &Request) -> Self {
        match req {
            Request::Get { .. } => ResponseKind::Get,
            Request::Set { .. } => ResponseKind::Set,
            Request::Health => ResponseKind::Health,
            Request::ScrubStats => ResponseKind::ScrubStats,
        }
    }
}

/// Decodes one response payload (the bytes after the length prefix).
/// `kind` selects the `OK` body layout — the caller knows which request
/// this frame answers (responses arrive in request order).
pub fn decode_response(
    payload: &[u8],
    kind: ResponseKind,
) -> Result<(u32, Response), ProtocolError> {
    if payload.is_empty() {
        return Err(ProtocolError::Empty);
    }
    let mut c = Cursor::new(payload);
    let st = c.u8()?;
    let id = c.u32()?;
    let resp = match st {
        status::OK => match kind {
            ResponseKind::Get => Response::Value(c.u64()?),
            ResponseKind::Set => Response::Ok,
            ResponseKind::Health => Response::Health(decode_health(&mut c)?),
            ResponseKind::ScrubStats => Response::ScrubStats(decode_scrub(&mut c)?),
        },
        status::BUSY => Response::Busy {
            retry_after_ms: c.u32()?,
        },
        status::DEGRADED => Response::Degraded {
            retry_after_ms: c.u32()?,
        },
        status::FAULT => Response::Fault,
        status::BAD_REQUEST => Response::BadRequest,
        other => return Err(ProtocolError::UnknownStatus(other)),
    };
    c.finish()?;
    Ok((id, resp))
}

fn encode_health(report: &HealthReport, buf: &mut Vec<u8>) {
    let banks = report.banks.len().min(MAX_HEALTH_BANKS);
    buf.extend_from_slice(&(banks as u32).to_le_bytes());
    for b in report.banks.iter().take(banks) {
        buf.push(u8::from(b.degraded) | (u8::from(b.quarantined) << 1));
        buf.extend_from_slice(&b.inflight.to_le_bytes());
        buf.extend_from_slice(&b.admission_limit.to_le_bytes());
        buf.extend_from_slice(&b.observed_errors.to_le_bytes());
        buf.extend_from_slice(&b.shed.to_le_bytes());
        buf.extend_from_slice(&b.retry_after_ms.to_le_bytes());
    }
    match &report.scrubber {
        Some(s) => {
            buf.push(1);
            encode_scrubber_stats(s, buf);
        }
        None => buf.push(0),
    }
    buf.extend_from_slice(&report.clean_scan_gbps.to_bits().to_le_bytes());
}

fn decode_health(c: &mut Cursor<'_>) -> Result<HealthReport, ProtocolError> {
    let banks = c.u32()? as usize;
    if banks > MAX_HEALTH_BANKS {
        return Err(ProtocolError::TooManyBanks { banks });
    }
    let mut report = HealthReport {
        banks: Vec::with_capacity(banks),
        scrubber: None,
        clean_scan_gbps: 0.0,
    };
    for _ in 0..banks {
        let flags = c.u8()?;
        report.banks.push(BankHealth {
            degraded: flags & 1 != 0,
            quarantined: flags & 2 != 0,
            inflight: c.u32()?,
            admission_limit: c.u32()?,
            observed_errors: c.u64()?,
            shed: c.u64()?,
            retry_after_ms: c.u32()?,
        });
    }
    if c.u8()? != 0 {
        report.scrubber = Some(decode_scrubber_stats(c)?);
    }
    report.clean_scan_gbps = c.f64()?;
    Ok(report)
}

fn encode_scrubber_stats(s: &ScrubberStats, buf: &mut Vec<u8>) {
    for v in [
        s.slices,
        s.rows_scanned,
        s.errors_found,
        s.repairs,
        s.full_passes,
        s.uncorrectable,
        s.busy_ns,
        s.clean_rows_scanned,
        s.clean_busy_ns,
        s.clean_bytes_scanned,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn decode_scrubber_stats(c: &mut Cursor<'_>) -> Result<ScrubberStats, ProtocolError> {
    Ok(ScrubberStats {
        slices: c.u64()?,
        rows_scanned: c.u64()?,
        errors_found: c.u64()?,
        repairs: c.u64()?,
        full_passes: c.u64()?,
        uncorrectable: c.u64()?,
        busy_ns: c.u64()?,
        clean_rows_scanned: c.u64()?,
        clean_busy_ns: c.u64()?,
        clean_bytes_scanned: c.u64()?,
    })
}

fn encode_scrub(snap: &ScrubSnapshot, buf: &mut Vec<u8>) {
    buf.push(u8::from(snap.attached));
    encode_scrubber_stats(&snap.stats, buf);
    buf.extend_from_slice(&snap.events.to_le_bytes());
    buf.extend_from_slice(&snap.device_hours.to_bits().to_le_bytes());
    buf.extend_from_slice(&snap.fit_per_mbit.to_bits().to_le_bytes());
}

fn decode_scrub(c: &mut Cursor<'_>) -> Result<ScrubSnapshot, ProtocolError> {
    Ok(ScrubSnapshot {
        attached: c.u8()? != 0,
        stats: decode_scrubber_stats(c)?,
        events: c.u64()?,
        device_hours: c.f64()?,
        fit_per_mbit: c.f64()?,
    })
}

/// Reserves the length prefix; returns the patch position.
fn begin_frame(buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    buf.extend_from_slice(&[0u8; 4]);
    start
}

/// Patches the length prefix with the payload size.
fn end_frame(buf: &mut [u8], start: usize) {
    let len = (buf.len() - start - 4) as u32;
    buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

/// Outcome of one [`read_frame`] attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete frame payload was read.
    Frame,
    /// Clean EOF at a frame boundary: the peer closed politely.
    Eof,
    /// The read deadline passed with *no* bytes of a new frame — the
    /// connection is merely idle. Callers decide whether to keep
    /// waiting or to reap.
    Idle,
}

/// Reads one length-prefixed frame payload into `payload` (cleared
/// first).
///
/// Timeout semantics: a timeout *before any byte of this frame* is
/// reported as [`FrameRead::Idle`] — the connection is quiet, not
/// broken. A timeout once the length prefix has started arriving is a
/// hard [`ServerError::DeadlineExpired`]: `read_exact` may already have
/// consumed part of the frame, so resynchronization is impossible and
/// the connection must close — a half-sent frame can stall a
/// connection for at most one read deadline, never wedge it.
///
/// # Errors
///
/// [`ServerError::Protocol`] on an oversized or empty declared length,
/// [`ServerError::Io`]/[`ServerError::DeadlineExpired`] on transport
/// failures, [`ServerError::Closed`] mapped from EOF inside a frame.
pub fn read_frame<R: Read>(r: &mut R, payload: &mut Vec<u8>) -> Result<FrameRead, ServerError> {
    let mut len_buf = [0u8; 4];
    // First byte separately: EOF here is a clean close, and a timeout
    // here is "idle" rather than a deadline violation.
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(FrameRead::Eof),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            return Ok(FrameRead::Idle)
        }
        Err(e) => return Err(e.into()),
    }
    read_exact_mapped(r, &mut len_buf[1..])?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Oversized { len }.into());
    }
    if len == 0 {
        return Err(ProtocolError::Empty.into());
    }
    payload.clear();
    payload.resize(len, 0);
    read_exact_mapped(r, payload)?;
    Ok(FrameRead::Frame)
}

/// `read_exact` with EOF-inside-frame mapped to [`ServerError::Closed`].
fn read_exact_mapped<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), ServerError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(ServerError::Closed),
        Err(e) => Err(e.into()),
    }
}

/// Writes pre-encoded frame bytes, mapping transport failures.
pub fn write_all<W: Write>(w: &mut W, bytes: &[u8]) -> Result<(), ServerError> {
    w.write_all(bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let cases = [
            Request::Get { key: 0 },
            Request::Get { key: MAX_KEY },
            Request::Set {
                key: 12345,
                value: u64::MAX,
            },
            Request::Health,
            Request::ScrubStats,
        ];
        for (i, req) in cases.iter().enumerate() {
            let mut buf = Vec::new();
            encode_request(i as u32, req, &mut buf);
            let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            assert_eq!(len + 4, buf.len());
            let (id, back) = decode_request(&buf[4..]).unwrap();
            assert_eq!(id, i as u32);
            assert_eq!(back, *req);
        }
    }

    #[test]
    fn response_round_trips() {
        let health = Response::Health(HealthReport {
            banks: vec![
                BankHealth {
                    degraded: true,
                    inflight: 3,
                    admission_limit: 64,
                    observed_errors: 17,
                    shed: 2,
                    retry_after_ms: 40,
                    ..BankHealth::default()
                },
                BankHealth::default(),
            ],
            scrubber: Some(ScrubberStats {
                slices: 9,
                repairs: 1,
                ..ScrubberStats::default()
            }),
            clean_scan_gbps: 3.25,
        });
        let cases = [
            (Response::Value(7), ResponseKind::Get),
            (Response::Ok, ResponseKind::Set),
            (Response::Busy { retry_after_ms: 5 }, ResponseKind::Get),
            (Response::Degraded { retry_after_ms: 9 }, ResponseKind::Set),
            (Response::Fault, ResponseKind::Get),
            (Response::BadRequest, ResponseKind::Set),
            (health, ResponseKind::Health),
            (
                Response::ScrubStats(ScrubSnapshot {
                    attached: true,
                    events: 3,
                    device_hours: 1.5,
                    fit_per_mbit: 0.25,
                    ..ScrubSnapshot::default()
                }),
                ResponseKind::ScrubStats,
            ),
        ];
        for (i, (resp, kind)) in cases.iter().enumerate() {
            let mut buf = Vec::new();
            encode_response(i as u32, resp, &mut buf);
            let (id, back) = decode_response(&buf[4..], *kind).unwrap();
            assert_eq!(id, i as u32);
            assert_eq!(back, *resp);
        }
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let mut buf = Vec::new();
        encode_request(1, &Request::Set { key: 1, value: 2 }, &mut buf);
        let payload = &buf[4..];
        for cut in 0..payload.len() {
            match decode_request(&payload[..cut]) {
                Err(_) => {}
                Ok(v) => panic!("truncated to {cut} bytes decoded as {v:?}"),
            }
        }
        assert_eq!(decode_request(&[]), Err(ProtocolError::Empty));
        assert!(matches!(
            decode_request(&[0xFF, 0, 0, 0, 0]),
            Err(ProtocolError::UnknownOpcode(0xFF))
        ));
        // Trailing garbage beyond the layout is rejected.
        let mut long = payload.to_vec();
        long.push(0xAA);
        assert!(matches!(
            decode_request(&long),
            Err(ProtocolError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn read_frame_rejects_oversized_lengths_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let mut payload = Vec::new();
        match read_frame(&mut &bytes[..], &mut payload) {
            Err(ServerError::Protocol(ProtocolError::Oversized { len })) => {
                assert_eq!(len, u32::MAX as usize);
            }
            other => panic!("expected oversized rejection, got {other:?}"),
        }
        assert!(payload.capacity() < MAX_FRAME_BYTES);
    }

    #[test]
    fn multi_request_round_trips_without_alloc_on_decode() {
        let keys: Vec<u64> = (0..37u64).map(|i| i * 3 + 1).collect();
        let mut buf = Vec::new();
        encode_get_multi(9, &keys, &mut buf).unwrap();
        let (id, frame) = decode_request_frame(&buf[4..]).unwrap();
        assert_eq!(id, 9);
        match frame {
            RequestFrame::GetMulti(it) => {
                assert_eq!(it.len(), keys.len());
                assert!(it.eq(keys.iter().copied()));
            }
            other => panic!("expected GetMulti, got {other:?}"),
        }
        let items: Vec<(u64, u64)> = (0..11u64).map(|i| (i, i * i)).collect();
        buf.clear();
        encode_set_multi(3, &items, &mut buf).unwrap();
        let (id, frame) = decode_request_frame(&buf[4..]).unwrap();
        assert_eq!(id, 3);
        match frame {
            RequestFrame::SetMulti(it) => assert!(it.eq(items.iter().copied())),
            other => panic!("expected SetMulti, got {other:?}"),
        }
        // Single frames pass through the same decoder.
        buf.clear();
        encode_request(5, &Request::Get { key: 77 }, &mut buf);
        match decode_request_frame(&buf[4..]).unwrap() {
            (5, RequestFrame::Single(Request::Get { key: 77 })) => {}
            other => panic!("expected single GET, got {other:?}"),
        }
    }

    #[test]
    fn multi_item_bounds_are_typed_errors() {
        let too_many = vec![0u64; MAX_MULTI_ITEMS + 1];
        let mut buf = Vec::new();
        assert_eq!(
            encode_get_multi(1, &too_many, &mut buf),
            Err(ProtocolError::TooManyItems {
                items: MAX_MULTI_ITEMS + 1
            })
        );
        // A hostile declared count is rejected before any item walk.
        let mut payload = vec![opcode::GET_MULTI];
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&(u16::MAX).to_le_bytes());
        assert_eq!(
            decode_request_frame(&payload),
            Err(ProtocolError::TooManyItems {
                items: u16::MAX as usize
            })
        );
        // Truncated and padded item arrays are framing errors.
        let keys = [1u64, 2, 3];
        buf.clear();
        encode_get_multi(2, &keys, &mut buf).unwrap();
        assert!(matches!(
            decode_request_frame(&buf[4..buf.len() - 1]),
            Err(ProtocolError::Truncated { .. })
        ));
        buf.push(0xAA);
        assert!(matches!(
            decode_request_frame(&buf[4..]),
            Err(ProtocolError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn multi_response_round_trips_mixed_statuses() {
        let outcomes = [
            ItemOutcome::Value(u64::MAX),
            ItemOutcome::Busy { retry_after_ms: 7 },
            ItemOutcome::Degraded { retry_after_ms: 40 },
            ItemOutcome::Fault,
            ItemOutcome::BadRequest,
            ItemOutcome::Value(0),
        ];
        let mut buf = Vec::new();
        let mut frame = begin_multi_response(12, outcomes.len(), &mut buf);
        for o in outcomes {
            frame.push(o);
        }
        frame.finish();
        let mut back = Vec::new();
        let id = decode_multi_response(&buf[4..], true, &mut back).unwrap();
        assert_eq!(id, 12);
        assert_eq!(back, outcomes);
        // The same frame decoded as a SET_MULTI answer maps OK items to
        // plain acks.
        let id = decode_multi_response(&buf[4..], false, &mut back).unwrap();
        assert_eq!(id, 12);
        assert_eq!(back[0], ItemOutcome::Ok);
        assert_eq!(back[5], ItemOutcome::Ok);
    }

    #[test]
    fn decode_request_frame_matches_decode_request_on_multi_rejection() {
        // The single-op decoder stays single-op: multi payloads are
        // rejected rather than half-decoded.
        let mut buf = Vec::new();
        encode_get_multi(1, &[1, 2], &mut buf).unwrap();
        assert!(matches!(
            decode_request(&buf[4..]),
            Err(ProtocolError::UnknownOpcode(op)) if op == opcode::GET_MULTI
        ));
    }

    #[test]
    fn health_report_occupancy_and_gbps_round_trip() {
        let report = HealthReport {
            banks: vec![
                BankHealth {
                    inflight: 16,
                    admission_limit: 64,
                    ..BankHealth::default()
                },
                BankHealth {
                    inflight: 64,
                    admission_limit: 64,
                    ..BankHealth::default()
                },
            ],
            scrubber: None,
            clean_scan_gbps: 7.5,
        };
        assert!((report.admission_occupancy() - 0.625).abs() < 1e-12);
        let mut buf = Vec::new();
        encode_response(4, &Response::Health(report.clone()), &mut buf);
        let (_, back) = decode_response(&buf[4..], ResponseKind::Health).unwrap();
        assert_eq!(back, Response::Health(report));
    }

    #[test]
    fn route_key_is_injective_on_samples_and_spreads_banks() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for key in 0..10_000u64 {
            let addr = route_key(key);
            assert_eq!(addr % 8, 0, "aligned");
            assert!(seen.insert(addr), "collision at key {key}");
        }
        // Consecutive keys land on different lines most of the time —
        // the routing actually scatters.
        let same_line = (0..999u64)
            .filter(|&k| route_key(k) / 64 == route_key(k + 1) / 64)
            .count();
        assert!(same_line < 100, "{same_line} consecutive-key line hits");
    }
}
