//! Blocking TCP client for the `twod-server` protocol: single-request
//! convenience calls, pipelined batches, retry helpers that honor the
//! server's `BUSY`/`DEGRADED` retry-after hints, and reconnection (the
//! chaos campaign kills and re-establishes connections mid-storm).

use super::protocol::{
    self, FrameRead, HealthReport, ItemOutcome, Request, Response, ResponseKind, ScrubSnapshot,
    ServerError,
};
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Timeouts governing one [`NetClient`] connection.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-`read` socket timeout (the client polls in units of this
    /// while waiting for a response).
    pub read_timeout: Duration,
    /// Per-`write` socket timeout.
    pub write_timeout: Duration,
    /// Overall deadline for one response to arrive; idle polls beyond
    /// this yield [`ServerError::DeadlineExpired`].
    pub response_deadline: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_millis(500),
            response_deadline: Duration::from_secs(5),
        }
    }
}

/// A blocking connection to a [`CacheServer`](super::CacheServer).
///
/// Requests carry monotonically increasing ids; every response echoes
/// its request's id and the client verifies the match, so a desynced
/// stream surfaces as a typed [`ServerError::IdMismatch`] rather than
/// silently mispairing answers.
#[derive(Debug)]
pub struct NetClient {
    addr: SocketAddr,
    cfg: ClientConfig,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u32,
    payload: Vec<u8>,
    out: Vec<u8>,
}

impl NetClient {
    /// Connects with default timeouts.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if the connection cannot be established.
    pub fn connect(addr: SocketAddr) -> Result<NetClient, ServerError> {
        NetClient::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeouts.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if the connection cannot be established or
    /// its socket options cannot be set.
    pub fn connect_with(addr: SocketAddr, cfg: ClientConfig) -> Result<NetClient, ServerError> {
        let stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)?;
        stream.set_read_timeout(Some(cfg.read_timeout))?;
        stream.set_write_timeout(Some(cfg.write_timeout))?;
        stream.set_nodelay(true)?;
        let reader_stream = stream.try_clone()?;
        Ok(NetClient {
            addr,
            cfg,
            reader: BufReader::new(reader_stream),
            writer: BufWriter::new(stream),
            next_id: 1,
            payload: Vec::new(),
            out: Vec::new(),
        })
    }

    /// The server address this client connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drops the current connection (abruptly, without a polite
    /// shutdown — this is how the chaos campaign kills connections
    /// mid-flight) and establishes a fresh one to the same address.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if the reconnect fails.
    pub fn reconnect(&mut self) -> Result<(), ServerError> {
        let _ = self.writer.get_ref().shutdown(Shutdown::Both);
        *self = NetClient::connect_with(self.addr, self.cfg)?;
        Ok(())
    }

    fn fresh_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    /// Sends one request and waits for its response, verifying the id.
    ///
    /// # Errors
    ///
    /// Transport and framing failures as typed [`ServerError`]s;
    /// [`ServerError::DeadlineExpired`] if no response arrives within
    /// [`ClientConfig::response_deadline`].
    pub fn request(&mut self, req: &Request) -> Result<Response, ServerError> {
        let id = self.fresh_id();
        self.out.clear();
        protocol::encode_request(id, req, &mut self.out);
        protocol::write_all(&mut self.writer, &self.out)?;
        self.writer.flush().map_err(ServerError::from)?;
        self.read_response(id, ResponseKind::of(req))
    }

    /// Sends a batch of requests back-to-back (one flush), then reads
    /// the responses in order — the wire-level pipelining the server's
    /// frame loop is built for. Returns one response per request.
    ///
    /// # Errors
    ///
    /// Fails on the first transport/framing error; earlier responses in
    /// the batch are discarded.
    pub fn pipeline(&mut self, reqs: &[Request]) -> Result<Vec<Response>, ServerError> {
        let first_id = self.next_id;
        self.out.clear();
        for req in reqs {
            let id = self.fresh_id();
            protocol::encode_request(id, req, &mut self.out);
        }
        protocol::write_all(&mut self.writer, &self.out)?;
        self.writer.flush().map_err(ServerError::from)?;
        let mut responses = Vec::with_capacity(reqs.len());
        for (i, req) in reqs.iter().enumerate() {
            let id = first_id.wrapping_add(i as u32);
            responses.push(self.read_response(id, ResponseKind::of(req))?);
        }
        Ok(responses)
    }

    /// [`NetClient::pipeline`] with shed-aware retries: after each
    /// round, requests answered `BUSY`/`DEGRADED` are re-pipelined
    /// (only those — already-resolved slots are never re-sent), after
    /// sleeping the *largest* retry-after hint among them. Results land
    /// in their original slots, so the returned order always matches
    /// `reqs` regardless of how many rounds each request needed.
    ///
    /// # Errors
    ///
    /// Transport/framing errors abort the whole batch; exhausting
    /// `attempts` leaves the final shed responses in place (callers can
    /// distinguish "still shedding" from "broken").
    pub fn pipeline_retry(
        &mut self,
        reqs: &[Request],
        attempts: u32,
    ) -> Result<Vec<Response>, ServerError> {
        let mut responses = self.pipeline(reqs)?;
        let mut pending: Vec<usize> = Vec::new();
        let mut retry_reqs: Vec<Request> = Vec::new();
        for _ in 1..attempts.max(1) {
            pending.clear();
            let mut max_hint_ms = 0u32;
            for (i, resp) in responses.iter().enumerate() {
                if let Response::Busy { retry_after_ms } | Response::Degraded { retry_after_ms } =
                    *resp
                {
                    pending.push(i);
                    max_hint_ms = max_hint_ms.max(retry_after_ms.max(1));
                }
            }
            if pending.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(u64::from(max_hint_ms.min(100))));
            retry_reqs.clear();
            retry_reqs.extend(pending.iter().map(|&i| reqs[i]));
            let retried = self.pipeline(&retry_reqs)?;
            for (&slot, resp) in pending.iter().zip(retried) {
                responses[slot] = resp;
            }
        }
        Ok(responses)
    }

    /// `GET_MULTI`: fetches many keys in one frame, filling `out` with
    /// one [`ItemOutcome`] per key, in key order. The outcome buffer is
    /// caller-owned so a hot loop reuses its capacity.
    ///
    /// # Errors
    ///
    /// Transport/framing errors,
    /// [`ProtocolError::TooManyItems`](super::protocol::ProtocolError::TooManyItems)
    /// (wrapped) when `keys` exceeds
    /// [`MAX_MULTI_ITEMS`](protocol::MAX_MULTI_ITEMS), and
    /// [`ServerError::IdMismatch`] on a desynced stream.
    pub fn get_multi(
        &mut self,
        keys: &[u64],
        out: &mut Vec<ItemOutcome>,
    ) -> Result<(), ServerError> {
        let id = self.fresh_id();
        self.out.clear();
        protocol::encode_get_multi(id, keys, &mut self.out)?;
        protocol::write_all(&mut self.writer, &self.out)?;
        self.writer.flush().map_err(ServerError::from)?;
        self.await_frame()?;
        let got_id = protocol::decode_multi_response(&self.payload, true, out)?;
        if got_id != id {
            return Err(ServerError::IdMismatch {
                expected: id,
                got: got_id,
            });
        }
        Ok(())
    }

    /// `SET_MULTI`: writes many key/value pairs in one frame, filling
    /// `out` with one [`ItemOutcome`] per pair, in pair order.
    ///
    /// # Errors
    ///
    /// As [`NetClient::get_multi`].
    pub fn set_multi(
        &mut self,
        items: &[(u64, u64)],
        out: &mut Vec<ItemOutcome>,
    ) -> Result<(), ServerError> {
        let id = self.fresh_id();
        self.out.clear();
        protocol::encode_set_multi(id, items, &mut self.out)?;
        protocol::write_all(&mut self.writer, &self.out)?;
        self.writer.flush().map_err(ServerError::from)?;
        self.await_frame()?;
        let got_id = protocol::decode_multi_response(&self.payload, false, out)?;
        if got_id != id {
            return Err(ServerError::IdMismatch {
                expected: id,
                got: got_id,
            });
        }
        Ok(())
    }

    /// `GET key`, returning the stored value.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ServerError::Rejected`] wrapping any
    /// non-`Value` response (`BUSY`/`DEGRADED`/`FAULT`/`BAD_REQUEST`).
    pub fn get(&mut self, key: u64) -> Result<u64, ServerError> {
        match self.request(&Request::Get { key })? {
            Response::Value(v) => Ok(v),
            other => Err(ServerError::Rejected(other.status_byte())),
        }
    }

    /// `SET key = value`.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ServerError::Rejected`] wrapping any
    /// non-`OK` response.
    pub fn set(&mut self, key: u64, value: u64) -> Result<(), ServerError> {
        match self.request(&Request::Set { key, value })? {
            Response::Ok => Ok(()),
            other => Err(ServerError::Rejected(other.status_byte())),
        }
    }

    /// `GET` with shed-aware retries: `BUSY`/`DEGRADED` responses sleep
    /// the server's retry-after hint and try again, up to `attempts`
    /// total tries. The last response is returned (or an error).
    ///
    /// # Errors
    ///
    /// Transport/framing errors; exhausting `attempts` returns the
    /// final shed response as `Ok` so callers can distinguish "still
    /// shedding" from "broken".
    pub fn get_retry(&mut self, key: u64, attempts: u32) -> Result<Response, ServerError> {
        self.retry(&Request::Get { key }, attempts)
    }

    /// `SET` with shed-aware retries (see [`NetClient::get_retry`]).
    ///
    /// # Errors
    ///
    /// Transport/framing errors.
    pub fn set_retry(
        &mut self,
        key: u64,
        value: u64,
        attempts: u32,
    ) -> Result<Response, ServerError> {
        self.retry(&Request::Set { key, value }, attempts)
    }

    fn retry(&mut self, req: &Request, attempts: u32) -> Result<Response, ServerError> {
        let mut last = self.request(req)?;
        for _ in 1..attempts.max(1) {
            let hint_ms = match last {
                Response::Busy { retry_after_ms } | Response::Degraded { retry_after_ms } => {
                    retry_after_ms.max(1)
                }
                _ => return Ok(last),
            };
            std::thread::sleep(Duration::from_millis(u64::from(hint_ms.min(100))));
            last = self.request(req)?;
        }
        Ok(last)
    }

    /// Fetches the server's `HEALTH` report.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ServerError::Rejected`] on a non-health
    /// response.
    pub fn health(&mut self) -> Result<HealthReport, ServerError> {
        match self.request(&Request::Health)? {
            Response::Health(report) => Ok(report),
            other => Err(ServerError::Rejected(other.status_byte())),
        }
    }

    /// Fetches the server's `SCRUB_STATS` snapshot.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ServerError::Rejected`] on a non-scrub
    /// response.
    pub fn scrub_stats(&mut self) -> Result<ScrubSnapshot, ServerError> {
        match self.request(&Request::ScrubStats)? {
            Response::ScrubStats(snap) => Ok(snap),
            other => Err(ServerError::Rejected(other.status_byte())),
        }
    }

    /// Fills `self.payload` with the next response frame, polling
    /// through idle read timeouts until
    /// [`ClientConfig::response_deadline`].
    fn await_frame(&mut self) -> Result<(), ServerError> {
        let begun = Instant::now();
        loop {
            match protocol::read_frame(&mut self.reader, &mut self.payload)? {
                FrameRead::Frame => return Ok(()),
                FrameRead::Eof => return Err(ServerError::Closed),
                FrameRead::Idle => {
                    if begun.elapsed() >= self.cfg.response_deadline {
                        return Err(ServerError::DeadlineExpired);
                    }
                }
            }
        }
    }

    /// Reads one response frame and verifies its id.
    fn read_response(&mut self, want_id: u32, kind: ResponseKind) -> Result<Response, ServerError> {
        self.await_frame()?;
        let (id, resp) = protocol::decode_response(&self.payload, kind)?;
        if id != want_id {
            return Err(ServerError::IdMismatch {
                expected: want_id,
                got: id,
            });
        }
        Ok(resp)
    }
}
