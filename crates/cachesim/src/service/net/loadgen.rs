//! Multi-connection load generator for the network tier: Zipf-popular
//! keys over a large key space, pipelined request batches, per-op
//! round-trip latency with tail percentiles, and read-your-writes
//! verification riding along — the socket-in-the-loop companion to the
//! in-process traffic driver in [`crate::service`].
//!
//! Ownership mirrors the in-process driver: connection `t` *writes*
//! only keys `k` with `k % connections == t` but *reads* across every
//! partition; owned reads are verified against the connection's private
//! model of its own acknowledged writes, which is exact under any
//! interleaving because owners are exclusive writers.

use super::client::{ClientConfig, NetClient};
use super::protocol::{Request, Response, ServerError};
use super::sharded::{ShardOutcome, ShardedClient};
use crate::ZipfSampler;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub ops_per_connection: u64,
    /// Distinct key ranks per connection partition: the total key
    /// universe is `key_ranks * connections` (so "millions of keys"
    /// means `key_ranks` in the millions / `connections`).
    pub key_ranks: usize,
    /// Zipf exponent of key popularity (`1.0` = classic Zipf).
    pub zipf_theta: f64,
    /// Fraction of requests that are `SET`s.
    pub write_fraction: f64,
    /// Requests sent back-to-back per batch (wire pipelining depth;
    /// `1` = strict request/response alternation).
    pub pipeline_depth: usize,
    /// Master seed for per-connection request streams.
    pub seed: u64,
    /// Client socket timeouts.
    pub client: ClientConfig,
}

impl LoadConfig {
    /// The CI smoke configuration: small enough for single-digit
    /// seconds on a single CPU, large enough to exercise pipelining,
    /// both opcodes, and the verification model.
    pub fn quick(seed: u64) -> Self {
        LoadConfig {
            connections: 4,
            ops_per_connection: 4_000,
            key_ranks: 50_000,
            zipf_theta: 1.1,
            write_fraction: 0.3,
            pipeline_depth: 16,
            seed,
            client: ClientConfig::default(),
        }
    }

    /// The benchmark configuration: millions of distinct keys, deeper
    /// pipelines, enough samples for stable p999.
    pub fn full(seed: u64) -> Self {
        LoadConfig {
            connections: 8,
            ops_per_connection: 50_000,
            key_ranks: 250_000,
            zipf_theta: 1.1,
            write_fraction: 0.3,
            pipeline_depth: 32,
            seed,
            client: ClientConfig::default(),
        }
    }
}

/// Aggregate result of one load run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Connections that completed their stream.
    pub connections: usize,
    /// Requests answered (any status).
    pub ops: u64,
    /// Wall-clock of the whole run in nanoseconds.
    pub wall_ns: u64,
    /// Aggregate throughput in requests per second.
    pub throughput_ops_per_sec: f64,
    /// Mean per-request round-trip nanoseconds (batch time / batch
    /// size under pipelining).
    pub mean_ns: f64,
    /// Median per-request latency.
    pub p50_ns: u64,
    /// 99th-percentile per-request latency.
    pub p99_ns: u64,
    /// 99.9th-percentile per-request latency.
    pub p999_ns: u64,
    /// Worst observed per-request latency.
    pub max_ns: u64,
    /// `GET`s answered with a value.
    pub values: u64,
    /// `SET`s acknowledged.
    pub acked_writes: u64,
    /// Requests shed `BUSY`.
    pub busy: u64,
    /// Requests shed `DEGRADED`.
    pub degraded: u64,
    /// Requests answered `FAULT`.
    pub faults: u64,
    /// Requests answered `BAD_REQUEST`.
    pub bad_requests: u64,
    /// Owned reads checked against the writer's model.
    pub verified_reads: u64,
    /// Owned reads that disagreed with the model — **must be zero**.
    pub wrong_reads: u64,
    /// Transport-level reconnects performed mid-run.
    pub reconnects: u64,
    /// Requests abandoned to transport errors after reconnecting.
    pub transport_errors: u64,
}

/// Per-connection tally folded into the aggregate report.
#[derive(Default)]
struct ConnTally {
    ops: u64,
    values: u64,
    acked_writes: u64,
    busy: u64,
    degraded: u64,
    faults: u64,
    bad_requests: u64,
    verified_reads: u64,
    wrong_reads: u64,
    reconnects: u64,
    transport_errors: u64,
    latencies: Vec<u64>,
}

/// Runs `cfg.connections` concurrent client connections against the
/// server at `addr` and reports throughput, tail latency, and
/// verification counters.
///
/// # Errors
///
/// Returns the first connection-establishment failure; mid-run
/// transport errors are retried via reconnect and tallied instead.
///
/// # Panics
///
/// Panics if `cfg.connections == 0`, `cfg.pipeline_depth == 0`, or
/// `cfg.key_ranks == 0` (degenerate configuration, caller error).
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> Result<LoadReport, ServerError> {
    assert!(cfg.connections >= 1, "load needs a connection");
    assert!(cfg.pipeline_depth >= 1, "pipeline depth must be positive");
    assert!(cfg.key_ranks >= 1, "key space must be nonempty");
    let sampler = Arc::new(ZipfSampler::new(cfg.key_ranks, cfg.zipf_theta));
    // Establish every connection up front so a refused listener fails
    // fast instead of half-running.
    let mut clients = Vec::with_capacity(cfg.connections);
    for _ in 0..cfg.connections {
        clients.push(NetClient::connect_with(addr, cfg.client)?);
    }
    let started = Instant::now();
    let tallies: Vec<ConnTally> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.connections);
        for (t, client) in clients.into_iter().enumerate() {
            let sampler = Arc::clone(&sampler);
            handles.push(scope.spawn(move || run_connection(t, client, cfg, &sampler)));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let wall_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    Ok(fold_tallies(cfg.connections, wall_ns, tallies))
}

/// Runs the same ownership-verified Zipf workload through
/// [`ShardedClient`]s over `addrs` — each connection thread owns one
/// sharded client, rendezvous-routing every key, so the run exercises
/// per-shard pipelining and reassembly exactly as a production caller
/// would. `addrs.len()` is the shard-count knob;
/// [`LoadConfig::pipeline_depth`] is the batch-depth knob.
///
/// A [`ShardOutcome::ShardDown`] slot counts as a transport error; a
/// down shard's acked-write model entries become *uncertain* (the write
/// never happened, but a racing earlier write's fate is unknowable from
/// here) exactly like a mid-batch disconnect in [`run_load`].
///
/// # Errors
///
/// Fails fast if any shard refuses its initial probe connection, so a
/// misconfigured fleet surfaces immediately instead of half-running.
///
/// # Panics
///
/// As [`run_load`], plus `addrs` must be nonempty.
pub fn run_load_sharded(addrs: &[SocketAddr], cfg: &LoadConfig) -> Result<LoadReport, ServerError> {
    assert!(cfg.connections >= 1, "load needs a connection");
    assert!(cfg.pipeline_depth >= 1, "pipeline depth must be positive");
    assert!(cfg.key_ranks >= 1, "key space must be nonempty");
    assert!(!addrs.is_empty(), "sharded load needs at least one shard");
    let sampler = Arc::new(ZipfSampler::new(cfg.key_ranks, cfg.zipf_theta));
    // Probe every shard up front so a refused listener fails fast.
    for &addr in addrs {
        drop(NetClient::connect_with(addr, cfg.client)?);
    }
    let started = Instant::now();
    let tallies: Vec<ConnTally> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.connections);
        for t in 0..cfg.connections {
            let sampler = Arc::clone(&sampler);
            let client = ShardedClient::with_config(addrs, cfg.client);
            handles.push(scope.spawn(move || run_connection_sharded(t, client, cfg, &sampler)));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let wall_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    Ok(fold_tallies(cfg.connections, wall_ns, tallies))
}

/// Folds per-connection tallies into the aggregate report with sorted
/// tail percentiles.
fn fold_tallies(connections: usize, wall_ns: u64, tallies: Vec<ConnTally>) -> LoadReport {
    let mut report = LoadReport {
        connections,
        wall_ns,
        ..LoadReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    for tally in tallies {
        report.ops += tally.ops;
        report.values += tally.values;
        report.acked_writes += tally.acked_writes;
        report.busy += tally.busy;
        report.degraded += tally.degraded;
        report.faults += tally.faults;
        report.bad_requests += tally.bad_requests;
        report.verified_reads += tally.verified_reads;
        report.wrong_reads += tally.wrong_reads;
        report.reconnects += tally.reconnects;
        report.transport_errors += tally.transport_errors;
        latencies.extend(tally.latencies);
    }
    if wall_ns > 0 {
        report.throughput_ops_per_sec = report.ops as f64 / (wall_ns as f64 / 1e9);
    }
    if !latencies.is_empty() {
        latencies.sort_unstable();
        let n = latencies.len();
        let pick = |q: f64| latencies[(((n as f64) * q) as usize).min(n - 1)];
        report.mean_ns = latencies.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        report.p50_ns = pick(0.50);
        report.p99_ns = pick(0.99);
        report.p999_ns = pick(0.999);
        report.max_ns = latencies[n - 1];
    }
    report
}

/// Maps a sampled popularity rank and an owner partition to a wire key.
/// Partitions interleave (`key % connections == owner`), so ownership
/// is checkable from the key alone.
fn key_of(rank: usize, owner: usize, connections: usize) -> u64 {
    (rank as u64) * (connections as u64) + owner as u64
}

fn run_connection(
    t: usize,
    mut client: NetClient,
    cfg: &LoadConfig,
    sampler: &ZipfSampler,
) -> ConnTally {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0xC0FF_EE00 + t as u64));
    let mut tally = ConnTally::default();
    // Private model of this connection's *acknowledged* writes: the
    // read-your-writes oracle for owned keys. Keys whose last write was
    // cut off by a transport failure are *uncertain* (the write may or
    // may not have committed) and exempt from verification until the
    // next acknowledged write settles them.
    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut uncertain: HashSet<u64> = HashSet::new();
    let mut batch: Vec<Request> = Vec::with_capacity(cfg.pipeline_depth);
    let mut issued = 0u64;
    while issued < cfg.ops_per_connection {
        batch.clear();
        let depth = cfg
            .pipeline_depth
            .min((cfg.ops_per_connection - issued) as usize);
        for _ in 0..depth {
            let rank = sampler.sample(&mut rng);
            if rng.gen_bool(cfg.write_fraction) {
                let key = key_of(rank, t, cfg.connections);
                batch.push(Request::Set {
                    key,
                    value: rng.gen(),
                });
            } else {
                let owner = rng.gen_range(0..cfg.connections);
                batch.push(Request::Get {
                    key: key_of(rank, owner, cfg.connections),
                });
            }
        }
        issued += batch.len() as u64;
        let begun = Instant::now();
        let responses = match client.pipeline(&batch) {
            Ok(r) => r,
            Err(_) => {
                // Transport failure mid-batch: the batch's outcomes are
                // unknown (writes may or may not have committed), so
                // drop the affected keys from the model rather than
                // assert stale expectations, reconnect, and move on.
                tally.transport_errors += batch.len() as u64;
                for req in &batch {
                    if let Request::Set { key, .. } = req {
                        model.remove(key);
                        uncertain.insert(*key);
                    }
                }
                if client.reconnect().is_err() {
                    return tally;
                }
                tally.reconnects += 1;
                continue;
            }
        };
        let per_op = Instant::now()
            .duration_since(begun)
            .as_nanos()
            .min(u64::MAX as u128) as u64
            / responses.len().max(1) as u64;
        for (req, resp) in batch.iter().zip(&responses) {
            tally.ops += 1;
            tally.latencies.push(per_op);
            match (req, resp) {
                (Request::Set { key, value }, Response::Ok) => {
                    tally.acked_writes += 1;
                    uncertain.remove(key);
                    model.insert(*key, *value);
                }
                (Request::Get { key }, Response::Value(v)) => {
                    tally.values += 1;
                    if *key % cfg.connections as u64 == t as u64 && !uncertain.contains(key) {
                        let expected = model.get(key).copied().unwrap_or(0);
                        tally.verified_reads += 1;
                        if *v != expected {
                            tally.wrong_reads += 1;
                        }
                    }
                }
                (_, Response::Busy { .. }) => tally.busy += 1,
                (_, Response::Degraded { .. }) => tally.degraded += 1,
                (_, Response::Fault) => tally.faults += 1,
                (_, Response::BadRequest) => tally.bad_requests += 1,
                _ => {}
            }
        }
    }
    tally
}

/// The sharded-client twin of [`run_connection`]: same request stream
/// and the same ownership model, driven through
/// [`ShardedClient::pipeline`]. Down-shard slots are tallied as
/// transport errors and poison their `SET` keys as uncertain;
/// reconnection is the client's lazy-redial job, surfaced via its
/// [`ShardedClient::reconnects`] counter (initial dials excluded).
fn run_connection_sharded(
    t: usize,
    mut client: ShardedClient,
    cfg: &LoadConfig,
    sampler: &ZipfSampler,
) -> ConnTally {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0xC0FF_EE00 + t as u64));
    let mut tally = ConnTally::default();
    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut uncertain: HashSet<u64> = HashSet::new();
    let mut batch: Vec<Request> = Vec::with_capacity(cfg.pipeline_depth);
    let mut outcomes: Vec<ShardOutcome> = Vec::with_capacity(cfg.pipeline_depth);
    let initial_dials = client.shard_count() as u64;
    let mut issued = 0u64;
    while issued < cfg.ops_per_connection {
        batch.clear();
        let depth = cfg
            .pipeline_depth
            .min((cfg.ops_per_connection - issued) as usize);
        for _ in 0..depth {
            let rank = sampler.sample(&mut rng);
            if rng.gen_bool(cfg.write_fraction) {
                let key = key_of(rank, t, cfg.connections);
                batch.push(Request::Set {
                    key,
                    value: rng.gen(),
                });
            } else {
                let owner = rng.gen_range(0..cfg.connections);
                batch.push(Request::Get {
                    key: key_of(rank, owner, cfg.connections),
                });
            }
        }
        issued += batch.len() as u64;
        let begun = Instant::now();
        client.pipeline(&batch, &mut outcomes);
        let per_op = Instant::now()
            .duration_since(begun)
            .as_nanos()
            .min(u64::MAX as u128) as u64
            / outcomes.len().max(1) as u64;
        for (req, outcome) in batch.iter().zip(&outcomes) {
            tally.ops += 1;
            tally.latencies.push(per_op);
            let resp = match outcome {
                ShardOutcome::Response(resp) => resp,
                ShardOutcome::ShardDown => {
                    tally.transport_errors += 1;
                    if let Request::Set { key, .. } = req {
                        model.remove(key);
                        uncertain.insert(*key);
                    }
                    continue;
                }
            };
            match (req, resp) {
                (Request::Set { key, value }, Response::Ok) => {
                    tally.acked_writes += 1;
                    uncertain.remove(key);
                    model.insert(*key, *value);
                }
                (Request::Get { key }, Response::Value(v)) => {
                    tally.values += 1;
                    if *key % cfg.connections as u64 == t as u64 && !uncertain.contains(key) {
                        let expected = model.get(key).copied().unwrap_or(0);
                        tally.verified_reads += 1;
                        if *v != expected {
                            tally.wrong_reads += 1;
                        }
                    }
                }
                (_, Response::Busy { .. }) => tally.busy += 1,
                (_, Response::Degraded { .. }) => tally.degraded += 1,
                (_, Response::Fault) => tally.faults += 1,
                (_, Response::BadRequest) => tally.bad_requests += 1,
                _ => {}
            }
        }
    }
    tally.reconnects = client.reconnects().saturating_sub(initial_dials);
    tally
}
