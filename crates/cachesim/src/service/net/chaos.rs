//! The network phase of the chaos campaign: a live [`CacheServer`]
//! under concurrent client traffic while a fault storm strikes banks, a
//! quarantine toggles mid-run, and client connections are killed and
//! re-established mid-storm — verifying that acknowledged writes
//! survive every disconnect, reads are never wrong, and requests to
//! recovering banks are shed with `BUSY`/`DEGRADED` instead of hanging
//! or panicking.
//!
//! Injection discipline matches the in-process campaign
//! ([`crate::service::campaign`]): before every injection the target
//! bank is scrubbed clean, so each fault event is isolated and
//! correctable by construction — any lost write or wrong read is a real
//! service bug, not compound-damage bad luck.

use super::client::{ClientConfig, NetClient};
use super::protocol::{Request, Response};
use super::server::{CacheServer, ServerConfig, ServerStats};
use super::sharded::{ShardOutcome, ShardedClient};
use memarray::ErrorShape;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use twod_cache::{CacheConfig, ConcurrentBankedCache, Scrubber, ScrubberConfig, TwoDScheme};

/// Configuration of one network chaos run.
#[derive(Clone, Debug)]
pub struct NetChaosConfig {
    /// Master seed for client streams and injection positions.
    pub seed: u64,
    /// Banks in the served cache.
    pub banks: usize,
    /// Sets per bank (small banks so recoveries cycle quickly).
    pub sets: usize,
    /// Associativity per bank.
    pub ways: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per client.
    pub ops_per_client: u64,
    /// Every `kill_every` requests a client abruptly drops its
    /// connection and reconnects (mid-storm), then immediately re-reads
    /// one of its acknowledged writes.
    pub kill_every: u64,
    /// Distinct key ranks per client partition.
    pub key_ranks: usize,
    /// Fraction of requests that are `SET`s.
    pub write_fraction: f64,
    /// Fault injections performed by the storm thread.
    pub storm_injections: u32,
    /// Pause between storm injections.
    pub storm_interval: Duration,
    /// How long the mid-run administrative quarantine lasts.
    pub quarantine_hold: Duration,
    /// Shed-aware retry attempts per request before giving up on it.
    pub retry_attempts: u32,
    /// Server tuning for the run.
    pub server: ServerConfig,
}

impl NetChaosConfig {
    /// The CI smoke configuration: seconds-long on a single CPU, yet
    /// covering injections, quarantine, kills, and reconnect readback.
    pub fn quick(seed: u64) -> Self {
        NetChaosConfig {
            seed,
            banks: 4,
            // 24x2 -> 96-row banks, same geometry rationale as
            // `CampaignConfig::quick`: column strips leave odd evidence
            // per vertical stripe, so recovery paths get real exercise.
            sets: 24,
            ways: 2,
            clients: 4,
            ops_per_client: 3_000,
            kill_every: 500,
            key_ranks: 2_000,
            write_fraction: 0.35,
            storm_injections: 24,
            storm_interval: Duration::from_millis(5),
            quarantine_hold: Duration::from_millis(60),
            retry_attempts: 8,
            server: ServerConfig::default(),
        }
    }

    fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            sets: self.sets,
            ways: self.ways,
            data_scheme: TwoDScheme::l1_paper(),
            tag_scheme: TwoDScheme {
                data_bits: 50,
                ..TwoDScheme::l1_paper()
            },
        }
    }
}

/// Result of one network chaos run. The invariants a caller must gate
/// on: `wrong_reads == 0`, `lost_acked_writes == 0`,
/// `degraded_observed && degraded_cleared`, and `gave_up == 0` only if
/// it demands full delivery (shed-retry exhaustion under storm is
/// acceptable; silent loss is not).
#[derive(Clone, Debug, Default)]
pub struct NetChaosReport {
    /// Requests answered across all clients (including retries).
    pub ops: u64,
    /// `SET`s acknowledged by the server.
    pub acked_writes: u64,
    /// Owned reads verified against a client's private model mid-run.
    pub verified_reads: u64,
    /// Mid-run verified reads that disagreed — **must be zero**.
    pub wrong_reads: u64,
    /// Acknowledged writes the final readback could not recover —
    /// **must be zero**.
    pub lost_acked_writes: u64,
    /// Acknowledged writes re-checked by the final readback.
    pub readback_checked: u64,
    /// Requests shed `BUSY` (admission pressure).
    pub busy_sheds: u64,
    /// Requests shed `DEGRADED` (recovery window / quarantine).
    pub degraded_sheds: u64,
    /// Requests answered `FAULT`.
    pub faults: u64,
    /// Requests abandoned after exhausting shed retries.
    pub gave_up: u64,
    /// Forced disconnect/reconnect cycles performed.
    pub reconnects: u64,
    /// Read-your-writes checks performed immediately after a reconnect.
    pub reconnect_readbacks: u64,
    /// Fault injections the storm performed.
    pub injections: u32,
    /// A `HEALTH` poll (over the wire) observed at least one degraded
    /// or quarantined bank mid-run.
    pub degraded_observed: bool,
    /// A later `HEALTH` poll observed every bank healthy again.
    pub degraded_cleared: bool,
    /// The served cache passed its full audit after the run.
    pub final_audit: bool,
    /// Server-side counters at shutdown.
    pub server_stats: ServerStats,
}

/// Per-client tally folded into the report.
#[derive(Default)]
struct ClientTally {
    ops: u64,
    acked_writes: u64,
    verified_reads: u64,
    wrong_reads: u64,
    busy_sheds: u64,
    degraded_sheds: u64,
    faults: u64,
    gave_up: u64,
    reconnects: u64,
    reconnect_readbacks: u64,
    /// Final model of acknowledged writes, for the readback phase.
    model: HashMap<u64, u64>,
}

/// Runs the network chaos phase end to end: spawn server (with an
/// aggressive scrubber), storm + quarantine + health-poll threads,
/// `cfg.clients` killing-and-reconnecting client threads, then a final
/// readback of every acknowledged write over a fresh connection.
///
/// # Panics
///
/// Panics if the loopback server or a client connection cannot be
/// established at all (environment failure, not a chaos outcome).
pub fn run_net_chaos(cfg: &NetChaosConfig) -> NetChaosReport {
    let cache = Arc::new(ConcurrentBankedCache::new(cfg.cache_config(), cfg.banks));
    let scrubber = Arc::new(Scrubber::spawn(Arc::clone(&cache), chaos_scrubber_config()));
    let server = CacheServer::spawn(
        Arc::clone(&cache),
        Some(Arc::clone(&scrubber)),
        "127.0.0.1:0",
        cfg.server,
    )
    .expect("bind loopback chaos server");
    let addr = server.local_addr();

    let stop_storm = Arc::new(AtomicBool::new(false));
    let degraded_observed = Arc::new(AtomicBool::new(false));

    let mut report = NetChaosReport::default();
    let (tallies, injections, cleared) = std::thread::scope(|scope| {
        // Fault storm: scrub-then-inject per event, rotating banks.
        let storm = {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop_storm);
            let cfg = cfg.clone();
            scope.spawn(move || storm_loop(&cache, &cfg, &stop))
        };
        // Quarantine toggler: force one bank into administrative
        // degradation mid-run, then lift it.
        {
            let stop = Arc::clone(&stop_storm);
            let server = &server;
            let hold = cfg.quarantine_hold;
            scope.spawn(move || {
                std::thread::sleep(hold / 2);
                if !stop.load(Ordering::Relaxed) {
                    server.quarantine_bank(0, true);
                    std::thread::sleep(hold);
                    server.quarantine_bank(0, false);
                }
            });
        }
        // Health poller over the wire: asserts degradation is visible
        // through the HEALTH opcode while the storm runs.
        let poller = {
            let stop = Arc::clone(&stop_storm);
            let observed = Arc::clone(&degraded_observed);
            scope.spawn(move || health_poll_loop(addr, &stop, &observed))
        };

        let mut handles = Vec::with_capacity(cfg.clients);
        for t in 0..cfg.clients {
            let cfg = cfg.clone();
            handles.push(scope.spawn(move || run_client(t, addr, &cfg)));
        }
        let tallies: Vec<ClientTally> = handles
            .into_iter()
            .map(|h| h.join().expect("chaos client thread panicked"))
            .collect();

        stop_storm.store(true, Ordering::Relaxed);
        let injections = storm.join().expect("storm thread panicked");
        let cleared = poller.join().expect("health poller panicked");
        (tallies, injections, cleared)
    });

    for tally in &tallies {
        report.ops += tally.ops;
        report.acked_writes += tally.acked_writes;
        report.verified_reads += tally.verified_reads;
        report.wrong_reads += tally.wrong_reads;
        report.busy_sheds += tally.busy_sheds;
        report.degraded_sheds += tally.degraded_sheds;
        report.faults += tally.faults;
        report.gave_up += tally.gave_up;
        report.reconnects += tally.reconnects;
        report.reconnect_readbacks += tally.reconnect_readbacks;
    }
    report.injections = injections;
    report.degraded_observed = degraded_observed.load(Ordering::Relaxed);
    report.degraded_cleared = cleared;

    // Final readback: every acknowledged write must be recoverable over
    // a fresh connection, with the storm over and quarantine lifted.
    // Generous retries: the last degraded windows may still be open.
    let mut readback =
        NetClient::connect_with(addr, ClientConfig::default()).expect("readback connect");
    for tally in &tallies {
        for (&key, &value) in &tally.model {
            report.readback_checked += 1;
            match readback.get_retry(key, cfg.retry_attempts.max(16)) {
                Ok(Response::Value(v)) if v == value => {}
                _ => report.lost_acked_writes += 1,
            }
        }
    }

    report.server_stats = server.stats();
    server.shutdown();
    // Scrubber threads hold the cache Arc; stop them before auditing so
    // the audit sees a quiescent array.
    Arc::try_unwrap(scrubber)
        .map(Scrubber::stop)
        .unwrap_or_default();
    report.final_audit = cache.audit();
    report
}

/// Aggressive scrub cadence for the chaos run (mirrors
/// `CampaignConfig::campaign_scrubber`, re-declared here to keep the
/// net module independent of campaign config evolution).
fn chaos_scrubber_config() -> ScrubberConfig {
    ScrubberConfig {
        threads: 2,
        rows_per_slice: 16,
        idle_interval: Duration::from_millis(1),
        min_interval: Duration::from_micros(20),
        adaptive: true,
        time_acceleration: 1000.0 * 3600.0,
    }
}

/// Storm loop: scrub the target bank clean, then inject one bounded
/// cluster; rotate banks. Returns the number of injections performed.
fn storm_loop(cache: &ConcurrentBankedCache, cfg: &NetChaosConfig, stop: &AtomicBool) -> u32 {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5708_13FF);
    let (rows, cols) = {
        let bank0 = cache.lock_bank(0);
        (bank0.data_array().rows(), bank0.data_array().cols())
    };
    let vertical = cfg.cache_config().data_scheme.vertical_rows.min(rows);
    let mut injected = 0u32;
    for i in 0..cfg.storm_injections {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let bank = (i as usize) % cache.banks();
        // Pre-injection discipline: clear residue so this event is
        // isolated and correctable by construction.
        let _ = cache.scrub();
        let height = rng.gen_range(1..=vertical.max(1).min(rows));
        let width = rng.gen_range(1..=2usize.min(cols));
        let row = rng.gen_range(0..=(rows - height));
        let col = rng.gen_range(0..=(cols - width));
        cache.inject_bank_error(
            bank,
            ErrorShape::Cluster {
                row,
                col,
                height,
                width,
            },
        );
        injected += 1;
        std::thread::sleep(cfg.storm_interval);
    }
    injected
}

/// Polls `HEALTH` over the wire; records when degradation is visible
/// and returns whether a poll after the storm saw every bank healthy.
fn health_poll_loop(addr: std::net::SocketAddr, stop: &AtomicBool, observed: &AtomicBool) -> bool {
    let mut client = match NetClient::connect_with(addr, ClientConfig::default()) {
        Ok(c) => c,
        Err(_) => return false,
    };
    while !stop.load(Ordering::Relaxed) {
        if let Ok(report) = client.health() {
            if report.degraded_banks() > 0 {
                observed.store(true, Ordering::Relaxed);
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // Post-storm: wait (bounded) for every degraded window to close.
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        match client.health() {
            Ok(report) if report.degraded_banks() == 0 => return true,
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    false
}

/// Configuration of one shard-kill chaos run: two independent servers,
/// sharded clients spraying verified traffic across both, one server
/// killed mid-storm and later restarted (same cache, new port).
#[derive(Clone, Debug)]
pub struct ShardChaosConfig {
    /// Master seed for client streams and injection positions.
    pub seed: u64,
    /// Banks per shard cache.
    pub banks: usize,
    /// Sets per bank.
    pub sets: usize,
    /// Associativity per bank.
    pub ways: usize,
    /// Concurrent sharded-client threads.
    pub clients: usize,
    /// Pipelined batches issued per client.
    pub batches_per_client: u64,
    /// Requests per pipelined batch.
    pub batch_depth: usize,
    /// Distinct key ranks per client partition.
    pub key_ranks: usize,
    /// Fraction of requests that are `SET`s.
    pub write_fraction: f64,
    /// Fleet-wide batch-progress fraction at which the victim is
    /// killed (progress-driven, not wall-clock, so the outage always
    /// lands mid-traffic regardless of machine speed).
    pub kill_at_fraction: f64,
    /// Progress fraction at which the victim restarts; the remaining
    /// batches exercise directory refresh + lazy re-dial healing.
    pub restart_at_fraction: f64,
    /// The survivor-side fault storm is paced to span roughly this
    /// window while the victim is down.
    pub outage_hold: Duration,
    /// Fault injections on the *survivor* while the victim is down
    /// (the kill happens mid-storm, not in calm waters).
    pub storm_injections: u32,
    /// Shed-aware retry attempts per batch.
    pub retry_attempts: u32,
    /// Server tuning for both shards.
    pub server: ServerConfig,
}

impl ShardChaosConfig {
    /// The CI smoke configuration: a two-shard fleet, sub-ten-seconds
    /// on one CPU, with the victim down for a meaningful slice of the
    /// run.
    pub fn quick(seed: u64) -> Self {
        ShardChaosConfig {
            seed,
            banks: 4,
            sets: 24,
            ways: 2,
            clients: 3,
            batches_per_client: 220,
            batch_depth: 16,
            key_ranks: 2_000,
            write_fraction: 0.35,
            kill_at_fraction: 0.2,
            restart_at_fraction: 0.55,
            outage_hold: Duration::from_millis(100),
            storm_injections: 8,
            retry_attempts: 6,
            server: ServerConfig::default(),
        }
    }

    fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            sets: self.sets,
            ways: self.ways,
            data_scheme: TwoDScheme::l1_paper(),
            tag_scheme: TwoDScheme {
                data_bits: 50,
                ..TwoDScheme::l1_paper()
            },
        }
    }
}

/// Result of one shard-kill chaos run. The invariants a caller must
/// gate on: `wrong_reads == 0`, `lost_acked_writes == 0`,
/// `survivor_acked_during_outage > 0` (the fleet kept serving while a
/// shard was down), `victim_restarted`, and `final_audit` on both
/// shards.
#[derive(Clone, Debug, Default)]
pub struct ShardChaosReport {
    /// Requests answered across all clients.
    pub ops: u64,
    /// `SET`s acknowledged by either shard.
    pub acked_writes: u64,
    /// Owned reads verified against a client's private model mid-run.
    pub verified_reads: u64,
    /// Mid-run verified reads that disagreed — **must be zero**.
    pub wrong_reads: u64,
    /// Slots answered [`ShardOutcome::ShardDown`] (expected nonzero:
    /// the victim really was unreachable).
    pub shard_down_slots: u64,
    /// Writes acknowledged *while the victim was down* — **must be
    /// positive**: the surviving shard kept serving its keys.
    pub survivor_acked_during_outage: u64,
    /// Acknowledged writes the final readback could not recover —
    /// **must be zero**.
    pub lost_acked_writes: u64,
    /// Acknowledged writes re-checked by the final readback.
    pub readback_checked: u64,
    /// Requests shed `BUSY`/`DEGRADED` after retries.
    pub gave_up: u64,
    /// Requests answered `FAULT`.
    pub faults: u64,
    /// Lazy re-dials performed by the sharded clients (heals counted
    /// after each client's initial fan-out).
    pub reconnects: u64,
    /// Fault injections performed on the survivor during the outage.
    pub injections: u32,
    /// The victim came back and the address directory was republished.
    pub victim_restarted: bool,
    /// Both shard caches passed their full audit after the run.
    pub final_audit: bool,
}

/// Runs the shard-kill chaos phase: spawn two shard servers, start
/// sharded clients spraying ownership-verified traffic, kill shard 1
/// mid-storm (its process-equivalent: abrupt server shutdown), inject
/// faults on the survivor while it is the whole fleet, restart the
/// victim on the *same* cache (a rebooted node keeps its array) at a
/// fresh port, republish the address directory, and finally read back
/// every acknowledged write through a fresh sharded client.
///
/// # Panics
///
/// Panics if the loopback servers cannot be spawned (environment
/// failure, not a chaos outcome).
pub fn run_shard_chaos(cfg: &ShardChaosConfig) -> ShardChaosReport {
    const VICTIM: usize = 1;
    let caches: Vec<Arc<ConcurrentBankedCache>> = (0..2)
        .map(|_| Arc::new(ConcurrentBankedCache::new(cfg.cache_config(), cfg.banks)))
        .collect();
    let mut servers: Vec<Option<CacheServer>> = caches
        .iter()
        .map(|cache| {
            Some(
                CacheServer::spawn(Arc::clone(cache), None, "127.0.0.1:0", cfg.server)
                    .expect("bind loopback shard server"),
            )
        })
        .collect();
    // The address directory a real fleet would keep in service
    // discovery: clients poll it and re-point shards that moved.
    let directory: Arc<Mutex<Vec<std::net::SocketAddr>>> = Arc::new(Mutex::new(
        servers
            .iter()
            .map(|s| s.as_ref().unwrap().local_addr())
            .collect(),
    ));
    let outage_active = Arc::new(AtomicBool::new(false));
    // Fleet-wide completed-batch counter: the coordinator keys the kill
    // and the restart off *traffic progress*, so the outage always
    // straddles live batches no matter how fast the machine is.
    let progress = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let total_batches = cfg.clients as u64 * cfg.batches_per_client;
    let progress_at = |fraction: f64| ((total_batches as f64) * fraction) as u64;
    let wait_progress = |target: u64| {
        while progress.load(Ordering::Relaxed) < target.min(total_batches) {
            std::thread::sleep(Duration::from_millis(1));
        }
    };

    let mut report = ShardChaosReport::default();
    let (tallies, injections, victim_restarted) = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.clients);
        for t in 0..cfg.clients {
            let cfg = cfg.clone();
            let directory = Arc::clone(&directory);
            let outage = Arc::clone(&outage_active);
            let progress = Arc::clone(&progress);
            handles.push(
                scope.spawn(move || run_shard_client(t, &cfg, &directory, &outage, &progress)),
            );
        }

        // Coordinator: wait for traffic to be flowing, kill the victim,
        // storm the survivor, then restart the victim on the same cache
        // at a fresh port once enough of the run has happened under the
        // outage.
        wait_progress(progress_at(cfg.kill_at_fraction));
        outage_active.store(true, Ordering::SeqCst);
        if let Some(victim) = servers[VICTIM].take() {
            victim.shutdown();
        }
        let survivor_cache = Arc::clone(&caches[1 - VICTIM]);
        let injections = {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0DD_BA11);
            let (rows, cols) = {
                let bank0 = survivor_cache.lock_bank(0);
                (bank0.data_array().rows(), bank0.data_array().cols())
            };
            let vertical = cfg.cache_config().data_scheme.vertical_rows.min(rows);
            let mut injected = 0u32;
            for i in 0..cfg.storm_injections {
                let bank = (i as usize) % survivor_cache.banks();
                let _ = survivor_cache.scrub();
                let height = rng.gen_range(1..=vertical.max(1).min(rows));
                let width = rng.gen_range(1..=2usize.min(cols));
                let row = rng.gen_range(0..=(rows - height));
                let col = rng.gen_range(0..=(cols - width));
                cache_inject(&survivor_cache, bank, row, col, height, width);
                injected += 1;
                std::thread::sleep(cfg.outage_hold / (cfg.storm_injections.max(1) * 2));
            }
            injected
        };
        wait_progress(progress_at(cfg.restart_at_fraction));
        let restarted =
            CacheServer::spawn(Arc::clone(&caches[VICTIM]), None, "127.0.0.1:0", cfg.server)
                .map(|server| {
                    directory
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())[VICTIM] =
                        server.local_addr();
                    servers[VICTIM] = Some(server);
                })
                .is_ok();
        outage_active.store(false, Ordering::SeqCst);

        let tallies: Vec<ShardClientTally> = handles
            .into_iter()
            .map(|h| h.join().expect("shard chaos client panicked"))
            .collect();
        (tallies, injections, restarted)
    });

    for tally in &tallies {
        report.ops += tally.ops;
        report.acked_writes += tally.acked_writes;
        report.verified_reads += tally.verified_reads;
        report.wrong_reads += tally.wrong_reads;
        report.shard_down_slots += tally.shard_down_slots;
        report.survivor_acked_during_outage += tally.survivor_acked_during_outage;
        report.gave_up += tally.gave_up;
        report.faults += tally.faults;
        report.reconnects += tally.reconnects;
    }
    report.injections = injections;
    report.victim_restarted = victim_restarted;

    // Final readback through a fresh sharded client over the final
    // directory: every acknowledged write must be recoverable now that
    // both shards are up (the victim kept its cache across restart).
    let final_addrs = directory
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .clone();
    let mut readback = ShardedClient::new(&final_addrs);
    let mut outcomes = Vec::new();
    for tally in &tallies {
        for (&key, &value) in &tally.model {
            report.readback_checked += 1;
            readback.pipeline_retry(
                &[Request::Get { key }],
                cfg.retry_attempts.max(16),
                &mut outcomes,
            );
            match outcomes.first() {
                Some(ShardOutcome::Response(Response::Value(v))) if *v == value => {}
                _ => report.lost_acked_writes += 1,
            }
        }
    }

    for server in servers.into_iter().flatten() {
        server.shutdown();
    }
    report.final_audit = caches.iter().all(|cache| cache.audit());
    report
}

/// Bounded-cluster injection helper shared with the storm loop.
fn cache_inject(
    cache: &ConcurrentBankedCache,
    bank: usize,
    row: usize,
    col: usize,
    height: usize,
    width: usize,
) {
    cache.inject_bank_error(
        bank,
        ErrorShape::Cluster {
            row,
            col,
            height,
            width,
        },
    );
}

/// Per-sharded-client tally.
#[derive(Default)]
struct ShardClientTally {
    ops: u64,
    acked_writes: u64,
    verified_reads: u64,
    wrong_reads: u64,
    shard_down_slots: u64,
    survivor_acked_during_outage: u64,
    gave_up: u64,
    faults: u64,
    reconnects: u64,
    model: HashMap<u64, u64>,
}

/// One sharded chaos client: pipelined ownership-verified traffic
/// through a [`ShardedClient`], refreshing shard addresses from the
/// directory each batch (so a restarted victim heals mid-run), with
/// transport-uncertain keys exempted from verification exactly like
/// the single-server chaos client.
fn run_shard_client(
    t: usize,
    cfg: &ShardChaosConfig,
    directory: &Mutex<Vec<std::net::SocketAddr>>,
    outage_active: &AtomicBool,
    progress: &std::sync::atomic::AtomicU64,
) -> ShardClientTally {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x5AA2_D000 + t as u64));
    let mut tally = ShardClientTally::default();
    let addrs = directory
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .clone();
    let mut client = ShardedClient::new(&addrs);
    let initial_dials = client.shard_count() as u64;
    let mut uncertain: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut batch: Vec<Request> = Vec::with_capacity(cfg.batch_depth);
    let mut outcomes: Vec<ShardOutcome> = Vec::with_capacity(cfg.batch_depth);
    for _ in 0..cfg.batches_per_client {
        // Directory refresh: re-point any shard whose published address
        // moved (the restarted victim comes back on a new port).
        {
            let current = directory
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            for (shard, &addr) in current.iter().enumerate() {
                if client.shard_addr(shard) != addr {
                    client.set_shard_addr(shard, addr);
                }
            }
        }
        batch.clear();
        for _ in 0..cfg.batch_depth {
            let rank = rng.gen_range(0..cfg.key_ranks);
            let key = (rank as u64) * (cfg.clients as u64) + t as u64;
            if rng.gen_bool(cfg.write_fraction) {
                batch.push(Request::Set {
                    key,
                    value: rng.gen(),
                });
            } else {
                batch.push(Request::Get { key });
            }
        }
        let during_outage = outage_active.load(Ordering::Relaxed);
        client.pipeline_retry(&batch, cfg.retry_attempts, &mut outcomes);
        for (req, outcome) in batch.iter().zip(&outcomes) {
            tally.ops += 1;
            let resp = match outcome {
                ShardOutcome::Response(resp) => resp,
                ShardOutcome::ShardDown => {
                    tally.shard_down_slots += 1;
                    if let Request::Set { key, .. } = req {
                        tally.model.remove(key);
                        uncertain.insert(*key);
                    }
                    continue;
                }
            };
            match (req, resp) {
                (Request::Set { key, value }, Response::Ok) => {
                    tally.acked_writes += 1;
                    if during_outage {
                        tally.survivor_acked_during_outage += 1;
                    }
                    uncertain.remove(key);
                    tally.model.insert(*key, *value);
                }
                (Request::Get { key }, Response::Value(v)) if !uncertain.contains(key) => {
                    if let Some(&expected) = tally.model.get(key) {
                        tally.verified_reads += 1;
                        if *v != expected {
                            tally.wrong_reads += 1;
                        }
                    }
                }
                (_, Response::Busy { .. }) | (_, Response::Degraded { .. }) => {
                    tally.gave_up += 1;
                }
                (_, Response::Fault) => tally.faults += 1,
                _ => {}
            }
        }
        progress.fetch_add(1, Ordering::Relaxed);
    }
    tally.reconnects = client.reconnects().saturating_sub(initial_dials);
    tally
}

/// One chaos client: owned-partition writes with an acked-write model,
/// shed-aware retries, forced kills + reconnects, and an immediate
/// read-your-writes probe after every reconnect.
fn run_client(t: usize, addr: std::net::SocketAddr, cfg: &NetChaosConfig) -> ClientTally {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0xDEAD_0000 + t as u64));
    let mut tally = ClientTally::default();
    let mut client = match NetClient::connect_with(addr, ClientConfig::default()) {
        Ok(c) => c,
        Err(_) => return tally,
    };
    for i in 0..cfg.ops_per_client {
        // Forced kill: drop the socket abruptly mid-storm, reconnect,
        // and immediately verify one previously acknowledged write.
        if cfg.kill_every > 0 && i > 0 && i % cfg.kill_every == 0 {
            if client.reconnect().is_err() {
                return tally;
            }
            tally.reconnects += 1;
            if let Some((&key, &value)) = tally.model.iter().next() {
                tally.reconnect_readbacks += 1;
                match client.get_retry(key, cfg.retry_attempts) {
                    Ok(Response::Value(v)) => {
                        tally.verified_reads += 1;
                        if v != value {
                            tally.wrong_reads += 1;
                        }
                    }
                    Ok(Response::Busy { .. }) => tally.busy_sheds += 1,
                    Ok(Response::Degraded { .. }) => tally.degraded_sheds += 1,
                    Ok(Response::Fault) => tally.faults += 1,
                    Ok(_) => {}
                    Err(_) => {
                        if client.reconnect().is_err() {
                            return tally;
                        }
                        tally.reconnects += 1;
                    }
                }
            }
        }
        let rank = rng.gen_range(0..cfg.key_ranks);
        let key = (rank as u64) * (cfg.clients as u64) + t as u64;
        if rng.gen_bool(cfg.write_fraction) {
            let value: u64 = rng.gen();
            match client.set_retry(key, value, cfg.retry_attempts) {
                Ok(Response::Ok) => {
                    tally.ops += 1;
                    tally.acked_writes += 1;
                    tally.model.insert(key, value);
                }
                Ok(Response::Busy { .. }) => {
                    tally.ops += 1;
                    tally.busy_sheds += 1;
                    tally.gave_up += 1;
                }
                Ok(Response::Degraded { .. }) => {
                    tally.ops += 1;
                    tally.degraded_sheds += 1;
                    tally.gave_up += 1;
                }
                Ok(Response::Fault) => {
                    tally.ops += 1;
                    tally.faults += 1;
                    // The write was *not* acknowledged; its key keeps
                    // its previous model entry (if any): an earlier
                    // acked value must still be servable post-recovery.
                }
                Ok(_) => tally.ops += 1,
                Err(_) => {
                    // Transport loss: commit status unknown — drop the
                    // key from the model (no false expectations either
                    // way), reconnect, continue.
                    tally.model.remove(&key);
                    if client.reconnect().is_err() {
                        return tally;
                    }
                    tally.reconnects += 1;
                }
            }
        } else {
            match client.get_retry(key, cfg.retry_attempts) {
                Ok(Response::Value(v)) => {
                    tally.ops += 1;
                    if let Some(&expected) = tally.model.get(&key) {
                        tally.verified_reads += 1;
                        if v != expected {
                            tally.wrong_reads += 1;
                        }
                    }
                }
                Ok(Response::Busy { .. }) => {
                    tally.ops += 1;
                    tally.busy_sheds += 1;
                    tally.gave_up += 1;
                }
                Ok(Response::Degraded { .. }) => {
                    tally.ops += 1;
                    tally.degraded_sheds += 1;
                    tally.gave_up += 1;
                }
                Ok(Response::Fault) => {
                    tally.ops += 1;
                    tally.faults += 1;
                }
                Ok(_) => tally.ops += 1,
                Err(_) => {
                    if client.reconnect().is_err() {
                        return tally;
                    }
                    tally.reconnects += 1;
                }
            }
        }
    }
    tally
}
