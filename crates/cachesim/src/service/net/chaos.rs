//! The network phase of the chaos campaign: a live [`CacheServer`]
//! under concurrent client traffic while a fault storm strikes banks, a
//! quarantine toggles mid-run, and client connections are killed and
//! re-established mid-storm — verifying that acknowledged writes
//! survive every disconnect, reads are never wrong, and requests to
//! recovering banks are shed with `BUSY`/`DEGRADED` instead of hanging
//! or panicking.
//!
//! Injection discipline matches the in-process campaign
//! ([`crate::service::campaign`]): before every injection the target
//! bank is scrubbed clean, so each fault event is isolated and
//! correctable by construction — any lost write or wrong read is a real
//! service bug, not compound-damage bad luck.

use super::client::{ClientConfig, NetClient};
use super::protocol::Response;
use super::server::{CacheServer, ServerConfig, ServerStats};
use memarray::ErrorShape;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use twod_cache::{CacheConfig, ConcurrentBankedCache, Scrubber, ScrubberConfig, TwoDScheme};

/// Configuration of one network chaos run.
#[derive(Clone, Debug)]
pub struct NetChaosConfig {
    /// Master seed for client streams and injection positions.
    pub seed: u64,
    /// Banks in the served cache.
    pub banks: usize,
    /// Sets per bank (small banks so recoveries cycle quickly).
    pub sets: usize,
    /// Associativity per bank.
    pub ways: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per client.
    pub ops_per_client: u64,
    /// Every `kill_every` requests a client abruptly drops its
    /// connection and reconnects (mid-storm), then immediately re-reads
    /// one of its acknowledged writes.
    pub kill_every: u64,
    /// Distinct key ranks per client partition.
    pub key_ranks: usize,
    /// Fraction of requests that are `SET`s.
    pub write_fraction: f64,
    /// Fault injections performed by the storm thread.
    pub storm_injections: u32,
    /// Pause between storm injections.
    pub storm_interval: Duration,
    /// How long the mid-run administrative quarantine lasts.
    pub quarantine_hold: Duration,
    /// Shed-aware retry attempts per request before giving up on it.
    pub retry_attempts: u32,
    /// Server tuning for the run.
    pub server: ServerConfig,
}

impl NetChaosConfig {
    /// The CI smoke configuration: seconds-long on a single CPU, yet
    /// covering injections, quarantine, kills, and reconnect readback.
    pub fn quick(seed: u64) -> Self {
        NetChaosConfig {
            seed,
            banks: 4,
            // 24x2 -> 96-row banks, same geometry rationale as
            // `CampaignConfig::quick`: column strips leave odd evidence
            // per vertical stripe, so recovery paths get real exercise.
            sets: 24,
            ways: 2,
            clients: 4,
            ops_per_client: 3_000,
            kill_every: 500,
            key_ranks: 2_000,
            write_fraction: 0.35,
            storm_injections: 24,
            storm_interval: Duration::from_millis(5),
            quarantine_hold: Duration::from_millis(60),
            retry_attempts: 8,
            server: ServerConfig::default(),
        }
    }

    fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            sets: self.sets,
            ways: self.ways,
            data_scheme: TwoDScheme::l1_paper(),
            tag_scheme: TwoDScheme {
                data_bits: 50,
                ..TwoDScheme::l1_paper()
            },
        }
    }
}

/// Result of one network chaos run. The invariants a caller must gate
/// on: `wrong_reads == 0`, `lost_acked_writes == 0`,
/// `degraded_observed && degraded_cleared`, and `gave_up == 0` only if
/// it demands full delivery (shed-retry exhaustion under storm is
/// acceptable; silent loss is not).
#[derive(Clone, Debug, Default)]
pub struct NetChaosReport {
    /// Requests answered across all clients (including retries).
    pub ops: u64,
    /// `SET`s acknowledged by the server.
    pub acked_writes: u64,
    /// Owned reads verified against a client's private model mid-run.
    pub verified_reads: u64,
    /// Mid-run verified reads that disagreed — **must be zero**.
    pub wrong_reads: u64,
    /// Acknowledged writes the final readback could not recover —
    /// **must be zero**.
    pub lost_acked_writes: u64,
    /// Acknowledged writes re-checked by the final readback.
    pub readback_checked: u64,
    /// Requests shed `BUSY` (admission pressure).
    pub busy_sheds: u64,
    /// Requests shed `DEGRADED` (recovery window / quarantine).
    pub degraded_sheds: u64,
    /// Requests answered `FAULT`.
    pub faults: u64,
    /// Requests abandoned after exhausting shed retries.
    pub gave_up: u64,
    /// Forced disconnect/reconnect cycles performed.
    pub reconnects: u64,
    /// Read-your-writes checks performed immediately after a reconnect.
    pub reconnect_readbacks: u64,
    /// Fault injections the storm performed.
    pub injections: u32,
    /// A `HEALTH` poll (over the wire) observed at least one degraded
    /// or quarantined bank mid-run.
    pub degraded_observed: bool,
    /// A later `HEALTH` poll observed every bank healthy again.
    pub degraded_cleared: bool,
    /// The served cache passed its full audit after the run.
    pub final_audit: bool,
    /// Server-side counters at shutdown.
    pub server_stats: ServerStats,
}

/// Per-client tally folded into the report.
#[derive(Default)]
struct ClientTally {
    ops: u64,
    acked_writes: u64,
    verified_reads: u64,
    wrong_reads: u64,
    busy_sheds: u64,
    degraded_sheds: u64,
    faults: u64,
    gave_up: u64,
    reconnects: u64,
    reconnect_readbacks: u64,
    /// Final model of acknowledged writes, for the readback phase.
    model: HashMap<u64, u64>,
}

/// Runs the network chaos phase end to end: spawn server (with an
/// aggressive scrubber), storm + quarantine + health-poll threads,
/// `cfg.clients` killing-and-reconnecting client threads, then a final
/// readback of every acknowledged write over a fresh connection.
///
/// # Panics
///
/// Panics if the loopback server or a client connection cannot be
/// established at all (environment failure, not a chaos outcome).
pub fn run_net_chaos(cfg: &NetChaosConfig) -> NetChaosReport {
    let cache = Arc::new(ConcurrentBankedCache::new(cfg.cache_config(), cfg.banks));
    let scrubber = Arc::new(Scrubber::spawn(Arc::clone(&cache), chaos_scrubber_config()));
    let server = CacheServer::spawn(
        Arc::clone(&cache),
        Some(Arc::clone(&scrubber)),
        "127.0.0.1:0",
        cfg.server,
    )
    .expect("bind loopback chaos server");
    let addr = server.local_addr();

    let stop_storm = Arc::new(AtomicBool::new(false));
    let degraded_observed = Arc::new(AtomicBool::new(false));

    let mut report = NetChaosReport::default();
    let (tallies, injections, cleared) = std::thread::scope(|scope| {
        // Fault storm: scrub-then-inject per event, rotating banks.
        let storm = {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop_storm);
            let cfg = cfg.clone();
            scope.spawn(move || storm_loop(&cache, &cfg, &stop))
        };
        // Quarantine toggler: force one bank into administrative
        // degradation mid-run, then lift it.
        {
            let stop = Arc::clone(&stop_storm);
            let server = &server;
            let hold = cfg.quarantine_hold;
            scope.spawn(move || {
                std::thread::sleep(hold / 2);
                if !stop.load(Ordering::Relaxed) {
                    server.quarantine_bank(0, true);
                    std::thread::sleep(hold);
                    server.quarantine_bank(0, false);
                }
            });
        }
        // Health poller over the wire: asserts degradation is visible
        // through the HEALTH opcode while the storm runs.
        let poller = {
            let stop = Arc::clone(&stop_storm);
            let observed = Arc::clone(&degraded_observed);
            scope.spawn(move || health_poll_loop(addr, &stop, &observed))
        };

        let mut handles = Vec::with_capacity(cfg.clients);
        for t in 0..cfg.clients {
            let cfg = cfg.clone();
            handles.push(scope.spawn(move || run_client(t, addr, &cfg)));
        }
        let tallies: Vec<ClientTally> = handles
            .into_iter()
            .map(|h| h.join().expect("chaos client thread panicked"))
            .collect();

        stop_storm.store(true, Ordering::Relaxed);
        let injections = storm.join().expect("storm thread panicked");
        let cleared = poller.join().expect("health poller panicked");
        (tallies, injections, cleared)
    });

    for tally in &tallies {
        report.ops += tally.ops;
        report.acked_writes += tally.acked_writes;
        report.verified_reads += tally.verified_reads;
        report.wrong_reads += tally.wrong_reads;
        report.busy_sheds += tally.busy_sheds;
        report.degraded_sheds += tally.degraded_sheds;
        report.faults += tally.faults;
        report.gave_up += tally.gave_up;
        report.reconnects += tally.reconnects;
        report.reconnect_readbacks += tally.reconnect_readbacks;
    }
    report.injections = injections;
    report.degraded_observed = degraded_observed.load(Ordering::Relaxed);
    report.degraded_cleared = cleared;

    // Final readback: every acknowledged write must be recoverable over
    // a fresh connection, with the storm over and quarantine lifted.
    // Generous retries: the last degraded windows may still be open.
    let mut readback =
        NetClient::connect_with(addr, ClientConfig::default()).expect("readback connect");
    for tally in &tallies {
        for (&key, &value) in &tally.model {
            report.readback_checked += 1;
            match readback.get_retry(key, cfg.retry_attempts.max(16)) {
                Ok(Response::Value(v)) if v == value => {}
                _ => report.lost_acked_writes += 1,
            }
        }
    }

    report.server_stats = server.stats();
    server.shutdown();
    // Scrubber threads hold the cache Arc; stop them before auditing so
    // the audit sees a quiescent array.
    Arc::try_unwrap(scrubber)
        .map(Scrubber::stop)
        .unwrap_or_default();
    report.final_audit = cache.audit();
    report
}

/// Aggressive scrub cadence for the chaos run (mirrors
/// `CampaignConfig::campaign_scrubber`, re-declared here to keep the
/// net module independent of campaign config evolution).
fn chaos_scrubber_config() -> ScrubberConfig {
    ScrubberConfig {
        threads: 2,
        rows_per_slice: 16,
        idle_interval: Duration::from_millis(1),
        min_interval: Duration::from_micros(20),
        adaptive: true,
        time_acceleration: 1000.0 * 3600.0,
    }
}

/// Storm loop: scrub the target bank clean, then inject one bounded
/// cluster; rotate banks. Returns the number of injections performed.
fn storm_loop(cache: &ConcurrentBankedCache, cfg: &NetChaosConfig, stop: &AtomicBool) -> u32 {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5708_13FF);
    let (rows, cols) = {
        let bank0 = cache.lock_bank(0);
        (bank0.data_array().rows(), bank0.data_array().cols())
    };
    let vertical = cfg.cache_config().data_scheme.vertical_rows.min(rows);
    let mut injected = 0u32;
    for i in 0..cfg.storm_injections {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let bank = (i as usize) % cache.banks();
        // Pre-injection discipline: clear residue so this event is
        // isolated and correctable by construction.
        let _ = cache.scrub();
        let height = rng.gen_range(1..=vertical.max(1).min(rows));
        let width = rng.gen_range(1..=2usize.min(cols));
        let row = rng.gen_range(0..=(rows - height));
        let col = rng.gen_range(0..=(cols - width));
        cache.inject_bank_error(
            bank,
            ErrorShape::Cluster {
                row,
                col,
                height,
                width,
            },
        );
        injected += 1;
        std::thread::sleep(cfg.storm_interval);
    }
    injected
}

/// Polls `HEALTH` over the wire; records when degradation is visible
/// and returns whether a poll after the storm saw every bank healthy.
fn health_poll_loop(addr: std::net::SocketAddr, stop: &AtomicBool, observed: &AtomicBool) -> bool {
    let mut client = match NetClient::connect_with(addr, ClientConfig::default()) {
        Ok(c) => c,
        Err(_) => return false,
    };
    while !stop.load(Ordering::Relaxed) {
        if let Ok(report) = client.health() {
            if report.degraded_banks() > 0 {
                observed.store(true, Ordering::Relaxed);
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // Post-storm: wait (bounded) for every degraded window to close.
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        match client.health() {
            Ok(report) if report.degraded_banks() == 0 => return true,
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    false
}

/// One chaos client: owned-partition writes with an acked-write model,
/// shed-aware retries, forced kills + reconnects, and an immediate
/// read-your-writes probe after every reconnect.
fn run_client(t: usize, addr: std::net::SocketAddr, cfg: &NetChaosConfig) -> ClientTally {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0xDEAD_0000 + t as u64));
    let mut tally = ClientTally::default();
    let mut client = match NetClient::connect_with(addr, ClientConfig::default()) {
        Ok(c) => c,
        Err(_) => return tally,
    };
    for i in 0..cfg.ops_per_client {
        // Forced kill: drop the socket abruptly mid-storm, reconnect,
        // and immediately verify one previously acknowledged write.
        if cfg.kill_every > 0 && i > 0 && i % cfg.kill_every == 0 {
            if client.reconnect().is_err() {
                return tally;
            }
            tally.reconnects += 1;
            if let Some((&key, &value)) = tally.model.iter().next() {
                tally.reconnect_readbacks += 1;
                match client.get_retry(key, cfg.retry_attempts) {
                    Ok(Response::Value(v)) => {
                        tally.verified_reads += 1;
                        if v != value {
                            tally.wrong_reads += 1;
                        }
                    }
                    Ok(Response::Busy { .. }) => tally.busy_sheds += 1,
                    Ok(Response::Degraded { .. }) => tally.degraded_sheds += 1,
                    Ok(Response::Fault) => tally.faults += 1,
                    Ok(_) => {}
                    Err(_) => {
                        if client.reconnect().is_err() {
                            return tally;
                        }
                        tally.reconnects += 1;
                    }
                }
            }
        }
        let rank = rng.gen_range(0..cfg.key_ranks);
        let key = (rank as u64) * (cfg.clients as u64) + t as u64;
        if rng.gen_bool(cfg.write_fraction) {
            let value: u64 = rng.gen();
            match client.set_retry(key, value, cfg.retry_attempts) {
                Ok(Response::Ok) => {
                    tally.ops += 1;
                    tally.acked_writes += 1;
                    tally.model.insert(key, value);
                }
                Ok(Response::Busy { .. }) => {
                    tally.ops += 1;
                    tally.busy_sheds += 1;
                    tally.gave_up += 1;
                }
                Ok(Response::Degraded { .. }) => {
                    tally.ops += 1;
                    tally.degraded_sheds += 1;
                    tally.gave_up += 1;
                }
                Ok(Response::Fault) => {
                    tally.ops += 1;
                    tally.faults += 1;
                    // The write was *not* acknowledged; its key keeps
                    // its previous model entry (if any): an earlier
                    // acked value must still be servable post-recovery.
                }
                Ok(_) => tally.ops += 1,
                Err(_) => {
                    // Transport loss: commit status unknown — drop the
                    // key from the model (no false expectations either
                    // way), reconnect, continue.
                    tally.model.remove(&key);
                    if client.reconnect().is_err() {
                        return tally;
                    }
                    tally.reconnects += 1;
                }
            }
        } else {
            match client.get_retry(key, cfg.retry_attempts) {
                Ok(Response::Value(v)) => {
                    tally.ops += 1;
                    if let Some(&expected) = tally.model.get(&key) {
                        tally.verified_reads += 1;
                        if v != expected {
                            tally.wrong_reads += 1;
                        }
                    }
                }
                Ok(Response::Busy { .. }) => {
                    tally.ops += 1;
                    tally.busy_sheds += 1;
                    tally.gave_up += 1;
                }
                Ok(Response::Degraded { .. }) => {
                    tally.ops += 1;
                    tally.degraded_sheds += 1;
                    tally.gave_up += 1;
                }
                Ok(Response::Fault) => {
                    tally.ops += 1;
                    tally.faults += 1;
                }
                Ok(_) => tally.ops += 1,
                Err(_) => {
                    if client.reconnect().is_err() {
                        return tally;
                    }
                    tally.reconnects += 1;
                }
            }
        }
    }
    tally
}
